#![warn(missing_docs)]

//! # Gillian-rs: a multi-language platform for symbolic execution
//!
//! A Rust reproduction of *"Gillian, Part I: A Multi-language Platform for
//! Symbolic Execution"* (Fragoso Santos, Maksimović, Ayoun, Gardner —
//! PLDI 2020). This facade crate re-exports the whole platform:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`gil`] | `gillian-gil` | The GIL intermediate language: values, expressions, commands, programs, parser |
//! | [`solver`] | `gillian-solver` | First-order solver: simplification, satisfiability, verified model finding |
//! | [`core`] | `gillian-core` | The parametric engine: state models, allocators, restriction, interpreter, symbolic testing, soundness infrastructure |
//! | [`while_lang`] | `gillian-while` | The While instantiation (paper §2.2/§2.4/§3.3) |
//! | [`js`] | `gillian-js` | The MiniJS instantiation (paper §4.1) with the Buckets guest library |
//! | [`c`] | `gillian-c` | The MiniC instantiation (paper §4.2) with the Collections guest library |
//! | [`telemetry`] | `gillian-telemetry` | Observability: event journal, metrics registry, JSONL/Chrome trace exporters, exploration `Report` |
//!
//! ## Quickstart
//!
//! Symbolically test a While program — all paths are explored, loops
//! unrolled up to a bound, and any failed assertion comes back with a
//! *verified* counter-model that has been replayed concretely:
//!
//! ```
//! let outcome = gillian::while_lang::symbolic_test(r#"
//!     proc main() {
//!         x := symb();
//!         assume (0 <= x and x <= 100);
//!         o := { balance: x };
//!         b := o.balance;
//!         if (b <= 100) { o.balance := b + 1; }
//!         v := o.balance;
//!         assert (v <= 100);      // off-by-one: fails at x = 100
//!         return v;
//!     }
//! "#).unwrap();
//! assert_eq!(outcome.bugs.len(), 1);
//! assert!(outcome.bugs[0].confirmed());
//! ```
//!
//! See `examples/` for the Buckets (Table 1) and Collections (Table 2)
//! workloads and the paper's §4.2 bug findings, and `EXPERIMENTS.md` for
//! the paper-vs-measured record.

pub use gillian_c as c;
pub use gillian_core as core;
pub use gillian_gil as gil;
pub use gillian_js as js;
pub use gillian_solver as solver;
pub use gillian_telemetry as telemetry;
pub use gillian_while as while_lang;
