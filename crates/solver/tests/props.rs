//! Property tests for the solver: the simplifier preserves semantics, the
//! satisfiability checker never calls a satisfied conjunction unsat, and
//! every model the finder returns is genuine.
//!
//! These are the executable form of the correctness obligations the paper
//! puts on the first-order solver — Gillian trusts the solver the way it
//! trusts Z3, so here the trust is discharged by differential testing
//! against the concrete evaluator (the same operator semantics the
//! interpreter runs).

use gillian_gil::eval::{eval, Store};
use gillian_gil::{BinOp, Expr, LVar, Sym, TypeTag, UnOp, Value};
use gillian_solver::model::{find_model, ModelBudget};
use gillian_solver::sat::{check_conjunction, SatBudget};
use gillian_solver::simplify::simplify;
use gillian_solver::typing::TypeEnv;
use gillian_solver::SatResult;
use proptest::prelude::*;

const NUM_LVARS: u64 = 3;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-50i64..50).prop_map(|n| Value::num(n as f64 / 2.0)),
        prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(-0.0),].prop_map(Value::num),
        "[a-c]{0,2}".prop_map(|s| Value::str(&s)),
        any::<bool>().prop_map(Value::Bool),
        (0u64..4).prop_map(|i| Value::Sym(Sym(Sym::FIRST_FRESH + i))),
        proptest::collection::vec((-5i64..5).prop_map(Value::Int), 0..3).prop_map(Value::List),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Val),
        (0..NUM_LVARS).prop_map(|i| Expr::lvar(LVar(i))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), arb_unop()).prop_map(|(e, op)| e.un(op)),
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(a, b, op)| a.bin(op, b)),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::list),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Expr::strcat_of),
            proptest::collection::vec(inner, 1..3).prop_map(Expr::lstcat_of),
        ]
    })
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Not),
        Just(UnOp::Neg),
        Just(UnOp::TypeOf),
        Just(UnOp::IntToNum),
        Just(UnOp::NumToInt),
        Just(UnOp::StrLen),
        Just(UnOp::LstLen),
        Just(UnOp::LstHead),
        Just(UnOp::LstTail),
        Just(UnOp::LstRev),
        Just(UnOp::BitNot),
        Just(UnOp::WrapSigned(8)),
        Just(UnOp::WrapUnsigned(16)),
        Just(UnOp::Floor),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Eq),
        Just(BinOp::Lt),
        Just(BinOp::Leq),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::BitAnd),
        Just(BinOp::Shl),
        Just(BinOp::LstNth),
        Just(BinOp::LstCons),
        Just(BinOp::LstSub),
    ]
}

/// An environment assigning the fixed logical variables, plus the typing
/// facts it induces (the simplifier may assume them, as the path condition
/// would carry them).
fn arb_env() -> impl Strategy<Value = (Vec<Value>, TypeEnv)> {
    proptest::collection::vec(arb_value(), NUM_LVARS as usize).prop_map(|vals| {
        let env: TypeEnv = vals
            .iter()
            .enumerate()
            .map(|(i, v)| (LVar(i as u64), v.type_of()))
            .collect();
        (vals, env)
    })
}

fn eval_under(e: &Expr, vals: &[Value]) -> Result<Value, String> {
    let closed = e.subst(&|sub| match sub {
        Expr::LVar(LVar(i)) => Some(Expr::Val(vals[*i as usize].clone())),
        _ => None,
    });
    eval(&Store::new(), &closed).map_err(|err| err.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The core soundness property of the simplifier: for any expression
    /// and any assignment consistent with the typing facts, the simplified
    /// expression evaluates to the same value — and an expression that
    /// errors keeps erroring (error preservation).
    #[test]
    fn simplify_preserves_semantics((vals, env) in arb_env(), e in arb_expr()) {
        let s = simplify(&env, &e);
        let before = eval_under(&e, &vals);
        let after = eval_under(&s, &vals);
        match (&before, &after) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{} vs {}", e, s),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "outcome changed by simplification:\n  e = {}\n  s = {}\n  before = {:?}\n  after = {:?}",
                e, s, a, b
            ),
        }
    }

    /// Simplification is idempotent.
    #[test]
    fn simplify_is_idempotent((_vals, env) in arb_env(), e in arb_expr()) {
        let once = simplify(&env, &e);
        let twice = simplify(&env, &once);
        prop_assert_eq!(&once, &twice, "not idempotent on {}", e);
    }

    /// Satisfiability never reports Unsat for a conjunction that a found
    /// witness satisfies: generate boolean expressions, find an assignment
    /// that makes them true, and demand the checker agrees.
    #[test]
    fn sat_checker_never_refutes_a_witness((vals, env) in arb_env(), es in proptest::collection::vec(arb_expr(), 1..4)) {
        // Turn each generated expression into the atom "e evaluated to
        // this concrete boolean" — a conjunction satisfied by `vals`.
        let mut conjuncts = Vec::new();
        for e in &es {
            if let Ok(Value::Bool(b)) = eval_under(e, &vals) {
                conjuncts.push(if b { e.clone() } else { e.clone().not() });
            }
        }
        // Also pin each variable (ground truth: definitely satisfiable).
        for (i, v) in vals.iter().enumerate() {
            conjuncts.push(Expr::lvar(LVar(i as u64)).eq(Expr::Val(v.clone())));
        }
        let _ = env;
        let verdict = check_conjunction(&conjuncts, SatBudget::default());
        prop_assert_ne!(
            verdict,
            SatResult::Unsat,
            "refuted a satisfied conjunction: {:?} under {:?}",
            conjuncts,
            vals
        );
    }

    /// Every model the finder returns satisfies the conjunction it was
    /// asked about.
    #[test]
    fn models_are_genuine(es in proptest::collection::vec(arb_expr(), 1..3)) {
        // Use type facts to make the atoms meaningful.
        let conjuncts: Vec<Expr> = es
            .iter()
            .map(|e| e.clone().type_of().eq(Expr::type_tag(TypeTag::Int)))
            .collect();
        if let Some(model) = find_model(&conjuncts, ModelBudget::default()) {
            prop_assert!(model.satisfies(&conjuncts), "{model} does not satisfy {conjuncts:?}");
        }
    }

    /// The typed equality decision: expressions of provably different
    /// types are never equal — checked against evaluation.
    #[test]
    fn type_distinct_equalities_agree_with_eval((vals, env) in arb_env(), a in arb_expr(), b in arb_expr()) {
        let eq = simplify(&env, &a.clone().eq(b.clone()));
        if let Some(verdict) = eq.as_bool() {
            if let (Ok(va), Ok(vb)) = (eval_under(&a, &vals), eval_under(&b, &vals)) {
                prop_assert_eq!(verdict, va == vb, "({}) = ({}) simplified to {}", a, b, verdict);
            }
        }
    }
}
