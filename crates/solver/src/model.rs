//! Bounded, self-verifying model finding.
//!
//! Produces an assignment `ε : X̂ → V` (a *logical environment*, paper §3.2)
//! satisfying a conjunction of boolean expressions. The search is a bounded
//! backtracking enumeration over per-variable candidate values harvested
//! from the constraints themselves (equality classes, interval endpoints,
//! literals occurring in the formula, type defaults).
//!
//! Every returned model is **verified**: all conjuncts are concretely
//! evaluated under the assignment through the interpreter's own operator
//! semantics. The engine relies on this to guarantee that reported bugs are
//! true positives; a `None` from [`find_model`] never means "unsat", only
//! "not found within budget".

use crate::intervals::{IntDomain, NumDomain};
use crate::sat::SatBudget;
use crate::simplify::simplify;
use crate::typing::{absorb_type_fact, infer, TypeEnv};
use crate::uf::UnionFind;
use gillian_gil::eval::{eval, Store};
use gillian_gil::{BinOp, Expr, LVar, Sym, TypeTag, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A logical environment: a concrete value for each logical variable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Model {
    assignment: BTreeMap<LVar, Value>,
}

impl Model {
    /// Creates a model from an explicit assignment.
    pub fn from_assignment(assignment: BTreeMap<LVar, Value>) -> Self {
        Model { assignment }
    }

    /// Looks up the value of a logical variable.
    pub fn get(&self, x: LVar) -> Option<&Value> {
        self.assignment.get(&x)
    }

    /// Iterates over the assignment in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&LVar, &Value)> {
        self.assignment.iter()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when no variables are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Substitutes the assignment into `e` and evaluates it concretely.
    ///
    /// # Errors
    ///
    /// Fails when `e` mentions an unassigned variable or an operator is
    /// applied outside its domain.
    pub fn eval(&self, e: &Expr) -> Result<Value, gillian_gil::EvalError> {
        let substituted = e.subst(&|sub| match sub {
            Expr::LVar(x) => self.assignment.get(x).map(|v| Expr::Val(v.clone())),
            _ => None,
        });
        eval(&Store::new(), &substituted)
    }

    /// Checks that every conjunct evaluates to `true` under the model.
    pub fn satisfies(&self, conjuncts: &[Expr]) -> bool {
        conjuncts
            .iter()
            .all(|c| matches!(self.eval(c), Ok(Value::Bool(true))))
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (x, v)) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x} ↦ {v}")?;
        }
        write!(f, "}}")
    }
}

/// Limits for the model search.
#[derive(Clone, Copy, Debug)]
pub struct ModelBudget {
    /// Maximum search-tree nodes visited.
    pub max_nodes: usize,
    /// Maximum candidate values tried per variable.
    pub candidates_per_var: usize,
}

impl Default for ModelBudget {
    fn default() -> Self {
        ModelBudget {
            max_nodes: 50_000,
            candidates_per_var: 16,
        }
    }
}

/// Extracts a witness model for the implication index from the
/// end-of-solve state of a *clean* `Sat` solve.
///
/// Unlike [`find_model`], this re-derives nothing: the solve already
/// computed equality classes and interval domains, so the extraction
/// reads pinned values from the union-find, picks an endpoint from each
/// variable's interval (or a type default), and verifies the assignment
/// with a single evaluation pass over the conjuncts. A failed pick gets
/// one nudged retry (disequalities often rule out exactly the endpoint);
/// after that the harvest is skipped — a witness is a bonus the index
/// can live without, and anything costing a second solve per query
/// would dominate workloads that never reuse (see `DESIGN.md` §12).
pub(crate) fn harvest_witness(
    seed: &crate::ctx::CapturedState,
    conjuncts: &[Expr],
) -> Option<Model> {
    let mut vars: BTreeSet<LVar> = BTreeSet::new();
    for c in conjuncts {
        vars.extend(c.lvars());
    }
    if vars.is_empty() {
        let m = Model::default();
        return m.satisfies(conjuncts).then_some(m);
    }
    for nudge in [false, true] {
        let mut assignment: BTreeMap<LVar, Value> = BTreeMap::new();
        for &x in &vars {
            let term = Expr::LVar(x);
            if let Some(v) = seed.uf.value_of(&term) {
                assignment.insert(x, v);
                continue;
            }
            let ty = seed.env.get(&x).copied();
            let v = match ty {
                None | Some(TypeTag::Int) => {
                    let itv = seed.ints.query(&term);
                    if itv.is_empty() {
                        return None;
                    }
                    let base = if itv.lo != i64::MIN {
                        itv.lo
                    } else if itv.hi != i64::MAX {
                        itv.hi
                    } else {
                        0
                    };
                    let picked = if nudge && base < itv.hi {
                        base + 1
                    } else {
                        base
                    };
                    Value::Int(picked)
                }
                Some(TypeTag::Num) => {
                    let itv = seed.nums.query(&term);
                    if itv.is_empty() {
                        return None;
                    }
                    let base = if itv.lo.is_finite() && itv.hi.is_finite() {
                        (itv.lo + itv.hi) / 2.0
                    } else if itv.lo.is_finite() {
                        itv.lo + 1.0
                    } else if itv.hi.is_finite() {
                        itv.hi - 1.0
                    } else {
                        0.0
                    };
                    Value::num(if nudge { base + 1.0 } else { base })
                }
                Some(TypeTag::Bool) => Value::Bool(!nudge),
                Some(TypeTag::Str) => Value::str(if nudge { "a" } else { "" }),
                Some(TypeTag::Sym) => Value::Sym(Sym(Sym::FIRST_FRESH + 7000 + x.0)),
                Some(TypeTag::List) => Value::nil(),
                Some(TypeTag::Type) => Value::Type(TypeTag::Int),
                Some(TypeTag::Proc) => Value::proc("f"),
            };
            assignment.insert(x, v);
        }
        let m = Model::from_assignment(assignment);
        if m.satisfies(conjuncts) {
            return Some(m);
        }
    }
    None
}

/// Attempts to find a verified model of the conjunction.
pub fn find_model(conjuncts: &[Expr], budget: ModelBudget) -> Option<Model> {
    let mut env = TypeEnv::new();
    for c in conjuncts {
        if !absorb_type_fact(&mut env, c) {
            return None;
        }
    }
    crate::sat::absorb_usage_types_pub(&mut env, conjuncts);

    let mut flat: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if !flatten(&simplify(&env, c), &mut flat) {
            return None;
        }
    }

    // Collect variables from the *original* conjuncts: simplification may
    // discharge a conjunct (e.g. a `typeOf` fact) whose variable must still
    // be assigned for the final verification against the originals.
    let mut vars: BTreeSet<LVar> = BTreeSet::new();
    for c in conjuncts {
        vars.extend(c.lvars());
    }
    for c in &flat {
        vars.extend(c.lvars());
    }
    if vars.is_empty() {
        // Verify against the *original* conjuncts too: simplification may
        // have discharged a conjunct whose evaluation actually errors.
        let m = Model::default();
        return (m.satisfies(&flat) && m.satisfies(conjuncts)).then_some(m);
    }

    // Equality classes pin some variables outright.
    let mut uf = UnionFind::new();
    let mut ints = IntDomain::new();
    let mut nums = NumDomain::new();
    for c in &flat {
        match c {
            Expr::Bin(BinOp::Eq, a, b) if !uf.union(a, b) => {
                return None;
            }
            Expr::Bin(op @ (BinOp::Lt | BinOp::Leq), a, b) => {
                let strict = *op == BinOp::Lt;
                if infer(&env, a) == Some(TypeTag::Int) || infer(&env, b) == Some(TypeTag::Int) {
                    let _ = ints.assert_cmp(a, b, strict);
                } else if let Expr::Val(Value::Num(x)) = b.as_ref() {
                    let _ = nums.assert_cmp_const(a, x.get(), true, strict);
                } else if let Expr::Val(Value::Num(x)) = a.as_ref() {
                    let _ = nums.assert_cmp_const(b, x.get(), false, strict);
                }
            }
            _ => {}
        }
    }

    let mut fixed: BTreeMap<LVar, Value> = BTreeMap::new();
    for x in &vars {
        if let Some(v) = uf.value_of(&Expr::LVar(*x)) {
            fixed.insert(*x, v);
        }
    }

    // Literal pool from the formula, by type.
    let mut pool: BTreeMap<TypeTag, Vec<Value>> = BTreeMap::new();
    for c in &flat {
        c.visit(&mut |e| {
            if let Expr::Val(v) = e {
                let t = v.type_of();
                let entry = pool.entry(t).or_default();
                if !entry.contains(v) && entry.len() < 24 {
                    entry.push(v.clone());
                    // Neighbours help satisfy strict bounds / disequalities.
                    if let Value::Int(n) = v {
                        for d in [n.saturating_sub(1), n.saturating_add(1)] {
                            let nv = Value::Int(d);
                            if !entry.contains(&nv) && entry.len() < 24 {
                                entry.push(nv);
                            }
                        }
                    }
                }
            }
        });
    }

    let free: Vec<LVar> = vars
        .iter()
        .copied()
        .filter(|x| !fixed.contains_key(x))
        .collect();
    let candidates: Vec<Vec<Value>> = free
        .iter()
        .map(|x| candidate_values(*x, &env, &pool, &ints, &nums, budget.candidates_per_var))
        .collect();

    let mut nodes = 0usize;
    let mut assignment = fixed;
    if search(
        &flat,
        &free,
        &candidates,
        0,
        &mut assignment,
        &mut nodes,
        budget.max_nodes,
    ) {
        let m = Model::from_assignment(assignment);
        debug_assert!(m.satisfies(&flat));
        // `flat` came from `conjuncts` by semantics-preserving rewrites,
        // but verify against the originals to be safe.
        m.satisfies(conjuncts).then_some(m)
    } else {
        None
    }
}

fn flatten(e: &Expr, out: &mut Vec<Expr>) -> bool {
    match e {
        Expr::Val(Value::Bool(true)) => true,
        Expr::Val(Value::Bool(false)) => false,
        Expr::Bin(BinOp::And, a, b) => flatten(a, out) && flatten(b, out),
        other => {
            out.push(other.clone());
            true
        }
    }
}

fn candidate_values(
    x: LVar,
    env: &TypeEnv,
    pool: &BTreeMap<TypeTag, Vec<Value>>,
    ints: &IntDomain,
    nums: &NumDomain,
    cap: usize,
) -> Vec<Value> {
    let term = Expr::LVar(x);
    let mut out: Vec<Value> = Vec::new();
    let push = |v: Value, out: &mut Vec<Value>| {
        if !out.contains(&v) && out.len() < cap {
            out.push(v);
        }
    };
    let ty = env.get(&x).copied();

    // Interval endpoints first: most likely to satisfy comparisons.
    if matches!(ty, None | Some(TypeTag::Int)) {
        let itv = ints.query(&term);
        if !itv.is_empty() && (itv.lo != i64::MIN || itv.hi != i64::MAX) {
            let lo = itv.lo.max(i64::MIN + 2);
            let hi = itv.hi.min(i64::MAX - 2);
            for v in [
                lo,
                lo.saturating_add(1),
                hi,
                hi.saturating_sub(1),
                lo.midpoint(hi),
            ] {
                if v >= itv.lo && v <= itv.hi {
                    push(Value::Int(v), &mut out);
                }
            }
        }
    }
    if matches!(ty, None | Some(TypeTag::Num)) {
        let itv = nums.query(&term);
        if !itv.is_empty() && (itv.lo.is_finite() || itv.hi.is_finite()) {
            let pick = if itv.lo.is_finite() && itv.hi.is_finite() {
                (itv.lo + itv.hi) / 2.0
            } else if itv.lo.is_finite() {
                itv.lo + 1.0
            } else {
                itv.hi - 1.0
            };
            for v in [pick, itv.lo, itv.hi, itv.lo + 0.5, itv.hi - 0.5] {
                if v.is_finite() {
                    push(Value::num(v), &mut out);
                }
            }
        }
    }

    // Literals of the right type from the formula.
    let add_pool = |t: TypeTag, out: &mut Vec<Value>| {
        if let Some(vs) = pool.get(&t) {
            for v in vs {
                push(v.clone(), out);
            }
        }
    };
    match ty {
        Some(t) => add_pool(t, &mut out),
        None => {
            for t in TypeTag::ALL {
                add_pool(t, &mut out);
            }
        }
    }

    // Type defaults.
    let defaults: Vec<Value> = match ty {
        Some(TypeTag::Int) => vec![0, 1, 2, -1, 3, 7]
            .into_iter()
            .map(Value::Int)
            .collect(),
        Some(TypeTag::Num) => [0.0, 1.0, 2.0, -1.0, 0.5]
            .iter()
            .map(|&v| Value::num(v))
            .collect(),
        Some(TypeTag::Str) => ["", "a", "b", "ab"].iter().map(Value::str).collect(),
        Some(TypeTag::Bool) => vec![Value::Bool(true), Value::Bool(false)],
        Some(TypeTag::Sym) => vec![Value::Sym(Sym(Sym::FIRST_FRESH + 7000 + x.0))],
        Some(TypeTag::List) => vec![Value::nil(), Value::List(vec![Value::Int(0)])],
        Some(TypeTag::Type) => vec![Value::Type(TypeTag::Int)],
        Some(TypeTag::Proc) => vec![Value::proc("f")],
        None => vec![
            Value::Int(0),
            Value::Int(1),
            Value::Bool(true),
            Value::Bool(false),
            Value::num(0.0),
            Value::str("a"),
            Value::Sym(Sym(Sym::FIRST_FRESH + 7000 + x.0)),
            Value::nil(),
        ],
    };
    for v in defaults {
        push(v, &mut out);
    }
    out
}

/// DFS with incremental constraint checking: after each assignment, every
/// conjunct whose variables are all assigned must evaluate to `true`.
fn search(
    flat: &[Expr],
    free: &[LVar],
    candidates: &[Vec<Value>],
    idx: usize,
    assignment: &mut BTreeMap<LVar, Value>,
    nodes: &mut usize,
    max_nodes: usize,
) -> bool {
    if *nodes >= max_nodes {
        return false;
    }
    *nodes += 1;
    // Check conjuncts that just became fully assigned.
    let assigned: BTreeSet<LVar> = assignment.keys().copied().collect();
    for c in flat {
        let lv = c.lvars();
        if lv.iter().all(|x| assigned.contains(x)) {
            let m = Model::from_assignment(assignment.clone());
            if !matches!(m.eval(c), Ok(Value::Bool(true))) {
                return false;
            }
        }
    }
    if idx == free.len() {
        return true;
    }
    let x = free[idx];
    for v in &candidates[idx] {
        assignment.insert(x, v.clone());
        if search(
            flat,
            free,
            candidates,
            idx + 1,
            assignment,
            nodes,
            max_nodes,
        ) {
            return true;
        }
        assignment.remove(&x);
        if *nodes >= max_nodes {
            return false;
        }
    }
    false
}

/// Finds a model under escalating budgets: the given budget first, then
/// two progressively larger fresh searches (8×/64× nodes, 4×/8× more
/// candidates per variable).
///
/// The differential oracle uses this to make witness extraction *total
/// modulo budget*: a path condition the configured search cannot crack —
/// typically a case-split `Sat` whose end-of-solve witness harvest failed
/// — gets genuinely deeper searches before the path is (reported as)
/// skipped. `None` still never means "unsat", only "not found within the
/// largest budget".
pub fn find_model_escalating(conjuncts: &[Expr], budget: ModelBudget) -> Option<Model> {
    let mut budget = budget;
    for scale in 0..3 {
        if scale > 0 {
            budget = ModelBudget {
                max_nodes: budget.max_nodes.saturating_mul(8),
                candidates_per_var: budget.candidates_per_var.saturating_mul(if scale == 1 {
                    4
                } else {
                    2
                }),
            };
        }
        if let Some(m) = find_model(conjuncts, budget) {
            return Some(m);
        }
    }
    None
}

/// Convenience: find a model with default budgets, checking sat first.
pub fn find_model_default(conjuncts: &[Expr]) -> Option<Model> {
    if crate::sat::check_conjunction(conjuncts, SatBudget::default())
        == crate::sat::SatResult::Unsat
    {
        return None;
    }
    find_model(conjuncts, ModelBudget::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    fn find(cs: &[Expr]) -> Option<Model> {
        find_model(cs, ModelBudget::default())
    }

    #[test]
    fn finds_model_for_equalities() {
        let m = find(&[x(0).eq(Expr::int(5)), x(1).eq(x(0))]).unwrap();
        assert_eq!(m.get(LVar(0)), Some(&Value::Int(5)));
        assert_eq!(m.get(LVar(1)), Some(&Value::Int(5)));
    }

    #[test]
    fn finds_model_for_intervals() {
        let m = find(&[
            Expr::int(10).le(x(0)),
            x(0).lt(Expr::int(12)),
            x(0).ne(Expr::int(10)),
        ])
        .unwrap();
        assert_eq!(m.get(LVar(0)), Some(&Value::Int(11)));
    }

    #[test]
    fn finds_model_with_type_constraints() {
        let m = find(&[
            x(0).type_of().eq(Expr::type_tag(TypeTag::Str)),
            x(0).ne(Expr::str("")),
        ])
        .unwrap();
        assert!(matches!(m.get(LVar(0)), Some(Value::Str(s)) if !s.is_empty()));
    }

    #[test]
    fn rejects_unsat() {
        assert!(find(&[x(0).eq(Expr::int(1)), x(0).eq(Expr::int(2))]).is_none());
        assert!(find(&[Expr::ff()]).is_none());
    }

    #[test]
    fn model_is_verified_against_errors() {
        // head(x0) = 1 with x0 a list: must pick a non-empty list or fail;
        // either way, no unverified model escapes.
        let cs = [x(0).clone().lst_head().eq(Expr::int(1))];
        if let Some(m) = find(&cs) {
            assert!(m.satisfies(&cs));
        }
    }

    #[test]
    fn num_bounds_guide_search() {
        let m = find(&[Expr::num(1.0).lt(x(0)), x(0).lt(Expr::num(2.0))]).unwrap();
        let v = m.get(LVar(0)).unwrap().as_f64().unwrap();
        assert!(v > 1.0 && v < 2.0, "got {v}");
    }

    #[test]
    fn bool_and_disjunction_models() {
        let m = find(&[x(0).clone().or(x(1).clone()), x(0).not()]).unwrap();
        assert_eq!(m.get(LVar(1)), Some(&Value::Bool(true)));
    }

    #[test]
    fn list_equality_models() {
        let m = find(&[Expr::list([x(0), Expr::int(2)])
            .eq(Expr::Val(Value::List(vec![Value::Int(1), Value::Int(2)])))])
        .unwrap();
        assert_eq!(m.get(LVar(0)), Some(&Value::Int(1)));
    }
}
