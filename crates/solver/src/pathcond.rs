//! Path conditions `π ∈ Π` (paper §2.3).
//!
//! A path condition is a conjunction of boolean logical expressions
//! bookkeeping the constraints on logical variables that led execution to
//! the current symbolic state. Conjuncts are kept simplified, deduplicated,
//! and in insertion order (the trace of the path), with a canonical key
//! available for solver caching.
//!
//! ## Representation
//!
//! Symbolic execution snapshots the path condition at **every** branch
//! point, so the representation is persistent: a prefix-shared cons list
//! of interned [`Term`]s (clone = two refcount bumps) plus a persistent
//! trie ([`PSet`]) over term ids for O(log n) dedup on push. Branching no
//! longer copies the condition, and `extend` onto an empty condition is a
//! wholesale O(1) share. The canonical cache key — the sorted ids of the
//! conjunct set — is memoized per node, so repeated solver queries on the
//! same condition pay for canonicalization once.

use crate::ctx::SolveCtx;
use crate::persistent::PSet;
use crate::typing::{absorb_type_fact, TypeEnv};
use gillian_gil::serial;
use gillian_gil::{Expr, LVar, Term, TypeTag, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// One conjunct in the persistent chain: the newest constraint plus a
/// shared tail. `key` memoizes the canonical cache key of the whole chain
/// ending here; `ctx` freezes the solver state of the first decided solve
/// of the chain ending here (see `ctx.rs` and `DESIGN.md` §12).
#[derive(Debug)]
struct PcNode {
    term: Term,
    prev: Option<Arc<PcNode>>,
    key: OnceLock<PcKey>,
    env: OnceLock<Arc<PcEnv>>,
    ctx: OnceLock<Arc<SolveCtx>>,
}

/// The canonical identity of a conjunct *set*: the sorted, deduplicated
/// intern ids of its members, plus a precomputed hash. Within a process a
/// live term id names exactly one structure, so two path conditions with
/// equal keys are the same conjunction — regardless of insertion order.
#[derive(Clone, Debug)]
pub struct PcKey {
    ids: Arc<[u64]>,
    hash: u64,
}

impl PcKey {
    fn from_ids(mut ids: Vec<u64>) -> PcKey {
        ids.sort_unstable();
        ids.dedup();
        let mut h = gillian_gil::hashing::FxHasher::default();
        ids.hash(&mut h);
        PcKey {
            ids: ids.into(),
            hash: h.finish(),
        }
    }

    /// Inserts one id into an already-canonical key.
    fn with_id(&self, id: u64) -> PcKey {
        match self.ids.binary_search(&id) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut ids = Vec::with_capacity(self.ids.len() + 1);
                ids.extend_from_slice(&self.ids[..pos]);
                ids.push(id);
                ids.extend_from_slice(&self.ids[pos..]);
                let mut h = gillian_gil::hashing::FxHasher::default();
                ids.hash(&mut h);
                PcKey {
                    ids: ids.into(),
                    hash: h.finish(),
                }
            }
        }
    }

    /// The sorted conjunct-set ids.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The sorted conjunct-set ids as a shared handle (a refcount bump).
    pub fn ids_arc(&self) -> Arc<[u64]> {
        self.ids.clone()
    }

    /// The precomputed hash (used for cache sharding).
    pub fn precomputed_hash(&self) -> u64 {
        self.hash
    }

    /// Builds a key directly from ids (unit-test helper).
    #[cfg(test)]
    pub(crate) fn for_tests(ids: Vec<u64>) -> PcKey {
        PcKey::from_ids(ids)
    }
}

impl PartialEq for PcKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.ids == other.ids
    }
}
impl Eq for PcKey {}
impl Hash for PcKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The typing environment a conjunct set induces (type facts like
/// `typeOf(#x) = Int` plus operator-usage pinning), snapshotted together
/// with a canonical content key. Memoized per [`PcNode`], so the
/// interpreter's per-command simplifications read it with a lock-free
/// `OnceLock` hit instead of rescanning the whole condition — O(|pc|)
/// once per distinct condition instead of per query.
///
/// Equality compares the **full** sorted `(variable, type)` contents (the
/// precomputed hash is only a fast reject / shard selector), so using
/// `PcEnv` as a memo key can never confuse two environments — that would
/// be unsound. Two different conditions inducing the same typing compare
/// equal, which is exactly what lets simplifier memo entries survive
/// path-condition growth and be shared across sibling branches.
#[derive(Debug)]
pub struct PcEnv {
    env: TypeEnv,
    pairs: Arc<[(LVar, TypeTag)]>,
    hash: u64,
}

impl PcEnv {
    fn build(conjuncts: &[Expr]) -> Arc<PcEnv> {
        let mut env = TypeEnv::new();
        for c in conjuncts {
            let _ = absorb_type_fact(&mut env, c);
        }
        crate::sat::absorb_usage_types_pub(&mut env, conjuncts);
        let pairs: Arc<[(LVar, TypeTag)]> = env.iter().map(|(x, t)| (*x, *t)).collect();
        let mut h = gillian_gil::hashing::FxHasher::default();
        pairs.hash(&mut h);
        Arc::new(PcEnv {
            env,
            pairs,
            hash: h.finish(),
        })
    }

    /// The environment contents.
    pub fn env(&self) -> &TypeEnv {
        &self.env
    }

    /// The precomputed content hash (for cache sharding; never trusted
    /// for equality).
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for PcEnv {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.pairs == other.pairs
    }
}
impl Eq for PcEnv {}
impl Hash for PcEnv {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// A conjunction of boolean logical expressions.
#[derive(Clone, Debug, Default)]
pub struct PathCondition {
    /// Newest conjunct (the chain walks backward through the trace).
    head: Option<Arc<PcNode>>,
    /// Chain length (conjunct count).
    len: usize,
    /// Dedup index: intern ids of every conjunct in the chain.
    index: PSet,
    /// Set to `true` once a literal `false` has been conjoined.
    trivially_false: bool,
}

impl PathCondition {
    /// The empty (trivially true) path condition.
    pub fn new() -> Self {
        PathCondition::default()
    }

    /// Conjoins a constraint. Literal `true` is dropped; literal `false`
    /// marks the condition trivially false; duplicates are dropped
    /// (O(log n) via the persistent id index).
    pub fn push(&mut self, e: Expr) {
        match e.as_bool() {
            Some(true) => {}
            Some(false) => self.trivially_false = true,
            None => {
                let term: Term = e.into();
                if self.index.insert(term.id()) {
                    self.head = Some(Arc::new(PcNode {
                        term,
                        prev: self.head.take(),
                        key: OnceLock::new(),
                        env: OnceLock::new(),
                        ctx: OnceLock::new(),
                    }));
                    self.len += 1;
                }
            }
        }
    }

    /// Conjoins all constraints of another path condition (restriction's
    /// `π ∧ π′`, paper §3.1). Extending an empty condition is a wholesale
    /// O(1) share of `other`'s chain.
    pub fn extend(&mut self, other: &PathCondition) {
        if self.len == 0 {
            let trivially_false = self.trivially_false || other.trivially_false;
            *self = other.clone();
            self.trivially_false = trivially_false;
            return;
        }
        self.trivially_false |= other.trivially_false;
        for c in other.conjuncts() {
            self.push(c);
        }
    }

    /// True when a literal `false` has been conjoined.
    pub fn is_trivially_false(&self) -> bool {
        self.trivially_false
    }

    /// The conjuncts in insertion order (materialized from the shared
    /// chain).
    pub fn conjuncts(&self) -> Vec<Expr> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.push(node.term.expr().clone());
            cur = node.prev.as_deref();
        }
        out.reverse();
        out
    }

    /// The conjuncts as shared terms, in insertion order.
    pub fn terms(&self) -> Vec<Term> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.push(node.term.clone());
            cur = node.prev.as_deref();
        }
        out.reverse();
        out
    }

    /// Serializes this condition through `enc`: the trivially-false flag
    /// plus the conjunct terms in insertion order (the branch trace of the
    /// path). Memoized keys, typing environments, and frozen solver
    /// contexts are deliberately *not* written — they are process-local
    /// caches that [`PathCondition::load`] rebuilds lazily.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the payload outgrows its length prefixes.
    pub fn save(
        &self,
        enc: &mut serial::Encoder,
        out: &mut Vec<u8>,
    ) -> Result<(), serial::WireError> {
        serial::put_u8(out, self.trivially_false as u8);
        let terms = self.terms();
        serial::put_len(out, terms.len(), "path condition")?;
        for t in &terms {
            enc.write_term(out, t)?;
        }
        Ok(())
    }

    /// Rebuilds a condition written by [`PathCondition::save`] by replaying
    /// [`PathCondition::push`] over the re-interned conjuncts. Because
    /// `save` wrote an already-deduplicated, `true`-free conjunct list in
    /// insertion order, the replay reconstructs the chain exactly; the
    /// dedup index, cache keys, and solve contexts are re-derived in the
    /// current process (intern-id remapping happens in the decoder).
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or corrupted input; never panics.
    pub fn load(
        dec: &serial::Decoder,
        r: &mut serial::ByteReader,
    ) -> Result<PathCondition, serial::WireError> {
        let trivially_false = r.u8()? != 0;
        let n = r.count()?;
        let mut pc = PathCondition::new();
        for _ in 0..n {
            let t = dec.read_term(r)?;
            pc.push(t.expr().clone());
        }
        if trivially_false {
            pc.push(Expr::ff());
        }
        Ok(pc)
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no conjuncts (and no literal `false`).
    pub fn is_empty(&self) -> bool {
        self.len == 0 && !self.trivially_false
    }

    /// All logical variables mentioned.
    pub fn lvars(&self) -> BTreeSet<LVar> {
        let mut out = BTreeSet::new();
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.extend(node.term.lvars());
            cur = node.prev.as_deref();
        }
        out
    }

    /// The canonical key (sorted, deduplicated conjunct-set ids) for
    /// caching: two path conditions with the same key are the same
    /// conjunction. Memoized per chain node — the first query on a given
    /// condition extends its parent's key by one id; repeats are O(1).
    pub fn cache_key(&self) -> PcKey {
        if self.trivially_false {
            let f: Term = Expr::Val(Value::Bool(false)).into();
            return PcKey::from_ids(vec![f.id()]);
        }
        match &self.head {
            None => PcKey::from_ids(Vec::new()),
            Some(head) => Self::node_key(head),
        }
    }

    /// Computes (and memoizes) the canonical key of the chain ending at
    /// `node`. Iterative: walks back to the nearest memoized ancestor —
    /// no recursion, so 10k-conjunct chains cannot overflow the stack.
    ///
    /// Short unmemoized suffixes (the branch-snapshot steady state: a few
    /// pushes since the parent's key was queried) fold the ancestor key
    /// forward one id at a time, memoizing each node — O(suffix · n).
    /// Long suffixes (a freshly built long chain queried once) would make
    /// that fold quadratic, so past a threshold the key is rebuilt from
    /// scratch in O(n log n) and memoized only at the queried node.
    fn node_key(node: &Arc<PcNode>) -> PcKey {
        if let Some(key) = node.key.get() {
            return key.clone();
        }
        /// Suffix length beyond which per-node folding is abandoned.
        const FOLD_LIMIT: usize = 32;
        // Collect the unmemoized suffix (newest first).
        let mut pending: Vec<&Arc<PcNode>> = Vec::new();
        let mut cur = Some(node);
        let mut base: Option<PcKey> = None;
        while let Some(n) = cur {
            if let Some(key) = n.key.get() {
                base = Some(key.clone());
                break;
            }
            pending.push(n);
            cur = n.prev.as_ref();
        }
        if pending.len() > FOLD_LIMIT {
            // Rebuild: ancestor ids plus the whole suffix, sorted once.
            let mut ids: Vec<u64> = base.map(|k| k.ids().to_vec()).unwrap_or_default();
            ids.extend(pending.iter().map(|n| n.term.id()));
            ids.sort_unstable();
            ids.dedup();
            return node.key.get_or_init(|| PcKey::from_ids(ids)).clone();
        }
        let mut key = base.unwrap_or_else(|| PcKey::from_ids(Vec::new()));
        for n in pending.into_iter().rev() {
            key = key.with_id(n.term.id());
            key = n.key.get_or_init(|| key).clone();
        }
        key
    }

    /// The typing environment induced by this condition's conjuncts,
    /// memoized on the newest chain node: the first query on a given
    /// condition scans it once; every later query — and every query on a
    /// snapshot sharing the same node — is a lock-free `OnceLock` read.
    /// (A trivially-false condition keeps whatever conjuncts are in the
    /// chain; simplifying under their typing is sound on an unsat path.)
    pub fn typing_env(&self) -> Arc<PcEnv> {
        match &self.head {
            None => {
                static EMPTY: OnceLock<Arc<PcEnv>> = OnceLock::new();
                EMPTY.get_or_init(|| PcEnv::build(&[])).clone()
            }
            Some(head) => head
                .env
                .get_or_init(|| PcEnv::build(&self.conjuncts()))
                .clone(),
        }
    }

    /// The conjuncts of the canonical key in **structural** order — the
    /// deterministic, schedule-independent form fed to the satisfiability
    /// checker. (Key ids are mint-ordered and vary across schedules, so
    /// they canonicalize the *set* but must not order the checker's
    /// input.)
    pub fn sorted_conjuncts(&self) -> Vec<Expr> {
        if self.trivially_false {
            return vec![Expr::Val(Value::Bool(false))];
        }
        let mut out = self.conjuncts();
        out.sort_unstable();
        out
    }

    /// True when `self`'s conjunct set contains all of `other`'s — the
    /// syntactic form of the `⊑` pre-order induced by restriction.
    /// Structural over the persistent id tries: shared subtrees answer in
    /// O(1) via pointer equality, so a snapshot is subsumed by its own
    /// extension in time proportional to the extension, not the chain.
    pub fn subsumes(&self, other: &PathCondition) -> bool {
        if other.trivially_false {
            return self.trivially_false;
        }
        other.index.is_subset(&self.index)
    }

    /// Finds the deepest already-solved prefix of this condition: walks
    /// the chain from the newest conjunct toward the root looking for a
    /// frozen [`SolveCtx`], returning it together with the conjuncts
    /// pushed since (insertion order) and the prefix length. `None` when
    /// no prefix of the chain has ever been solved.
    pub(crate) fn solved_prefix(&self) -> Option<(Arc<SolveCtx>, usize, Vec<Expr>)> {
        let mut delta: Vec<Expr> = Vec::new();
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if let Some(ctx) = node.ctx.get() {
                delta.reverse();
                let prefix_len = self.len - delta.len();
                return Some((ctx.clone(), prefix_len, delta));
            }
            delta.push(node.term.expr().clone());
            cur = node.prev.as_deref();
        }
        None
    }

    /// Freezes the result of a decided solve of this exact condition on
    /// its newest chain node. First writer wins (`OnceLock`); conditions
    /// without a chain (empty or only-trivially-false) have nowhere to
    /// freeze and are skipped — the empty condition is answered without
    /// solving anyway.
    pub(crate) fn freeze_ctx(&self, ctx: SolveCtx) {
        if let Some(head) = &self.head {
            let _ = head.ctx.set(Arc::new(ctx));
        }
    }

    /// True when this exact condition carries a frozen solve context
    /// (test introspection for the no-partial-freeze guarantees).
    pub fn has_solve_ctx(&self) -> bool {
        self.head
            .as_ref()
            .is_some_and(|head| head.ctx.get().is_some())
    }
}

impl PartialEq for PathCondition {
    /// Same conjuncts in the same insertion order (and the same
    /// trivially-false flag) — with a pointer shortcut for shared chains.
    fn eq(&self, other: &Self) -> bool {
        if self.trivially_false != other.trivially_false || self.len != other.len {
            return false;
        }
        let mut a = self.head.as_ref();
        let mut b = other.head.as_ref();
        while let (Some(na), Some(nb)) = (a, b) {
            if Arc::ptr_eq(na, nb) {
                return true; // shared tail: identical from here down
            }
            if na.term != nb.term {
                return false;
            }
            a = na.prev.as_ref();
            b = nb.prev.as_ref();
        }
        a.is_none() && b.is_none()
    }
}

impl Drop for PathCondition {
    /// Unlinks the chain iteratively so dropping a 10k-conjunct condition
    /// cannot overflow the stack through recursive `Arc` drops. Stops at
    /// the first node still shared with another condition.
    fn drop(&mut self) {
        let mut cur = self.head.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                Ok(mut n) => cur = n.prev.take(),
                Err(_) => break,
            }
        }
    }
}

impl FromIterator<Expr> for PathCondition {
    fn from_iter<I: IntoIterator<Item = Expr>>(iter: I) -> Self {
        let mut pc = PathCondition::new();
        for e in iter {
            pc.push(e);
        }
        pc
    }
}

impl fmt::Display for PathCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.trivially_false {
            return write!(f, "false");
        }
        if self.len == 0 {
            return write!(f, "true");
        }
        for (i, c) in self.conjuncts().iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    #[test]
    fn push_drops_trivia_and_dups() {
        let mut pc = PathCondition::new();
        pc.push(Expr::tt());
        pc.push(x(0).lt(Expr::int(3)));
        pc.push(x(0).lt(Expr::int(3)));
        assert_eq!(pc.len(), 1);
        assert!(!pc.is_trivially_false());
        pc.push(Expr::ff());
        assert!(pc.is_trivially_false());
    }

    #[test]
    fn extend_is_conjunction() {
        let mut a: PathCondition = [x(0).lt(Expr::int(3))].into_iter().collect();
        let b: PathCondition = [x(1).eq(Expr::int(2)), x(0).lt(Expr::int(3))]
            .into_iter()
            .collect();
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert!(a.subsumes(&b));
    }

    #[test]
    fn extend_onto_empty_shares_wholesale() {
        let b: PathCondition = [x(0).lt(Expr::int(3)), x(1).eq(Expr::int(2))]
            .into_iter()
            .collect();
        let mut a = PathCondition::new();
        a.extend(&b);
        assert_eq!(a, b);
        assert_eq!(a.conjuncts(), b.conjuncts());
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let a: PathCondition = [x(0).lt(Expr::int(3)), x(1).eq(Expr::int(2))]
            .into_iter()
            .collect();
        let b: PathCondition = [x(1).eq(Expr::int(2)), x(0).lt(Expr::int(3))]
            .into_iter()
            .collect();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_eq!(a.sorted_conjuncts(), b.sorted_conjuncts());
    }

    #[test]
    fn clone_shares_and_diverges() {
        let mut a: PathCondition = [x(0).lt(Expr::int(3))].into_iter().collect();
        let snapshot = a.clone();
        a.push(x(1).eq(Expr::int(2)));
        assert_eq!(snapshot.len(), 1);
        assert_eq!(a.len(), 2);
        assert!(a.subsumes(&snapshot));
        assert!(!snapshot.subsumes(&a));
        assert_ne!(a, snapshot);
    }

    #[test]
    fn lvars_collects_over_conjuncts() {
        let pc: PathCondition = [x(0).lt(x(2)), x(1).eq(Expr::int(0))].into_iter().collect();
        assert_eq!(pc.lvars(), BTreeSet::from([LVar(0), LVar(1), LVar(2)]));
    }

    #[test]
    fn equality_is_order_sensitive_like_the_trace() {
        let a: PathCondition = [x(0).lt(Expr::int(3)), x(1).eq(Expr::int(2))]
            .into_iter()
            .collect();
        let b: PathCondition = [x(1).eq(Expr::int(2)), x(0).lt(Expr::int(3))]
            .into_iter()
            .collect();
        assert_ne!(a, b, "trace order matters for equality");
        assert_eq!(a.cache_key(), b.cache_key(), "but not for the cache key");
    }

    #[test]
    fn ten_k_conjuncts_push_extend_key_and_drop_fast() {
        // Regression for the quadratic `conjuncts.contains` dedup: 10k
        // distinct conjuncts (plus 10k duplicate re-pushes) must build,
        // key, extend, clone and drop in well under a second.
        let start = std::time::Instant::now();
        let mut pc = PathCondition::new();
        for i in 0..10_000u64 {
            pc.push(x(i).lt(Expr::int(i as i64)));
        }
        for i in 0..10_000u64 {
            pc.push(x(i).lt(Expr::int(i as i64)));
        }
        assert_eq!(pc.len(), 10_000);
        let key = pc.cache_key();
        assert_eq!(key.ids().len(), 10_000);
        let snapshot = pc.clone();
        let mut other = PathCondition::new();
        other.extend(&pc);
        assert_eq!(other.len(), 10_000);
        pc.push(x(20_000).eq(Expr::int(1)));
        assert_eq!(snapshot.len(), 10_000);
        let key2 = pc.cache_key();
        assert_eq!(key2.ids().len(), 10_001);
        drop(pc);
        drop(snapshot);
        drop(other);
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "10k-conjunct workout took {elapsed:?} — dedup has gone quadratic"
        );
    }
}
