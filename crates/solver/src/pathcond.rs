//! Path conditions `π ∈ Π` (paper §2.3).
//!
//! A path condition is a conjunction of boolean logical expressions
//! bookkeeping the constraints on logical variables that led execution to
//! the current symbolic state. Conjuncts are kept simplified, deduplicated,
//! and in insertion order (the trace of the path), with a canonical sorted
//! key available for solver caching.

use gillian_gil::{Expr, LVar, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A conjunction of boolean logical expressions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathCondition {
    conjuncts: Vec<Expr>,
    /// Set to `true` once a literal `false` has been conjoined.
    trivially_false: bool,
}

impl PathCondition {
    /// The empty (trivially true) path condition.
    pub fn new() -> Self {
        PathCondition::default()
    }

    /// Conjoins a constraint. Literal `true` is dropped; literal `false`
    /// marks the condition trivially false; duplicates are dropped.
    pub fn push(&mut self, e: Expr) {
        match e.as_bool() {
            Some(true) => {}
            Some(false) => self.trivially_false = true,
            None => {
                if !self.conjuncts.contains(&e) {
                    self.conjuncts.push(e);
                }
            }
        }
    }

    /// Conjoins all constraints of another path condition (restriction's
    /// `π ∧ π′`, paper §3.1).
    pub fn extend(&mut self, other: &PathCondition) {
        self.trivially_false |= other.trivially_false;
        for c in &other.conjuncts {
            self.push(c.clone());
        }
    }

    /// True when a literal `false` has been conjoined.
    pub fn is_trivially_false(&self) -> bool {
        self.trivially_false
    }

    /// The conjuncts in insertion order.
    pub fn conjuncts(&self) -> &[Expr] {
        &self.conjuncts
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// True when there are no conjuncts (and no literal `false`).
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty() && !self.trivially_false
    }

    /// All logical variables mentioned.
    pub fn lvars(&self) -> BTreeSet<LVar> {
        let mut out = BTreeSet::new();
        for c in &self.conjuncts {
            out.extend(c.lvars());
        }
        out
    }

    /// A canonical key (sorted, deduplicated conjuncts) for caching: two
    /// path conditions with the same key are the same conjunction.
    pub fn cache_key(&self) -> Vec<Expr> {
        if self.trivially_false {
            return vec![Expr::Val(Value::Bool(false))];
        }
        let mut key = self.conjuncts.clone();
        key.sort();
        key.dedup();
        key
    }

    /// True when `self`'s conjunct set contains all of `other`'s — the
    /// syntactic form of the `⊑` pre-order induced by restriction.
    pub fn subsumes(&self, other: &PathCondition) -> bool {
        if other.trivially_false {
            return self.trivially_false;
        }
        other.conjuncts.iter().all(|c| self.conjuncts.contains(c))
    }
}

impl FromIterator<Expr> for PathCondition {
    fn from_iter<I: IntoIterator<Item = Expr>>(iter: I) -> Self {
        let mut pc = PathCondition::new();
        for e in iter {
            pc.push(e);
        }
        pc
    }
}

impl fmt::Display for PathCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.trivially_false {
            return write!(f, "false");
        }
        if self.conjuncts.is_empty() {
            return write!(f, "true");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    #[test]
    fn push_drops_trivia_and_dups() {
        let mut pc = PathCondition::new();
        pc.push(Expr::tt());
        pc.push(x(0).lt(Expr::int(3)));
        pc.push(x(0).lt(Expr::int(3)));
        assert_eq!(pc.len(), 1);
        assert!(!pc.is_trivially_false());
        pc.push(Expr::ff());
        assert!(pc.is_trivially_false());
    }

    #[test]
    fn extend_is_conjunction() {
        let mut a: PathCondition = [x(0).lt(Expr::int(3))].into_iter().collect();
        let b: PathCondition = [x(1).eq(Expr::int(2)), x(0).lt(Expr::int(3))]
            .into_iter()
            .collect();
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert!(a.subsumes(&b));
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let a: PathCondition = [x(0).lt(Expr::int(3)), x(1).eq(Expr::int(2))]
            .into_iter()
            .collect();
        let b: PathCondition = [x(1).eq(Expr::int(2)), x(0).lt(Expr::int(3))]
            .into_iter()
            .collect();
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn lvars_collects_over_conjuncts() {
        let pc: PathCondition = [x(0).lt(x(2)), x(1).eq(Expr::int(0))].into_iter().collect();
        assert_eq!(pc.lvars(), BTreeSet::from([LVar(0), LVar(1), LVar(2)]));
    }
}
