//! Algebraic simplification of GIL expressions.
//!
//! The simplifier rewrites expressions bottom-up, constant-folding through
//! the *same* operator semantics the concrete interpreter uses
//! (`gillian_gil::ops`). Rewrites are error-preserving: an expression that
//! can fail concretely (e.g. `l-head` of a possibly-empty list) is never
//! rewritten into one that cannot, and subexpressions are only *dropped*
//! when they are [`is_total`] (cannot fail). This discipline is what makes
//! the engine's differential soundness tests pass unconditionally.
//!
//! Floating-point (`Num`) arithmetic is folded only when both operands are
//! literal; no re-association or identity rewriting is performed on `Num`
//! (IEEE `-0.0`/NaN corners), while exact rules are applied to `Int`.

use crate::typing::{infer, TypeEnv};
use gillian_gil::ops::{eval_binop, eval_unop};
use gillian_gil::{BinOp, Expr, TypeTag, UnOp, Value};

/// True when evaluating `e` can never raise an error, for any assignment
/// consistent with the typing environment. Conservative: `false` means
/// "don't know".
pub fn is_total(env: &TypeEnv, e: &Expr) -> bool {
    let ty = |x: &Expr| infer(env, x);
    match e {
        Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => true,
        Expr::Un(op, x) => {
            is_total(env, x)
                && match op {
                    UnOp::TypeOf | UnOp::ToStr => true,
                    UnOp::Not => ty(x) == Some(TypeTag::Bool),
                    UnOp::Neg => matches!(ty(x), Some(TypeTag::Int | TypeTag::Num)),
                    UnOp::IntToNum | UnOp::BitNot => ty(x) == Some(TypeTag::Int),
                    UnOp::Floor => ty(x) == Some(TypeTag::Num),
                    UnOp::StrLen => ty(x) == Some(TypeTag::Str),
                    UnOp::LstLen | UnOp::LstRev => ty(x) == Some(TypeTag::List),
                    UnOp::WrapSigned(w) | UnOp::WrapUnsigned(w) => {
                        ty(x) == Some(TypeTag::Int) && (1..=64).contains(w)
                    }
                    // NumToInt (NaN/∞/range) and list head/tail (emptiness)
                    // can fail regardless of types.
                    UnOp::NumToInt | UnOp::LstHead | UnOp::LstTail => false,
                }
        }
        Expr::Bin(op, a, b) => {
            is_total(env, a)
                && is_total(env, b)
                && match op {
                    BinOp::Eq => true,
                    BinOp::And | BinOp::Or => {
                        ty(a) == Some(TypeTag::Bool) && ty(b) == Some(TypeTag::Bool)
                    }
                    BinOp::Lt | BinOp::Leq => matches!(
                        (ty(a), ty(b)),
                        (Some(TypeTag::Int), Some(TypeTag::Int))
                            | (Some(TypeTag::Num), Some(TypeTag::Num))
                            | (Some(TypeTag::Str), Some(TypeTag::Str))
                    ),
                    BinOp::Add | BinOp::Sub | BinOp::Mul => matches!(
                        (ty(a), ty(b)),
                        (Some(TypeTag::Int), Some(TypeTag::Int))
                            | (Some(TypeTag::Num), Some(TypeTag::Num))
                    ),
                    // Integer division and modulo trap on zero.
                    BinOp::Div | BinOp::Mod => {
                        ty(a) == Some(TypeTag::Num) && ty(b) == Some(TypeTag::Num)
                    }
                    BinOp::BitAnd
                    | BinOp::BitOr
                    | BinOp::BitXor
                    | BinOp::Shl
                    | BinOp::ShrA
                    | BinOp::ShrL => ty(a) == Some(TypeTag::Int) && ty(b) == Some(TypeTag::Int),
                    BinOp::LstCons => ty(b) == Some(TypeTag::List),
                    // Indexing can go out of bounds.
                    BinOp::LstNth | BinOp::StrNth | BinOp::LstSub => false,
                }
        }
        Expr::List(es) => es.iter().all(|e| is_total(env, e)),
        Expr::StrCat(es) => es
            .iter()
            .all(|e| is_total(env, e) && ty(e) == Some(TypeTag::Str)),
        Expr::LstCat(es) => es
            .iter()
            .all(|e| is_total(env, e) && ty(e) == Some(TypeTag::List)),
    }
}

fn val(v: Value) -> Expr {
    Expr::Val(v)
}

fn bool_e(b: bool) -> Expr {
    Expr::Val(Value::Bool(b))
}

/// Basic simplification: recursive constant folding only, with none of the
/// algebraic, typing, or structural rewrites. Stands in for the previous
/// generation of first-order simplifier (JaVerT 2.0) in the Table 1
/// baseline configuration.
pub fn simplify_basic(e: &Expr) -> Expr {
    match e {
        Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => e.clone(),
        Expr::Un(op, inner) => {
            let inner = simplify_basic(inner);
            if let Expr::Val(v) = &inner {
                if let Ok(folded) = eval_unop(*op, v) {
                    return Expr::Val(folded);
                }
            }
            Expr::Un(*op, inner.into())
        }
        Expr::Bin(op, a, b) => {
            let a = simplify_basic(a);
            let b = simplify_basic(b);
            if let (Expr::Val(x), Expr::Val(y)) = (&a, &b) {
                if let Ok(folded) = eval_binop(*op, x, y) {
                    return Expr::Val(folded);
                }
            }
            Expr::Bin(*op, a.into(), b.into())
        }
        Expr::List(es) => promote_list(es.iter().map(simplify_basic).collect()),
        Expr::StrCat(es) => {
            let es: Vec<Expr> = es.iter().map(simplify_basic).collect();
            if es.iter().all(|e| matches!(e, Expr::Val(Value::Str(_)))) {
                let vs: Vec<Value> = es.iter().map(|e| e.as_value().unwrap().clone()).collect();
                if let Ok(v) = gillian_gil::ops::eval_strcat(&vs) {
                    return Expr::Val(v);
                }
            }
            Expr::StrCat(es.into())
        }
        Expr::LstCat(es) => {
            let es: Vec<Expr> = es.iter().map(simplify_basic).collect();
            if es.iter().all(|e| matches!(e, Expr::Val(Value::List(_)))) {
                let vs: Vec<Value> = es.iter().map(|e| e.as_value().unwrap().clone()).collect();
                if let Ok(v) = gillian_gil::ops::eval_lstcat(&vs) {
                    return Expr::Val(v);
                }
            }
            Expr::LstCat(es.into())
        }
    }
}

/// Simplifies an expression under a typing environment for logical
/// variables. Idempotent: `simplify(env, &simplify(env, e)) == simplify(env, e)`.
pub fn simplify(env: &TypeEnv, e: &Expr) -> Expr {
    match e {
        Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => e.clone(),
        Expr::Un(op, inner) => simp_un(env, *op, simplify(env, inner)),
        Expr::Bin(op, a, b) => simp_bin(env, *op, simplify(env, a), simplify(env, b)),
        Expr::List(es) => {
            let es: Vec<Expr> = es.iter().map(|e| simplify(env, e)).collect();
            promote_list(es)
        }
        Expr::StrCat(es) => {
            let es: Vec<Expr> = es.iter().map(|e| simplify(env, e)).collect();
            simp_strcat(es)
        }
        Expr::LstCat(es) => {
            let es: Vec<Expr> = es.iter().map(|e| simplify(env, e)).collect();
            simp_lstcat(es)
        }
    }
}

/// If every element is a literal, promote `List(es)` to a literal list
/// value (canonical form, so symbolic heaps can key on it).
fn promote_list(es: Vec<Expr>) -> Expr {
    if es.iter().all(|e| e.as_value().is_some()) {
        val(Value::List(
            es.iter().map(|e| e.as_value().unwrap().clone()).collect(),
        ))
    } else {
        Expr::List(es.into())
    }
}

fn simp_strcat(es: Vec<Expr>) -> Expr {
    // Flatten nested s-cat, merge adjacent string literals, drop "".
    let mut flat: Vec<Expr> = Vec::new();
    for e in es {
        match e {
            Expr::StrCat(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    let mut out: Vec<Expr> = Vec::new();
    for e in flat {
        match (&e, out.last_mut()) {
            (Expr::Val(Value::Str(s)), _) if s.is_empty() => {}
            (Expr::Val(Value::Str(s)), Some(Expr::Val(Value::Str(prev)))) => {
                let merged = format!("{prev}{s}");
                *out.last_mut().unwrap() = Expr::str(merged);
            }
            _ => out.push(e),
        }
    }
    match out.len() {
        0 => Expr::str(""),
        1 => match &out[0] {
            // A lone non-string operand must keep its s-cat wrapper: s-cat
            // of a non-string is an error, the operand alone is not.
            Expr::Val(Value::Str(_)) => out.pop().unwrap(),
            _ => Expr::StrCat(out.into()),
        },
        _ => Expr::StrCat(out.into()),
    }
}

fn simp_lstcat(es: Vec<Expr>) -> Expr {
    let mut flat: Vec<Expr> = Vec::new();
    for e in es {
        match e {
            Expr::LstCat(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    let mut out: Vec<Expr> = Vec::new();
    for e in flat {
        // Parts constructed internally (e.g. by the cons rule) may be
        // unpromoted literal lists.
        let e = match e {
            Expr::List(es) => promote_list(es.to_vec()),
            other => other,
        };
        let is_empty_lit = matches!(&e, Expr::Val(Value::List(vs)) if vs.is_empty())
            || matches!(&e, Expr::List(vs) if vs.is_empty());
        if is_empty_lit {
            continue;
        }
        // Merge adjacent list shapes.
        let prev = out.last_mut();
        match (e, prev) {
            (Expr::Val(Value::List(vs)), Some(Expr::Val(Value::List(prev)))) => {
                prev.extend(vs);
            }
            (Expr::Val(Value::List(vs)), Some(Expr::List(prev))) => {
                let mut merged = prev.to_vec();
                merged.extend(vs.into_iter().map(Expr::Val));
                *prev = merged.into();
            }
            (Expr::List(es2), Some(Expr::List(prev))) => {
                let mut merged = prev.to_vec();
                merged.extend(es2);
                *prev = merged.into();
            }
            (Expr::List(es2), Some(p @ Expr::Val(Value::List(_)))) => {
                let Expr::Val(Value::List(vs)) = p.clone() else {
                    unreachable!()
                };
                let mut merged: Vec<Expr> = vs.into_iter().map(Expr::Val).collect();
                merged.extend(es2);
                *p = Expr::List(merged.into());
            }
            (e, _) => out.push(e),
        }
    }
    match out.len() {
        0 => Expr::nil(),
        1 => match &out[0] {
            Expr::Val(Value::List(_)) => out.pop().unwrap(),
            Expr::List(_) => promote_list(match out.pop().unwrap() {
                Expr::List(es) => es.to_vec(),
                _ => unreachable!(),
            }),
            // A lone non-list operand keeps its l-cat wrapper (see s-cat).
            _ => Expr::LstCat(out.into()),
        },
        _ => Expr::LstCat(out.into()),
    }
}

fn simp_un(env: &TypeEnv, op: UnOp, inner: Expr) -> Expr {
    // Constant folding (only when folding succeeds — errors stay residual).
    if let Expr::Val(v) = &inner {
        if let Ok(folded) = eval_unop(op, v) {
            return val(folded);
        }
        return Expr::Un(op, inner.into());
    }
    match (op, &inner) {
        (UnOp::Not, Expr::Un(UnOp::Not, e)) => return (**e).clone(),
        (UnOp::TypeOf, e)
            // Only fold when the operand cannot error: `typeOf` of an
            // erroring expression must keep erroring.
            if is_total(env, e) => {
                if let Some(t) = infer(env, e) {
                    return val(Value::Type(t));
                }
            }
        (UnOp::Not, Expr::Bin(BinOp::Lt, a, b)) => {
            // ¬(a < b) ⇔ b ≤ a on total orders (Int, Str) — not on Num (NaN).
            let ta = infer(env, a);
            if matches!(ta, Some(TypeTag::Int) | Some(TypeTag::Str)) && ta == infer(env, b) {
                return simp_bin(env, BinOp::Leq, (**b).clone(), (**a).clone());
            }
        }
        (UnOp::Not, Expr::Bin(BinOp::Leq, a, b)) => {
            let ta = infer(env, a);
            if matches!(ta, Some(TypeTag::Int) | Some(TypeTag::Str)) && ta == infer(env, b) {
                return simp_bin(env, BinOp::Lt, (**b).clone(), (**a).clone());
            }
        }
        (UnOp::LstLen, Expr::List(es))
            if es.iter().all(|e| is_total(env, e)) => {
                return Expr::int(es.len() as i64);
            }
        (UnOp::LstLen, Expr::LstCat(parts)) => {
            // len(l-cat(p₁…pₙ)) = Σ len(pᵢ): lengths of literal parts fold.
            let mut konst = 0i64;
            let mut rest: Vec<Expr> = Vec::new();
            for p in parts {
                match p {
                    Expr::List(es) if es.iter().all(|e| is_total(env, e)) => konst += es.len() as i64,
                    Expr::Val(Value::List(vs)) => konst += vs.len() as i64,
                    other => rest.push(other.clone().lst_len()),
                }
            }
            let mut acc = if rest.is_empty() {
                return Expr::int(konst);
            } else {
                let mut it = rest.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |a, b| a.add(b))
            };
            if konst != 0 {
                acc = acc.add(Expr::int(konst));
            }
            return acc;
        }
        (UnOp::LstHead, Expr::List(es))
            if !es.is_empty() && es.iter().all(|e| is_total(env, e)) => {
                return es[0].clone();
            }
        (UnOp::LstTail, Expr::List(es))
            if !es.is_empty() && es.iter().all(|e| is_total(env, e)) => {
                return promote_list(es[1..].to_vec());
            }
        (UnOp::LstRev, Expr::List(es))
            if es.iter().all(|e| is_total(env, e)) => {
                return promote_list(es.iter().rev().cloned().collect());
            }
        (UnOp::Neg, Expr::Un(UnOp::Neg, e)) => {
            if matches!(infer(env, e), Some(TypeTag::Int) | Some(TypeTag::Num)) {
                return (**e).clone();
            }
        }
        _ => {}
    }
    Expr::Un(op, inner.into())
}

/// Splits `e` viewed as `base + c` with `c` a literal `Int` (0 otherwise).
fn as_int_offset(e: &Expr) -> (Expr, i64) {
    if let Expr::Bin(BinOp::Add, a, b) = e {
        if let Some(c) = b.as_int() {
            return (a.as_ref().clone(), c);
        }
    }
    (e.clone(), 0)
}

fn simp_bin(env: &TypeEnv, op: BinOp, a: Expr, b: Expr) -> Expr {
    // Constant folding.
    if let (Expr::Val(x), Expr::Val(y)) = (&a, &b) {
        if let Ok(folded) = eval_binop(op, x, y) {
            return val(folded);
        }
        return Expr::Bin(op, a.into(), b.into());
    }
    match op {
        BinOp::Eq => return simp_eq(env, a, b),
        BinOp::And => {
            // Folds must not change the error behaviour: `and` is strict,
            // so the dropped/kept operand must be known Bool (else the
            // original errors) and droppable operands must be total.
            let a_bool = infer(env, &a) == Some(TypeTag::Bool);
            let b_bool = infer(env, &b) == Some(TypeTag::Bool);
            match (a.as_bool(), b.as_bool()) {
                (Some(true), _) if b_bool => return b,
                (_, Some(true)) if a_bool => return a,
                (Some(false), _) if b_bool && is_total(env, &b) => return bool_e(false),
                (_, Some(false)) if a_bool && is_total(env, &a) => return bool_e(false),
                _ => {}
            }
            if a == b && a_bool && is_total(env, &a) {
                return a;
            }
        }
        BinOp::Or => {
            let a_bool = infer(env, &a) == Some(TypeTag::Bool);
            let b_bool = infer(env, &b) == Some(TypeTag::Bool);
            match (a.as_bool(), b.as_bool()) {
                (Some(false), _) if b_bool => return b,
                (_, Some(false)) if a_bool => return a,
                (Some(true), _) if b_bool && is_total(env, &b) => return bool_e(true),
                (_, Some(true)) if a_bool && is_total(env, &a) => return bool_e(true),
                _ => {}
            }
            if a == b && a_bool && is_total(env, &a) {
                return a;
            }
        }
        BinOp::Add => {
            let int_side = infer(env, &a) == Some(TypeTag::Int)
                || infer(env, &b) == Some(TypeTag::Int);
            if int_side {
                // Canonicalize: constants to the right, re-associate.
                let (abase, ac) = as_int_offset(&a);
                let (bbase, bc) = as_int_offset(&b);
                let konst = ac.wrapping_add(bc);
                let a_is_const = abase.as_int().is_some();
                let b_is_const = bbase.as_int().is_some();
                match (a_is_const, b_is_const) {
                    (true, true) => {
                        return Expr::int(
                            abase
                                .as_int()
                                .unwrap()
                                .wrapping_add(bbase.as_int().unwrap())
                                .wrapping_add(konst),
                        )
                    }
                    (true, false) => {
                        let k = abase.as_int().unwrap().wrapping_add(konst);
                        return add_offset(bbase, k);
                    }
                    (false, true) => {
                        let k = bbase.as_int().unwrap().wrapping_add(konst);
                        return add_offset(abase, k);
                    }
                    (false, false) => {
                        if ac != 0 || bc != 0 {
                            return add_offset(abase.add(bbase), konst);
                        }
                    }
                }
            }
        }
        BinOp::Sub
            // x - c → x + (-c) on Int (exact under wrapping).
            if (infer(env, &a) == Some(TypeTag::Int) || b.as_int().is_some()) => {
                if let Some(c) = b.as_int() {
                    return simp_bin(env, BinOp::Add, a, Expr::int(c.wrapping_neg()));
                }
            }
        BinOp::Mul => {
            let int_a = infer(env, &a) == Some(TypeTag::Int);
            let int_b = infer(env, &b) == Some(TypeTag::Int);
            if int_a || int_b {
                if a.as_int() == Some(1) {
                    return b;
                }
                if b.as_int() == Some(1) {
                    return a;
                }
                if a.as_int() == Some(0) && is_total(env, &b) && int_b {
                    return Expr::int(0);
                }
                if b.as_int() == Some(0) && is_total(env, &a) && int_a {
                    return Expr::int(0);
                }
            }
        }
        BinOp::Lt | BinOp::Leq => {
            let ta = infer(env, &a);
            if a == b && is_total(env, &a) {
                match ta {
                    Some(TypeTag::Int) | Some(TypeTag::Str) => {
                        return bool_e(op == BinOp::Leq);
                    }
                    Some(TypeTag::Num)
                        // x < x is false even for NaN.
                        if op == BinOp::Lt => {
                            return bool_e(false);
                        }
                    _ => {}
                }
            }
            // No same-base offset fold `(x + c₁) ⋈ (x + c₂) → c₁ ⋈ c₂`
            // here: GIL integer `+`/`-` *wrap* at ±2⁶³ (see
            // `gillian_gil::ops`), so the fold is unsound whenever the
            // base sits near a boundary — `x - 3 < x` is false at
            // `x = i64::MIN + 2`. Simplification must preserve wrapping
            // evaluation exactly: a folded guard never reaches the path
            // condition, so a wrapping-only counter-model could steer a
            // concrete replay down the other arm (differential battery,
            // seeds 1592590343/1592590388). The interval engine still
            // prunes such arms at the SAT level, which at worst loses a
            // boundary path, never mis-decides one.
        }
        BinOp::LstNth => {
            if let (Expr::List(es), Some(i)) = (&a, b.as_int()) {
                if i >= 0 && (i as usize) < es.len() {
                    let pre_total = es[..i as usize].iter().all(|e| is_total(env, e));
                    let post_total = es[i as usize + 1..].iter().all(|e| is_total(env, e));
                    if pre_total && post_total {
                        return es[i as usize].clone();
                    }
                }
            }
        }
        BinOp::LstCons => {
            // cons(v, l) → l-cat({{v}}, l): lets the l-cat rules merge.
            return simp_lstcat(vec![Expr::List(vec![a].into()), b]);
        }
        BinOp::LstSub => {
            if let (Expr::List(es), Some(i)) = (&a, b.as_int()) {
                if i >= 0 && (i as usize) <= es.len() && es.iter().all(|e| is_total(env, e)) {
                    return promote_list(es[i as usize..].to_vec());
                }
            }
        }
        _ => {}
    }
    Expr::Bin(op, a.into(), b.into())
}

fn add_offset(base: Expr, c: i64) -> Expr {
    if c == 0 {
        base
    } else {
        Expr::Bin(BinOp::Add, base.into(), Expr::int(c).into())
    }
}

fn list_parts(e: &Expr) -> Option<Vec<Expr>> {
    match e {
        Expr::List(es) => Some(es.to_vec()),
        Expr::Val(Value::List(vs)) => Some(vs.iter().cloned().map(Expr::Val).collect()),
        _ => None,
    }
}

fn simp_eq(env: &TypeEnv, a: Expr, b: Expr) -> Expr {
    if a == b && is_total(env, &a) {
        return bool_e(true);
    }
    // Distinct types can never be equal.
    if let (Some(ta), Some(tb)) = (infer(env, &a), infer(env, &b)) {
        if ta != tb {
            if is_total(env, &a) && is_total(env, &b) {
                return bool_e(false);
            }
            return Expr::Bin(BinOp::Eq, a.into(), b.into());
        }
    }
    // Structural list decomposition.
    if let (Some(xs), Some(ys)) = (list_parts(&a), list_parts(&b)) {
        let all_total = xs.iter().chain(ys.iter()).all(|e| is_total(env, e));
        if all_total {
            if xs.len() != ys.len() {
                return bool_e(false);
            }
            let mut acc = bool_e(true);
            for (x, y) in xs.into_iter().zip(ys) {
                let piece = simp_eq(env, x, y);
                acc = simp_bin(env, BinOp::And, acc, piece);
            }
            return acc;
        }
    }
    // b = true → b; b = false → ¬b — only when the non-literal side is
    // itself known Bool (else `5 = true` would fold to `5`).
    match (a.as_bool(), b.as_bool()) {
        (Some(true), None) if infer(env, &b) == Some(TypeTag::Bool) => return b,
        (None, Some(true)) if infer(env, &a) == Some(TypeTag::Bool) => return a,
        (Some(false), None) if infer(env, &b) == Some(TypeTag::Bool) => {
            return simp_un(env, UnOp::Not, b)
        }
        (None, Some(false)) if infer(env, &a) == Some(TypeTag::Bool) => {
            return simp_un(env, UnOp::Not, a)
        }
        _ => {}
    }
    // (x + c = d) → (x = d - c) on Int (exact under wrapping).
    let (abase, ac) = as_int_offset(&a);
    let (bbase, bc) = as_int_offset(&b);
    // Same base on both sides: equal iff the offsets are equal — exact
    // even under wrapping, since `+ c` is a bijection on i64.
    if abase == bbase && is_total(env, &abase) && (ac != 0 || bc != 0) {
        return bool_e(ac == bc);
    }
    if (ac != 0 || bc != 0)
        && (infer(env, &a) == Some(TypeTag::Int) || infer(env, &b) == Some(TypeTag::Int))
    {
        if let Some(d) = bbase.as_int() {
            return simp_eq(env, abase, Expr::int(d.wrapping_add(bc).wrapping_sub(ac)));
        }
        if let Some(d) = abase.as_int() {
            return simp_eq(env, bbase, Expr::int(d.wrapping_add(ac).wrapping_sub(bc)));
        }
    }
    // Canonical orientation: literal on the right, lvar on the left.
    let (a, b) = match (&a, &b) {
        (Expr::Val(_), Expr::Val(_)) => (a, b),
        (Expr::Val(_), _) => (b, a),
        (_, Expr::LVar(_)) if !matches!(a, Expr::LVar(_)) => (b, a),
        _ => (a, b),
    };
    Expr::Bin(BinOp::Eq, a.into(), b.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::LVar;

    fn s(e: &Expr) -> Expr {
        simplify(&TypeEnv::new(), e)
    }

    fn ty(pairs: &[(u64, TypeTag)]) -> TypeEnv {
        pairs.iter().map(|&(x, t)| (LVar(x), t)).collect()
    }

    #[test]
    fn constant_folds() {
        assert_eq!(s(&Expr::int(2).add(Expr::int(3))), Expr::int(5));
        assert_eq!(s(&Expr::int(2).lt(Expr::int(3))), Expr::tt());
        assert_eq!(s(&Expr::str("a").eq(Expr::str("b"))), Expr::ff());
    }

    #[test]
    fn error_expressions_stay_residual() {
        // 1/0 must not fold away.
        let e = Expr::int(1).div(Expr::int(0));
        assert_eq!(s(&e), e);
        // head([]) must not fold.
        let h = Expr::nil().lst_head();
        assert_eq!(s(&h), h);
    }

    #[test]
    fn int_identities() {
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Int)]);
        assert_eq!(simplify(&env, &x.clone().add(Expr::int(0))), x);
        assert_eq!(
            simplify(&env, &x.clone().add(Expr::int(1)).add(Expr::int(2))),
            x.clone().add(Expr::int(3))
        );
        assert_eq!(
            simplify(&env, &Expr::int(3).add(x.clone())),
            x.clone().add(Expr::int(3))
        );
        assert_eq!(
            simplify(&env, &x.clone().sub(Expr::int(2))),
            x.add(Expr::int(-2))
        );
    }

    #[test]
    fn num_is_not_reassociated() {
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Num)]);
        let e = x.clone().add(Expr::num(0.0));
        assert_eq!(simplify(&env, &e), e, "x + 0.0 must stay (x may be -0.0)");
    }

    #[test]
    fn equality_rules() {
        let x = Expr::lvar(LVar(0));
        assert_eq!(s(&x.clone().eq(x.clone())), Expr::tt());
        let env = ty(&[(0, TypeTag::Int)]);
        assert_eq!(
            simplify(&env, &x.clone().eq(Expr::str("s"))),
            Expr::ff(),
            "type-distinct equality is false"
        );
        // (x + 2 = 5) → (x = 3)
        assert_eq!(
            simplify(&env, &x.clone().add(Expr::int(2)).eq(Expr::int(5))),
            x.eq(Expr::int(3))
        );
    }

    #[test]
    fn list_decomposition() {
        let x = Expr::lvar(LVar(0));
        let l1 = Expr::list([Expr::int(1), x.clone()]);
        let l2 = Expr::list([Expr::int(1), Expr::int(7)]);
        assert_eq!(s(&l1.clone().eq(l2)), x.eq(Expr::int(7)));
        let l3 = Expr::list([Expr::int(1)]);
        assert_eq!(s(&l1.eq(l3)), Expr::ff(), "length mismatch");
    }

    #[test]
    fn lists_promote_to_values() {
        assert_eq!(
            s(&Expr::list([Expr::int(1), Expr::int(2)])),
            Expr::Val(Value::List(vec![Value::Int(1), Value::Int(2)]))
        );
    }

    #[test]
    fn lstcat_flattens_and_merges() {
        let x = Expr::lvar(LVar(0));
        let e = Expr::lstcat_of(vec![
            Expr::list([Expr::int(1)]),
            Expr::lstcat_of(vec![Expr::list([Expr::int(2)]), x.clone()]),
        ]);
        let out = s(&e);
        assert_eq!(
            out,
            Expr::lstcat_of(vec![
                Expr::Val(Value::List(vec![Value::Int(1), Value::Int(2)])),
                x.clone()
            ])
        );
        // cons canonicalizes into l-cat.
        let c = Expr::int(0).cons(x.clone());
        assert_eq!(
            s(&c),
            Expr::lstcat_of(vec![Expr::Val(Value::List(vec![Value::Int(0)])), x])
        );
    }

    #[test]
    fn lstlen_of_cat_folds() {
        let x = Expr::lvar(LVar(0));
        let e =
            Expr::lstcat_of(vec![Expr::list([Expr::int(1), Expr::int(2)]), x.clone()]).lst_len();
        assert_eq!(s(&e), x.lst_len().add(Expr::int(2)));
    }

    #[test]
    fn not_lt_flips_on_int() {
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Int)]);
        assert_eq!(
            simplify(&env, &x.clone().lt(Expr::int(3)).not()),
            Expr::int(3).le(x)
        );
    }

    #[test]
    fn not_lt_does_not_flip_on_num() {
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Num)]);
        let e = x.lt(Expr::num(3.0)).not();
        assert_eq!(simplify(&env, &e), e, "NaN breaks ¬(a<b) ⇔ b≤a");
    }

    #[test]
    fn typeof_resolution() {
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Str)]);
        assert_eq!(simplify(&env, &x.type_of()), Expr::type_tag(TypeTag::Str));
    }

    #[test]
    fn bool_equality_unwraps() {
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Bool)]);
        assert_eq!(simplify(&env, &x.clone().eq(Expr::tt())), x.clone());
        assert_eq!(simplify(&env, &x.clone().eq(Expr::ff())), x.not());
    }

    #[test]
    fn same_base_comparisons_do_not_fold() {
        // `x + c₁ ⋈ x + c₂` must NOT fold to `c₁ ⋈ c₂`: GIL integer
        // arithmetic wraps, so `x - 3 < x` is *false* at x = i64::MIN + 2.
        // A folded guard never reaches the path condition, and the
        // differential oracle's wrapping counter-model then steers the
        // concrete replay down the other arm (battery seeds
        // 1592590343/1592590388). Infeasible arms are pruned by the
        // interval engine instead, which records the guard it assumed.
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Int)]);
        let e = x.clone().add(Expr::int(1)).le(x.clone().add(Expr::int(3)));
        assert!(
            simplify(&env, &e).as_bool().is_none(),
            "wrapping-unsound fold resurfaced"
        );
        let e2 = x.clone().add(Expr::int(3)).lt(x.clone().add(Expr::int(1)));
        assert!(simplify(&env, &e2).as_bool().is_none());
        // The genuinely sound case still folds: identical sides.
        assert_eq!(simplify(&env, &x.clone().le(x.clone())), Expr::tt());
        assert_eq!(simplify(&env, &x.clone().lt(x)), Expr::ff());
    }

    #[test]
    fn simplify_is_idempotent_on_samples() {
        let x = Expr::lvar(LVar(0));
        let env = ty(&[(0, TypeTag::Int)]);
        let samples = vec![
            x.clone().add(Expr::int(1)).add(Expr::int(2)),
            x.clone().eq(Expr::int(3)).not(),
            Expr::lstcat_of(vec![Expr::list([x.clone()]), Expr::nil()]),
            x.clone().lt(Expr::int(10)).and(Expr::int(0).le(x.clone())),
        ];
        for e in samples {
            let once = simplify(&env, &e);
            let twice = simplify(&env, &once);
            assert_eq!(once, twice, "not idempotent on {e}");
        }
    }
}
