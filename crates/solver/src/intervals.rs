//! Interval reasoning over numeric atoms.
//!
//! Tracks an inclusive interval per *term* (any expression of numeric type,
//! treated opaquely, plus the `base + c` pattern recognised by the
//! simplifier) and propagates `<`/`≤` edges between terms to a bounded
//! fixpoint. Detects empty intervals and cyclic strict orderings on the
//! workloads symbolic execution produces (loop counters vs. bounds).
//!
//! Integers and floats are kept in separate domains; mixed comparisons do
//! not arise (GIL arithmetic is not mixed-type).

use gillian_gil::{BinOp, Expr};
use std::collections::BTreeMap;

/// An inclusive integer interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntItv {
    /// Lower bound.
    pub lo: i64,
    /// Upper bound.
    pub hi: i64,
}

impl IntItv {
    /// The full `i64` range.
    pub fn top() -> Self {
        IntItv {
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// True when the interval contains no integers.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Intersection.
    pub fn meet(self, other: Self) -> Self {
        IntItv {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Shifts the interval by `c` (saturating).
    pub fn shift(self, c: i64) -> Self {
        IntItv {
            lo: self.lo.saturating_add(c),
            hi: self.hi.saturating_add(c),
        }
    }
}

/// An ordering edge `a ⋈ b + c` between two integer terms.
#[derive(Clone, Debug)]
struct Edge {
    a: Expr,
    b: Expr,
    /// Constant added to `b`'s side.
    c: i64,
    strict: bool,
}

/// The integer interval domain: per-term intervals plus ordering edges.
#[derive(Clone, Debug, Default)]
pub struct IntDomain {
    itv: BTreeMap<Expr, IntItv>,
    edges: Vec<Edge>,
}

/// Decomposes `e` as the affine form `a·base + c` (defaults to
/// `1·e + 0`). Over-/underflowing coefficient arithmetic falls back to the
/// opaque form.
///
/// Affine reasoning treats multiplication as mathematical rather than
/// wrapping: satisfying assignments with indices beyond ±2⁶³/a are pruned.
/// This matches compiled pointer arithmetic (where such overflow is itself
/// undefined behaviour); pruning can only lose paths, never report a false
/// bug — reports stay model-verified.
fn affine(e: &Expr) -> (Expr, i64, i64) {
    match e {
        Expr::Bin(BinOp::Add, x, c) => {
            if let Some(c) = c.as_int() {
                let (base, a, c0) = affine(x);
                if let Some(c) = c0.checked_add(c) {
                    return (base, a, c);
                }
            }
            (e.clone(), 1, 0)
        }
        Expr::Bin(BinOp::Mul, x, c) | Expr::Bin(BinOp::Mul, c, x) if c.as_int().is_some() => {
            let m = c.as_int().expect("checked literal");
            let (base, a, c0) = affine(x);
            match (a.checked_mul(m), c0.checked_mul(m)) {
                (Some(a2), Some(c2)) if a2 != 0 => (base, a2, c2),
                _ => (e.clone(), 1, 0),
            }
        }
        // x - c  =  a·base + (c₀ - c)
        Expr::Bin(BinOp::Sub, x, c) if c.as_int().is_some() => {
            let m = c.as_int().expect("checked literal");
            let (base, a, c0) = affine(x);
            match c0.checked_sub(m) {
                Some(c2) => (base, a, c2),
                None => (e.clone(), 1, 0),
            }
        }
        // c - x  =  -a·base + (c - c₀)
        Expr::Bin(BinOp::Sub, c, x) if c.as_int().is_some() => {
            let m = c.as_int().expect("checked literal");
            let (base, a, c0) = affine(x);
            match (a.checked_neg(), m.checked_sub(c0)) {
                (Some(a2), Some(c2)) if a2 != 0 => (base, a2, c2),
                _ => (e.clone(), 1, 0),
            }
        }
        _ => (e.clone(), 1, 0),
    }
}

/// `⌈m / n⌉` for positive `n` (`div_euclid` already floors).
fn ceil_div(m: i64, n: i64) -> i64 {
    m.div_euclid(n) + i64::from(m.rem_euclid(n) != 0)
}

/// Structural bounds a term carries regardless of constraints:
/// `e & c ∈ [0, c]` for a non-negative literal mask, and
/// `e % c ∈ (-|c|, |c|)` for a literal divisor.
pub fn intrinsic_bounds(t: &Expr) -> IntItv {
    match t {
        Expr::Bin(BinOp::BitAnd, a, b) => {
            let mask = a.as_int().or_else(|| b.as_int());
            match mask {
                Some(c) if c >= 0 => IntItv { lo: 0, hi: c },
                _ => IntItv::top(),
            }
        }
        Expr::Bin(BinOp::Mod, _, b) => match b.as_int() {
            Some(c) if c != 0 => {
                let m = (c.unsigned_abs() - 1).min(i64::MAX as u64) as i64;
                IntItv { lo: -m, hi: m }
            }
            _ => IntItv::top(),
        },
        _ => IntItv::top(),
    }
}

impl IntDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    fn interval(&self, t: &Expr) -> IntItv {
        self.interval_rec(t, 4)
    }

    fn interval_rec(&self, t: &Expr, depth: u8) -> IntItv {
        if let Some(n) = t.as_int() {
            return IntItv { lo: n, hi: n };
        }
        let stored = self.itv.get(t).copied().unwrap_or_else(IntItv::top);
        let mut out = stored.meet(intrinsic_bounds(t));
        if depth > 0 {
            out = out.meet(self.structural_bounds(t, depth - 1));
        }
        out
    }

    /// Structural interval estimation for operators the affine layer does
    /// not cover. Currently: truncating division with a sign-definite
    /// divisor (what loop bounds like `i < n / d` need to terminate).
    fn structural_bounds(&self, t: &Expr, depth: u8) -> IntItv {
        let Expr::Bin(BinOp::Div, a, b) = t else {
            return IntItv::top();
        };
        let ia = self.interval_rec(a, depth);
        let ib = self.interval_rec(b, depth);
        if ia.is_empty() || ib.is_empty() {
            return IntItv::top();
        }
        // Truncating division is monotone in the dividend and piecewise
        // monotone in a sign-definite divisor, so corner quotients bound
        // the result. A divisor interval containing 0 yields no bound.
        if ib.lo < 1 && ib.hi > -1 {
            return IntItv::top();
        }
        // Guard the extreme corner i64::MIN / -1 (overflow).
        let corners = [
            (ia.lo, ib.lo),
            (ia.lo, ib.hi),
            (ia.hi, ib.lo),
            (ia.hi, ib.hi),
        ];
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for (x, y) in corners {
            let q = if x == i64::MIN && y == -1 {
                i64::MIN // wrapping_div result
            } else {
                x.wrapping_div(y)
            };
            lo = lo.min(q);
            hi = hi.max(q);
        }
        IntItv { lo, hi }
    }

    fn constrain(&mut self, t: Expr, itv: IntItv) -> bool {
        if t.as_int().is_some() {
            return !self.interval(&t).meet(itv).is_empty();
        }
        let cur = self.interval(&t).meet(itv);
        self.itv.insert(t, cur);
        !cur.is_empty()
    }

    /// Records `a ⋈ b` (`<` when `strict`, else `≤`), decomposing affine
    /// forms on both sides.
    ///
    /// Returns `false` on an immediate contradiction.
    #[must_use]
    pub fn assert_cmp(&mut self, a: &Expr, b: &Expr, strict: bool) -> bool {
        let (ab, aa, ac) = affine(a);
        let (bb, ba, bc) = affine(b);
        // Same base, same scale: decided by the offsets.
        if ab == bb && aa == ba {
            let c = bc.saturating_sub(ac);
            return if strict { 0 < c } else { 0 <= c };
        }
        // Same base, different scales: aa·x + ac ⋈ ba·x + bc reduces to
        // (aa−ba)·x ⋈ bc−ac, a literal bound on the shared base. Without
        // this, guards like `(x·2 + 128) < x` sail past the checker and
        // every downstream path becomes an unmodellable false path.
        if ab == bb {
            if let (Some(s), Some(d)) = (aa.checked_sub(ba), bc.checked_sub(ac)) {
                if s != 0 {
                    return self.bound_affine(&ab, s, 0, d, strict, true);
                }
            }
        }
        // A literal side bounds the affine term directly.
        if let Some(d) = b.as_int() {
            return self.bound_affine(&ab, aa, ac, d, strict, true);
        }
        if let Some(d) = a.as_int() {
            return self.bound_affine(&bb, ba, bc, d, strict, false);
        }
        // Unit scales: a difference edge between the bases.
        if aa == 1 && ba == 1 {
            let c = bc.saturating_sub(ac);
            self.edges.push(Edge {
                a: ab,
                b: bb,
                c,
                strict,
            });
            return self.propagate();
        }
        // Mixed scales without a literal side: edge between the full terms
        // (contributes cycle detection only).
        self.edges.push(Edge {
            a: a.clone(),
            b: b.clone(),
            c: 0,
            strict,
        });
        self.propagate()
    }

    /// Bounds `base` from `a·base + c ⋈ d` (when `upper`, the affine term
    /// is on the left, so the constraint is an upper bound for positive
    /// `a`). Returns `false` on contradiction.
    #[must_use]
    fn bound_affine(
        &mut self,
        base: &Expr,
        a: i64,
        c: i64,
        d: i64,
        strict: bool,
        upper: bool,
    ) -> bool {
        let delta = i64::from(strict);
        let itv = if upper {
            // a·base ≤ d - c - δ
            let Some(m) = d.checked_sub(c).and_then(|x| x.checked_sub(delta)) else {
                return true;
            };
            if a > 0 {
                IntItv {
                    lo: i64::MIN,
                    hi: m.div_euclid(a), // floor
                }
            } else {
                IntItv {
                    lo: m.div_euclid(a), // div_euclid by a negative ceils
                    hi: i64::MAX,
                }
            }
        } else {
            // d + δ ≤ a·base + c  ⇔  a·base ≥ d - c + δ
            let Some(m) = d.checked_sub(c).and_then(|x| x.checked_add(delta)) else {
                return true;
            };
            if a > 0 {
                IntItv {
                    lo: ceil_div(m, a),
                    hi: i64::MAX,
                }
            } else {
                IntItv {
                    lo: i64::MIN,
                    hi: -ceil_div(m, -a), // floor(m / a) for negative a
                }
            }
        };
        if !self.constrain(base.clone(), itv) {
            return false;
        }
        self.propagate()
    }

    /// Records `t = n` for a literal integer.
    #[must_use]
    pub fn assert_eq_const(&mut self, t: &Expr, n: i64) -> bool {
        let (base, a, c) = affine(t);
        let Some(m) = n.checked_sub(c) else {
            return true;
        };
        if m % a != 0 {
            return false; // no integer solution
        }
        let target = m / a;
        if !self.constrain(
            base,
            IntItv {
                lo: target,
                hi: target,
            },
        ) {
            return false;
        }
        self.propagate()
    }

    /// Records `t ≠ n`; only narrows when `n` is an interval endpoint.
    #[must_use]
    pub fn assert_ne_const(&mut self, t: &Expr, n: i64) -> bool {
        let (base, a, c) = affine(t);
        let Some(m) = n.checked_sub(c) else {
            return true;
        };
        if m % a != 0 {
            return true; // the affine term can never equal n
        }
        let n = m / a;
        let cur = self.interval(&base);
        let next = if cur.lo == n && cur.hi == n {
            return false;
        } else if cur.lo == n {
            IntItv {
                lo: n.saturating_add(1),
                hi: cur.hi,
            }
        } else if cur.hi == n {
            IntItv {
                lo: cur.lo,
                hi: n.saturating_sub(1),
            }
        } else {
            return true;
        };
        if !self.constrain(base, next) {
            return false;
        }
        self.propagate()
    }

    /// Detects a negative cycle in the difference-constraint graph induced
    /// by the edges (`a ⋈ b + c` ⇔ `a - b ≤ c - δ`). A negative cycle means
    /// the conjunction of orderings is unsatisfiable even before any
    /// constant grounding (e.g. `x < y ∧ y < x`).
    fn has_negative_cycle(&self) -> bool {
        use std::collections::BTreeMap;
        let mut dist: BTreeMap<&Expr, i64> = BTreeMap::new();
        for e in &self.edges {
            dist.entry(&e.a).or_insert(0);
            dist.entry(&e.b).or_insert(0);
        }
        let n = dist.len();
        for round in 0..=n {
            let mut changed = false;
            for e in &self.edges {
                let w = e.c.saturating_sub(if e.strict { 1 } else { 0 });
                let da = dist[&e.a];
                let db = dist[&e.b];
                // Constraint a - b ≤ w: relax dist[a] ≤ dist[b] + w.
                if da > db.saturating_add(w) {
                    *dist.get_mut(&e.a).unwrap() = db.saturating_add(w);
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == n {
                return true;
            }
        }
        false
    }

    /// Propagates all edges to a bounded fixpoint.
    ///
    /// Returns `false` when some term's interval becomes empty (Unsat).
    #[must_use]
    fn propagate(&mut self) -> bool {
        if self.has_negative_cycle() {
            return false;
        }
        // Each round tightens at least one bound or stops; bound rounds to
        // keep the checker total on adversarial cycles.
        for _ in 0..64 {
            let mut changed = false;
            for e in self.edges.clone() {
                let ia = self.interval(&e.a);
                let ib = self.interval(&e.b);
                let delta = if e.strict { 1 } else { 0 };
                // a ≤ b + c - δ′ … upper bound for a:
                let a_hi = ib.hi.saturating_add(e.c).saturating_sub(delta);
                // lower bound for b: b ≥ a - c + δ
                let b_lo = ia.lo.saturating_sub(e.c).saturating_add(delta);
                let na = ia.meet(IntItv {
                    lo: i64::MIN,
                    hi: a_hi,
                });
                let nb = ib.meet(IntItv {
                    lo: b_lo,
                    hi: i64::MAX,
                });
                if na != ia {
                    changed = true;
                    if !self.constrain(e.a.clone(), na) {
                        return false;
                    }
                }
                if nb != ib {
                    changed = true;
                    if !self.constrain(e.b.clone(), nb) {
                        return false;
                    }
                }
            }
            if !changed {
                return true;
            }
        }
        true
    }

    /// Re-checks every stored interval against the *current* structural
    /// bounds of its term: constraints asserted before a subterm was
    /// narrowed (e.g. `k < 6/d` before `d ≠ 0`) are revalidated here.
    /// Returns `false` when any term's interval is now empty.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.itv.keys().all(|t| !self.interval(t).is_empty())
    }

    /// The current interval of a term (after affine decomposition).
    pub fn query(&self, t: &Expr) -> IntItv {
        let (base, a, c) = affine(t);
        let itv = self.interval(&base);
        let end1 = itv.lo.saturating_mul(a).saturating_add(c);
        let end2 = itv.hi.saturating_mul(a).saturating_add(c);
        IntItv {
            lo: end1.min(end2),
            hi: end1.max(end2),
        }
    }

    /// All terms with a narrowed interval, for model seeding.
    pub fn narrowed_terms(&self) -> impl Iterator<Item = (&Expr, IntItv)> {
        self.itv.iter().map(|(e, i)| (e, *i))
    }
}

/// A float interval with independently open/closed endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NumItv {
    /// Lower bound.
    pub lo: f64,
    /// Whether the lower bound is excluded.
    pub lo_open: bool,
    /// Upper bound.
    pub hi: f64,
    /// Whether the upper bound is excluded.
    pub hi_open: bool,
}

impl NumItv {
    /// The full real line.
    pub fn top() -> Self {
        NumItv {
            lo: f64::NEG_INFINITY,
            lo_open: false,
            hi: f64::INFINITY,
            hi_open: false,
        }
    }

    /// True when the interval contains no floats.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_open || self.hi_open))
    }
}

/// The float domain: tracks comparisons of terms against literals. A term
/// constrained here is implicitly non-NaN (NaN falsifies every comparison).
#[derive(Clone, Debug, Default)]
pub struct NumDomain {
    bounds: BTreeMap<Expr, NumItv>,
}

impl NumDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, t: &Expr) -> NumItv {
        self.bounds.get(t).copied().unwrap_or_else(NumItv::top)
    }

    /// Records `t ⋈ x` (when `term_on_left`) or `x ⋈ t` against a literal.
    ///
    /// Returns `false` when the term's interval becomes empty (Unsat).
    #[must_use]
    pub fn assert_cmp_const(&mut self, t: &Expr, x: f64, term_on_left: bool, strict: bool) -> bool {
        if x.is_nan() {
            return false; // comparisons against NaN never hold
        }
        let mut itv = self.get(t);
        if term_on_left {
            if x < itv.hi || (x == itv.hi && strict && !itv.hi_open) {
                itv.hi = x;
                itv.hi_open = strict;
            }
        } else if x > itv.lo || (x == itv.lo && strict && !itv.lo_open) {
            itv.lo = x;
            itv.lo_open = strict;
        }
        self.bounds.insert(t.clone(), itv);
        !itv.is_empty()
    }

    /// The interval of a term.
    pub fn query(&self, t: &Expr) -> NumItv {
        self.get(t)
    }

    /// All narrowed terms, for model seeding.
    pub fn narrowed_terms(&self) -> impl Iterator<Item = (&Expr, NumItv)> {
        self.bounds.iter().map(|(e, b)| (e, *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::LVar;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    #[test]
    fn bounds_meet_to_contradiction() {
        let mut d = IntDomain::new();
        assert!(d.assert_cmp(&x(0), &Expr::int(5), true)); // x < 5
                                                           // 5 ≤ x empties the interval: the call itself reports Unsat.
        assert!(!d.assert_cmp(&Expr::int(5), &x(0), false));
    }

    #[test]
    fn transitive_chains_propagate() {
        let mut d = IntDomain::new();
        assert!(d.assert_cmp(&x(0), &x(1), true)); // x0 < x1
        assert!(d.assert_cmp(&x(1), &x(2), true)); // x1 < x2
        assert!(d.assert_cmp(&x(2), &Expr::int(2), false)); // x2 ≤ 2
        assert!(d.query(&x(0)).hi <= 0);
        assert!(d.assert_cmp(&Expr::int(0), &x(0), false)); // 0 ≤ x0
        assert_eq!(d.query(&x(0)), IntItv { lo: 0, hi: 0 });
    }

    #[test]
    fn strict_cycle_is_contradiction() {
        let mut d = IntDomain::new();
        assert!(d.assert_cmp(&x(0), &x(1), true));
        // x1 < x0 closes a strict cycle; propagation keeps tightening until
        // bounds are detected empty, or the round bound trips — then the
        // contradiction is still caught through constants:
        let _ = d.assert_cmp(&x(1), &x(0), true);
        let ok0 = d.assert_cmp(&Expr::int(0), &x(0), false);
        let ok1 = d.assert_cmp(&x(0), &Expr::int(10), false);
        assert!(!(ok0 && ok1) || d.query(&x(0)).is_empty() || d.query(&x(1)).is_empty());
    }

    #[test]
    fn offsets_are_decomposed() {
        let mut d = IntDomain::new();
        // x + 1 ≤ 10  →  x ≤ 9
        assert!(d.assert_cmp(&x(0).add(Expr::int(1)), &Expr::int(10), false));
        assert_eq!(d.query(&x(0)).hi, 9);
        // Same-base comparison decides immediately: x + 1 < x + 3.
        let mut d2 = IntDomain::new();
        assert!(d2.assert_cmp(&x(0).add(Expr::int(1)), &x(0).add(Expr::int(3)), true));
        assert!(!d2.assert_cmp(&x(0).add(Expr::int(3)), &x(0).add(Expr::int(1)), true));
    }

    #[test]
    fn same_base_different_scales_resolve() {
        // (x·2 + 128) < x  ⇔  x < -128: combined with -8 ≤ x this is a
        // contradiction the checker must catch — otherwise every guard of
        // this shape mints an unmodellable false path downstream
        // (differential battery, seed 1592590343).
        let mut d = IntDomain::new();
        assert!(d.assert_cmp(&Expr::int(-8), &x(0), false));
        assert!(!d.assert_cmp(
            &x(0).clone().mul(Expr::int(2)).add(Expr::int(128)),
            &x(0),
            true
        ));
        // And the satisfiable direction tightens instead of refuting:
        // x < x·2 + 128  ⇔  -128 < x.
        let mut d2 = IntDomain::new();
        assert!(d2.assert_cmp(&x(0), &x(0).mul(Expr::int(2)).add(Expr::int(128)), true));
        assert!(d2.query(&x(0)).lo >= -127);
    }

    #[test]
    fn eq_and_ne_consts() {
        let mut d = IntDomain::new();
        assert!(d.assert_eq_const(&x(0), 7));
        assert_eq!(d.query(&x(0)), IntItv { lo: 7, hi: 7 });
        assert!(!d.assert_ne_const(&x(0), 7));
        let mut d2 = IntDomain::new();
        assert!(d2.assert_cmp(&Expr::int(0), &x(1), false));
        assert!(d2.assert_cmp(&x(1), &Expr::int(1), false));
        assert!(d2.assert_ne_const(&x(1), 0));
        assert_eq!(d2.query(&x(1)), IntItv { lo: 1, hi: 1 });
    }

    #[test]
    fn num_domain_bounds() {
        let mut d = NumDomain::new();
        assert!(d.assert_cmp_const(&x(0), 5.0, true, true)); // x < 5.0
        assert!(d.assert_cmp_const(&x(0), 1.0, false, false)); // 1.0 ≤ x
        let itv = d.query(&x(0));
        assert_eq!((itv.lo, itv.hi), (1.0, 5.0));
        assert!(itv.hi_open && !itv.lo_open);
        // x < 1.0 now empties the interval.
        assert!(!d.assert_cmp_const(&x(0), 1.0, true, true));
        // Point interval is fine when both ends are closed.
        let mut d2 = NumDomain::new();
        assert!(d2.assert_cmp_const(&x(1), 2.0, true, false)); // x ≤ 2
        assert!(d2.assert_cmp_const(&x(1), 2.0, false, false)); // 2 ≤ x
        assert!(!d2.assert_cmp_const(&x(1), 2.0, true, true)); // x < 2
    }
}
#[cfg(test)]
mod affine_tests {
    use super::*;
    use gillian_gil::LVar;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    #[test]
    fn scaled_bounds_propagate_to_the_base() {
        let mut d = IntDomain::new();
        // 8x ≤ 24 → x ≤ 3; 0 ≤ 8x → x ≥ 0.
        assert!(d.assert_cmp(&x(0).mul(Expr::int(8)), &Expr::int(24), false));
        assert!(d.assert_cmp(&Expr::int(0), &x(0).mul(Expr::int(8)), false));
        assert_eq!(d.query(&x(0)), IntItv { lo: 0, hi: 3 });
        // 8x < 0 now contradicts.
        assert!(!d.assert_cmp(&x(0).mul(Expr::int(8)), &Expr::int(0), true));
    }

    #[test]
    fn affine_with_offset_and_rounding() {
        let mut d = IntDomain::new();
        // 3x + 1 < 9 → 3x ≤ 7 → x ≤ 2 (floor).
        assert!(d.assert_cmp(
            &x(0).mul(Expr::int(3)).add(Expr::int(1)),
            &Expr::int(9),
            true
        ));
        assert_eq!(d.query(&x(0)).hi, 2);
        // 5 ≤ 3x → x ≥ 2 (ceil).
        assert!(d.assert_cmp(&Expr::int(5), &x(0).mul(Expr::int(3)), false));
        assert_eq!(d.query(&x(0)), IntItv { lo: 2, hi: 2 });
    }

    #[test]
    fn negative_scale_flips_bounds() {
        let mut d = IntDomain::new();
        // -2x ≤ 6 → x ≥ -3.
        assert!(d.assert_cmp(&x(0).mul(Expr::int(-2)), &Expr::int(6), false));
        assert_eq!(d.query(&x(0)).lo, -3);
        // 4 ≤ -2x → x ≤ -2.
        assert!(d.assert_cmp(&Expr::int(4), &x(0).mul(Expr::int(-2)), false));
        assert_eq!(d.query(&x(0)), IntItv { lo: -3, hi: -2 });
    }

    #[test]
    fn affine_equalities_and_divisibility() {
        let mut d = IntDomain::new();
        assert!(d.assert_eq_const(&x(0).mul(Expr::int(8)), 16));
        assert_eq!(d.query(&x(0)), IntItv { lo: 2, hi: 2 });
        let mut d2 = IntDomain::new();
        assert!(
            !d2.assert_eq_const(&x(1).mul(Expr::int(8)), 15),
            "8x = 15 has no solution"
        );
        // 8x ≠ 15 is vacuous.
        let mut d3 = IntDomain::new();
        assert!(d3.assert_ne_const(&x(2).mul(Expr::int(8)), 15));
    }

    #[test]
    fn same_base_same_scale_decides() {
        let mut d = IntDomain::new();
        let e1 = x(0).mul(Expr::int(8)).add(Expr::int(8));
        let e2 = x(0).mul(Expr::int(8)).add(Expr::int(16));
        assert!(d.assert_cmp(&e1, &e2, true));
        assert!(!d.assert_cmp(&e2, &e1, true));
    }
}

#[cfg(test)]
mod division_tests {
    use super::*;
    use gillian_gil::LVar;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    #[test]
    fn division_bounds_follow_the_divisor() {
        let mut d = IntDomain::new();
        // 1 ≤ x ≤ 3 → 6/x ∈ [2, 6].
        assert!(d.assert_cmp(&Expr::int(1), &x(0), false));
        assert!(d.assert_cmp(&x(0), &Expr::int(3), false));
        let q = Expr::int(6).div(x(0));
        let itv = d.query(&q);
        assert_eq!(itv, IntItv { lo: 2, hi: 6 });
        // A bound beyond the structural range is inconsistent — caught
        // either at assertion time or by the consistency recheck.
        let ok = d.assert_cmp(&Expr::int(7), &q, false);
        assert!(!ok || !d.consistent());
    }

    #[test]
    fn division_by_possibly_zero_gives_no_bound() {
        let mut d = IntDomain::new();
        assert!(d.assert_cmp(&Expr::int(0), &x(0), false));
        assert!(d.assert_cmp(&x(0), &Expr::int(3), false));
        let q = Expr::int(6).div(x(0));
        assert_eq!(d.query(&q), IntItv::top());
    }

    #[test]
    fn negative_divisors_bound_too() {
        let mut d = IntDomain::new();
        // -3 ≤ x ≤ -1 → 6/x ∈ [-6, -2].
        assert!(d.assert_cmp(&Expr::int(-3), &x(0), false));
        assert!(d.assert_cmp(&x(0), &Expr::int(-1), false));
        let q = Expr::int(6).div(x(0));
        assert_eq!(d.query(&q), IntItv { lo: -6, hi: -2 });
    }

    #[test]
    fn consistency_recheck_catches_late_narrowing() {
        let mut d = IntDomain::new();
        let q = Expr::int(6).div(x(0));
        // Constrain the quotient before anything is known about x…
        assert!(d.assert_cmp(&Expr::int(10), &q, false));
        assert!(d.consistent(), "nothing known about x yet");
        // …then narrow x: 6/x ≤ 6 < 10 — only the recheck sees it.
        assert!(d.assert_cmp(&Expr::int(1), &x(0), false));
        assert!(d.assert_cmp(&x(0), &Expr::int(3), false));
        assert!(!d.consistent());
    }
}
