//! The solver façade used by the symbolic execution engine.
//!
//! Wraps simplification, satisfiability and model finding behind one
//! handle, adding result caching and statistics. The paper attributes
//! Gillian-JS's ≈2× speedup over JaVerT 2.0 to "better simplifications and
//! better caching of results" in the first-order solver; [`SolverConfig`]
//! exposes exactly those two switches so the benchmark harness can
//! reproduce both engine configurations (Table 1).

use crate::ctx::{CapturedState, ImplicationCache, SolveCtx};
use crate::interrupt::Interrupt;
use crate::model::{find_model, harvest_witness, Model, ModelBudget};
use crate::pathcond::{PathCondition, PcEnv, PcKey};
use crate::sat::{
    check_conjunction, check_conjunction_capturing, check_extension, SatBudget, SatResult,
};
use crate::simplify;
use gillian_gil::Expr;
use gillian_telemetry::journal::SLOW_QUERY_RENDER_MICROS;
use gillian_telemetry::{names, registry, Counter, Event, Histogram, Journal, Verdict};
use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::OnceLock;
use std::time::Instant;

/// One simplify memo miss in this many is wall-clock timed into the
/// latency histogram (power of two). Uniform sampling keeps the
/// histogram's shape while keeping the clock off the hot path.
const SIMPLIFY_SAMPLE: u64 = 8;

/// A deterministic fault to inject into one satisfiability query (see
/// [`Solver::set_fault_probe`]). The exploration layer's fault-injection
/// harness uses these to re-exercise `Unknown` semantics and latency
/// resilience under adversarial, seeded schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatFault {
    /// Answer [`SatResult::Unknown`] without solving. Counted in
    /// [`SolverStats::sat_unknowns`] and **never cached**, exactly like an
    /// interrupt-driven unknown: a forced verdict must not poison the memo
    /// table for later queries.
    Unknown,
    /// Sleep for the given duration, then solve normally — models a slow
    /// query without changing any verdict.
    Latency(std::time::Duration),
}

/// The closure consulted once per satisfiability query while a fault probe
/// is installed; `None` means "no fault for this query".
pub type FaultProbe = Arc<dyn Fn() -> Option<SatFault> + Send + Sync>;

/// Slot holding the installed probe; manual `Debug` because closures have
/// none.
#[derive(Default)]
struct FaultProbeSlot(Option<FaultProbe>);

impl std::fmt::Debug for FaultProbeSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "FaultProbeSlot(installed)"
        } else {
            "FaultProbeSlot(none)"
        })
    }
}

/// Largest conjunction a decided-SAT query will try to harvest a witness
/// model from for the implication index. Bigger conjunctions rarely
/// subsume later probes and make the bounded model search both slower
/// and likelier to fail, so the harvest cost would be pure waste.
const HARVEST_MAX_CONJUNCTS: usize = 24;

thread_local! {
    /// Memo-miss counter driving the 1-in-[`SIMPLIFY_SAMPLE`] probe.
    static TL_SIMPLIFY_SAMPLE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// `HashMap` with the deterministic Fx hasher (see `gillian_gil::hashing`).
type FxHashMap<K, V> = HashMap<K, V, gillian_gil::FxBuildHasher>;
/// `HashMap` for keys that already carry a precomputed hash.
type PrehashedMap<K, V> = HashMap<K, V, gillian_gil::PrehashedBuildHasher>;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, tolerating poison.
///
/// A panicking symbolic memory can unwind through the engine while some
/// other thread holds (or later takes) these locks; the data they guard —
/// memo tables and the interrupt slot — is valid after any partial
/// mutation, so poison is safe to ignore. Without this, one isolated
/// per-path panic would cascade into every sibling path that shares the
/// solver.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The simplifier tier a solver runs (see [`crate::simplify`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Simplification {
    /// No rewriting at all.
    Off,
    /// Recursive constant folding only (the previous-generation
    /// simplifier the Table 1 baseline stands in for).
    Basic,
    /// The full algebraic/typing/structural simplifier.
    Full,
}

/// Configuration of a [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// The simplification tier applied before solving (and on every
    /// expression the engine stores into states).
    pub simplification: Simplification,
    /// Memoize satisfiability verdicts keyed on the canonical conjunction.
    pub caching: bool,
    /// Budgets for the satisfiability checker.
    pub sat_budget: SatBudget,
    /// Budgets for the model finder.
    pub model_budget: ModelBudget,
    /// Solve incrementally: freeze the end-of-solve state on the path
    /// condition's newest chain node and answer descendant queries by
    /// propagating only the conjuncts pushed since (see `DESIGN.md` §12).
    pub incremental: bool,
    /// Layer the implication-aware verdict index over the exact-key
    /// cache: UNSAT verdicts answer supersets, witnessed SAT verdicts
    /// answer subsets and model-satisfied probes.
    pub implication_caching: bool,
}

impl SolverConfig {
    /// The optimized configuration (Gillian as published).
    pub fn optimized() -> Self {
        SolverConfig {
            simplification: Simplification::Full,
            caching: true,
            sat_budget: SatBudget::default(),
            model_budget: ModelBudget::default(),
            incremental: true,
            implication_caching: true,
        }
    }

    /// The baseline configuration standing in for JaVerT 2.0 in Table 1.
    ///
    /// JaVerT 2.0 already simplified expressions; the paper attributes
    /// Gillian-JS's ≈2× speedup to *better* simplifications and *better
    /// caching of results*. The baseline therefore runs the basic
    /// (constant-folding-only) simplifier and drops the solver result
    /// cache.
    pub fn baseline() -> Self {
        SolverConfig {
            simplification: Simplification::Basic,
            caching: false,
            sat_budget: SatBudget::default(),
            model_budget: ModelBudget::default(),
            incremental: false,
            implication_caching: false,
        }
    }

    /// Everything off: the ablation point below [`SolverConfig::baseline`]
    /// (no cache *and* no simplification).
    pub fn unoptimized() -> Self {
        SolverConfig {
            simplification: Simplification::Off,
            caching: false,
            sat_budget: SatBudget::default(),
            model_budget: ModelBudget::default(),
            incremental: false,
            implication_caching: false,
        }
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig::optimized()
    }
}

/// Cumulative counters, readable at any time (e.g. by benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Satisfiability queries issued.
    pub sat_queries: u64,
    /// Queries answered from the cache.
    pub cache_hits: u64,
    /// Expressions passed through [`Solver::simplify`].
    pub simplifications: u64,
    /// Model searches attempted.
    pub model_searches: u64,
    /// Simplifications answered from the term-id-keyed memo table.
    pub simplify_hits: u64,
    /// Queries that ended in [`SatResult::Unknown`] — budget exhaustion,
    /// deadline expiry, or cancellation. Every such verdict weakens the
    /// bounded guarantee (the engine keeps the branch rather than proving
    /// it feasible), so runs report this count in their diagnostics
    /// instead of letting `Unknown` vanish into `possibly_sat()`.
    pub sat_unknowns: u64,
    /// Queries answered by extending a frozen per-prefix solve context
    /// instead of re-solving the whole conjunction.
    pub incremental_hits: u64,
    /// Queries answered by the implication-aware verdict index.
    pub implication_hits: u64,
}

/// The solver's handles into the process-global telemetry registry.
/// Fetched once; the hot path never touches the registry lock.
struct Tel {
    sat_micros: &'static Histogram,
    simplify_micros: &'static Histogram,
    sat_queries: &'static Counter,
    sat_cache_hits: &'static Counter,
    sat_unknowns: &'static Counter,
    sat_incremental_hits: &'static Counter,
    sat_implication_hits: &'static Counter,
    sat_prefix_depth: &'static Histogram,
}

fn tel() -> &'static Tel {
    static TEL: OnceLock<Tel> = OnceLock::new();
    TEL.get_or_init(|| Tel {
        sat_micros: registry().histogram(names::SAT_MICROS),
        simplify_micros: registry().histogram(names::SIMPLIFY_MICROS),
        sat_queries: registry().counter(names::SAT_QUERIES),
        sat_cache_hits: registry().counter(names::SAT_CACHE_HITS),
        sat_unknowns: registry().counter(names::SAT_UNKNOWNS),
        sat_incremental_hits: registry().counter(names::SAT_INCREMENTAL_HITS),
        sat_implication_hits: registry().counter(names::SAT_IMPLICATION_HITS),
        sat_prefix_depth: registry().histogram(names::SAT_PREFIX_DEPTH),
    })
}

/// Number of lock shards in the SAT result cache. Sixteen keeps lock
/// contention negligible for the worker counts the parallel explorer uses
/// while costing nothing in the single-threaded case.
const CACHE_SHARDS: usize = 16;

/// A sharded, thread-safe memo table from canonicalized conjunct sets to
/// satisfiability verdicts.
///
/// Keys come from [`PathCondition::cache_key`]: the sorted, deduplicated
/// **intern ids** of the conjunct set, with a precomputed hash — so two
/// sibling paths that accumulated the same constraints in different
/// orders (common under the parallel explorer, where subtree exploration
/// order is nondeterministic) still share one cache entry, and probing
/// never re-hashes whole expression trees. Sharding by the precomputed
/// hash lets concurrent workers probe and fill the cache without
/// serializing on a single lock.
#[derive(Debug, Default)]
struct SatCache {
    shards: [Mutex<PrehashedMap<PcKey, SatResult>>; CACHE_SHARDS],
}

impl SatCache {
    fn shard(&self, key: &PcKey) -> &Mutex<PrehashedMap<PcKey, SatResult>> {
        &self.shards[(key.precomputed_hash() as usize) % CACHE_SHARDS]
    }

    fn get(&self, key: &PcKey) -> Option<SatResult> {
        lock_unpoisoned(self.shard(key)).get(key).copied()
    }

    fn insert(&self, key: PcKey, result: SatResult) {
        lock_unpoisoned(self.shard(&key)).insert(key, result);
    }
}

/// A sharded memo table for the full simplifier, keyed **exactly** on
/// `(typing environment, expression)`. The result of a full
/// simplification depends on the path condition only through the typing
/// environment it induces ([`PcEnv`], memoized on the condition itself),
/// so entries survive path-condition growth that adds no new type facts —
/// the common case along a path — and are shared across branches with
/// different conditions but equal typing. Both key components compare by
/// full content/identity, never by hash alone: `PcEnv` equality checks
/// the sorted contents and `Expr` equality compares interned children by
/// pointer, so a hit is guaranteed to be the same rewrite under the same
/// environment. The `Expr` key also keeps its interned subterms alive, so
/// re-evaluating the same program expression later reuses the same nodes
/// and hits this memo instead of re-simplifying.
#[derive(Debug, Default)]
struct SimplifyCache {
    shards: [Mutex<FxHashMap<SimpKey, Expr>>; CACHE_SHARDS],
}

/// The exact identity of one simplifier query. Hashing is O(1) in the
/// expression depth: the environment hash is precomputed and the
/// expression hashes shallowly through its interned children's cached
/// hashes.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SimpKey {
    env: Arc<PcEnv>,
    expr: Expr,
}

impl std::hash::Hash for SimpKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.env.fingerprint());
        self.expr.hash(state);
    }
}

impl SimplifyCache {
    fn shard(&self, key: &SimpKey) -> &Mutex<FxHashMap<SimpKey, Expr>> {
        use std::hash::{Hash, Hasher};
        let mut h = gillian_gil::hashing::FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    fn get(&self, key: &SimpKey) -> Option<Expr> {
        lock_unpoisoned(self.shard(key)).get(key).cloned()
    }

    fn insert(&self, key: SimpKey, result: Expr) {
        lock_unpoisoned(self.shard(&key)).insert(key, result);
    }
}

/// A satisfiability and simplification oracle over path conditions.
///
/// Interior-mutable **and thread-safe**: `&Solver` is threaded through
/// symbolic memories and the interpreter, and one solver (behind an
/// `Arc`) is shared by every worker of the parallel explorer — the result
/// cache uses sharded locks and the statistics are atomics, so concurrent
/// paths share each other's SAT verdicts.
#[derive(Debug, Default)]
pub struct Solver {
    config: SolverConfig,
    cache: SatCache,
    implication: ImplicationCache,
    simplify_cache: SimplifyCache,
    /// The run-level interrupt installed by the exploration engine (see
    /// [`Solver::set_interrupt`]). One exploration at a time per solver:
    /// installing a new interrupt replaces the previous one.
    interrupt: Mutex<Interrupt>,
    /// The run-level event journal installed by the exploration engine
    /// (see [`Solver::set_journal`]); same lifecycle as the interrupt.
    journal: Mutex<Journal>,
    /// Fast-path mirror of `journal.is_enabled()`, so untraced queries
    /// pay one relaxed load instead of a lock.
    journal_on: AtomicBool,
    /// The fault-injection probe installed by the exploration layer's
    /// harness (see [`Solver::set_fault_probe`]); same one-run-at-a-time
    /// lifecycle as the interrupt and journal.
    fault_probe: Mutex<FaultProbeSlot>,
    /// Fast-path mirror of `fault_probe.is_some()`: production runs pay
    /// one relaxed load, not a lock, per query.
    fault_on: AtomicBool,
    /// Per-procedure summary store (see [`crate::summary`]); disarmed by
    /// default and armed by the exploration engine for the duration of a
    /// run, with the same one-run-at-a-time lifecycle as the interrupt.
    summaries: crate::summary::SummaryStore,
    sat_queries: AtomicU64,
    cache_hits: AtomicU64,
    simplifications: AtomicU64,
    model_searches: AtomicU64,
    sat_unknowns: AtomicU64,
    simplify_hits: AtomicU64,
    incremental_hits: AtomicU64,
    implication_hits: AtomicU64,
}

/// Compile-time guarantee that the solver can be shared across the
/// parallel explorer's workers.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Solver>();
};

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Default::default()
        }
    }

    /// Creates a solver with the optimized configuration.
    pub fn optimized() -> Self {
        Solver::new(SolverConfig::optimized())
    }

    /// Creates a solver with the baseline configuration.
    pub fn baseline() -> Self {
        Solver::new(SolverConfig::baseline())
    }

    /// Creates a solver with cache and simplification both disabled.
    pub fn unoptimized() -> Self {
        Solver::new(SolverConfig::unoptimized())
    }

    /// The active configuration.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Current statistics snapshot (approximate under concurrency: the
    /// counters are individually exact but not read atomically together).
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            sat_queries: self.sat_queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            simplifications: self.simplifications.load(Ordering::Relaxed),
            model_searches: self.model_searches.load(Ordering::Relaxed),
            sat_unknowns: self.sat_unknowns.load(Ordering::Relaxed),
            simplify_hits: self.simplify_hits.load(Ordering::Relaxed),
            incremental_hits: self.incremental_hits.load(Ordering::Relaxed),
            implication_hits: self.implication_hits.load(Ordering::Relaxed),
        }
    }

    /// Installs a run-level interrupt: subsequent satisfiability queries
    /// observe its deadline (tightened against any per-query
    /// `sat_budget.deadline`) and its cancellation token, answering
    /// [`SatResult::Unknown`] once either fires. The exploration engine
    /// installs the run's deadline/token here before stepping and clears
    /// it with [`Solver::clear_interrupt`] when the run ends; a solver
    /// serves one exploration at a time.
    pub fn set_interrupt(&self, interrupt: Interrupt) {
        *lock_unpoisoned(&self.interrupt) = interrupt;
    }

    /// The solver's per-procedure summary store (see [`crate::summary`]).
    /// Shared by every worker of a run; the exploration engine arms it
    /// when `ExploreConfig::summaries` asks for warm call reuse and
    /// disarms it at run end.
    pub fn summaries(&self) -> &crate::summary::SummaryStore {
        &self.summaries
    }

    /// Removes any installed interrupt (idempotent).
    pub fn clear_interrupt(&self) {
        *lock_unpoisoned(&self.interrupt) = Interrupt::none();
    }

    /// Installs the run-level event journal: while installed (and
    /// enabled), every satisfiability query emits an
    /// [`Event::SatQuery`] with its latency and cache-hit attribution.
    /// The exploration engine installs the journal alongside the
    /// interrupt and clears it with [`Solver::clear_journal`]; a solver
    /// serves one exploration at a time.
    pub fn set_journal(&self, journal: Journal) {
        self.journal_on
            .store(journal.is_enabled(), Ordering::Release);
        *lock_unpoisoned(&self.journal) = journal;
    }

    /// Removes any installed journal (idempotent).
    pub fn clear_journal(&self) {
        self.journal_on.store(false, Ordering::Release);
        *lock_unpoisoned(&self.journal) = Journal::disabled();
    }

    /// Installs a fault-injection probe: while installed, every
    /// satisfiability query (after the trivially-false fast path) consults
    /// it and honours the returned [`SatFault`], if any. Only the
    /// exploration layer's deterministic fault harness installs one;
    /// production runs never pay more than one relaxed atomic load. Same
    /// lifecycle as [`Solver::set_interrupt`]: one run at a time, cleared
    /// with [`Solver::clear_fault_probe`].
    pub fn set_fault_probe(&self, probe: FaultProbe) {
        lock_unpoisoned(&self.fault_probe).0 = Some(probe);
        self.fault_on.store(true, Ordering::Release);
    }

    /// Removes any installed fault probe (idempotent).
    pub fn clear_fault_probe(&self) {
        self.fault_on.store(false, Ordering::Release);
        lock_unpoisoned(&self.fault_probe).0 = None;
    }

    /// Consults the installed fault probe, if any.
    fn consult_fault(&self) -> Option<SatFault> {
        if !self.fault_on.load(Ordering::Acquire) {
            return None;
        }
        let probe = lock_unpoisoned(&self.fault_probe).0.clone();
        probe.and_then(|p| p())
    }

    /// A handle to the installed journal (disabled when none is).
    pub fn journal(&self) -> Journal {
        lock_unpoisoned(&self.journal).clone()
    }

    /// True when an enabled journal is installed — one relaxed atomic
    /// load, so hot paths can gate event construction on it without
    /// touching the journal lock.
    pub fn journal_enabled(&self) -> bool {
        self.journal_on.load(Ordering::Acquire)
    }

    /// A snapshot of the installed interrupt.
    pub fn interrupt(&self) -> Interrupt {
        lock_unpoisoned(&self.interrupt).clone()
    }

    /// True when the installed interrupt has fired (cancelled or past its
    /// deadline). Long-running memory-model actions should poll this and
    /// bail out cooperatively so the engine can park their path as
    /// truncated instead of hanging the run.
    pub fn interrupted(&self) -> bool {
        self.interrupt().interrupted()
    }

    /// Simplifies an expression under the typing facts of `pc` (identity
    /// when simplification is disabled).
    ///
    /// Full-tier results are memoized keyed on `(pc cache key, interned
    /// id of e)` — both exact identities, so a hit is guaranteed to be
    /// the same rewrite under the same typing environment. On the hot
    /// path (the interpreter simplifies every stored expression) sibling
    /// branches share most of their path condition and re-simplify the
    /// same guards, so the hit rate is high.
    pub fn simplify(&self, pc: &PathCondition, e: &Expr) -> Expr {
        match self.config.simplification {
            Simplification::Off => return e.clone(),
            Simplification::Basic => {
                self.simplifications.fetch_add(1, Ordering::Relaxed);
                return simplify::simplify_basic(e);
            }
            Simplification::Full => {}
        }
        self.simplifications.fetch_add(1, Ordering::Relaxed);
        let key = SimpKey {
            env: pc.typing_env(),
            expr: e.clone(),
        };
        if self.config.caching {
            if let Some(hit) = self.simplify_cache.get(&key) {
                self.simplify_hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
        }
        // Only memo misses are timed, and only one in
        // [`SIMPLIFY_SAMPLE`] of those: a hit is a hash probe, and even
        // a miss is often cheap enough that two clock reads per miss
        // show up in end-to-end throughput. Uniform sampling keeps the
        // latency histogram's *shape* faithful at a fraction of the
        // cost (same scheme as the interner's lookup probe).
        let timer = TL_SIMPLIFY_SAMPLE.with(|c| {
            let n = c.get().wrapping_add(1);
            c.set(n);
            (n & (SIMPLIFY_SAMPLE - 1) == 0).then(Instant::now)
        });
        // Operator usage pins types: GIL operators are strict, so every
        // subterm of an expression that evaluates must itself evaluate —
        // usage facts from `e` itself are sound for rewriting `e`. (The
        // memo key stays exact: given the environment in the key, the
        // final environment is a function of `e`, which is also in the
        // key.)
        let mut env = key.env.env().clone();
        crate::sat::absorb_usage_types_pub(&mut env, std::slice::from_ref(e));
        let result = simplify::simplify(&env, e);
        if let Some(started) = timer {
            tel()
                .simplify_micros
                .record(started.elapsed().as_micros() as u64);
        }
        if self.config.caching {
            self.simplify_cache.insert(key, result.clone());
        }
        result
    }

    /// Checks satisfiability of a path condition.
    ///
    /// Observes the installed [`Interrupt`]: once cancelled or past the
    /// deadline the query answers [`SatResult::Unknown`] (sound — the
    /// engine keeps unknown branches). Interrupted verdicts are counted in
    /// [`SolverStats::sat_unknowns`] and **never cached**: an `Unknown`
    /// that merely reflects an expired deadline would otherwise poison the
    /// memo table for later, unhurried runs sharing this solver.
    pub fn check_sat(&self, pc: &PathCondition) -> SatResult {
        if pc.is_trivially_false() {
            return SatResult::Unsat;
        }
        self.sat_queries.fetch_add(1, Ordering::Relaxed);
        let t = tel();
        t.sat_queries.incr();
        let key = pc.cache_key();
        // The fault probe sits after the trivially-false fast path (that
        // verdict is definitional, not a solve) and before the cache, so
        // injected latency also covers would-be hits. A forced `Unknown`
        // mirrors an interrupt-driven one: counted, never cached.
        let fault = self.consult_fault();
        if let Some(SatFault::Latency(d)) = fault {
            std::thread::sleep(d);
        }
        // The cache is probed before any clock read: at the hit rates
        // the interpreter sustains (>95%), two clock reads per hit cost
        // more than the probe they would be timing. Hits are counted in
        // `sat_cache_hits` and excluded from the latency histogram, so
        // `sat_micros` is the distribution of *real solves*.
        let (result, cache_hit, micros) = if fault == Some(SatFault::Unknown) {
            self.sat_unknowns.fetch_add(1, Ordering::Relaxed);
            (SatResult::Unknown, false, 0)
        } else {
            match self.probe_sat_cache(&key) {
                Some(hit) => (hit, true, 0),
                None => {
                    let started = Instant::now();
                    let (result, cache_hit) = self.check_sat_inner(pc, &key);
                    let micros = started.elapsed().as_micros() as u64;
                    t.sat_micros.record(micros);
                    (result, cache_hit, micros)
                }
            }
        };
        if cache_hit {
            t.sat_cache_hits.incr();
        }
        if result == SatResult::Unknown {
            t.sat_unknowns.incr();
        }
        if self.journal_on.load(Ordering::Acquire) {
            let journal = self.journal();
            if journal.is_enabled() {
                // Rendering the condition costs a tree walk; only
                // queries slow enough to show up in a report get one.
                let pc_text = if micros >= SLOW_QUERY_RENDER_MICROS {
                    pc.to_string()
                } else {
                    String::new()
                };
                journal.record_shared(Event::SatQuery {
                    key: key.precomputed_hash(),
                    conjuncts: pc.len() as u32,
                    verdict: match result {
                        SatResult::Sat => Verdict::Sat,
                        SatResult::Unsat => Verdict::Unsat,
                        SatResult::Unknown => Verdict::Unknown,
                    },
                    micros,
                    cache_hit,
                    pc: pc_text,
                });
            }
        }
        result
    }

    /// Probes the sat result cache alone — no solving, no clock.
    /// Returns `None` when caching is off, the entry is absent, or the
    /// solver is cancelled: a cancelled solver must answer `Unknown`
    /// even for cached keys (prompt-shutdown semantics), and the full
    /// path handles that.
    fn probe_sat_cache(&self, key: &PcKey) -> Option<SatResult> {
        if !self.config.caching || self.interrupt().cancel.is_cancelled() {
            return None;
        }
        let hit = self.cache.get(key)?;
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(hit)
    }

    /// The uninstrumented satisfiability check; returns the verdict and
    /// whether the result cache answered.
    ///
    /// Probe order on an exact-cache miss: the implication index (cheap,
    /// sound by witness), then the incremental path (extend the deepest
    /// frozen ancestor state), then a monolithic solve. Decided verdicts
    /// flow back into every enabled layer; `Unknown` into none of them.
    fn check_sat_inner(&self, pc: &PathCondition, key: &PcKey) -> (SatResult, bool) {
        let interrupt = self.interrupt();
        if interrupt.cancel.is_cancelled() {
            self.sat_unknowns.fetch_add(1, Ordering::Relaxed);
            return (SatResult::Unknown, false);
        }
        if self.config.caching {
            if let Some(hit) = self.cache.get(key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return (hit, true);
            }
        }
        let mut budget = self.config.sat_budget;
        budget.deadline = match (budget.deadline, interrupt.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // A "hurried" solve — any wall-clock deadline armed — bypasses
        // the implication index on both the probe and the insert side:
        // its generalized answers change which queries see budget
        // artifacts, and its entries must never be minted by solves whose
        // verdicts time could have influenced.
        let hurried = budget.deadline.is_some();
        // The checker sees conjuncts in *structural* order: id order is
        // mint-order and would leak the exploration schedule into
        // verdict-affecting heuristics (case-split order etc.).
        let conjuncts = pc.sorted_conjuncts();
        if self.config.implication_caching && !hurried {
            if let Some(hit) = self.implication.probe(key, &conjuncts) {
                self.implication_hits.fetch_add(1, Ordering::Relaxed);
                tel().sat_implication_hits.incr();
                if self.config.caching {
                    self.cache.insert(key.clone(), hit);
                }
                return (hit, false);
            }
        }
        let mut capture: Option<CapturedState> = None;
        let result = if self.config.incremental {
            match self.check_sat_incremental(pc, budget, &mut capture) {
                Some(verdict) => verdict,
                None => check_conjunction_capturing(&conjuncts, budget, &mut capture),
            }
        } else if self.config.implication_caching {
            // Capturing costs a few `Arc` bumps on clean solves only, and
            // the capture is how the harvest below recognizes them.
            check_conjunction_capturing(&conjuncts, budget, &mut capture)
        } else {
            check_conjunction(&conjuncts, budget)
        };
        if result == SatResult::Unknown {
            self.sat_unknowns.fetch_add(1, Ordering::Relaxed);
            return (result, false);
        }
        if self.config.caching {
            self.cache.insert(key.clone(), result);
        }
        if self.config.implication_caching && !hurried {
            match result {
                SatResult::Unsat => self.implication.insert_unsat(key),
                SatResult::Sat if conjuncts.len() <= HARVEST_MAX_CONJUNCTS => {
                    // Only witnessed SAT verdicts enter the index — the
                    // model is what makes subset reuse sound — and the
                    // witness is read off the captured end-of-solve state
                    // (equality classes and interval endpoints, one
                    // verification pass). Only clean Sats carry a capture:
                    // a case-split Sat would need a fresh model *search*
                    // per query just to maybe seed the index, a cost that
                    // dominates branch-heavy workloads with no reuse.
                    if let Some(state) = capture.as_ref() {
                        if let Some(m) = harvest_witness(state, &conjuncts) {
                            self.implication.insert_sat(key, Arc::new(m));
                        }
                    }
                }
                _ => {}
            }
        }
        if self.config.incremental {
            // Freeze only complete results: an Unsat proof (valid for
            // every descendant), or a clean Sat with its captured state.
            // A stateless Sat (decided through a case split) is *not*
            // frozen, so descendants keep walking to a deeper usable
            // ancestor instead of stopping at a dead end.
            match (result, capture.take()) {
                (SatResult::Unsat, _) => pc.freeze_ctx(SolveCtx {
                    verdict: result,
                    state: None,
                }),
                (SatResult::Sat, Some(state)) => pc.freeze_ctx(SolveCtx {
                    verdict: result,
                    state: Some(state),
                }),
                _ => {}
            }
        }
        (result, false)
    }

    /// Attempts to answer a query by extending the deepest already-solved
    /// ancestor of `pc`. Returns `None` when no usable frozen context
    /// exists, reuse does not apply (the extension grows the typing
    /// environment), or the seeded solve ends `Unknown` — in every such
    /// case the caller re-solves monolithically, keeping verdicts
    /// identical to an incremental-off solver.
    fn check_sat_incremental(
        &self,
        pc: &PathCondition,
        budget: SatBudget,
        capture: &mut Option<CapturedState>,
    ) -> Option<SatResult> {
        // An already-expired deadline defers to the monolithic path: the
        // checker answers `Unknown` at its first poll (or `Unsat` on a
        // typing conflict), and prefix reuse must not outrun the clock —
        // verdicts would then depend on what happened to be frozen.
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            return None;
        }
        let (ctx, prefix_len, delta) = pc.solved_prefix()?;
        if ctx.verdict == SatResult::Unsat {
            // Every extension of an unsatisfiable prefix is unsatisfiable.
            self.note_incremental_hit(prefix_len);
            return Some(SatResult::Unsat);
        }
        if delta.is_empty() {
            self.note_incremental_hit(prefix_len);
            return Some(ctx.verdict);
        }
        let seed = ctx.state.as_ref()?;
        let verdict = check_extension(seed, &delta, budget, capture)?;
        if verdict == SatResult::Unknown {
            return None;
        }
        self.note_incremental_hit(prefix_len);
        Some(verdict)
    }

    fn note_incremental_hit(&self, prefix_len: usize) {
        self.incremental_hits.fetch_add(1, Ordering::Relaxed);
        let t = tel();
        t.sat_incremental_hits.incr();
        t.sat_prefix_depth.record(prefix_len as u64);
    }

    /// Checks whether `pc ∧ extra` may be satisfiable (the branching test
    /// of the symbolic `assume` action, Def. 2.6).
    pub fn sat_with(&self, pc: &PathCondition, extra: &Expr) -> SatResult {
        self.sat_assume(pc, extra).0
    }

    /// Like [`Solver::sat_with`], but also returns the extended condition
    /// that was actually solved, so the engine can *adopt* it as the new
    /// path condition. Re-pushing the same guard onto the original
    /// condition would mint a fresh chain node with an empty context
    /// slot, stranding the solve context this query just froze on a chain
    /// nobody keeps.
    pub fn sat_assume(&self, pc: &PathCondition, extra: &Expr) -> (SatResult, PathCondition) {
        let mut pc2 = pc.clone();
        pc2.push(self.simplify(pc, extra));
        let verdict = self.check_sat(&pc2);
        (verdict, pc2)
    }

    /// True when `pc` entails `e`: `pc ∧ ¬e` is unsatisfiable.
    pub fn entails(&self, pc: &PathCondition, e: &Expr) -> bool {
        let neg = self.simplify(pc, &e.clone().not());
        let mut pc2 = pc.clone();
        pc2.push(neg);
        self.check_sat(&pc2) == SatResult::Unsat
    }

    /// Searches for a verified model of the path condition.
    pub fn model(&self, pc: &PathCondition) -> Option<Model> {
        if pc.is_trivially_false() {
            return None;
        }
        self.model_searches.fetch_add(1, Ordering::Relaxed);
        find_model(&pc.conjuncts(), self.config.model_budget)
    }

    /// Deep-budget model search for replay: call after [`Solver::model`]
    /// fails on a condition that should be satisfiable (e.g. a case-split
    /// `Sat` whose cheap witness harvest produced nothing). Starts at 8×
    /// the configured node budget and escalates twice more
    /// ([`crate::model::find_model_escalating`]), so the differential
    /// oracle's witness extraction is total modulo (a much larger) budget.
    pub fn model_for_replay(&self, pc: &PathCondition) -> Option<Model> {
        if pc.is_trivially_false() {
            return None;
        }
        self.model_searches.fetch_add(1, Ordering::Relaxed);
        let base = self.config.model_budget;
        let escalated = crate::model::ModelBudget {
            max_nodes: base.max_nodes.saturating_mul(8),
            candidates_per_var: base.candidates_per_var.saturating_mul(4),
        };
        crate::model::find_model_escalating(&pc.conjuncts(), escalated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::LVar;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    #[test]
    fn sat_and_entailment() {
        let s = Solver::optimized();
        let pc: PathCondition = [Expr::int(0).le(x(0)), x(0).lt(Expr::int(10))]
            .into_iter()
            .collect();
        assert_eq!(s.check_sat(&pc), SatResult::Sat);
        assert!(s.entails(&pc, &x(0).lt(Expr::int(10))));
        assert!(!s.entails(&pc, &x(0).lt(Expr::int(5))));
        assert_eq!(s.sat_with(&pc, &x(0).eq(Expr::int(3))), SatResult::Sat);
        assert_eq!(s.sat_with(&pc, &x(0).eq(Expr::int(11))), SatResult::Unsat);
    }

    #[test]
    fn cache_hits_are_counted() {
        let s = Solver::optimized();
        let pc: PathCondition = [x(0).eq(Expr::int(1))].into_iter().collect();
        let _ = s.check_sat(&pc);
        let _ = s.check_sat(&pc);
        let stats = s.stats();
        assert_eq!(stats.sat_queries, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn baseline_disables_cache_but_keeps_simplification() {
        let s = Solver::baseline();
        let pc: PathCondition = [x(0).eq(Expr::int(1))].into_iter().collect();
        let _ = s.check_sat(&pc);
        let _ = s.check_sat(&pc);
        assert_eq!(s.stats().cache_hits, 0);
        let e = Expr::int(1).add(Expr::int(1));
        assert_eq!(s.simplify(&pc, &e), Expr::int(2), "baseline simplifies");
    }

    #[test]
    fn unoptimized_disables_both() {
        let s = Solver::unoptimized();
        let pc = PathCondition::new();
        let e = Expr::int(1).add(Expr::int(1));
        assert_eq!(s.simplify(&pc, &e), e, "unoptimized must not simplify");
        let _ = s.check_sat(&pc);
        let _ = s.check_sat(&pc);
        assert_eq!(s.stats().cache_hits, 0);
    }

    #[test]
    fn model_round_trip() {
        let s = Solver::optimized();
        let pc: PathCondition = [x(0).add(Expr::int(2)).eq(Expr::int(7))]
            .into_iter()
            .collect();
        let m = s.model(&pc).unwrap();
        assert_eq!(m.get(LVar(0)), Some(&gillian_gil::Value::Int(5)));
    }

    #[test]
    fn cancellation_yields_unknown_and_is_counted() {
        use crate::interrupt::{CancelToken, Interrupt};
        let s = Solver::optimized();
        let pc: PathCondition = [Expr::int(0).le(x(0))].into_iter().collect();
        let token = CancelToken::new();
        s.set_interrupt(Interrupt::new(None, token.clone()));
        assert_eq!(s.check_sat(&pc), SatResult::Sat);
        token.cancel();
        assert_eq!(s.check_sat(&pc), SatResult::Unknown);
        assert_eq!(s.stats().sat_unknowns, 1);
        s.clear_interrupt();
        assert_eq!(
            s.check_sat(&pc),
            SatResult::Sat,
            "clearing re-arms the solver"
        );
    }

    #[test]
    fn expired_deadline_yields_unknown_without_caching_it() {
        use crate::interrupt::{CancelToken, Interrupt};
        use std::time::Instant;
        let s = Solver::optimized();
        // A query the checker cannot answer trivially (needs closure work).
        let pc: PathCondition = [x(0).add(x(1)).eq(Expr::int(7)), x(1).eq(Expr::int(2))]
            .into_iter()
            .collect();
        s.set_interrupt(Interrupt::new(Some(Instant::now()), CancelToken::new()));
        assert_eq!(s.check_sat(&pc), SatResult::Unknown);
        assert!(s.stats().sat_unknowns >= 1);
        s.clear_interrupt();
        // The Unknown must not have been cached: the same key now decides.
        let verdict = s.check_sat(&pc);
        assert_eq!(
            verdict,
            SatResult::Sat,
            "deadline Unknown must not poison the cache"
        );
    }

    #[test]
    fn trivially_false_short_circuits() {
        let s = Solver::optimized();
        let mut pc = PathCondition::new();
        pc.push(Expr::ff());
        assert_eq!(s.check_sat(&pc), SatResult::Unsat);
        assert_eq!(s.stats().sat_queries, 0);
        assert!(s.model(&pc).is_none());
    }

    /// Incremental solving without the implication index, so the tests
    /// below can attribute hits unambiguously.
    fn incremental_only() -> Solver {
        Solver::new(SolverConfig {
            implication_caching: false,
            ..SolverConfig::optimized()
        })
    }

    /// The implication index without incremental solving.
    fn implication_only() -> Solver {
        Solver::new(SolverConfig {
            incremental: false,
            ..SolverConfig::optimized()
        })
    }

    #[test]
    fn incremental_reuse_fires_and_freezes_ctx() {
        let s = incremental_only();
        let mut pc = PathCondition::new();
        pc.push(Expr::int(0).le(x(0)));
        assert_eq!(s.check_sat(&pc), SatResult::Sat);
        assert!(pc.has_solve_ctx(), "clean Sat must freeze its context");
        pc.push(x(0).lt(Expr::int(10)));
        assert!(!pc.has_solve_ctx(), "a push mints a fresh, unsolved node");
        assert_eq!(s.check_sat(&pc), SatResult::Sat);
        let stats = s.stats();
        assert!(
            stats.incremental_hits >= 1,
            "the extension must reuse the frozen prefix: {stats:?}"
        );
        assert!(pc.has_solve_ctx(), "the extension's Sat freezes in turn");
    }

    #[test]
    fn unsat_prefix_decides_descendants() {
        let s = incremental_only();
        let mut pc = PathCondition::new();
        pc.push(x(0).eq(Expr::int(1)));
        pc.push(x(0).eq(Expr::int(2)));
        assert_eq!(s.check_sat(&pc), SatResult::Unsat);
        assert!(pc.has_solve_ctx(), "Unsat freezes a stateless context");
        pc.push(Expr::int(0).le(x(1)));
        assert_eq!(s.check_sat(&pc), SatResult::Unsat);
        assert!(
            s.stats().incremental_hits >= 1,
            "an unsat ancestor must answer without re-solving"
        );
    }

    #[test]
    fn sat_assume_returns_the_adopted_condition() {
        let s = incremental_only();
        let pc: PathCondition = [Expr::int(0).le(x(0))].into_iter().collect();
        assert_eq!(s.check_sat(&pc), SatResult::Sat);
        let (verdict, pc2) = s.sat_assume(&pc, &x(0).lt(Expr::int(10)));
        assert_eq!(verdict, SatResult::Sat);
        assert_eq!(pc2.len(), 2);
        assert!(
            pc2.has_solve_ctx(),
            "the returned condition carries the context this query froze"
        );
    }

    #[test]
    fn implication_index_decides_unsat_supersets() {
        let s = implication_only();
        let mut pc = PathCondition::new();
        pc.push(x(0).eq(Expr::int(1)));
        pc.push(x(0).eq(Expr::int(2)));
        assert_eq!(s.check_sat(&pc), SatResult::Unsat);
        let mut pc2 = pc.clone();
        pc2.push(Expr::int(0).le(x(1)));
        assert_eq!(s.check_sat(&pc2), SatResult::Unsat);
        assert_eq!(
            s.stats().implication_hits,
            1,
            "the superset probe must hit the indexed contradiction"
        );
    }

    #[test]
    fn implication_index_decides_via_witness_model() {
        let s = implication_only();
        let pc: PathCondition = [Expr::int(0).le(x(0))].into_iter().collect();
        assert_eq!(s.check_sat(&pc), SatResult::Sat);
        // The witness model for `0 ≤ x` also satisfies the *superset*
        // probe below (model evaluation, not subset structure).
        let mut pc2 = pc.clone();
        pc2.push(x(0).lt(Expr::int(10)));
        assert_eq!(s.check_sat(&pc2), SatResult::Sat);
        assert_eq!(s.stats().implication_hits, 1);
        // A subset probe of an indexed SAT set is answered structurally.
        let pc3: PathCondition = [x(0).lt(Expr::int(10))].into_iter().collect();
        assert_eq!(s.check_sat(&pc3), SatResult::Sat);
        assert_eq!(s.stats().implication_hits, 2);
    }

    #[test]
    fn armed_deadline_bypasses_the_implication_index() {
        use crate::interrupt::{CancelToken, Interrupt};
        use std::time::{Duration, Instant};
        let s = implication_only();
        // Armed but nowhere near expiry: verdicts stay correct, yet the
        // solve counts as hurried and must not touch the index.
        let far = Instant::now() + Duration::from_secs(3600);
        s.set_interrupt(Interrupt::new(Some(far), CancelToken::new()));
        let mut pc = PathCondition::new();
        pc.push(x(0).eq(Expr::int(1)));
        pc.push(x(0).eq(Expr::int(2)));
        assert_eq!(s.check_sat(&pc), SatResult::Unsat);
        let mut pc2 = pc.clone();
        pc2.push(Expr::int(0).le(x(1)));
        assert_eq!(s.check_sat(&pc2), SatResult::Unsat);
        assert_eq!(
            s.stats().implication_hits,
            0,
            "hurried solves must neither probe nor mint index entries"
        );
        s.clear_interrupt();
        // The hurried verdicts were not indexed: this superset of `pc`
        // still cannot be answered by implication.
        let mut pc3 = pc.clone();
        pc3.push(Expr::int(0).le(x(2)));
        assert_eq!(s.check_sat(&pc3), SatResult::Unsat);
        assert_eq!(s.stats().implication_hits, 0);
    }

    #[test]
    fn unknown_is_never_frozen() {
        use crate::interrupt::{CancelToken, Interrupt};
        use std::time::Instant;
        let s = Solver::optimized();
        let mut pc = PathCondition::new();
        pc.push(x(0).add(x(1)).eq(Expr::int(7)));
        pc.push(x(1).eq(Expr::int(2)));
        s.set_interrupt(Interrupt::new(Some(Instant::now()), CancelToken::new()));
        assert_eq!(s.check_sat(&pc), SatResult::Unknown);
        assert!(
            !pc.has_solve_ctx(),
            "an interrupted solve must not freeze partial state"
        );
        s.clear_interrupt();
        assert_eq!(s.check_sat(&pc), SatResult::Sat);
        assert!(pc.has_solve_ctx(), "the unhurried re-solve freezes");
    }
}
