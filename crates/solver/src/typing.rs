//! Light type inference over GIL expressions.
//!
//! Infers the [`TypeTag`] an expression *must* have if it evaluates without
//! error, using operator signatures and literal types. Used by the
//! simplifier (to discharge `typeOf` applications and type-distinct
//! equalities) and by the model finder (to pick candidate values for
//! logical variables).

use gillian_gil::ops::unop_result_type;
use gillian_gil::{BinOp, Expr, LVar, TypeTag, UnOp};
use std::collections::BTreeMap;

/// A typing environment for logical variables, accumulated from the path
/// condition (e.g. `typeOf(#x) = Int` pins `#x` to `Int`).
pub type TypeEnv = BTreeMap<LVar, TypeTag>;

/// Infers the type of `e`, if determined.
///
/// Returns `None` when the type depends on an untyped logical variable
/// (e.g. a bare `#x`) or on a polymorphic operator applied to one.
pub fn infer(env: &TypeEnv, e: &Expr) -> Option<TypeTag> {
    match e {
        Expr::Val(v) => Some(v.type_of()),
        Expr::PVar(_) => None,
        Expr::LVar(x) => env.get(x).copied(),
        Expr::Un(op, inner) => match unop_result_type(*op) {
            Some(t) => Some(t),
            None => match op {
                // Neg and LstHead are type-polymorphic.
                UnOp::Neg => infer(env, inner).filter(|t| matches!(t, TypeTag::Int | TypeTag::Num)),
                _ => None,
            },
        },
        Expr::Bin(op, a, b) => match op {
            BinOp::Eq | BinOp::Lt | BinOp::Leq | BinOp::And | BinOp::Or => Some(TypeTag::Bool),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                match (infer(env, a), infer(env, b)) {
                    (Some(TypeTag::Int), _) | (_, Some(TypeTag::Int)) => Some(TypeTag::Int),
                    (Some(TypeTag::Num), _) | (_, Some(TypeTag::Num)) => Some(TypeTag::Num),
                    _ => None,
                }
            }
            BinOp::BitAnd
            | BinOp::BitOr
            | BinOp::BitXor
            | BinOp::Shl
            | BinOp::ShrA
            | BinOp::ShrL => Some(TypeTag::Int),
            BinOp::StrNth => Some(TypeTag::Str),
            BinOp::LstCons | BinOp::LstSub => Some(TypeTag::List),
            BinOp::LstNth => None,
        },
        Expr::List(_) | Expr::LstCat(_) => Some(TypeTag::List),
        Expr::StrCat(_) => Some(TypeTag::Str),
    }
}

/// Scans a conjunct for typing facts of the shape `typeOf(#x) = τ`
/// (or symmetric) and records them in `env`.
///
/// Returns `false` if the conjunct is *inconsistent* with the environment
/// (the same variable pinned to two different types), which the sat checker
/// turns into `Unsat`.
pub fn absorb_type_fact(env: &mut TypeEnv, conjunct: &Expr) -> bool {
    let Expr::Bin(BinOp::Eq, a, b) = conjunct else {
        return true;
    };
    let (inner, tag) = match (a.as_ref(), b.as_ref()) {
        (Expr::Un(UnOp::TypeOf, inner), Expr::Val(gillian_gil::Value::Type(t))) => (inner, *t),
        (Expr::Val(gillian_gil::Value::Type(t)), Expr::Un(UnOp::TypeOf, inner)) => (inner, *t),
        _ => return true,
    };
    if let Expr::LVar(x) = inner.as_ref() {
        if let Some(prev) = env.insert(*x, tag) {
            return prev == tag;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::Value;

    #[test]
    fn infers_literals_and_operators() {
        let env = TypeEnv::new();
        assert_eq!(infer(&env, &Expr::int(1)), Some(TypeTag::Int));
        assert_eq!(
            infer(&env, &Expr::int(1).add(Expr::lvar(LVar(0)))),
            Some(TypeTag::Int)
        );
        assert_eq!(
            infer(&env, &Expr::lvar(LVar(0)).eq(Expr::int(2))),
            Some(TypeTag::Bool)
        );
        assert_eq!(infer(&env, &Expr::lvar(LVar(0))), None);
        assert_eq!(
            infer(&env, &Expr::list([Expr::lvar(LVar(0))])),
            Some(TypeTag::List)
        );
    }

    #[test]
    fn env_types_lvars() {
        let mut env = TypeEnv::new();
        env.insert(LVar(3), TypeTag::Num);
        assert_eq!(infer(&env, &Expr::lvar(LVar(3))), Some(TypeTag::Num));
        assert_eq!(
            infer(&env, &Expr::lvar(LVar(3)).un(UnOp::Neg)),
            Some(TypeTag::Num)
        );
    }

    #[test]
    fn absorbs_type_facts() {
        let mut env = TypeEnv::new();
        let fact = Expr::lvar(LVar(1))
            .type_of()
            .eq(Expr::Val(Value::Type(TypeTag::Str)));
        assert!(absorb_type_fact(&mut env, &fact));
        assert_eq!(env.get(&LVar(1)), Some(&TypeTag::Str));
        // Conflicting fact is inconsistent.
        let fact2 = Expr::lvar(LVar(1))
            .type_of()
            .eq(Expr::Val(Value::Type(TypeTag::Int)));
        assert!(!absorb_type_fact(&mut env, &fact2));
    }
}
