//! A persistent (immutable, structurally shared) set of `u64` keys.
//!
//! Backing store for [`PathCondition`](crate::PathCondition)'s conjunct
//! dedup index: path conditions are snapshotted at every branch point, so
//! the index must clone in O(1) and insert in O(log n) while sharing
//! structure with its ancestors. This is a bitmapped 32-way trie (a HAMT
//! whose "hash" is the key itself — interner term ids are dense and
//! unique, so no hashing is needed), hand-written because the workspace
//! vendors no persistent-collection crates.

use std::sync::Arc;

/// Bits consumed per trie level.
const BITS: u32 = 5;
/// Child mask per level (32-way branching).
const MASK: u64 = (1 << BITS) - 1;

#[derive(Debug)]
enum Node {
    /// A single key stored at whatever depth it stopped colliding.
    Leaf(u64),
    /// A compressed branch: bit `i` of `bitmap` set ⇔ a child exists for
    /// chunk `i`, stored at `children[popcount(bitmap & (bit-1))]`.
    Branch {
        bitmap: u32,
        children: Box<[Arc<Node>]>,
    },
}

impl Node {
    fn contains(&self, key: u64, shift: u32) -> bool {
        match self {
            Node::Leaf(k) => *k == key,
            Node::Branch { bitmap, children } => {
                let bit = 1u32 << ((key >> shift) & MASK);
                if bitmap & bit == 0 {
                    false
                } else {
                    let idx = (bitmap & (bit - 1)).count_ones() as usize;
                    children[idx].contains(key, shift + BITS)
                }
            }
        }
    }

    /// True when `f` holds for every key stored under this node.
    fn all_keys(&self, f: &mut impl FnMut(u64) -> bool) -> bool {
        match self {
            Node::Leaf(k) => f(*k),
            Node::Branch { children, .. } => children.iter().all(|c| c.all_keys(f)),
        }
    }

    /// Structural subset test: every key under `self` is under `sup`,
    /// with the two nodes rooted at the same `shift`. Shared subtrees
    /// (the common case for a snapshot against its own extension) answer
    /// in O(1) via pointer equality.
    fn is_subset(self: &Arc<Node>, sup: &Arc<Node>, shift: u32) -> bool {
        if Arc::ptr_eq(self, sup) {
            return true;
        }
        match (&**self, &**sup) {
            (Node::Leaf(k), _) => sup.contains(*k, shift),
            // A branch can compress a single-key chain, so falling into
            // this arm does not by itself mean |self| > 1: check each key.
            (Node::Branch { .. }, Node::Leaf(k)) => self.all_keys(&mut |x| x == *k),
            (
                Node::Branch {
                    bitmap: bs,
                    children: cs,
                },
                Node::Branch {
                    bitmap: bb,
                    children: cb,
                },
            ) => {
                if bs & !bb != 0 {
                    return false;
                }
                let mut bits = *bs;
                let mut i = 0;
                while bits != 0 {
                    let bit = bits & bits.wrapping_neg();
                    bits ^= bit;
                    let j = (bb & (bit - 1)).count_ones() as usize;
                    if !cs[i].is_subset(&cb[j], shift + BITS) {
                        return false;
                    }
                    i += 1;
                }
                true
            }
        }
    }

    /// Returns the updated node, or `None` when `key` was already present
    /// (so the caller keeps sharing the original).
    fn insert(self: &Arc<Node>, key: u64, shift: u32) -> Option<Arc<Node>> {
        match &**self {
            Node::Leaf(k) if *k == key => None,
            Node::Leaf(k) => Some(split(*k, key, shift)),
            Node::Branch { bitmap, children } => {
                let chunk = (key >> shift) & MASK;
                let bit = 1u32 << chunk;
                let idx = (bitmap & (bit - 1)).count_ones() as usize;
                if bitmap & bit != 0 {
                    let child = children[idx].insert(key, shift + BITS)?;
                    let mut next: Vec<Arc<Node>> = children.to_vec();
                    next[idx] = child;
                    Some(Arc::new(Node::Branch {
                        bitmap: *bitmap,
                        children: next.into_boxed_slice(),
                    }))
                } else {
                    let mut next: Vec<Arc<Node>> = Vec::with_capacity(children.len() + 1);
                    next.extend_from_slice(&children[..idx]);
                    next.push(Arc::new(Node::Leaf(key)));
                    next.extend_from_slice(&children[idx..]);
                    Some(Arc::new(Node::Branch {
                        bitmap: bitmap | bit,
                        children: next.into_boxed_slice(),
                    }))
                }
            }
        }
    }
}

/// Builds the minimal branch chain distinguishing two unequal keys from
/// `shift` downward. Distinct `u64`s always differ in some 5-bit chunk at
/// shift ≤ 60, so this terminates within the key width.
fn split(k1: u64, k2: u64, shift: u32) -> Arc<Node> {
    debug_assert!(k1 != k2 && shift < u64::BITS);
    let c1 = (k1 >> shift) & MASK;
    let c2 = (k2 >> shift) & MASK;
    if c1 == c2 {
        Arc::new(Node::Branch {
            bitmap: 1 << c1,
            children: vec![split(k1, k2, shift + BITS)].into_boxed_slice(),
        })
    } else {
        let (lo, hi) = if c1 < c2 {
            (Node::Leaf(k1), Node::Leaf(k2))
        } else {
            (Node::Leaf(k2), Node::Leaf(k1))
        };
        Arc::new(Node::Branch {
            bitmap: (1 << c1) | (1 << c2),
            children: vec![Arc::new(lo), Arc::new(hi)].into_boxed_slice(),
        })
    }
}

/// A persistent set of `u64` keys: `clone()` is O(1), insertion is
/// O(log n) and shares all untouched structure with the original.
#[derive(Clone, Debug, Default)]
pub struct PSet {
    root: Option<Arc<Node>>,
    len: usize,
}

impl PSet {
    /// The empty set.
    pub fn new() -> PSet {
        PSet::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        match &self.root {
            Some(root) => root.contains(key, 0),
            None => false,
        }
    }

    /// True when every key of `self` is in `other`. Structurally shared
    /// subtrees — a snapshot probed against its own extension — compare
    /// by pointer, so the cost is proportional to the unshared part.
    pub fn is_subset(&self, other: &PSet) -> bool {
        if self.len > other.len {
            return false;
        }
        match (&self.root, &other.root) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a.is_subset(b, 0),
        }
    }

    /// Inserts in place (path-copying internally; other clones of this
    /// set are unaffected). Returns `true` when the key was new.
    pub fn insert(&mut self, key: u64) -> bool {
        match &self.root {
            None => {
                self.root = Some(Arc::new(Node::Leaf(key)));
                self.len = 1;
                true
            }
            Some(root) => match root.insert(key, 0) {
                Some(next) => {
                    self.root = Some(next);
                    self.len += 1;
                    true
                }
                None => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = PSet::new();
        assert!(s.is_empty());
        for k in [0u64, 1, 31, 32, 33, 1 << 40, u64::MAX, 7, 7] {
            s.insert(k);
        }
        assert_eq!(s.len(), 8, "duplicate insert must not grow the set");
        for k in [0u64, 1, 31, 32, 33, 1 << 40, u64::MAX, 7] {
            assert!(s.contains(k), "{k} must be present");
        }
        assert!(!s.contains(2));
        assert!(!s.contains(1 << 41));
    }

    #[test]
    fn clones_are_independent_snapshots() {
        let mut a = PSet::new();
        for k in 0..100 {
            a.insert(k);
        }
        let snapshot = a.clone();
        for k in 100..200 {
            a.insert(k);
        }
        assert_eq!(snapshot.len(), 100);
        assert!(
            !snapshot.contains(150),
            "snapshot must not see later inserts"
        );
        assert!(a.contains(150));
        assert!(a.contains(50));
    }

    #[test]
    fn subset_is_structural_and_exact() {
        let mut small = PSet::new();
        let mut big = PSet::new();
        for k in [3u64, 77, 1 << 40] {
            small.insert(k);
            big.insert(k);
        }
        let snapshot = big.clone();
        for k in [5u64, 9_000, u64::MAX] {
            big.insert(k);
        }
        assert!(small.is_subset(&big));
        assert!(snapshot.is_subset(&big), "snapshot ⊆ its own extension");
        assert!(!big.is_subset(&small));
        assert!(PSet::new().is_subset(&small));
        assert!(!small.is_subset(&PSet::new()));
        let mut disjoint = PSet::new();
        disjoint.insert(4);
        assert!(!disjoint.is_subset(&big));
        let mut overlapping = PSet::new();
        overlapping.insert(3);
        overlapping.insert(4);
        assert!(!overlapping.is_subset(&big), "4 ∉ big");
    }

    #[test]
    fn dense_and_sparse_keys() {
        let mut s = PSet::new();
        // Dense sequential ids (the interner's actual distribution) plus
        // adversarial high-bit patterns.
        for k in 0..10_000u64 {
            assert!(s.insert(k));
        }
        for k in (0..64).map(|i| 1u64 << i) {
            s.insert(k);
        }
        assert!(s.contains(9_999));
        assert!(s.contains(1 << 63));
        assert!(!s.contains(10_001 + (1 << 50)));
        for k in 0..10_000u64 {
            assert!(!s.insert(k), "re-insert of {k} must report present");
        }
    }
}
