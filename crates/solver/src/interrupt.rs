//! Cooperative interruption: wall-clock deadlines and cancellation.
//!
//! Symbolic execution has two ways to die that command-count budgets never
//! catch: a pathological solver query that spins inside a single
//! satisfiability check, and an external caller that wants a run stopped
//! *now* (a serving timeout, a user abort). Both are handled
//! cooperatively: the exploration engine and the solver poll an
//! [`Interrupt`] — a deadline [`Instant`] plus a shared [`CancelToken`] —
//! at their loop heads and give up with an `Unknown`/truncated verdict
//! instead of spinning. Long-running [memory models] are expected to poll
//! [`crate::Solver::interrupted`] the same way.
//!
//! Giving up is always sound: an interrupted satisfiability query reports
//! [`crate::SatResult::Unknown`] (treated as "possibly SAT", so no branch
//! is ever pruned by an interruption), and an interrupted path surfaces as
//! a truncated result, downgrading the run's guarantee to a bounded one —
//! exactly as command budgets already do.
//!
//! [memory models]: https://en.wikipedia.org/wiki/KLEE — KLEE and CBMC
//! both treat solver timeouts as table stakes for running at scale.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, cheaply clonable cancellation flag.
///
/// All clones observe the same flag: cancelling any clone cancels them
/// all. Cancellation is one-way (there is no reset) — create a fresh token
/// per run.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Every holder of a clone of this token will
    /// observe it at its next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A deadline and a cancellation token, polled together.
///
/// The default value never interrupts (no deadline, fresh token).
#[derive(Clone, Debug, Default)]
pub struct Interrupt {
    /// Wall-clock instant after which work should stop.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
}

impl Interrupt {
    /// An interrupt that never fires.
    pub fn none() -> Self {
        Interrupt::default()
    }

    /// An interrupt with the given deadline and token.
    pub fn new(deadline: Option<Instant>, cancel: CancelToken) -> Self {
        Interrupt { deadline, cancel }
    }

    /// True when the deadline has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True when work should stop: cancelled or past the deadline.
    pub fn interrupted(&self) -> bool {
        self.cancel.is_cancelled() || self.deadline_expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn deadline_expiry() {
        let future = Interrupt::new(
            Some(Instant::now() + Duration::from_secs(3600)),
            CancelToken::new(),
        );
        assert!(!future.interrupted());
        let past = Interrupt::new(
            Some(Instant::now() - Duration::from_millis(1)),
            CancelToken::new(),
        );
        assert!(past.deadline_expired() && past.interrupted());
        assert!(!Interrupt::none().interrupted());
    }
}
