//! Incremental-solving support: frozen per-prefix solver state and the
//! implication-aware verdict index (see `DESIGN.md` §12).
//!
//! [`SolveCtx`] is the solver state left over after a *clean* solve of a
//! path condition — typing environment, union-find, residual atoms, and
//! the interval stores — frozen under a `OnceLock` on the condition's
//! newest chain node. A later query on a descendant condition finds the
//! deepest frozen ancestor and propagates only the conjuncts pushed
//! since, instead of re-solving the whole conjunction (the incremental,
//! functional solver-state technique Soteria reports as a headline
//! optimization).
//!
//! [`ImplicationCache`] generalizes the exact-key result cache along the
//! implication order of conjunct sets (Green-style reuse):
//!
//! - an **UNSAT** verdict for key `K` answers UNSAT for any probe
//!   `P ⊇ K` (the contradiction is still inside `P`);
//! - a **SAT** verdict is stored only with its *verified witness model*,
//!   which answers SAT for any probe `P ⊆ K` (the model satisfies every
//!   conjunct of `K`, hence of `P`) and for any probe the model happens
//!   to satisfy outright.
//!
//! Both rules are witness-backed (a derived contradiction, a concrete
//! model), so a hit can never contradict what a direct solve may answer
//! — direct solves err only toward `Unknown`, which the engine treats as
//! "possibly sat" anyway. Unknown verdicts are never indexed, and the
//! whole index is bypassed while a deadline or cancellation is armed:
//! time-dependent verdicts must not generalize to other keys.

use crate::intervals::{IntDomain, NumDomain};
use crate::model::Model;
use crate::pathcond::PcKey;
use crate::sat::{Atoms, SatResult};
use crate::typing::TypeEnv;
use crate::uf::UnionFind;
use gillian_gil::{BinOp, Expr};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// The frozen result of solving one path-condition prefix.
///
/// `verdict` is always `Sat` or `Unsat` — `Unknown` verdicts reflect an
/// exhausted or interrupted budget and are never frozen. `state` is
/// present exactly for clean `Sat` solves (no case splits decided the
/// verdict, closure converged); an `Unsat` context needs no state, since
/// every extension of an unsatisfiable prefix is unsatisfiable.
#[derive(Debug)]
pub(crate) struct SolveCtx {
    pub(crate) verdict: SatResult,
    pub(crate) state: Option<CapturedState>,
}

/// The solver state at the end of a clean `Sat` solve, shared
/// copy-on-extend: every field sits behind an `Arc`, so freezing a
/// context costs refcount bumps for whatever the extension did not touch
/// (the union-find in particular is shared untouched by the fast path).
#[derive(Clone, Debug)]
pub(crate) struct CapturedState {
    /// The typing environment the solve ran under.
    pub(crate) env: Arc<TypeEnv>,
    /// Equality classes after substitution closure.
    pub(crate) uf: Arc<UnionFind>,
    /// Residual atoms (equalities drained into `uf`, no disjunctions).
    pub(crate) atoms: Arc<Atoms>,
    /// Integer interval/difference domain after propagation.
    pub(crate) ints: Arc<IntDomain>,
    /// Float literal-bound domain.
    pub(crate) nums: Arc<NumDomain>,
    /// Candidate mask-identity sites `(x & m, x, m)` occurring anywhere
    /// in the captured atoms, so the incremental fast path can re-check
    /// the mask-learning trigger without re-scanning every atom tree.
    pub(crate) mask_sites: Arc<[(Expr, Expr, i64)]>,
}

/// Collects candidate mask-identity sites `(x & m, x, m)` (with `m+1` a
/// power of two) from the given expressions, deduplicated by site. The
/// satisfiability checker learns `x & m = x` once the interval of `x`
/// fits inside the mask; the captured site list lets an incremental
/// extension re-test exactly those triggers.
pub(crate) fn collect_mask_sites(exprs: &[Expr], out: &mut Vec<(Expr, Expr, i64)>) {
    for e in exprs {
        e.visit(&mut |sub| {
            if let Expr::Bin(BinOp::BitAnd, a, b) = sub {
                let (x, mask) = match (a.as_int(), b.as_int()) {
                    (Some(m), None) => (b.as_ref(), m),
                    (None, Some(m)) => (a.as_ref(), m),
                    _ => return,
                };
                if mask >= 0
                    && (mask.wrapping_add(1) & mask) == 0
                    && !out.iter().any(|(s, _, _)| s == sub)
                {
                    out.push((sub.clone(), x.clone(), mask));
                }
            }
        });
    }
}

/// Entries kept in the implication index. Small on purpose: probes scan
/// linearly (with a signature prefilter), so the cap bounds probe cost;
/// insertion evicts the oldest entry ring-buffer style.
const IMPLICATION_CAP: usize = 512;

/// Witness models evaluated per probe. Model evaluation walks every
/// conjunct tree, so unbounded tries would cost more than the solve they
/// replace.
const MODEL_EVALS_PER_PROBE: usize = 4;

/// One-bit-per-id Bloom signature of a sorted id set: `sig(A) & !sig(B)
/// == 0` is necessary for `A ⊆ B`, rejecting most non-subset pairs with
/// two word operations.
fn signature(ids: &[u64]) -> u64 {
    ids.iter().fold(0u64, |sig, id| {
        sig | (1u64 << (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58))
    })
}

/// `a ⊆ b` for sorted, deduplicated slices (linear merge walk).
fn sorted_subset(a: &[u64], b: &[u64]) -> bool {
    let mut i = 0;
    for &x in a {
        while i < b.len() && b[i] < x {
            i += 1;
        }
        if i >= b.len() || b[i] != x {
            return false;
        }
        i += 1;
    }
    true
}

#[derive(Debug)]
struct ImplEntry {
    sig: u64,
    ids: Arc<[u64]>,
    /// Bloom signature over the logical variables the witness model
    /// assigns (0 for UNSAT entries). A model can only satisfy a probe
    /// outright if it covers every variable the probe mentions, so this
    /// gates the per-probe model evaluations — without it, every probe
    /// pays tree-walk evaluations against models that cannot apply.
    var_sig: u64,
    /// `None` marks an UNSAT entry; `Some` a SAT entry with its verified
    /// witness model.
    model: Option<Arc<Model>>,
}

/// Bloom signature over a witness model's assigned variables.
fn model_var_signature(model: &Model) -> u64 {
    model.iter().fold(0u64, |sig, (x, _)| {
        sig | (1u64 << (x.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58))
    })
}

/// Bloom signature over every logical variable the conjuncts mention.
fn probe_var_signature(conjuncts: &[Expr]) -> u64 {
    let mut sig = 0u64;
    for c in conjuncts {
        c.visit(&mut |e| {
            if let Expr::LVar(x) = e {
                sig |= 1u64 << (x.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58);
            }
        });
    }
    sig
}

/// The implication-aware verdict index layered over the exact-key cache.
#[derive(Debug, Default)]
pub(crate) struct ImplicationCache {
    entries: Mutex<VecDeque<ImplEntry>>,
}

impl ImplicationCache {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<ImplEntry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks for an entry that decides the probe by implication. The
    /// probe's `conjuncts` are only read when a witness model is
    /// evaluated against them (bounded by [`MODEL_EVALS_PER_PROBE`]).
    pub(crate) fn probe(&self, key: &PcKey, conjuncts: &[Expr]) -> Option<SatResult> {
        let ids = key.ids();
        let psig = signature(ids);
        let entries = self.lock();
        let mut model_evals = 0;
        // Computed lazily: most probes are decided (or rejected) by the
        // id-set signatures alone and never need the variable walk.
        let mut pvar_sig: Option<u64> = None;
        for e in entries.iter().rev() {
            match &e.model {
                None => {
                    // UNSAT entry: entry ⊆ probe → the probe still
                    // contains the proven contradiction.
                    if e.ids.len() <= ids.len() && e.sig & !psig == 0 && sorted_subset(&e.ids, ids)
                    {
                        return Some(SatResult::Unsat);
                    }
                }
                Some(model) => {
                    // SAT entry: probe ⊆ entry → the entry's model
                    // satisfies every probe conjunct by construction.
                    if ids.len() <= e.ids.len() && psig & !e.sig == 0 && sorted_subset(ids, &e.ids)
                    {
                        return Some(SatResult::Sat);
                    }
                    // Otherwise the model may still happen to satisfy the
                    // probe outright (common when new conjuncts constrain
                    // already-assigned variables) — but only a model that
                    // covers every probe variable can, so the var-signature
                    // gate runs before any tree-walk evaluation.
                    if model_evals < MODEL_EVALS_PER_PROBE {
                        let pvs = *pvar_sig.get_or_insert_with(|| probe_var_signature(conjuncts));
                        if pvs & !e.var_sig == 0 {
                            model_evals += 1;
                            if model.satisfies(conjuncts) {
                                return Some(SatResult::Sat);
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Indexes a proven-UNSAT conjunct set.
    pub(crate) fn insert_unsat(&self, key: &PcKey) {
        self.insert(ImplEntry {
            sig: signature(key.ids()),
            ids: key.ids_arc(),
            var_sig: 0,
            model: None,
        });
    }

    /// Indexes a SAT conjunct set together with its verified witness.
    pub(crate) fn insert_sat(&self, key: &PcKey, model: Arc<Model>) {
        self.insert(ImplEntry {
            sig: signature(key.ids()),
            ids: key.ids_arc(),
            var_sig: model_var_signature(&model),
            model: Some(model),
        });
    }

    fn insert(&self, entry: ImplEntry) {
        let mut entries = self.lock();
        if entries
            .iter()
            .any(|e| e.sig == entry.sig && e.ids == entry.ids)
        {
            return;
        }
        if entries.len() >= IMPLICATION_CAP {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// Number of indexed entries (test introspection).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_respect_subset() {
        let a = [3u64, 17, 90];
        let b = [1u64, 3, 17, 42, 90];
        assert_eq!(signature(&a) & !signature(&b), 0);
        assert!(sorted_subset(&a, &b));
        assert!(!sorted_subset(&b, &a));
        assert!(sorted_subset(&[], &a));
        assert!(!sorted_subset(&[4], &a));
    }

    #[test]
    fn ring_eviction_keeps_cap() {
        let cache = ImplicationCache::default();
        for i in 0..(IMPLICATION_CAP + 40) as u64 {
            let key = crate::pathcond::PcKey::for_tests(vec![i, i + 1_000_000]);
            cache.insert_unsat(&key);
        }
        assert_eq!(cache.len(), IMPLICATION_CAP);
    }

    #[test]
    fn duplicate_keys_are_not_reinserted() {
        let cache = ImplicationCache::default();
        let key = crate::pathcond::PcKey::for_tests(vec![1, 2, 3]);
        cache.insert_unsat(&key);
        cache.insert_unsat(&key);
        assert_eq!(cache.len(), 1);
    }
}
