#![warn(missing_docs)]

//! # First-order solver over the GIL value domain
//!
//! The Gillian paper discharges path conditions with an off-the-shelf SMT
//! solver plus an in-house first-order simplifier; this crate is the
//! equivalent substrate, built from scratch (see `DESIGN.md` §2 for the
//! substitution rationale). It provides:
//!
//! - [`interrupt`] — cooperative wall-clock deadlines and cancellation
//!   tokens, polled by the satisfiability checker (and by the exploration
//!   engines one crate up) so a pathological query degrades to
//!   [`SatResult::Unknown`] instead of hanging a run;
//! - [`simplify`] — an algebraic simplifier / constant folder that shares
//!   its operator semantics with the concrete interpreter (no divergence
//!   between folding and running by construction);
//! - [`typing`] — light type inference over expressions;
//! - [`sat`] — a satisfiability checker for conjunctions of GIL boolean
//!   expressions, combining substitution-closure equality reasoning
//!   ([`uf`]), interval reasoning ([`intervals`]), type conflicts, and
//!   bounded case splitting over disjunctions;
//! - [`model`] — a bounded, *self-verifying* model finder: every model it
//!   returns has been checked by concretely evaluating the full path
//!   condition, so bug reports backed by a model are true positives;
//! - [`Solver`] — the façade used by the symbolic engine, with result
//!   caching and per-query statistics (the paper credits better caching
//!   and simplification for Gillian-JS being ≈2× faster than JaVerT 2.0;
//!   [`SolverConfig::baseline`] turns those off to reproduce the baseline).
//!
//! ## Incompleteness policy
//!
//! [`SatResult::Unknown`] is treated as "possibly satisfiable" by the
//! engine: unknown path conditions keep being explored. This direction is
//! the sound one for bug-finding because the engine *never* reports a bug
//! without a concrete, verified counter-model (paper §3: symbolic testing
//! has no false positives).

mod ctx;
pub mod interrupt;
pub mod intervals;
pub mod model;
pub mod pathcond;
pub mod persistent;
pub mod sat;
pub mod simplify;
pub mod solver;
pub mod summary;
pub mod typing;
pub mod uf;

pub use interrupt::{CancelToken, Interrupt};
pub use model::{find_model_escalating, Model, ModelBudget};
pub use pathcond::{PathCondition, PcKey};
pub use persistent::PSet;
pub use sat::SatResult;
pub use solver::{FaultProbe, SatFault, Simplification, Solver, SolverConfig, SolverStats};
pub use summary::{SummaryEntry, SummaryLoadError, SummarySaveError, SummaryStats, SummaryStore};
