//! Satisfiability checking for conjunctions of GIL boolean expressions.
//!
//! The checker is a bounded combination of:
//!
//! 1. simplification of every conjunct (with a typing environment grown
//!    from `typeOf` facts and operator usage);
//! 2. equality reasoning via union-find with *substitution closure*:
//!    rewrite atoms with class representatives and re-simplify, to a
//!    bounded fixpoint;
//! 3. interval/difference reasoning on `Int` comparisons and literal-bound
//!    reasoning on `Num` comparisons;
//! 4. bounded case splitting over disjunctions.
//!
//! The result is three-valued; `Unknown` is treated as "possibly SAT" by
//! the engine (see the crate docs for why this is the sound direction).

use crate::ctx::{collect_mask_sites, CapturedState};
use crate::intervals::{IntDomain, NumDomain};
use crate::simplify::simplify;
use crate::typing::{absorb_type_fact, infer, TypeEnv};
use crate::uf::UnionFind;
use gillian_gil::{BinOp, Expr, TypeTag, UnOp, Value};
use std::sync::Arc;
use std::time::Instant;

/// The verdict of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A contradiction was derived: no model exists.
    Unsat,
    /// No contradiction was found within budget.
    Sat,
    /// The budget was exhausted before a verdict.
    Unknown,
}

impl SatResult {
    /// True unless the result is [`SatResult::Unsat`] — i.e. the path may
    /// be feasible and must be kept.
    pub fn possibly_sat(self) -> bool {
        self != SatResult::Unsat
    }
}

/// Tunable limits for a query.
#[derive(Clone, Copy, Debug)]
pub struct SatBudget {
    /// Maximum substitution-closure rounds.
    pub closure_rounds: usize,
    /// Maximum disjunction cases explored.
    pub split_cases: usize,
    /// Wall-clock cutoff: once past this instant the checker stops early
    /// with [`SatResult::Unknown`] instead of finishing its closure rounds
    /// and case splits. `None` (the default) means no time limit. The
    /// [`crate::Solver`] tightens this with any run-level deadline
    /// installed via [`crate::Solver::set_interrupt`].
    pub deadline: Option<Instant>,
}

impl SatBudget {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

impl Default for SatBudget {
    fn default() -> Self {
        SatBudget {
            closure_rounds: 8,
            split_cases: 64,
            deadline: None,
        }
    }
}

/// Grows the typing environment from operator usage inside conjuncts that
/// are assumed to evaluate to `true` (so their subterms evaluate cleanly).
fn absorb_usage_types(env: &mut TypeEnv, conjuncts: &[Expr]) {
    for _ in 0..3 {
        let mut changed = false;
        for c in conjuncts {
            c.visit(&mut |e| {
                if let Expr::Bin(op, a, b) = e {
                    let relevant = matches!(
                        op,
                        BinOp::Add
                            | BinOp::Sub
                            | BinOp::Mul
                            | BinOp::Div
                            | BinOp::Mod
                            | BinOp::Lt
                            | BinOp::Leq
                    );
                    if !relevant {
                        return;
                    }
                    let ta = infer(env, a);
                    let tb = infer(env, b);
                    let prop = |env: &mut TypeEnv, side: &Expr, t: TypeTag, changed: &mut bool| {
                        if let Expr::LVar(x) = side {
                            if matches!(t, TypeTag::Int | TypeTag::Num | TypeTag::Str)
                                && env.insert(*x, t) != Some(t)
                            {
                                *changed = true;
                            }
                        }
                    };
                    match (ta, tb) {
                        (Some(t), None) => prop(env, b, t, &mut changed),
                        (None, Some(t)) => prop(env, a, t, &mut changed),
                        _ => {}
                    }
                }
            });
        }
        if !changed {
            break;
        }
    }
}

/// The classified atoms of a conjunction. `pub(crate)` (with private
/// fields) so a clean solve's residual atoms can be frozen inside a
/// [`CapturedState`] and extended by a later incremental query.
#[derive(Clone, Debug, Default)]
pub(crate) struct Atoms {
    eqs: Vec<(Expr, Expr)>,
    neqs: Vec<(Expr, Expr)>,
    /// `(a, b, strict)` with both sides typed `Int`.
    int_cmps: Vec<(Expr, Expr, bool)>,
    /// `(term, literal, term_on_left, strict)` with `Num` typing.
    num_cmps: Vec<(Expr, f64, bool, bool)>,
    /// Disjunctions for case splitting.
    ors: Vec<(Expr, Expr)>,
    /// Anything else — kept, re-simplified each closure round.
    opaque: Vec<Expr>,
    /// Equalities already merged into the union-find, preserved so that
    /// feedback recursion (`atoms_to_exprs`) does not lose them.
    uf_eqs: Vec<(Expr, Expr)>,
}

/// Flattens and classifies one simplified conjunct. Returns `false` on an
/// immediately false conjunct.
fn classify(env: &TypeEnv, e: Expr, atoms: &mut Atoms) -> bool {
    match e {
        Expr::Val(Value::Bool(true)) => true,
        Expr::Val(Value::Bool(false)) => false,
        Expr::Bin(BinOp::And, a, b) => {
            classify(env, (*a).clone(), atoms) && classify(env, (*b).clone(), atoms)
        }
        Expr::Bin(BinOp::Or, a, b) => {
            atoms.ors.push(((*a).clone(), (*b).clone()));
            true
        }
        Expr::Bin(BinOp::Eq, a, b) => {
            atoms.eqs.push(((*a).clone(), (*b).clone()));
            true
        }
        Expr::Bin(op @ (BinOp::Lt | BinOp::Leq), a, b) => {
            let strict = op == BinOp::Lt;
            let ta = infer(env, &a);
            let tb = infer(env, &b);
            if ta == Some(TypeTag::Int) || tb == Some(TypeTag::Int) {
                atoms.int_cmps.push(((*a).clone(), (*b).clone(), strict));
            } else if let Expr::Val(Value::Num(x)) = b.as_ref() {
                let x = x.get();
                atoms.num_cmps.push(((*a).clone(), x, true, strict));
            } else if let Expr::Val(Value::Num(x)) = a.as_ref() {
                let x = x.get();
                atoms.num_cmps.push(((*b).clone(), x, false, strict));
            } else {
                // Generic ordering edge: cycle detection is sound in any
                // total order (Num comparisons also imply non-NaN), and
                // integer-specific grounding only triggers on Int literals,
                // which cannot reach non-Int terms.
                atoms.int_cmps.push(((*a).clone(), (*b).clone(), strict));
            }
            true
        }
        Expr::Un(UnOp::Not, inner) => match inner.expr().clone() {
            Expr::Bin(BinOp::Eq, a, b) => {
                atoms.neqs.push(((*a).clone(), (*b).clone()));
                true
            }
            Expr::Bin(BinOp::Or, a, b) => {
                classify(env, (*a).clone().not(), atoms) && classify(env, (*b).clone().not(), atoms)
            }
            Expr::Bin(BinOp::And, a, b) => {
                atoms.ors.push(((*a).clone().not(), (*b).clone().not()));
                true
            }
            other => {
                atoms.eqs.push((other, Expr::ff()));
                true
            }
        },
        // A bare boolean term asserts itself.
        other => {
            atoms.eqs.push((other, Expr::tt()));
            true
        }
    }
}

/// Public re-export of usage-based type absorption for the model finder.
pub fn absorb_usage_types_pub(env: &mut TypeEnv, conjuncts: &[Expr]) {
    absorb_usage_types(env, conjuncts);
}

/// Checks satisfiability of a conjunction of boolean expressions.
pub fn check_conjunction(conjuncts: &[Expr], budget: SatBudget) -> SatResult {
    check_conjunction_inner(conjuncts, budget, None)
}

/// Like [`check_conjunction`], but additionally freezes the end-of-solve
/// state into `capture` when the solve finishes *cleanly* with `Sat`
/// (closure converged, no case split decided the verdict). `Unsat` and
/// `Unknown` leave `capture` untouched.
pub(crate) fn check_conjunction_capturing(
    conjuncts: &[Expr],
    budget: SatBudget,
    capture: &mut Option<CapturedState>,
) -> SatResult {
    check_conjunction_inner(conjuncts, budget, Some(capture))
}

fn check_conjunction_inner(
    conjuncts: &[Expr],
    budget: SatBudget,
    capture: Option<&mut Option<CapturedState>>,
) -> SatResult {
    let mut env = TypeEnv::new();
    let mut consistent = true;
    for c in conjuncts {
        consistent &= absorb_type_fact(&mut env, c);
    }
    if !consistent {
        return SatResult::Unsat;
    }
    absorb_usage_types(&mut env, conjuncts);
    let simplified: Vec<Expr> = conjuncts.iter().map(|c| simplify(&env, c)).collect();
    let mut cases = budget.split_cases;
    check_rec(&env, simplified, budget, &mut cases, 0, capture)
}

/// Solves a frozen prefix state extended by `delta` (the conjuncts pushed
/// since the prefix was solved), without re-solving the prefix.
///
/// Returns `None` when incremental reuse does not apply — the extension
/// changes the typing environment, so prefix conjuncts could simplify
/// differently and the caller must fall back to a monolithic solve. The
/// fallback is what keeps incremental verdicts *identical* to monolithic
/// ones, not merely compatible.
pub(crate) fn check_extension(
    seed: &CapturedState,
    delta: &[Expr],
    budget: SatBudget,
    capture: &mut Option<CapturedState>,
) -> Option<SatResult> {
    // Typing gate: absorb the delta into a copy of the captured
    // environment. An inconsistency is a verdict (the monolithic solve
    // over the union would derive the same conflict); any *growth* means
    // reuse is off the table.
    let mut env = (*seed.env).clone();
    let mut consistent = true;
    for c in delta {
        consistent &= absorb_type_fact(&mut env, c);
    }
    if !consistent {
        return Some(SatResult::Unsat);
    }
    if env != *seed.env {
        return None;
    }
    absorb_usage_types(&mut env, delta);
    if env != *seed.env {
        return None;
    }
    // Mirror the monolithic pipeline's ordering: conjuncts are sorted
    // structurally before simplification, so the delta's relative order
    // here matches its relative order in a whole-set solve.
    let mut sorted: Vec<Expr> = delta.to_vec();
    sorted.sort_unstable();
    let simplified: Vec<Expr> = sorted.iter().map(|c| simplify(&env, c)).collect();
    if let Some(verdict) = fast_extend(seed, &env, &simplified, capture) {
        return Some(verdict);
    }
    // General seeded path: re-serialize the prefix's residual atoms
    // (equalities drained into the union-find are re-emitted, so nothing
    // is lost) and run the full checker over residual + delta. Closure
    // over the residual converges immediately — it is already a fixpoint
    // — so the cost is dominated by the delta.
    let mut exprs = atoms_to_exprs(&seed.atoms, 0);
    exprs.extend(simplified);
    let mut cases = budget.split_cases;
    Some(check_rec(&env, exprs, budget, &mut cases, 0, Some(capture)))
}

/// The incremental fast path: when the delta contains only ordering and
/// disequality atoms (no equalities, disjunctions, or boolean atoms), the
/// equality classes cannot change, so the delta atoms are rewritten once
/// through the frozen union-find and asserted into clones of the interval
/// domains. Returns `None` whenever anything would require re-running
/// closure — a structural escape under rewriting, a newly pinned
/// singleton interval, a newly enabled mask identity — so the verdict
/// stays identical to a monolithic solve.
fn fast_extend(
    seed: &CapturedState,
    env: &TypeEnv,
    delta: &[Expr],
    capture: &mut Option<CapturedState>,
) -> Option<SatResult> {
    let mut fresh = Atoms::default();
    for c in delta {
        if !classify(env, c.clone(), &mut fresh) {
            return Some(SatResult::Unsat);
        }
    }
    if !fresh.eqs.is_empty()
        || !fresh.ors.is_empty()
        || !fresh.opaque.is_empty()
        || !fresh.uf_eqs.is_empty()
    {
        return None;
    }
    let uf = &*seed.uf;
    // One rewrite round is the fixpoint here: with no new equalities the
    // union-find is exactly the frozen one, so a second round would see
    // unchanged representatives.
    let mut d_neqs: Vec<(Expr, Expr)> = Vec::new();
    let mut d_int: Vec<(Expr, Expr, bool)> = Vec::new();
    let mut d_num: Vec<(Expr, f64, bool, bool)> = Vec::new();
    for (a, b) in fresh.neqs {
        let e = simplify(env, &uf.apply(&Expr::Bin(BinOp::Eq, a.into(), b.into())));
        match e.as_bool() {
            Some(true) => return Some(SatResult::Unsat),
            Some(false) => {}
            None => {
                if let Expr::Bin(BinOp::Eq, a, b) = e {
                    if uf.same_class(&a, &b) {
                        return Some(SatResult::Unsat);
                    }
                    d_neqs.push(((*a).clone(), (*b).clone()));
                } else {
                    return None;
                }
            }
        }
    }
    for (a, b, strict) in fresh.int_cmps {
        let op = if strict { BinOp::Lt } else { BinOp::Leq };
        let e = simplify(env, &uf.apply(&Expr::Bin(op, a.into(), b.into())));
        match e.as_bool() {
            Some(true) => {}
            Some(false) => return Some(SatResult::Unsat),
            None => {
                if let Expr::Bin(op2 @ (BinOp::Lt | BinOp::Leq), a, b) = e {
                    d_int.push(((*a).clone(), (*b).clone(), op2 == BinOp::Lt));
                } else {
                    return None;
                }
            }
        }
    }
    for (t, x, left, strict) in fresh.num_cmps {
        let op = if strict { BinOp::Lt } else { BinOp::Leq };
        let full = if left {
            t.clone().bin(op, Expr::num(x))
        } else {
            Expr::num(x).bin(op, t.clone())
        };
        let e = simplify(env, &uf.apply(&full));
        match e.as_bool() {
            Some(true) => {}
            Some(false) => return Some(SatResult::Unsat),
            None => {
                let nt = simplify(env, &uf.apply(&t));
                if nt == t && e == full {
                    d_num.push((nt, x, left, strict));
                } else {
                    return None;
                }
            }
        }
    }

    let mut ints = (*seed.ints).clone();
    let mut nums = (*seed.nums).clone();
    for (a, b, strict) in &d_int {
        if !ints.assert_cmp(a, b, *strict) {
            return Some(SatResult::Unsat);
        }
    }
    // Re-assert *all* disequalities, not just the delta's: a prefix
    // disequality that sat strictly inside its term's old interval may
    // now lie on an endpoint the delta narrowed to — exactly when the
    // monolithic solve (which asserts them after all comparisons) would
    // narrow further.
    for (a, b) in seed.atoms.neqs.iter().chain(&d_neqs) {
        match (a.as_int(), b.as_int()) {
            (Some(n), None) if !ints.assert_ne_const(b, n) => {
                return Some(SatResult::Unsat);
            }
            (None, Some(n)) if !ints.assert_ne_const(a, n) => {
                return Some(SatResult::Unsat);
            }
            _ => {}
        }
    }
    for (t, x, left, strict) in &d_num {
        if !nums.assert_cmp_const(t, *x, *left, *strict) {
            return Some(SatResult::Unsat);
        }
    }
    if !ints.consistent() {
        return Some(SatResult::Unsat);
    }

    // Learning parity: the captured solve ended with nothing left to
    // learn, so only delta-driven narrowing can newly trigger the
    // singleton or mask-identity rules — and either trigger needs a full
    // closure re-run.
    for (t, itv) in ints.narrowed_terms() {
        if itv.lo == itv.hi && uf.value_of(t) != Some(Value::Int(itv.lo)) {
            return None;
        }
    }
    let delta_exprs: Vec<Expr> = atoms_to_exprs(
        &Atoms {
            neqs: d_neqs.clone(),
            int_cmps: d_int.clone(),
            num_cmps: d_num.clone(),
            ..Atoms::default()
        },
        0,
    );
    let mut sites: Vec<(Expr, Expr, i64)> = seed.mask_sites.to_vec();
    collect_mask_sites(&delta_exprs, &mut sites);
    for (sub, x, mask) in &sites {
        let itv = ints.query(x);
        if itv.lo >= 0 && itv.hi <= *mask && !uf.same_class(sub, x) {
            return None;
        }
    }

    let mut atoms = (*seed.atoms).clone();
    atoms.neqs.extend(d_neqs);
    atoms.int_cmps.extend(d_int);
    atoms.num_cmps.extend(d_num);
    *capture = Some(CapturedState {
        env: seed.env.clone(),
        uf: seed.uf.clone(),
        atoms: Arc::new(atoms),
        ints: Arc::new(ints),
        nums: Arc::new(nums),
        mask_sites: sites.into(),
    });
    Some(SatResult::Sat)
}

fn check_rec(
    env: &TypeEnv,
    conjuncts: Vec<Expr>,
    budget: SatBudget,
    cases: &mut usize,
    depth: usize,
    capture: Option<&mut Option<CapturedState>>,
) -> SatResult {
    // Deadline checks sit at recursion entry and at each closure round:
    // those are the only places where unbounded-looking work (rewriting
    // fixpoints, case-split recursion) accumulates, so polling there bounds
    // overshoot to one round past the deadline.
    if budget.expired() {
        return SatResult::Unknown;
    }
    let mut atoms = Atoms::default();
    for c in conjuncts {
        if !classify(env, c, &mut atoms) {
            return SatResult::Unsat;
        }
    }

    let mut uf = UnionFind::new();
    let mut rewritten_uf_eqs: std::collections::BTreeSet<(Expr, Expr)> =
        std::collections::BTreeSet::new();
    // Substitution closure.
    for round in 0..budget.closure_rounds {
        if budget.expired() {
            return SatResult::Unknown;
        }
        for (a, b) in std::mem::take(&mut atoms.eqs) {
            if !uf.union(&a, &b) {
                return SatResult::Unsat;
            }
            atoms.uf_eqs.push((a, b));
        }
        // Rewrite remaining atoms through class representatives.
        let rewrite = |e: &Expr, uf: &UnionFind| -> Expr {
            let substituted = e.subst(&|sub| {
                let r = uf.repr(sub);
                (r != *sub).then_some(r)
            });
            simplify(env, &substituted)
        };
        let mut changed = false;
        let mut requeue: Vec<Expr> = Vec::new();
        for (a, b) in std::mem::take(&mut atoms.neqs) {
            let e = rewrite(&Expr::Bin(BinOp::Eq, a.into(), b.into()), &uf);
            match e.as_bool() {
                Some(true) => return SatResult::Unsat,
                Some(false) => {}
                None => {
                    if let Expr::Bin(BinOp::Eq, a, b) = e {
                        if uf.same_class(&a, &b) {
                            return SatResult::Unsat;
                        }
                        atoms.neqs.push(((*a).clone(), (*b).clone()));
                    } else {
                        requeue.push(e.not());
                        changed = true;
                    }
                }
            }
        }
        for (a, b, strict) in std::mem::take(&mut atoms.int_cmps) {
            let op = if strict { BinOp::Lt } else { BinOp::Leq };
            let e = rewrite(&Expr::Bin(op, a.into(), b.into()), &uf);
            match e.as_bool() {
                Some(true) => {}
                Some(false) => return SatResult::Unsat,
                None => {
                    if let Expr::Bin(op2 @ (BinOp::Lt | BinOp::Leq), a, b) = e {
                        atoms
                            .int_cmps
                            .push(((*a).clone(), (*b).clone(), op2 == BinOp::Lt));
                    } else {
                        requeue.push(e);
                        changed = true;
                    }
                }
            }
        }
        for (t, x, left, strict) in std::mem::take(&mut atoms.num_cmps) {
            // Rewrite the *full* comparison: a negated occurrence of the
            // same atom put `cmp = false` into the equality engine, and
            // the whole-node representative lookup detects the collision
            // (which the Num domains cannot, because ¬(a<b) admits NaN).
            let op = if strict { BinOp::Lt } else { BinOp::Leq };
            let full = if left {
                t.clone().bin(op, Expr::num(x))
            } else {
                Expr::num(x).bin(op, t.clone())
            };
            let e = rewrite(&full, &uf);
            match e.as_bool() {
                Some(true) => {}
                Some(false) => return SatResult::Unsat,
                None => {
                    let nt = rewrite(&t, &uf);
                    if nt == t && e == full {
                        atoms.num_cmps.push((nt, x, left, strict));
                    } else {
                        requeue.push(e);
                        changed = true;
                    }
                }
            }
        }
        for o in std::mem::take(&mut atoms.opaque) {
            let e = rewrite(&o, &uf);
            match e.as_bool() {
                Some(true) => {}
                Some(false) => return SatResult::Unsat,
                None => {
                    // A rewritten opaque atom may have become structured.
                    requeue.push(e);
                }
            }
        }
        // Rewrite the *strict subterms* of equalities already merged into
        // the union-find (e.g. `(0 < x) = false` with `x = 5` elsewhere:
        // the inner x must fold for the contradiction to surface).
        for (a, b) in atoms.uf_eqs.clone() {
            if !rewritten_uf_eqs.insert((a.clone(), b.clone())) {
                continue;
            }
            let inner = |e: &Expr, uf: &UnionFind| -> Expr {
                let substituted = match e {
                    Expr::Un(op, x) => Expr::Un(
                        *op,
                        x.subst(&|s| {
                            let r = uf.repr(s);
                            (r != *s).then_some(r)
                        })
                        .into(),
                    ),
                    Expr::Bin(op, x, y) => {
                        let f = |s: &Expr| {
                            let r = uf.repr(s);
                            (r != *s).then_some(r)
                        };
                        Expr::Bin(*op, x.subst(&f).into(), y.subst(&f).into())
                    }
                    leaf => leaf.clone(),
                };
                simplify(env, &substituted)
            };
            let a2 = inner(&a, &uf);
            let b2 = inner(&b, &uf);
            if a2 != a || b2 != b {
                let e = simplify(env, &a2.eq(b2));
                match e.as_bool() {
                    Some(true) => {}
                    Some(false) => return SatResult::Unsat,
                    None => {
                        requeue.push(e);
                        changed = true;
                    }
                }
            }
        }
        for e in requeue {
            if !classify(env, e, &mut atoms) {
                return SatResult::Unsat;
            }
        }
        if atoms.eqs.is_empty() && !changed {
            break;
        }
        if round + 1 == budget.closure_rounds && !atoms.eqs.is_empty() {
            // Could not reach closure; merge what remains without rewrite.
            for (a, b) in std::mem::take(&mut atoms.eqs) {
                if !uf.union(&a, &b) {
                    return SatResult::Unsat;
                }
                atoms.uf_eqs.push((a, b));
            }
        }
    }

    // Interval reasoning.
    let mut ints = IntDomain::new();
    let mut nums = NumDomain::new();
    for (a, b, strict) in &atoms.int_cmps {
        if !ints.assert_cmp(a, b, *strict) {
            return SatResult::Unsat;
        }
    }
    // Feed literal equalities/disequalities involving Int-typed terms.
    for (t, v) in uf.literal_bindings() {
        if let Value::Int(n) = v {
            if !ints.assert_eq_const(&t, n) {
                return SatResult::Unsat;
            }
        }
    }
    for (a, b) in &atoms.neqs {
        match (a.as_int(), b.as_int()) {
            (Some(n), None) if !ints.assert_ne_const(b, n) => {
                return SatResult::Unsat;
            }
            (None, Some(n)) if !ints.assert_ne_const(a, n) => {
                return SatResult::Unsat;
            }
            _ => {}
        }
    }
    for (t, x, left, strict) in &atoms.num_cmps {
        if !nums.assert_cmp_const(t, *x, *left, *strict) {
            return SatResult::Unsat;
        }
    }
    // Revalidate stored intervals against structural bounds that may have
    // tightened after the constraints were asserted.
    if !ints.consistent() {
        return SatResult::Unsat;
    }

    // Singleton intervals induce equalities (e.g. `0 ≤ n ∧ n ≤ 0` pins
    // `n = 0`); feed them back through substitution closure so opaque
    // atoms mentioning the term (nonlinear arithmetic, list operations)
    // get constant-folded. Mask identities (`x & m = x` when the interval
    // of `x` fits inside the mask) feed back the same way.
    if depth < 8 {
        let mut learned: Vec<Expr> = Vec::new();
        for (t, itv) in ints.narrowed_terms() {
            if itv.lo == itv.hi && uf.value_of(t) != Some(Value::Int(itv.lo)) {
                learned.push(t.clone().eq(Expr::int(itv.lo)));
            }
        }
        let all = atoms_to_exprs(&atoms, 0);
        let mut masked: Vec<(Expr, Expr)> = Vec::new();
        for e in &all {
            e.visit(&mut |sub| {
                if let Expr::Bin(BinOp::BitAnd, a, b) = sub {
                    let (x, mask) = match (a.as_int(), b.as_int()) {
                        (Some(m), None) => (b.as_ref(), m),
                        (None, Some(m)) => (a.as_ref(), m),
                        _ => return,
                    };
                    // x & m = x whenever 0 ≤ x ≤ m and m+1 is a power of 2.
                    if mask >= 0
                        && (mask.wrapping_add(1) & mask) == 0
                        && !masked.iter().any(|(s, _)| s == sub)
                    {
                        let itv = ints.query(x);
                        if itv.lo >= 0 && itv.hi <= mask {
                            masked.push((sub.clone(), x.clone()));
                        }
                    }
                }
            });
        }
        for (sub, x) in masked {
            if !uf.same_class(&sub, &x) {
                learned.push(sub.eq(x));
            }
        }
        if !learned.is_empty() {
            let mut rest = all;
            rest.extend(learned);
            return check_rec(env, rest, budget, cases, depth + 1, capture);
        }
    }

    // Case splitting over disjunctions.
    if let Some((a, b)) = atoms.ors.first().cloned() {
        if *cases == 0 || depth > 8 {
            return SatResult::Unknown;
        }
        let rest: Vec<Expr> = atoms_to_exprs(&atoms, 1);
        let mut any_unknown = false;
        for branch in [a, b] {
            *cases = cases.saturating_sub(1);
            let mut case = rest.clone();
            case.push(simplify(env, &branch));
            // No capture through case splits: a Sat decided by one case
            // is not a state valid for the whole conjunction.
            match check_rec(env, case, budget, cases, depth + 1, None) {
                SatResult::Sat => return SatResult::Sat,
                SatResult::Unknown => any_unknown = true,
                SatResult::Unsat => {}
            }
        }
        return if any_unknown {
            SatResult::Unknown
        } else {
            SatResult::Unsat
        };
    }

    // A clean Sat: no disjunction decided the verdict and (when depth<8,
    // the same bound the learning rules use) nothing was left to learn —
    // the state below is the complete end-of-solve state and is safe to
    // freeze for incremental extension.
    if depth < 8 {
        if let Some(slot) = capture {
            let residual = atoms_to_exprs(&atoms, 0);
            let mut mask_sites = Vec::new();
            collect_mask_sites(&residual, &mut mask_sites);
            *slot = Some(CapturedState {
                env: Arc::new(env.clone()),
                uf: Arc::new(uf),
                atoms: Arc::new(atoms),
                ints: Arc::new(ints),
                nums: Arc::new(nums),
                mask_sites: mask_sites.into(),
            });
        }
    }
    SatResult::Sat
}

/// Re-serialises atoms into expressions (skipping the first `skip_ors`
/// disjunctions, which the caller is splitting on).
fn atoms_to_exprs(atoms: &Atoms, skip_ors: usize) -> Vec<Expr> {
    let mut out = Vec::new();
    for (a, b) in atoms.eqs.iter().chain(&atoms.uf_eqs) {
        out.push(a.clone().eq(b.clone()));
    }
    for (a, b) in &atoms.neqs {
        out.push(a.clone().ne(b.clone()));
    }
    for (a, b, strict) in &atoms.int_cmps {
        let op = if *strict { BinOp::Lt } else { BinOp::Leq };
        out.push(a.clone().bin(op, b.clone()));
    }
    for (t, x, left, strict) in &atoms.num_cmps {
        let op = if *strict { BinOp::Lt } else { BinOp::Leq };
        out.push(if *left {
            t.clone().bin(op, Expr::num(*x))
        } else {
            Expr::num(*x).bin(op, t.clone())
        });
    }
    for (a, b) in atoms.ors.iter().skip(skip_ors) {
        out.push(a.clone().or(b.clone()));
    }
    out.extend(atoms.opaque.iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::LVar;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    fn check(cs: &[Expr]) -> SatResult {
        check_conjunction(cs, SatBudget::default())
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(check(&[]), SatResult::Sat);
        assert_eq!(check(&[Expr::tt()]), SatResult::Sat);
        assert_eq!(check(&[Expr::ff()]), SatResult::Unsat);
    }

    #[test]
    fn equality_contradiction() {
        assert_eq!(
            check(&[x(0).eq(Expr::int(1)), x(0).eq(Expr::int(2))]),
            SatResult::Unsat
        );
        assert_eq!(
            check(&[x(0).eq(x(1)), x(1).eq(Expr::int(2)), x(0).eq(Expr::int(2))]),
            SatResult::Sat
        );
    }

    #[test]
    fn disequality_contradiction() {
        assert_eq!(check(&[x(0).eq(x(1)), x(0).ne(x(1))]), SatResult::Unsat);
        assert_eq!(check(&[x(0).ne(Expr::int(3))]), SatResult::Sat);
    }

    #[test]
    fn interval_contradiction() {
        // x < 5 ∧ 5 ≤ x
        assert_eq!(
            check(&[x(0).lt(Expr::int(5)), Expr::int(5).le(x(0)),]),
            SatResult::Unsat
        );
        // 0 ≤ x ∧ x ≤ 1 ∧ x ≠ 0 ∧ x ≠ 1
        assert_eq!(
            check(&[
                Expr::int(0).le(x(0)),
                x(0).le(Expr::int(1)),
                x(0).ne(Expr::int(0)),
                x(0).ne(Expr::int(1)),
            ]),
            SatResult::Unsat
        );
    }

    #[test]
    fn transitive_interval_chain() {
        assert_eq!(
            check(&[x(0).lt(x(1)), x(1).lt(x(2)), x(2).lt(x(0))]),
            SatResult::Unsat,
            "strict cycle"
        );
        assert_eq!(check(&[x(0).lt(x(1)), x(1).lt(x(2))]), SatResult::Sat);
    }

    #[test]
    fn substitution_closure_resolves_through_equalities() {
        // x0 = x1 ∧ x1 = 3 ∧ x0 + 1 < 3  →  4 < 3 unsat
        assert_eq!(
            check(&[
                x(0).eq(x(1)),
                x(1).eq(Expr::int(3)),
                x(0).add(Expr::int(1)).lt(Expr::int(3)),
            ]),
            SatResult::Unsat
        );
    }

    #[test]
    fn type_conflicts_are_unsat() {
        let tf = |e: Expr, t: TypeTag| e.type_of().eq(Expr::type_tag(t));
        assert_eq!(
            check(&[tf(x(0), TypeTag::Int), tf(x(0), TypeTag::Str)]),
            SatResult::Unsat
        );
        assert_eq!(
            check(&[tf(x(0), TypeTag::Int), x(0).eq(Expr::str("s"))]),
            SatResult::Unsat
        );
    }

    #[test]
    fn disjunction_splitting() {
        // (x=1 ∨ x=2) ∧ x≠1 ∧ x≠2
        assert_eq!(
            check(&[
                x(0).eq(Expr::int(1)).or(x(0).eq(Expr::int(2))),
                x(0).ne(Expr::int(1)),
                x(0).ne(Expr::int(2)),
            ]),
            SatResult::Unsat
        );
        assert_eq!(
            check(&[
                x(0).eq(Expr::int(1)).or(x(0).eq(Expr::int(2))),
                x(0).ne(Expr::int(1)),
            ]),
            SatResult::Sat
        );
    }

    #[test]
    fn num_comparisons() {
        assert_eq!(
            check(&[x(0).lt(Expr::num(1.0)), Expr::num(2.0).le(x(0)),]),
            SatResult::Unsat
        );
        assert_eq!(check(&[x(0).lt(Expr::num(1.0))]), SatResult::Sat);
    }

    #[test]
    fn bool_atoms() {
        assert_eq!(check(&[x(0).clone(), x(0).not()]), SatResult::Unsat);
        assert_eq!(check(&[x(0).clone()]), SatResult::Sat);
    }

    #[test]
    fn list_structure() {
        // {{1, x}} = {{1, 2}} ∧ x ≠ 2
        assert_eq!(
            check(&[
                Expr::list([Expr::int(1), x(0)]).eq(Expr::list([Expr::int(1), Expr::int(2)])),
                x(0).ne(Expr::int(2)),
            ]),
            SatResult::Unsat
        );
    }
}
