//! Union-find over GIL expressions with literal representatives.
//!
//! The sat checker's equality engine: terms are opaque expressions; merging
//! two classes whose literal representatives differ is a contradiction.
//! Instead of full congruence closure, the checker runs *substitution
//! closure* (see `sat.rs`): after each merge round, atoms are rewritten with
//! class representatives and re-simplified to a fixpoint — simpler, and
//! precise enough for the equalities produced by symbolic execution (mostly
//! `lvar = literal` and `lvar = lvar`).

use gillian_gil::{Expr, Value};
use std::collections::BTreeMap;

/// A union-find over expressions, tracking a literal value per class when
/// one is known.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: BTreeMap<Expr, Expr>,
    /// Literal representative of each root's class, if any.
    value: BTreeMap<Expr, Value>,
}

impl UnionFind {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds the root of `e`'s class (path-halving-free, functional maps).
    pub fn find(&self, e: &Expr) -> Expr {
        let mut cur = e.clone();
        while let Some(p) = self.parent.get(&cur) {
            if p == &cur {
                break;
            }
            cur = p.clone();
        }
        cur
    }

    /// The literal value of `e`'s class, if known. Literal expressions are
    /// their own value.
    pub fn value_of(&self, e: &Expr) -> Option<Value> {
        if let Expr::Val(v) = e {
            return Some(v.clone());
        }
        let root = self.find(e);
        if let Expr::Val(v) = &root {
            return Some(v.clone());
        }
        self.value.get(&root).cloned()
    }

    /// Merges the classes of `a` and `b`.
    ///
    /// Returns `false` on contradiction: the two classes are pinned to
    /// distinct literal values.
    #[must_use]
    pub fn union(&mut self, a: &Expr, b: &Expr) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        let va = self.class_value(&ra);
        let vb = self.class_value(&rb);
        match (&va, &vb) {
            (Some(x), Some(y)) if x != y => return false,
            _ => {}
        }
        // Prefer a literal root; otherwise the smaller expression.
        let (root, child) = match (&ra, &rb) {
            (Expr::Val(_), _) => (ra.clone(), rb.clone()),
            (_, Expr::Val(_)) => (rb.clone(), ra.clone()),
            _ => {
                if ra.size() <= rb.size() {
                    (ra.clone(), rb.clone())
                } else {
                    (rb.clone(), ra.clone())
                }
            }
        };
        self.parent.insert(child.clone(), root.clone());
        if let Some(v) = va.or(vb) {
            if !matches!(root, Expr::Val(_)) {
                self.value.insert(root, v);
            }
        }
        true
    }

    fn class_value(&self, root: &Expr) -> Option<Value> {
        if let Expr::Val(v) = root {
            Some(v.clone())
        } else {
            self.value.get(root).cloned()
        }
    }

    /// The representative to substitute for `e`: the class literal if known,
    /// otherwise the class root.
    pub fn repr(&self, e: &Expr) -> Expr {
        match self.value_of(e) {
            Some(v) => Expr::Val(v),
            None => self.find(e),
        }
    }

    /// Substitutes every subterm of `e` by its class representative
    /// (shared by the closure loop and the incremental fast path, so both
    /// rewrite atoms identically).
    pub fn apply(&self, e: &Expr) -> Expr {
        e.subst(&|sub| {
            let r = self.repr(sub);
            (r != *sub).then_some(r)
        })
    }

    /// All known `term → literal` bindings (for model construction).
    pub fn literal_bindings(&self) -> Vec<(Expr, Value)> {
        let mut out = Vec::new();
        let keys: Vec<Expr> = self.parent.keys().cloned().collect();
        for k in keys {
            if matches!(k, Expr::Val(_)) {
                continue;
            }
            if let Some(v) = self.value_of(&k) {
                out.push((k, v));
            }
        }
        // Roots holding values but never appearing as children.
        for (root, v) in &self.value {
            if !out.iter().any(|(e, _)| e == root) && !matches!(root, Expr::Val(_)) {
                out.push((root.clone(), v.clone()));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Tests whether `a` and `b` are known equal.
    pub fn same_class(&self, a: &Expr, b: &Expr) -> bool {
        if a == b {
            return true;
        }
        if let (Some(x), Some(y)) = (self.value_of(a), self.value_of(b)) {
            return x == y;
        }
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::LVar;

    fn x(i: u64) -> Expr {
        Expr::lvar(LVar(i))
    }

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new();
        assert!(uf.union(&x(0), &x(1)));
        assert!(uf.union(&x(1), &x(2)));
        assert!(uf.same_class(&x(0), &x(2)));
        assert!(!uf.same_class(&x(0), &x(3)));
    }

    #[test]
    fn literal_pins_class() {
        let mut uf = UnionFind::new();
        assert!(uf.union(&x(0), &Expr::int(5)));
        assert!(uf.union(&x(1), &x(0)));
        assert_eq!(uf.value_of(&x(1)), Some(Value::Int(5)));
        assert_eq!(uf.repr(&x(1)), Expr::int(5));
    }

    #[test]
    fn conflicting_literals_contradict() {
        let mut uf = UnionFind::new();
        assert!(uf.union(&x(0), &Expr::int(5)));
        assert!(uf.union(&x(1), &Expr::int(6)));
        assert!(!uf.union(&x(0), &x(1)));
    }

    #[test]
    fn literal_bindings_are_complete() {
        let mut uf = UnionFind::new();
        assert!(uf.union(&x(0), &x(1)));
        assert!(uf.union(&x(1), &Expr::str("v")));
        let binds = uf.literal_bindings();
        assert!(binds.contains(&(x(0), Value::str("v"))));
        assert!(binds.contains(&(x(1), Value::str("v"))));
    }
}
