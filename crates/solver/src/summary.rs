//! Persistent per-procedure summaries (`DESIGN.md` §17).
//!
//! A summary is a cached implication between a call-site condition and a
//! post-state: *"under entry condition `π`, calling `f(ā)` adds exactly
//! the conjuncts `δ̄` to the path condition and returns `r`"*. The paper's
//! compositional follow-ups (Gillian part ii) treat procedure specs this
//! way; here the entries are **harvested from execution** rather than
//! written by hand — when a call frame returns cleanly with every branch
//! decision inside the callee having been a *proven* one-sided Sat (see
//! the harvest conditions below), the engine records the entry and later
//! calls with the same arguments under a condition that **subsumes** the
//! entry condition splice the post-state instead of re-executing.
//!
//! ## Soundness conditions
//!
//! A callee window is summarizable only when, between call and return:
//!
//! - **no fork happened** — every symbolic guard was one-sided with the
//!   surviving side proven `Sat` and the dead side proven `Unsat`, so the
//!   callee contributed no branch-trace entries and the recorded deltas
//!   are the *unique* continuation under the entry condition;
//! - **no memory action ran** — the heap footprint is untouched (a write
//!   would escape the summary's store-only post-state);
//! - **no fresh symbol was allocated** — splicing would otherwise skip
//!   allocator increments and desynchronize later `uSym`/`iSym` sites.
//!
//! Under those conditions the callee's effect on the caller is exactly
//! (pc deltas, return expression): callee store writes die with the frame
//! and evaluation results are program-variable-free. Because the full
//! simplifier's output depends on the path condition only through its
//! typing environment ([`crate::pathcond::PcEnv`] — the invariant the
//! simplify memo is keyed on), re-applying a summary under a *different*
//! condition is exact as long as (a) the new condition subsumes the entry
//! condition, (b) the typing environments are content-equal, and (c) each
//! recorded delta reproduces the same one-sided verdict pair under the
//! new condition. The application pass checks all three and falls through
//! to normal execution on any deviation.
//!
//! ## Persistence
//!
//! [`SummaryStore::save_file`]/[`SummaryStore::load_file`] serialize the
//! store following the checkpoint conventions (`DESIGN.md` §14): a magic
//! header, a format version, an FNV-1a checksum over the payload, one
//! re-interned post-order term table shared by every entry, and an atomic
//! tmp+rename write. Loads never panic on untrusted bytes: every failure
//! is a typed [`SummaryLoadError`], and a poisoned file degrades the run
//! to cold execution.

use crate::pathcond::{PathCondition, PcKey};
use crate::sat::SatResult;
use crate::solver::Solver;
use gillian_gil::serial::{self, ByteReader, Decoder, Encoder, WireError};
use gillian_gil::{Expr, Ident, Prog};
use gillian_telemetry::{names, registry, Counter};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// File magic: identifies a Gillian summary store on disk.
pub const SUMMARY_MAGIC: &[u8; 8] = b"GILSUM\0\0";

/// Current format version. Readers reject other versions with
/// [`SummaryLoadError::BadVersion`]; there is no cross-version migration
/// (summaries are a cache — a stale file is simply re-harvested).
pub const SUMMARY_VERSION: u32 = 2;

/// Most arguments a summarized call may take (larger calls are skipped).
pub const MAX_ARGS: usize = 8;
/// Most path-condition deltas a summary may carry.
pub const MAX_DELTAS: usize = 16;
/// Most entries kept per procedure (distinct argument/condition shapes).
pub const MAX_ENTRIES_PER_PROC: usize = 32;
/// Global entry cap across all procedures.
pub const MAX_ENTRIES: usize = 4096;

/// FNV-1a over a byte slice (same parameters as the checkpoint format).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The store's handles into the process-global telemetry registry,
/// fetched once so the call hot path never takes the registry lock.
struct Tel {
    recorded: &'static Counter,
    applied: &'static Counter,
    missed: &'static Counter,
    escaped: &'static Counter,
}

fn tel() -> &'static Tel {
    static TEL: OnceLock<Tel> = OnceLock::new();
    TEL.get_or_init(|| Tel {
        recorded: registry().counter(names::SUMMARY_RECORDED),
        applied: registry().counter(names::SUMMARY_APPLIED),
        missed: registry().counter(names::SUMMARY_MISSED),
        escaped: registry().counter(names::SUMMARY_ESCAPED),
    })
}

/// One harvested summary: under `entry_pc`, calling the procedure with
/// exactly `args` appends `deltas` (in order) to the path condition and
/// returns `ret` normally.
#[derive(Clone, Debug)]
pub struct SummaryEntry {
    /// The exact (interned) argument expressions of the harvested call.
    pub args: Vec<Expr>,
    /// The caller's path condition at call entry.
    pub entry_pc: PathCondition,
    /// Canonical key of `entry_pc` (order-insensitive conjunct identity).
    entry_key: PcKey,
    /// Conjuncts the callee pushed, oldest first — each one a proven
    /// one-sided guard under the condition preceding it.
    pub deltas: Vec<Expr>,
    /// The (program-variable-free) return expression.
    pub ret: Expr,
    /// Fingerprint of the callee's body at harvest time; applications
    /// under a program whose procedure fingerprints differ are skipped.
    pub fingerprint: u64,
}

/// Cumulative counters, readable at any time (mirrors
/// [`crate::solver::SolverStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Summaries harvested from clean call returns.
    pub recorded: u64,
    /// Call sites answered by splicing a summary post-state.
    pub applied: u64,
    /// Call sites with candidate entries that failed the applicability
    /// check (fingerprint, arguments, subsumption, typing, or a delta
    /// verdict deviation).
    pub missed: u64,
    /// Open call windows invalidated by a footprint escape (fork, memory
    /// action, fresh symbol) before their frame returned.
    pub escaped: u64,
}

/// A typed summary-file load failure. Loading never panics on untrusted
/// bytes; every corruption mode maps to one of these (checked in this
/// order: magic, version, checksum, structure, trailing bytes).
#[derive(Debug)]
pub enum SummaryLoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The first eight bytes are not [`SUMMARY_MAGIC`].
    BadMagic,
    /// The file is a summary store of another format version.
    BadVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The payload does not match its recorded checksum.
    ChecksumMismatch,
    /// The payload failed structural decoding.
    Corrupt(WireError),
    /// Structurally valid bytes with an impossible value.
    BadData(&'static str),
}

impl fmt::Display for SummaryLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryLoadError::Io(e) => write!(f, "summary file i/o: {e}"),
            SummaryLoadError::BadMagic => write!(f, "not a summary file (bad magic)"),
            SummaryLoadError::BadVersion { found, expected } => {
                write!(f, "summary version {found}, this build reads {expected}")
            }
            SummaryLoadError::ChecksumMismatch => write!(f, "summary checksum mismatch"),
            SummaryLoadError::Corrupt(e) => write!(f, "summary payload corrupt: {e}"),
            SummaryLoadError::BadData(what) => write!(f, "summary payload invalid: {what}"),
        }
    }
}

impl std::error::Error for SummaryLoadError {}

impl From<WireError> for SummaryLoadError {
    fn from(e: WireError) -> Self {
        SummaryLoadError::Corrupt(e)
    }
}

/// A summary-file write failure.
#[derive(Debug)]
pub enum SummarySaveError {
    /// Filesystem failure (temp write or rename).
    Io(std::io::Error),
    /// An entry failed to serialize.
    Wire(WireError),
}

impl fmt::Display for SummarySaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummarySaveError::Io(e) => write!(f, "summary file i/o: {e}"),
            SummarySaveError::Wire(e) => write!(f, "summary serialization: {e}"),
        }
    }
}

impl std::error::Error for SummarySaveError {}

/// Environment variable naming the summary persistence file: armed runs
/// load it at explore start and write it back at explore end. Unset (or
/// empty) keeps summaries in-process only.
pub const SUMMARY_FILE_ENV: &str = "GILLIAN_SUMMARY_FILE";

/// The `GILLIAN_SUMMARY_FILE` path, if one is configured.
pub fn file_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os(SUMMARY_FILE_ENV)
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

/// Per-procedure fingerprints of a program: FNV-1a over each procedure's
/// rendered text (params + body). Summaries are applied only when the
/// callee's fingerprint matches the one recorded at harvest, so a solver
/// shared across many programs (the normal suite shape) never splices a
/// summary from one program into another that happens to reuse the name.
pub fn program_fingerprints(prog: &Prog) -> HashMap<Ident, u64> {
    prog.iter()
        .map(|p| (p.name.clone(), fnv1a(p.to_string().as_bytes())))
        .collect()
}

/// The per-procedure summary store. Lives on the [`Solver`] so entries
/// are shared by every worker of a run and survive across runs in the
/// same process (warm in-process reuse); [`SummaryStore::save_file`] and
/// [`SummaryStore::load_file`] extend that across processes.
///
/// Interior-mutable and thread-safe, like the solver's other caches. The
/// store is **disarmed** by default: a disarmed store costs one relaxed
/// atomic load per call site and neither records nor applies. The
/// exploration engine arms it (with the active program's procedure
/// fingerprints) when `ExploreConfig::summaries` / `GILLIAN_SUMMARIES`
/// asks for it, and disarms it at run end.
#[derive(Debug, Default)]
pub struct SummaryStore {
    /// Fast gate consulted by every Call/Return hook.
    armed: AtomicBool,
    /// Fingerprints of the armed program's procedures.
    programs: Mutex<HashMap<Ident, u64>>,
    /// Harvested entries per procedure.
    entries: Mutex<HashMap<Ident, Vec<SummaryEntry>>>,
    /// Total entries across all procedures (mirror of map size, kept so
    /// the cap check never walks the map).
    total: AtomicU64,
    recorded: AtomicU64,
    applied: AtomicU64,
    missed: AtomicU64,
    escaped: AtomicU64,
}

impl SummaryStore {
    /// An empty, disarmed store.
    pub fn new() -> SummaryStore {
        SummaryStore::default()
    }

    /// True when the store is armed for recording and application.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Arms the store for the program whose procedure fingerprints are
    /// given. Entries already held (from earlier runs or a loaded file)
    /// stay; they simply only apply where fingerprints match.
    pub fn arm(&self, fingerprints: HashMap<Ident, u64>) {
        *lock_unpoisoned(&self.programs) = fingerprints;
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms the store (idempotent). Entries are retained for the next
    /// armed run; use [`SummaryStore::clear`] to drop them.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Drops every entry (the armed flag and counters are untouched).
    pub fn clear(&self) {
        lock_unpoisoned(&self.entries).clear();
        self.total.store(0, Ordering::Relaxed);
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Relaxed) as usize
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> SummaryStats {
        SummaryStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            missed: self.missed.load(Ordering::Relaxed),
            escaped: self.escaped.load(Ordering::Relaxed),
        }
    }

    /// Notes `n` call windows invalidated by a footprint escape.
    pub fn note_escaped(&self, n: u64) {
        if n > 0 {
            self.escaped.fetch_add(n, Ordering::Relaxed);
            tel().escaped.add(n);
        }
    }

    /// The armed fingerprint of `proc`, if the armed program defines it.
    fn armed_fingerprint(&self, proc: &Ident) -> Option<u64> {
        lock_unpoisoned(&self.programs).get(proc).copied()
    }

    /// Records a harvested summary for `callee`. The caller (the engine's
    /// Return hook) guarantees the harvest conditions; this method
    /// enforces the caps, deduplicates against an existing entry with the
    /// same arguments and entry condition, and attaches the armed
    /// fingerprint (skipping the record when the armed program does not
    /// define `callee` — e.g. a hand-built configuration).
    pub fn record(
        &self,
        callee: &Ident,
        args: &[Expr],
        entry_pc: PathCondition,
        deltas: Vec<Expr>,
        ret: Expr,
    ) {
        if !self.armed() {
            return;
        }
        if args.len() > MAX_ARGS || deltas.len() > MAX_DELTAS || entry_pc.is_trivially_false() {
            return;
        }
        let Some(fingerprint) = self.armed_fingerprint(callee) else {
            return;
        };
        if self.total.load(Ordering::Relaxed) as usize >= MAX_ENTRIES {
            return;
        }
        let entry_key = entry_pc.cache_key();
        let mut map = lock_unpoisoned(&self.entries);
        let list = map.entry(callee.clone()).or_default();
        if list.len() >= MAX_ENTRIES_PER_PROC {
            return;
        }
        if list
            .iter()
            .any(|e| e.fingerprint == fingerprint && e.args == args && e.entry_key == entry_key)
        {
            return;
        }
        list.push(SummaryEntry {
            args: args.to_vec(),
            entry_pc,
            entry_key,
            deltas,
            ret,
            fingerprint,
        });
        drop(map);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        tel().recorded.incr();
    }

    /// Attempts to answer a call to `callee` with `args` under `pc` from
    /// a recorded summary. On success the deltas are spliced onto `pc`
    /// (mutating it exactly as executing the callee would have) and the
    /// recorded return expression is returned; on any miss `pc` is left
    /// untouched and the caller falls through to normal execution.
    ///
    /// Applicability, per candidate entry:
    ///
    /// 1. fingerprint matches the armed program's `callee`;
    /// 2. arguments are term-identical (interned equality);
    /// 3. **fast path** — `pc` has exactly the entry's conjunct set
    ///    ([`PcKey`] equality): the recorded deltas re-push verbatim;
    /// 4. **generalized path** — `pc` [`PathCondition::subsumes`] the
    ///    entry condition *and* induces a content-equal typing
    ///    environment (so every simplification inside the callee would
    ///    reproduce), in which case each recorded delta must reproduce
    ///    its proven one-sided verdict pair (`Sat` with, `Unsat`
    ///    against) under the growing condition, adopting the solver's
    ///    extended condition at each step exactly as execution would.
    pub fn try_apply(
        &self,
        callee: &Ident,
        args: &[Expr],
        pc: &mut PathCondition,
        solver: &Solver,
    ) -> Option<Expr> {
        if !self.armed() {
            return None;
        }
        let fingerprint = self.armed_fingerprint(callee)?;
        let candidates: Vec<SummaryEntry> = {
            let map = lock_unpoisoned(&self.entries);
            let list = map.get(callee)?;
            list.iter()
                .filter(|e| e.fingerprint == fingerprint && e.args == args)
                .cloned()
                .collect()
        };
        if candidates.is_empty() {
            return None;
        }
        let key = pc.cache_key();
        // Fast path first: an exact conjunct-set match replays the deltas
        // with no solver traffic at all.
        for entry in &candidates {
            if entry.entry_key == key {
                for d in &entry.deltas {
                    pc.push(d.clone());
                }
                self.applied.fetch_add(1, Ordering::Relaxed);
                tel().applied.incr();
                return Some(entry.ret.clone());
            }
        }
        'candidates: for entry in &candidates {
            if !pc.subsumes(&entry.entry_pc) || pc.typing_env() != entry.entry_pc.typing_env() {
                continue;
            }
            // Reproduce each one-sided branch decision under the current
            // (stronger) condition. Any deviation — including an Unknown
            // verdict — rejects the candidate; the queries are the same
            // ones normal execution would issue, so nothing is wasted.
            let mut cur = pc.clone();
            for d in &entry.deltas {
                let neg = solver.simplify(&cur, &d.clone().not());
                let (with, next) = solver.sat_assume(&cur, d);
                if with != SatResult::Sat {
                    continue 'candidates;
                }
                if solver.sat_with(&cur, &neg) != SatResult::Unsat {
                    continue 'candidates;
                }
                cur = next;
            }
            *pc = cur;
            self.applied.fetch_add(1, Ordering::Relaxed);
            tel().applied.incr();
            return Some(entry.ret.clone());
        }
        self.missed.fetch_add(1, Ordering::Relaxed);
        tel().missed.incr();
        None
    }

    /// Serializes every entry to `out` (header + checksum + payload).
    fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut enc = Encoder::new();
        let mut body = Vec::new();
        let map = lock_unpoisoned(&self.entries);
        // Canonical order: procedures by name, entries in harvest order.
        let mut procs: Vec<&Ident> = map.keys().collect();
        procs.sort();
        let total: usize = map.values().map(Vec::len).sum();
        serial::put_len(&mut body, total, "summary entries")?;
        for proc in procs {
            for e in &map[proc] {
                serial::put_str(&mut body, proc)?;
                serial::put_u64(&mut body, e.fingerprint);
                serial::put_len(&mut body, e.args.len(), "summary args")?;
                for a in &e.args {
                    enc.write_expr(&mut body, a)?;
                }
                e.entry_pc.save(&mut enc, &mut body)?;
                serial::put_len(&mut body, e.deltas.len(), "summary deltas")?;
                for d in &e.deltas {
                    enc.write_expr(&mut body, d)?;
                }
                enc.write_expr(&mut body, &e.ret)?;
            }
        }
        drop(map);
        let mut payload = Vec::new();
        enc.write_table(&mut payload)?;
        payload.extend_from_slice(&body);
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(SUMMARY_MAGIC);
        serial::put_u32(&mut out, SUMMARY_VERSION);
        serial::put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Decodes a summary file body, returning the entries it holds.
    fn decode(bytes: &[u8]) -> Result<Vec<(Ident, SummaryEntry)>, SummaryLoadError> {
        if bytes.len() < 8 {
            return Err(SummaryLoadError::Corrupt(WireError::Truncated));
        }
        if &bytes[..8] != SUMMARY_MAGIC {
            return Err(SummaryLoadError::BadMagic);
        }
        let mut r = ByteReader::new(&bytes[8..]);
        let version = r.u32()?;
        if version != SUMMARY_VERSION {
            return Err(SummaryLoadError::BadVersion {
                found: version,
                expected: SUMMARY_VERSION,
            });
        }
        let checksum = r.u64()?;
        let payload = &bytes[20..];
        if fnv1a(payload) != checksum {
            return Err(SummaryLoadError::ChecksumMismatch);
        }
        let mut r = ByteReader::new(payload);
        let dec = Decoder::read_table(&mut r)?;
        let n = r.count()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let proc = Ident::from(r.str()?);
            let fingerprint = r.u64()?;
            let argc = r.count()?;
            if argc > MAX_ARGS {
                return Err(SummaryLoadError::BadData("summary argument count over cap"));
            }
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(dec.read_expr(&mut r)?);
            }
            let entry_pc = PathCondition::load(&dec, &mut r)?;
            if entry_pc.is_trivially_false() {
                return Err(SummaryLoadError::BadData("trivially false entry condition"));
            }
            let dc = r.count()?;
            if dc > MAX_DELTAS {
                return Err(SummaryLoadError::BadData("summary delta count over cap"));
            }
            let mut deltas = Vec::with_capacity(dc);
            for _ in 0..dc {
                deltas.push(dec.read_expr(&mut r)?);
            }
            let ret = dec.read_expr(&mut r)?;
            let entry_key = entry_pc.cache_key();
            out.push((
                proc,
                SummaryEntry {
                    args,
                    entry_pc,
                    entry_key,
                    deltas,
                    ret,
                    fingerprint,
                },
            ));
        }
        if !r.is_empty() {
            return Err(SummaryLoadError::BadData(
                "trailing bytes after summary payload",
            ));
        }
        Ok(out)
    }

    /// Atomically writes the store to `path` (temp file + rename, so a
    /// crash mid-write never leaves a torn file behind).
    ///
    /// # Errors
    ///
    /// [`SummarySaveError`] on serialization or filesystem failure.
    pub fn save_file(&self, path: &Path) -> Result<(), SummarySaveError> {
        let bytes = self.encode().map_err(SummarySaveError::Wire)?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(SummarySaveError::Io)?;
        std::fs::rename(&tmp, path).map_err(SummarySaveError::Io)
    }

    /// Loads a summary file, merging its entries into this store (the
    /// same dedup and caps as live recording). Returns the number of
    /// entries merged.
    ///
    /// # Errors
    ///
    /// A typed [`SummaryLoadError`]; on error the store is unchanged, so
    /// a poisoned file degrades the run to cold execution rather than
    /// aborting it.
    pub fn load_file(&self, path: &Path) -> Result<usize, SummaryLoadError> {
        let bytes = std::fs::read(path).map_err(SummaryLoadError::Io)?;
        let entries = Self::decode(&bytes)?;
        let mut merged = 0usize;
        let mut map = lock_unpoisoned(&self.entries);
        for (proc, e) in entries {
            if self.total.load(Ordering::Relaxed) as usize >= MAX_ENTRIES {
                break;
            }
            let list = map.entry(proc).or_default();
            if list.len() >= MAX_ENTRIES_PER_PROC {
                continue;
            }
            if list.iter().any(|x| {
                x.fingerprint == e.fingerprint && x.args == e.args && x.entry_key == e.entry_key
            }) {
                continue;
            }
            list.push(e);
            self.total.fetch_add(1, Ordering::Relaxed);
            merged += 1;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::{Cmd, LVar, Proc};

    fn armed_store(procs: &[&str]) -> SummaryStore {
        let store = SummaryStore::new();
        store.arm(procs.iter().map(|p| (Ident::from(*p), 7u64)).collect());
        store
    }

    fn entry_parts() -> (Vec<Expr>, PathCondition, Vec<Expr>, Expr) {
        let x = Expr::lvar(LVar(0));
        let mut pc = PathCondition::new();
        pc.push(x.clone().lt(Expr::int(10)));
        let deltas = vec![Expr::int(0).le(x.clone())];
        (vec![x.clone()], pc, deltas, x.add(Expr::int(1)))
    }

    #[test]
    fn record_and_exact_apply_round_trip() {
        let store = armed_store(&["f"]);
        let solver = Solver::optimized();
        let (args, pc, deltas, ret) = entry_parts();
        store.record(&"f".into(), &args, pc.clone(), deltas.clone(), ret.clone());
        assert_eq!(store.len(), 1);
        let mut call_pc = pc.clone();
        let got = store.try_apply(&"f".into(), &args, &mut call_pc, &solver);
        assert_eq!(got, Some(ret));
        // The deltas were spliced.
        assert!(call_pc.conjuncts().contains(&deltas[0]));
        assert_eq!(store.stats().applied, 1);
    }

    #[test]
    fn disarmed_store_neither_records_nor_applies() {
        let store = SummaryStore::new();
        let solver = Solver::optimized();
        let (args, pc, deltas, ret) = entry_parts();
        store.record(&"f".into(), &args, pc.clone(), deltas, ret);
        assert!(store.is_empty());
        store.arm([("f".into(), 7u64)].into_iter().collect());
        let (args2, pc2, deltas2, ret2) = entry_parts();
        store.record(&"f".into(), &args2, pc2.clone(), deltas2, ret2);
        assert_eq!(store.len(), 1);
        store.disarm();
        let mut call_pc = pc;
        assert_eq!(
            store.try_apply(&"f".into(), &args, &mut call_pc, &solver),
            None
        );
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let store = armed_store(&["f"]);
        let solver = Solver::optimized();
        let (args, pc, deltas, ret) = entry_parts();
        store.record(&"f".into(), &args, pc.clone(), deltas, ret);
        // Re-arm as a different program: same name, different body.
        store.arm([("f".into(), 8u64)].into_iter().collect());
        let mut call_pc = pc;
        assert_eq!(
            store.try_apply(&"f".into(), &args, &mut call_pc, &solver),
            None
        );
    }

    #[test]
    fn generalized_apply_needs_subsumption_and_verdicts() {
        let store = armed_store(&["f"]);
        let solver = Solver::optimized();
        let x = Expr::lvar(LVar(0));
        let mut entry = PathCondition::new();
        entry.push(x.clone().lt(Expr::int(10)));
        // Delta provable one-sided under any extension keeping x < 10.
        let deltas = vec![x.clone().lt(Expr::int(20))];
        store.record(
            &"f".into(),
            std::slice::from_ref(&x),
            entry.clone(),
            deltas,
            Expr::int(1),
        );
        // A strictly stronger caller condition: subsumes the entry.
        let mut stronger = entry.clone();
        stronger.push(Expr::int(0).le(x.clone()));
        let mut call_pc = stronger.clone();
        let got = store.try_apply(&"f".into(), std::slice::from_ref(&x), &mut call_pc, &solver);
        assert_eq!(got, Some(Expr::int(1)));
        assert!(call_pc.conjuncts().contains(&x.clone().lt(Expr::int(20))));
        // A condition that does NOT subsume the entry must miss.
        let mut unrelated = PathCondition::new();
        unrelated.push(Expr::int(0).le(x.clone()));
        let before = unrelated.clone();
        assert_eq!(
            store.try_apply(&"f".into(), &[x], &mut unrelated, &solver),
            None
        );
        assert_eq!(unrelated, before, "a miss must leave the pc untouched");
    }

    #[test]
    fn save_load_round_trips_entries() {
        let store = armed_store(&["f", "g"]);
        let (args, pc, deltas, ret) = entry_parts();
        store.record(&"f".into(), &args, pc.clone(), deltas.clone(), ret.clone());
        store.record(&"g".into(), &[], PathCondition::new(), vec![], Expr::int(3));
        let dir = std::env::temp_dir().join(format!("gilsum-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.gilsum");
        store.save_file(&path).unwrap();

        let fresh = SummaryStore::new();
        assert_eq!(fresh.load_file(&path).unwrap(), 2);
        assert_eq!(fresh.len(), 2);
        // Re-loading is idempotent (dedup on merge).
        assert_eq!(fresh.load_file(&path).unwrap(), 0);
        fresh.arm([("f".into(), 7u64)].into_iter().collect());
        let solver = Solver::optimized();
        let mut call_pc = pc;
        assert_eq!(
            fresh.try_apply(&"f".into(), &args, &mut call_pc, &solver),
            Some(ret)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_track_body_changes() {
        let p1 = Prog::from_procs([Proc::new("f", ["x"], vec![Cmd::Return(Expr::pvar("x"))])]);
        let p2 = Prog::from_procs([Proc::new(
            "f",
            ["x"],
            vec![Cmd::Return(Expr::pvar("x").add(Expr::int(1)))],
        )]);
        let f1 = program_fingerprints(&p1);
        let f2 = program_fingerprints(&p2);
        assert_ne!(f1[&Ident::from("f")], f2[&Ident::from("f")]);
        assert_eq!(f1, program_fingerprints(&p1));
    }
}
