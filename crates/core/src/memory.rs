//! Memory model interfaces (paper Defs. 2.3 and 2.4).
//!
//! A tool developer instantiates Gillian by implementing these two traits
//! for their language's memory, plus a compiler from the language to GIL.
//! The engine lifts the memories to full state models automatically
//! (`ConcreteState`/`SymbolicState`).
//!
//! Action arguments and results are single values; actions taking several
//! inputs receive them as a GIL list (as in the paper's `mutate([x, p, e])`).
//!
//! ## Errors vs. branches
//!
//! A *concrete* action is deterministic here (the paper allows sets; every
//! real instantiation is deterministic) and either returns a value or a
//! *language error value* which the interpreter raises as the GIL error
//! outcome `E(v)` — this is how, e.g., MiniC surfaces undefined behaviour.
//!
//! A *symbolic* action returns a set of branches, each with an outcome
//! (value or error), the learned constraint to conjoin onto the path
//! condition, and the successor memory (Def. 2.4's
//! `µ̂.α(ê, π̂) ⇝ (µ̂′, ê′, π̂′)`). The memory is responsible for only
//! returning branches whose constraint is satisfiable with the current
//! path condition — it receives the solver for exactly that purpose.

use crate::checkpoint::StateIoError;
use gillian_gil::serial::{ByteReader, Decoder, Encoder};
use gillian_gil::{Expr, Value};
use gillian_solver::{PathCondition, Solver};

/// A concrete memory model `M = ⟨|M|, A, ea⟩` (Def. 2.3).
pub trait ConcreteMemory: Clone + std::fmt::Debug + Default {
    /// Executes action `name` with argument `arg`.
    ///
    /// # Errors
    ///
    /// Returns the language error value (raised as `E(v)`) when the action
    /// fails — e.g. lookup of an absent cell, C undefined behaviour.
    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value>;

    /// The dense code this memory assigns to action `name`, if any. Feeds
    /// the bytecode backend's per-site inline caches; `None` (the
    /// default) keeps the site on the stringly-named path.
    fn action_code(&self, _name: &str) -> Option<u16> {
        None
    }

    /// Executes the action behind a resolved inline cache: `code` is what
    /// [`ConcreteMemory::action_code`] returned for `name`. Must behave
    /// identically to `execute_action(name, arg)`; the default delegates.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`ConcreteMemory::execute_action`].
    fn execute_action_coded(&mut self, _code: u16, name: &str, arg: Value) -> Result<Value, Value> {
        self.execute_action(name, arg)
    }
}

/// One branch of a symbolic action's outcome.
#[derive(Clone, Debug)]
pub struct SymBranch<M> {
    /// The successor memory `µ̂′`.
    pub memory: M,
    /// The value outcome `ê′`: `Ok` continues execution, `Err` raises the
    /// GIL error outcome `E(v)`.
    pub outcome: Result<Expr, Expr>,
    /// The learned constraint `π̂′`, conjoined onto the path condition of
    /// the state (Def. 2.6, `[Action]` case).
    pub constraint: Expr,
}

impl<M> SymBranch<M> {
    /// A successful branch with no learned constraint.
    pub fn ok(memory: M, value: Expr) -> Self {
        SymBranch {
            memory,
            outcome: Ok(value),
            constraint: Expr::tt(),
        }
    }

    /// A successful branch with a learned constraint.
    pub fn ok_if(memory: M, value: Expr, constraint: Expr) -> Self {
        SymBranch {
            memory,
            outcome: Ok(value),
            constraint,
        }
    }

    /// An error branch with a learned constraint.
    pub fn err_if(memory: M, error: Expr, constraint: Expr) -> Self {
        SymBranch {
            memory,
            outcome: Err(error),
            constraint,
        }
    }
}

/// A symbolic memory model `M̂ = ⟨|M̂|, A, êa⟩` (Def. 2.4).
///
/// `Send` is a supertrait because symbolic states (which own their memory)
/// migrate between worker threads under the parallel explorer
/// ([`crate::explore::explore_parallel`]). Memories are values, not shared
/// structures, so this costs implementations nothing in practice.
pub trait SymbolicMemory: Clone + std::fmt::Debug + Default + Send {
    /// The instantiation's language tag, used by telemetry to label this
    /// memory's action latencies in traces and reports (`while`,
    /// `minijs`, `minic`, …).
    fn language() -> &'static str {
        "unknown"
    }

    /// Executes action `name` with (simplified) symbolic argument `arg`
    /// under path condition `pc`, returning all feasible branches.
    ///
    /// Implementations should use `solver` to prune branches whose
    /// constraint is unsatisfiable with `pc` (the engine conjoins the
    /// returned constraints without re-checking).
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>>;

    /// The dense code this memory assigns to action `name`, if any. Feeds
    /// the bytecode backend's per-site inline caches; `None` (the
    /// default) keeps the site on the stringly-named path.
    fn action_code(&self, _name: &str) -> Option<u16> {
        None
    }

    /// Executes the action behind a resolved inline cache: `code` is what
    /// [`SymbolicMemory::action_code`] returned for `name`. The branch
    /// set must be identical to `execute_action(name, arg, pc, solver)`;
    /// the default delegates. Implementations may use the pre-resolved
    /// code to skip string dispatch and take literal-argument fast paths
    /// that are unreachable from the tree-walk backend (keeping that
    /// backend a byte-identical differential reference).
    fn execute_action_coded(
        &self,
        _code: u16,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        self.execute_action(name, arg, pc, solver)
    }

    /// The logical variables occurring in the memory. Used by the
    /// soundness checkers to complete a model into a full logical
    /// environment (an lvar unconstrained by the path condition may take
    /// any value).
    fn lvars(&self) -> std::collections::BTreeSet<gillian_gil::LVar> {
        std::collections::BTreeSet::new()
    }

    /// Serializes this memory for a frontier checkpoint (`DESIGN.md` §14);
    /// terms go through `enc` so the checkpoint shares one term table.
    /// The default reports [`StateIoError::Unsupported`] — a memory that
    /// never checkpoints need not implement it, and one that *does* must,
    /// so forgetting can never silently drop memory state.
    ///
    /// # Errors
    ///
    /// Reports [`StateIoError`] when the memory does not support
    /// serialization.
    fn save(&self, _enc: &mut Encoder, _out: &mut Vec<u8>) -> Result<(), StateIoError> {
        Err(StateIoError::Unsupported(std::any::type_name::<Self>()))
    }

    /// Rebuilds a memory from its [`SymbolicMemory::save`] encoding.
    ///
    /// # Errors
    ///
    /// Reports [`StateIoError`] on unsupported memories or malformed
    /// bytes.
    fn load(_dec: &Decoder, _r: &mut ByteReader<'_>) -> Result<Self, StateIoError> {
        Err(StateIoError::Unsupported(std::any::type_name::<Self>()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, Default)]
    struct Nop;
    impl SymbolicMemory for Nop {
        fn execute_action(
            &self,
            _: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch::ok(Nop, arg.clone())]
        }
    }

    #[test]
    fn sym_branch_constructors() {
        let b = SymBranch::ok(Nop, Expr::int(1));
        assert_eq!(b.constraint, Expr::tt());
        assert!(b.outcome.is_ok());
        let e = SymBranch::err_if(Nop, Expr::str("boom"), Expr::ff());
        assert!(e.outcome.is_err());
    }
}
