//! The state-model interface (paper Def. 2.1).
//!
//! A state model `S = ⟨|S|, V, A, ea⟩` is the formal interface through which
//! GIL interacts with program state. [`GilState`] is its Rust rendering:
//! the interpreter (Fig. 1) is written once against this trait and executes
//! both concretely and symbolically.
//!
//! The paper's *proper* state models expose distinguished actions
//! (`setVar`, `setStore`, `getStore`, `eval`, `assume`, `uSym`, `iSym`);
//! here those appear as trait methods rather than stringly-named actions,
//! with `assume` folded into [`GilState::branch_on`] (its only use in the
//! semantics is the two conditional-goto rules). Memory actions `α` remain
//! stringly-typed and are dispatched through
//! [`GilState::execute_action`].

use crate::checkpoint::{StateCtx, StateIoError};
use gillian_gil::serial::{ByteReader, Decoder, Encoder};
use gillian_gil::{EvalScratch, Expr, ExprCode, Ident, Prog};
use gillian_solver::{FaultProbe, Interrupt};
use gillian_telemetry::Journal;

/// The branching result of a memory action on states: each branch pairs a
/// successor state with the action outcome (`Err` raises `E(v)`).
pub type ActionBranches<S, V> = Vec<(S, Result<V, V>)>;

/// The result of a fused guard evaluation ([`GilState::guard_code`]).
///
/// `Take` is the bytecode backend's fast lane: the guard decided without
/// forking, so the dispatch loop continues in place with no state clone
/// and no successor allocation. Semantically `Take(b)` is identical to
/// `Fork(vec![(self, b)])`.
#[derive(Clone, Debug)]
pub enum GuardEval<S: GilState> {
    /// The guard decided deterministically: continue in place.
    Take(bool),
    /// The guard forked: surviving successor states, each paired with the
    /// truth value it assumed (empty when no branch is feasible).
    Fork(Vec<(S, bool)>),
    /// The guard failed to evaluate.
    Fail(<S as GilState>::V),
}

/// A GIL state: the engine-facing interface of a (lifted) state model.
///
/// `V` is the state's value type — [`gillian_gil::Value`] concretely,
/// [`Expr`] symbolically. Errors are values of the same type (they flow
/// into the GIL error outcome `E(v)`), hence the pervasive
/// `Result<Self::V, Self::V>`.
pub trait GilState: Clone + std::fmt::Debug + Sized {
    /// The values stored in and produced by this state.
    type V: Clone + std::fmt::Debug + std::fmt::Display;
    /// The variable store representation.
    type Store: Clone + std::fmt::Debug + Default;

    /// Evaluates an expression in the state's store (`evalₑ`).
    ///
    /// # Errors
    ///
    /// Returns the error value when evaluation fails (unbound variable,
    /// operator domain violation).
    fn eval(&self, e: &Expr) -> Result<Self::V, Self::V>;

    /// Assigns `v` to program variable `x` (`setVarₓ`).
    fn set_var(&mut self, x: &Ident, v: Self::V);

    /// The current store (`getStore`).
    fn store(&self) -> &Self::Store;

    /// Replaces the store (`setStore`).
    fn set_store(&mut self, store: Self::Store);

    /// Builds a callee store binding `params` to `args` positionally
    /// (missing arguments are left unbound; extra arguments are dropped).
    fn make_store(&self, params: &[Ident], args: Vec<Self::V>) -> Self::Store;

    /// Extracts a procedure identifier from an evaluated callee value.
    ///
    /// # Errors
    ///
    /// Returns an error value when `v` does not denote a procedure (for a
    /// symbolic state, when it is not a *literal* procedure identifier —
    /// dynamic dispatch must be resolved by compiled code before the call).
    fn resolve_proc(&self, v: &Self::V) -> Result<Ident, Self::V>;

    /// Branches on a boolean guard (the two `ifgoto` rules of Fig. 1,
    /// built from `assume ∘ eval`). Returns the surviving branches, each a
    /// successor state paired with the truth value it assumed. A concrete
    /// state returns exactly one branch; a symbolic state returns the
    /// satisfiable subset of `{true, false}`.
    ///
    /// # Errors
    ///
    /// Returns the error value when the guard fails to evaluate.
    fn branch_on(&self, e: &Expr) -> Result<Vec<(Self, bool)>, Self::V>;

    /// Allocates a fresh uninterpreted symbol (`uSym_j`).
    fn fresh_usym(&mut self, site: u32) -> Self::V;

    /// Allocates a fresh interpreted symbol (`iSym_j`): an arbitrary value
    /// concretely, a fresh logical variable symbolically.
    fn fresh_isym(&mut self, site: u32) -> Self::V;

    /// Executes memory action `name` (the `x := α(e)` rule). Each returned
    /// branch pairs a successor state with the action's outcome; an `Err`
    /// outcome raises the GIL error outcome `E(v)` on that branch.
    fn execute_action(self, name: &str, arg: Self::V) -> ActionBranches<Self, Self::V>;

    /// Evaluates a compiled expression site (the bytecode backend's
    /// `evalₑ`). Must agree with [`GilState::eval`] on
    /// [`ExprCode::source`] exactly — same values, same errors, same
    /// error order. The default does precisely that by delegating to the
    /// tree walk, so states that never override it (test doubles, hosted
    /// states) run unchanged under both backends.
    ///
    /// # Errors
    ///
    /// Returns the error value when evaluation fails, exactly as
    /// [`GilState::eval`] would.
    fn eval_code(&self, code: &ExprCode, _scratch: &mut EvalScratch) -> Result<Self::V, Self::V> {
        self.eval(code.source())
    }

    /// Branches on a compiled guard site (the bytecode `cmpgoto`
    /// superinstruction). Must be decision-equivalent to
    /// [`GilState::branch_on`] on [`ExprCode::source`]:
    /// [`GuardEval::Take`] may replace a deterministic single branch (it
    /// elides the state clone), but the surviving branch set and each
    /// branch's state must be identical. The default delegates to
    /// `branch_on`.
    fn guard_code(&self, code: &ExprCode, _scratch: &mut EvalScratch) -> GuardEval<Self> {
        match self.branch_on(code.source()) {
            Ok(branches) => GuardEval::Fork(branches),
            Err(v) => GuardEval::Fail(v),
        }
    }

    /// The dense code this state's memory model assigns to action `name`,
    /// if any. Feeds the per-site action inline caches of compiled
    /// programs; `None` (the default) keeps every site on the
    /// stringly-named [`GilState::execute_action`] path.
    fn action_code(&self, _name: &str) -> Option<u16> {
        None
    }

    /// Executes the action behind a resolved inline cache. `code` is the
    /// value a prior [`GilState::action_code`] call returned for `name`;
    /// behavior must be identical to `execute_action(name, arg)`. The
    /// default ignores the code and delegates.
    fn execute_action_coded(
        self,
        _code: u16,
        name: &str,
        arg: Self::V,
    ) -> ActionBranches<Self, Self::V> {
        self.execute_action(name, arg)
    }

    /// Wraps an engine-generated message as an error value.
    fn error_value(&self, msg: &str) -> Self::V;

    /// Installs the run's cooperative interrupt (wall-clock deadline plus
    /// cancellation token) into whatever solving machinery this state
    /// uses, so that long satisfiability queries observe the same limits
    /// as the exploration loop. The default is a no-op: concrete states
    /// have no solver and need none.
    fn install_interrupt(&self, _interrupt: Interrupt) {}

    /// Clears a previously installed interrupt (default no-op).
    fn clear_interrupt(&self) {}

    /// Installs the run's event journal into this state's solving
    /// machinery, so satisfiability queries and memory actions are
    /// journaled alongside the engine's own path events. Same lifecycle
    /// as [`GilState::install_interrupt`]; the default is a no-op
    /// (concrete states emit nothing).
    fn install_journal(&self, _journal: Journal) {}

    /// Clears a previously installed journal (default no-op).
    fn clear_journal(&self) {}

    /// Monotone count of `Unknown` satisfiability verdicts observed so far
    /// by this state's solving machinery. The exploration engines diff
    /// this across a run to report how often a branch was kept only
    /// because the solver could not decide it. Solver-free (concrete)
    /// states report `0`.
    fn unknown_verdicts(&self) -> u64 {
        0
    }

    /// Monotone counts of `(incremental, implication)` solver-reuse hits
    /// observed so far by this state's solving machinery. The exploration
    /// engines diff these across a run for the diagnostics report; they
    /// are informational only and never affect verdicts. Solver-free
    /// (concrete) states report `(0, 0)`.
    fn solver_reuse(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Serializes this state for a frontier checkpoint
    /// (`DESIGN.md` §14). Terms go through `enc` so the whole checkpoint
    /// shares one post-order term table. The default reports
    /// [`StateIoError::Unsupported`]: states that never checkpoint need
    /// not implement it.
    ///
    /// # Errors
    ///
    /// Reports [`StateIoError`] when the state (or a component of it, such
    /// as the language memory) does not support serialization.
    fn save_state(&self, _enc: &mut Encoder, _out: &mut Vec<u8>) -> Result<(), StateIoError> {
        Err(StateIoError::Unsupported(std::any::type_name::<Self>()))
    }

    /// Rebuilds a state from its [`GilState::save_state`] encoding,
    /// re-attaching it to the resuming process's machinery via `ctx`.
    ///
    /// # Errors
    ///
    /// Reports [`StateIoError`] on unsupported states or malformed bytes.
    fn load_state(
        _ctx: &StateCtx,
        _dec: &Decoder,
        _r: &mut ByteReader<'_>,
    ) -> Result<Self, StateIoError> {
        Err(StateIoError::Unsupported(std::any::type_name::<Self>()))
    }

    /// Serializes a store (used for the saved caller stores of checkpointed
    /// call stacks). Same default and contract as
    /// [`GilState::save_state`].
    ///
    /// # Errors
    ///
    /// Reports [`StateIoError`] when the store does not support
    /// serialization.
    fn save_store(
        _store: &Self::Store,
        _enc: &mut Encoder,
        _out: &mut Vec<u8>,
    ) -> Result<(), StateIoError> {
        Err(StateIoError::Unsupported(
            std::any::type_name::<Self::Store>(),
        ))
    }

    /// Rebuilds a store from its [`GilState::save_store`] encoding.
    ///
    /// # Errors
    ///
    /// Reports [`StateIoError`] on unsupported stores or malformed bytes.
    fn load_store(
        _ctx: &StateCtx,
        _dec: &Decoder,
        _r: &mut ByteReader<'_>,
    ) -> Result<Self::Store, StateIoError> {
        Err(StateIoError::Unsupported(
            std::any::type_name::<Self::Store>(),
        ))
    }

    /// Arms (or disarms) procedure-summary recording and application in
    /// this state's solving machinery for `prog` (`DESIGN.md` §17). Same
    /// one-run-at-a-time lifecycle as [`GilState::install_interrupt`];
    /// the default is a no-op — concrete states re-execute every call.
    fn configure_summaries(&self, _prog: &Prog, _enabled: bool) {}

    /// Attempts to answer a call to `callee` with already-evaluated
    /// arguments `args` from a recorded procedure summary. On success the
    /// state has been advanced exactly as executing the callee would have
    /// (path-condition deltas spliced) and the return value is produced
    /// without re-execution; `None` falls through to the normal call
    /// path. The default (concrete states, states without summary
    /// support) never answers.
    fn summary_apply(&mut self, _callee: &Ident, _args: &[Self::V]) -> Option<Self::V> {
        None
    }

    /// Notes that a call frame for `callee` was pushed at stack depth
    /// `depth` with arguments `args`, opening a summary-harvest window.
    /// The default is a no-op.
    fn summary_call(&mut self, _callee: &Ident, _args: &[Self::V], _depth: usize) {}

    /// Notes that the frame at stack depth `depth` is returning `ret`
    /// normally; a summary-capable state harvests the window opened by
    /// the matching [`GilState::summary_call`] if it stayed clean (no
    /// fork, no memory action, no fresh symbol). The default is a no-op.
    fn summary_return(&mut self, _ret: &Self::V, _depth: usize) {}

    /// Monotone `(recorded, applied)` summary counts observed so far by
    /// this state's solving machinery. The exploration engines diff these
    /// across a run for the diagnostics report; informational only.
    /// States without summary support report `(0, 0)`.
    fn summary_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Installs a deterministic fault probe into this state's solving
    /// machinery (the fault-injection harness, `DESIGN.md` §14). Same
    /// lifecycle as [`GilState::install_interrupt`]; the default is a
    /// no-op (solver-free states have nowhere to inject).
    fn install_fault_probe(&self, _probe: FaultProbe) {}

    /// Clears a previously installed fault probe (default no-op).
    fn clear_fault_probe(&self) {}
}
