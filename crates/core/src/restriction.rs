//! Restriction on abstract states (paper §3.1, Def. 3.1).
//!
//! Restriction `x₁ ⇃ x₂` strengthens `x₁` with information from `x₂`. It
//! generalises path conditions: in symbolic execution, restricting an
//! initial state with a final state conjoins the final path condition into
//! the initial one, *directing* concrete executions down the symbolic path
//! (Theorem 3.6). Gillian's allocators are restricted the same way, which
//! also directs the non-determinism of fresh-value generation.
//!
//! A restriction must satisfy three laws (checked by the property tests in
//! this crate and by [`check_restriction_laws`]):
//!
//! - **Idempotence**: `x ⇃ x = x`
//! - **Right commutativity**: `(x₁ ⇃ x₂) ⇃ x₃ = (x₁ ⇃ x₃) ⇃ x₂`
//! - **Weakening**: `x₁ ⇃ x₂ ⇃ x₃ = x₁  ⟹  x₁ ⇃ x₂ = x₁ ⇃ x₃ = x₁`
//!
//! Every restriction induces a pre-order `x₂ ⊑ x₁ ⇔ x₂ ⇃ x₁ = x₂` ("x₂ has
//! at least the information of x₁").

/// A restriction operator on a type (paper Def. 3.1).
pub trait Restrict: Sized {
    /// Strengthens `self` with information from `other`.
    fn restrict(&self, other: &Self) -> Self;

    /// The induced pre-order: `self ⊑ other` when restricting `self` with
    /// `other` gains nothing.
    fn refines(&self, other: &Self) -> bool
    where
        Self: PartialEq,
    {
        self.restrict(other) == *self
    }
}

/// Checks the three restriction laws on a triple of values, returning the
/// name of the first violated law. Used by instantiations' property tests.
pub fn check_restriction_laws<T: Restrict + PartialEq + Clone + std::fmt::Debug>(
    x1: &T,
    x2: &T,
    x3: &T,
) -> Result<(), &'static str> {
    if x1.restrict(x1) != *x1 {
        return Err("idempotence");
    }
    if x1.restrict(x2).restrict(x3) != x1.restrict(x3).restrict(x2) {
        return Err("right commutativity");
    }
    if x1.restrict(x2).restrict(x3) == *x1 && (x1.restrict(x2) != *x1 || x1.restrict(x3) != *x1) {
        return Err("weakening");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Restriction on sets (modelled as sorted vecs): union — the paradigm
    /// instance used to sanity-check the laws.
    #[derive(Clone, Debug, PartialEq)]
    struct InfoSet(Vec<u32>);

    impl Restrict for InfoSet {
        fn restrict(&self, other: &Self) -> Self {
            let mut v = self.0.clone();
            v.extend(other.0.iter().copied());
            v.sort_unstable();
            v.dedup();
            InfoSet(v)
        }
    }

    #[test]
    fn union_restriction_satisfies_laws() {
        let a = InfoSet(vec![1, 2]);
        let b = InfoSet(vec![2, 3]);
        let c = InfoSet(vec![5]);
        check_restriction_laws(&a, &b, &c).unwrap();
        check_restriction_laws(&a, &a, &a).unwrap();
        check_restriction_laws(&c, &b, &a).unwrap();
    }

    #[test]
    fn refines_is_the_induced_preorder() {
        let small = InfoSet(vec![1, 2, 3]);
        let big = InfoSet(vec![1, 2]);
        // `small` already contains everything in `big`.
        assert!(small.refines(&big));
        assert!(!big.refines(&small));
    }

    #[test]
    fn law_checker_detects_violations() {
        /// A broken "restriction" that overwrites instead of merging.
        #[derive(Clone, Debug, PartialEq)]
        struct Overwrite(u32);
        impl Restrict for Overwrite {
            fn restrict(&self, other: &Self) -> Self {
                Overwrite(other.0)
            }
        }
        let r = check_restriction_laws(&Overwrite(1), &Overwrite(2), &Overwrite(3));
        assert!(r.is_err());
    }
}
