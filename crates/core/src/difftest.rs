//! Differential symbolic-vs-concrete testing: the CSC oracle.
//!
//! The paper defines the concrete state constructor (Def. 2.5) and the
//! symbolic one (Def. 2.6) over the *same* interpreter precisely so the
//! two executions can be compared. This module industrialises that
//! comparison: [`run_differential`] explores a program symbolically, and
//! for every finished path extracts a witness model of the final path
//! condition, concretizes the `iSym` inputs through it (restriction-
//! directed execution, §3), replays the program concretely under the
//! scripted allocator, and compares what both sides produced —
//!
//! - the **outcome kind** (normal / error / vanished),
//! - the **return value** (symbolic value evaluated under the model vs
//!   the concrete value),
//! - the **final store**, binding by binding, and
//! - optionally the **final memory**, through the instantiation's
//!   [`MemoryInterpretation`] (`I(ε, µ̂) ≐ µ`).
//!
//! Any mismatch is a [`Divergence`] carrying the path's branch trace and
//! input script, so it replays deterministically (see
//! [`crate::explore::replay_path`]) and shrinks to a committed regression
//! via [`crate::generate::minimize`].
//!
//! Model extraction is *total modulo budget*: paths whose condition the
//! configured model search cannot crack are retried with escalated
//! budgets ([`gillian_solver::Solver::model_for_replay`]) before being
//! reported — never silently — as [`DifftestReport::skipped`].

use crate::concrete::ConcreteState;
use crate::explore::{explore, explore_with, ExploreConfig, ExploreOutcome};
use crate::memory::{ConcreteMemory, SymbolicMemory};
use crate::soundness::{complete_model, MemoryInterpretation};
use crate::state::GilState;
use crate::symbolic::SymbolicState;
use crate::testing::script_from_model;
use gillian_gil::{LVar, Prog, Value};
use gillian_solver::Solver;
use gillian_telemetry::{names, registry, Journal};
use std::collections::BTreeSet;
use std::sync::Arc;

/// What differed between the symbolic path and its concrete replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MismatchClass {
    /// The two runs ended in different outcome kinds.
    OutcomeKind,
    /// Both ended normally, with different return values.
    ReturnValue,
    /// A final-store binding differs (or is uninterpretable).
    Store,
    /// The interpreted symbolic memory differs from the concrete one.
    Memory,
    /// The concrete replay produced no path at all.
    MissingConcretePath,
}

impl std::fmt::Display for MismatchClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MismatchClass::OutcomeKind => "outcome-kind",
            MismatchClass::ReturnValue => "return-value",
            MismatchClass::Store => "store",
            MismatchClass::Memory => "memory",
            MismatchClass::MissingConcretePath => "missing-concrete-path",
        };
        f.write_str(s)
    }
}

/// One symbolic-vs-concrete mismatch: evidence of an engine or memory-
/// model bug (or a documented semantic gap — see `DESIGN.md` §13).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// What class of comparison failed.
    pub class: MismatchClass,
    /// The symbolic path's branch trace (successor index at every
    /// branching step) — the deterministic replay handle.
    pub trace: Vec<u32>,
    /// The concrete `iSym` script derived from the witness model.
    pub script: Vec<Value>,
    /// What the symbolic side produced (rendered).
    pub symbolic: String,
    /// What the concrete side produced (rendered).
    pub concrete: String,
    /// Where in the comparison the mismatch was found.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} (trace {:?}, script {:?}): symbolic {} vs concrete {}",
            self.class, self.detail, self.trace, self.script, self.symbolic, self.concrete
        )
    }
}

/// A symbolic path the oracle could not check, and why. Skips are
/// reported, never silent: a skipped path is a hole in the differential
/// guarantee.
#[derive(Clone, Debug)]
pub struct SkippedPath {
    /// The path's branch trace.
    pub trace: Vec<u32>,
    /// Why it was skipped (`truncated`, `engine-error`, `no-model`).
    pub reason: &'static str,
}

/// The outcome of one differential run.
#[derive(Clone, Debug, Default)]
pub struct DifftestReport {
    /// Symbolic paths explored.
    pub sym_paths: usize,
    /// GIL commands executed by the symbolic exploration.
    pub sym_cmds: u64,
    /// Paths replayed concretely and compared.
    pub replayed: usize,
    /// Paths replayed only after the escalated model search (the
    /// configured budget failed first).
    pub fallback_models: usize,
    /// Paths the oracle could not check, with reasons.
    pub skipped: Vec<SkippedPath>,
    /// Every mismatch found.
    pub divergences: Vec<Divergence>,
}

impl DifftestReport {
    /// True when every explored path was checked and agreed.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty() && self.skipped.is_empty()
    }

    /// True when no divergence was found (skips allowed).
    pub fn agreed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// A memory comparison hook for [`run_differential_with`]. The plain
/// oracle uses [`NoMemoryCheck`]; instantiations pass
/// [`InterpMemoryCheck`] built from their interpretation function.
pub trait MemoryCheck<M: SymbolicMemory, C: ConcreteMemory> {
    /// Compares the interpreted symbolic final memory against the
    /// concrete final memory. `Ok(())` when they agree; `Err((sym,
    /// conc))` renderings when they do not.
    fn compare(
        &self,
        model: &gillian_solver::Model,
        sym: &M,
        conc: &C,
    ) -> Result<(), (String, String)>;
}

/// Skips memory comparison (for memory-less or opaque instantiations).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMemoryCheck;

impl<M: SymbolicMemory, C: ConcreteMemory> MemoryCheck<M, C> for NoMemoryCheck {
    fn compare(&self, _: &gillian_solver::Model, _: &M, _: &C) -> Result<(), (String, String)> {
        Ok(())
    }
}

/// Memory comparison through a [`MemoryInterpretation`]: interprets the
/// symbolic memory under the model and demands structural equality with
/// the concrete memory (`I(ε, µ̂) = µ`, Def. 3.7 made executable).
#[derive(Clone, Copy, Debug, Default)]
pub struct InterpMemoryCheck<I>(pub I);

impl<I> MemoryCheck<I::Symbolic, I::Concrete> for InterpMemoryCheck<I>
where
    I: MemoryInterpretation,
    I::Concrete: PartialEq + std::fmt::Debug,
{
    fn compare(
        &self,
        model: &gillian_solver::Model,
        sym: &I::Symbolic,
        conc: &I::Concrete,
    ) -> Result<(), (String, String)> {
        match self.0.interpret(model, sym) {
            Ok(interpreted) if &interpreted == conc => Ok(()),
            Ok(interpreted) => Err((format!("{interpreted:?}"), format!("{conc:?}"))),
            Err(e) => Err((format!("uninterpretable: {e}"), format!("{conc:?}"))),
        }
    }
}

/// Runs the differential oracle with outcome/return/store comparison
/// only (no memory check) — the right entry point for engine-level
/// (memory-less) programs.
pub fn run_differential<M, C>(
    prog: &Prog,
    entry: &str,
    solver: Arc<Solver>,
    cfg: ExploreConfig,
) -> DifftestReport
where
    M: SymbolicMemory,
    C: ConcreteMemory,
{
    run_differential_with::<M, C, _>(prog, entry, solver, cfg, &NoMemoryCheck)
}

/// Runs the differential oracle with a memory comparison hook.
///
/// The symbolic exploration honours `cfg` (including `workers` and
/// `strategy`); every concrete replay runs serially with the same
/// budgets and a disabled journal (replays are deterministic and not
/// part of the run's trace).
pub fn run_differential_with<M, C, K>(
    prog: &Prog,
    entry: &str,
    solver: Arc<Solver>,
    cfg: ExploreConfig,
    memcheck: &K,
) -> DifftestReport
where
    M: SymbolicMemory,
    C: ConcreteMemory,
    K: MemoryCheck<M, C>,
{
    let initial = SymbolicState::<M>::new(solver.clone());
    let sym = explore_with(prog, entry, initial, cfg.clone());
    let mut conc_cfg = cfg.clone();
    conc_cfg.workers = 1;
    conc_cfg.journal = Journal::disabled();
    let mut report = DifftestReport {
        sym_paths: sym.paths.len(),
        sym_cmds: sym.total_cmds,
        ..Default::default()
    };
    let metrics = registry();
    for path in &sym.paths {
        if matches!(path.outcome, ExploreOutcome::Truncated) {
            report.skipped.push(SkippedPath {
                trace: path.trace.clone(),
                reason: "truncated",
            });
            continue;
        }
        if matches!(path.outcome, ExploreOutcome::EngineError { .. }) {
            report.skipped.push(SkippedPath {
                trace: path.trace.clone(),
                reason: "engine-error",
            });
            continue;
        }
        // Witness extraction with escalation: the configured budget
        // first, then progressively larger fresh searches. Only when
        // every tier fails is the path skipped — and reported.
        let (model, via_fallback) = match solver.model(&path.state.pc) {
            Some(m) => (m, false),
            None => match solver.model_for_replay(&path.state.pc) {
                Some(m) => (m, true),
                None => {
                    report.skipped.push(SkippedPath {
                        trace: path.trace.clone(),
                        reason: "no-model",
                    });
                    continue;
                }
            },
        };
        if via_fallback {
            report.fallback_models += 1;
        }
        // Complete the environment over every lvar the comparison reads:
        // the iSym script, the outcome value, the final store, and the
        // symbolic memory.
        let mut needed: BTreeSet<LVar> = path
            .state
            .alloc()
            .isym_trace()
            .iter()
            .map(|(_, x)| *x)
            .collect();
        match &path.outcome {
            ExploreOutcome::Normal(e) | ExploreOutcome::Error(e) => needed.extend(e.lvars()),
            _ => {}
        }
        for (_, e) in path.state.store().iter() {
            needed.extend(e.lvars());
        }
        needed.extend(path.state.memory.lvars());
        let model = complete_model(&model, needed);
        let script = script_from_model(&path.state, &model);
        let conc = explore(
            prog,
            entry,
            ConcreteState::<C>::with_script(script.clone()),
            conc_cfg.clone(),
        );
        let Some(cpath) = conc.paths.first() else {
            report.divergences.push(Divergence {
                class: MismatchClass::MissingConcretePath,
                trace: path.trace.clone(),
                script,
                symbolic: format!("{:?}", path.outcome.kind()),
                concrete: "no path".into(),
                detail: "concrete replay produced no path".into(),
            });
            continue;
        };
        report.replayed += 1;
        metrics.counter(names::DIFFTEST_REPLAYS).incr();
        let mut diverged = false;
        // 1. Outcome kind, and return value under the model.
        match (&path.outcome, &cpath.outcome) {
            (ExploreOutcome::Normal(se), ExploreOutcome::Normal(cv)) => match model.eval(se) {
                Ok(sv) if &sv == cv => {}
                Ok(sv) => {
                    diverged = true;
                    report.divergences.push(Divergence {
                        class: MismatchClass::ReturnValue,
                        trace: path.trace.clone(),
                        script: script.clone(),
                        symbolic: sv.to_string(),
                        concrete: cv.to_string(),
                        detail: "return values differ".into(),
                    });
                }
                Err(e) => {
                    diverged = true;
                    report.divergences.push(Divergence {
                        class: MismatchClass::ReturnValue,
                        trace: path.trace.clone(),
                        script: script.clone(),
                        symbolic: format!("{se} (uninterpretable: {e})"),
                        concrete: cv.to_string(),
                        detail: "symbolic return uninterpretable under model".into(),
                    });
                }
            },
            (ExploreOutcome::Error(_), ExploreOutcome::Error(_)) => {}
            (ExploreOutcome::Vanished, ExploreOutcome::Vanished) => {}
            (s, c) => {
                diverged = true;
                report.divergences.push(Divergence {
                    class: MismatchClass::OutcomeKind,
                    trace: path.trace.clone(),
                    script: script.clone(),
                    symbolic: s.kind().into(),
                    concrete: c.kind().into(),
                    detail: "outcome kinds differ".into(),
                });
            }
        }
        // 2. Final store, binding by binding. Compared only when the
        // outcome kinds agreed: after a divergent prefix the stores
        // legitimately differ.
        if !diverged && path.outcome.kind() == cpath.outcome.kind() {
            for (x, se) in path.state.store().iter() {
                let cv = cpath.state.store().get(x.as_ref());
                match (model.eval(se), cv) {
                    (Ok(sv), Some(cv)) if &sv == cv => {}
                    (sv, cv) => {
                        diverged = true;
                        report.divergences.push(Divergence {
                            class: MismatchClass::Store,
                            trace: path.trace.clone(),
                            script: script.clone(),
                            symbolic: match sv {
                                Ok(v) => v.to_string(),
                                Err(e) => format!("{se} (uninterpretable: {e})"),
                            },
                            concrete: cv.map_or("unbound".into(), |v| v.to_string()),
                            detail: format!("store binding {x} differs"),
                        });
                        break;
                    }
                }
            }
        }
        // 3. Final memory through the interpretation hook.
        if !diverged && path.outcome.kind() == cpath.outcome.kind() {
            if let Err((s, c)) = memcheck.compare(&model, &path.state.memory, &cpath.state.memory) {
                report.divergences.push(Divergence {
                    class: MismatchClass::Memory,
                    trace: path.trace.clone(),
                    script: script.clone(),
                    symbolic: s,
                    concrete: c,
                    detail: "final memories differ under interpretation".into(),
                });
            }
        }
    }
    if !report.divergences.is_empty() {
        metrics
            .counter(names::DIFFTEST_DIVERGENCES)
            .add(report.divergences.len() as u64);
    }
    if !report.skipped.is_empty() {
        metrics
            .counter(names::DIFFTEST_SKIPPED)
            .add(report.skipped.len() as u64);
    }
    if report.fallback_models > 0 {
        metrics
            .counter(names::DIFFTEST_FALLBACK_MODELS)
            .add(report.fallback_models as u64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{build_prog, gen_ops, minimize, GenOp, MemDialect, Rng};
    use crate::memory::SymBranch;
    use gillian_gil::{Cmd, Expr, Proc};
    use gillian_solver::PathCondition;

    /// Consistent echo memories: both sides store nothing and echo the
    /// argument, so every comparison must agree.
    #[derive(Clone, Debug, Default)]
    pub struct EchoSym;
    impl SymbolicMemory for EchoSym {
        fn execute_action(
            &self,
            _: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch::ok(EchoSym, arg.clone())]
        }
    }
    #[derive(Clone, Debug, Default)]
    pub struct EchoConc;
    impl ConcreteMemory for EchoConc {
        fn execute_action(&mut self, _: &str, arg: Value) -> Result<Value, Value> {
            Ok(arg)
        }
    }

    fn run(prog: &Prog) -> DifftestReport {
        run_differential::<EchoSym, EchoConc>(
            prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        )
    }

    #[test]
    fn generated_programs_agree_on_a_quick_sample() {
        for seed in 0..8u64 {
            let ops = gen_ops(&mut Rng::new(seed), 14, MemDialect::None);
            let prog = build_prog(&ops, MemDialect::None);
            let report = run(&prog);
            assert!(report.agreed(), "seed {seed}: {:?}", report.divergences);
            assert!(report.replayed > 0 || report.sym_paths == 0);
        }
    }

    #[test]
    fn oracle_detects_lying_concrete_memory() {
        // The symbolic memory echoes, the concrete one lies: a guaranteed
        // divergence the oracle must catch.
        #[derive(Clone, Debug, Default)]
        struct Lying;
        impl ConcreteMemory for Lying {
            fn execute_action(&mut self, _: &str, _: Value) -> Result<Value, Value> {
                Ok(Value::Int(999))
            }
        }
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::action("r", "touch", Expr::int(1)),
                Cmd::Return(Expr::pvar("r")),
            ],
        )]);
        let report = run_differential::<EchoSym, Lying>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        );
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].class, MismatchClass::ReturnValue);
    }

    #[test]
    fn oracle_reports_skips_not_silence() {
        // One path, truncated by a tiny budget: it must show up as a
        // skip, not disappear.
        let prog = build_prog(
            &[GenOp::Input, GenOp::Bump(1), GenOp::Bump(2), GenOp::Bump(3)],
            MemDialect::None,
        );
        let cfg = ExploreConfig {
            max_cmds_per_path: 2,
            ..Default::default()
        };
        let report = run_differential::<EchoSym, EchoConc>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            cfg,
        );
        assert!(!report.skipped.is_empty());
        assert!(report.skipped.iter().all(|s| s.reason == "truncated"));
    }

    #[test]
    fn minimizer_shrinks_a_seeded_divergence() {
        // Divergence predicate driven by the real oracle against a lying
        // concrete memory: minimization must keep exactly the action op.
        #[derive(Clone, Debug, Default)]
        struct LyingConc;
        impl ConcreteMemory for LyingConc {
            fn execute_action(&mut self, _: &str, _: Value) -> Result<Value, Value> {
                Ok(Value::Int(999))
            }
        }
        let ops = vec![
            GenOp::Bump(4),
            GenOp::Input,
            GenOp::Mem(crate::generate::MemOp::Read { loc: 0, slot: 0 }),
            GenOp::Bump(2),
        ];
        let diverges = |ops: &[GenOp]| {
            let prog = build_prog(ops, MemDialect::While);
            !run_differential::<EchoSym, LyingConc>(
                &prog,
                "main",
                Arc::new(Solver::optimized()),
                ExploreConfig::default(),
            )
            .agreed()
        };
        assert!(diverges(&ops));
        let min = minimize(&ops, diverges);
        assert!(min.len() <= 2, "minimized to {min:?}");
        assert!(diverges(&min));
    }
}
