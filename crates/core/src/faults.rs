//! Deterministic fault injection for crash-safety testing
//! (`DESIGN.md` §14).
//!
//! A [`FaultPlan`] installs simulated failures at *indexed scheduling
//! points*: every time the engine is about to step a configuration, and
//! every time the solver is about to answer a satisfiability query, one
//! point index is drawn from a single shared counter. Whether a fault
//! fires at a point is a **pure function of `(seed, point index)`**
//! (a splitmix-style hash; no global RNG, no time), so a plan replayed
//! under the same schedule injects byte-identical faults — which is what
//! lets the crash/resume battery assert convergence instead of merely
//! observing it.
//!
//! Supported faults:
//!
//! - **path panic** — the next interpreter step panics, exercising the
//!   engines' per-path panic isolation;
//! - **solver unknown** — the next satisfiability query is forced to
//!   `Unknown`, exercising the over-approximating keep-both-branches
//!   semantics;
//! - **sat latency** — the next satisfiability query sleeps first,
//!   exercising deadline/checkpoint interaction with slow solving;
//! - **kill** — the run halts *as if the process died*: a final
//!   checkpoint is written and pending work is **not** drained into the
//!   result (it lives only in the checkpoint file), which is exactly the
//!   state a real crash leaves behind.
//!
//! Every injection is recorded in the plan's log, bumped on the
//! `fault.*` counters, and journaled as a `fault_injected` event.

use gillian_solver::{FaultProbe, SatFault};
use gillian_telemetry::{names, registry, Event, Journal};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// The kinds of fault a [`FaultPlan`] can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Panic the next interpreter step (isolated per-path by the engine).
    PathPanic,
    /// Force the next satisfiability query to answer `Unknown`.
    SolverUnknown,
    /// Sleep before answering the next satisfiability query.
    SatLatency,
    /// Simulate a process kill: checkpoint, then stop without draining.
    Kill,
}

impl FaultKind {
    /// The journal/JSONL spelling of this fault kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PathPanic => "path_panic",
            FaultKind::SolverUnknown => "solver_unknown",
            FaultKind::SatLatency => "sat_latency",
            FaultKind::Kill => "kill",
        }
    }
}

// Distinct salts so each fault class draws an independent decision from
// the same point index.
const SALT_PANIC: u64 = 0x70616e6963; // "panic"
const SALT_UNKNOWN: u64 = 0x756e6b6e; // "unkn"
const SALT_LATENCY: u64 = 0x6c617465; // "late"

/// A deterministic fault-injection plan. Install one via
/// `ExploreConfig::faults`; both exploration engines and the solver draw
/// scheduling points from it.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    panic_per_64k: u32,
    unknown_per_64k: u32,
    latency_per_64k: u32,
    latency: Duration,
    kill_at: Option<u64>,
    panic_at: Option<u64>,
    /// The shared scheduling-point counter (engine steps and solver
    /// queries draw from the same sequence).
    points: AtomicU64,
    /// Every injection performed, as `(point, kind)`.
    log: Mutex<Vec<(u64, FaultKind)>>,
}

impl FaultPlan {
    /// A plan that injects nothing until rates or explicit points are set.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Inject a path panic at roughly `per_64k` out of every 65 536
    /// engine scheduling points (deterministically per point).
    pub fn with_panic_rate(mut self, per_64k: u32) -> Self {
        self.panic_per_64k = per_64k;
        self
    }

    /// Force `Unknown` at roughly `per_64k` out of every 65 536 solver
    /// queries.
    pub fn with_unknown_rate(mut self, per_64k: u32) -> Self {
        self.unknown_per_64k = per_64k;
        self
    }

    /// Sleep `latency` before roughly `per_64k` out of every 65 536
    /// solver queries.
    pub fn with_latency(mut self, per_64k: u32, latency: Duration) -> Self {
        self.latency_per_64k = per_64k;
        self.latency = latency;
        self
    }

    /// Simulate a process kill at the first *engine* scheduling point at
    /// or after index `point`. "At or after" because the point counter is
    /// shared with solver queries: a sat query may draw the exact index,
    /// and the kill must still fire (at the next engine draw) rather than
    /// be silently swallowed.
    pub fn kill_at(mut self, point: u64) -> Self {
        self.kill_at = Some(point);
        self
    }

    /// Inject a path panic at engine scheduling point `point`.
    pub fn panic_at(mut self, point: u64) -> Self {
        self.panic_at = Some(point);
        self
    }

    /// Draws the next scheduling-point index.
    pub fn next_point(&self) -> u64 {
        self.points.fetch_add(1, Ordering::Relaxed)
    }

    /// How many scheduling points have been drawn so far.
    pub fn points_drawn(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
    }

    /// The pure per-point decision hash (splitmix64 finalizer over
    /// seed ⊕ point ⊕ salt).
    fn mix(&self, point: u64, salt: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add(point.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ salt;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }

    fn hits(&self, point: u64, salt: u64, per_64k: u32) -> bool {
        per_64k > 0 && (self.mix(point, salt) & 0xffff) < u64::from(per_64k)
    }

    /// The engine-side decision at scheduling point `point` (kill wins
    /// over panic when both would fire).
    pub fn engine_fault(&self, point: u64) -> Option<FaultKind> {
        if self.kill_at.is_some_and(|at| point >= at) {
            return Some(FaultKind::Kill);
        }
        if self.panic_at == Some(point) || self.hits(point, SALT_PANIC, self.panic_per_64k) {
            return Some(FaultKind::PathPanic);
        }
        None
    }

    /// The solver-side decision at scheduling point `point` (forced
    /// `Unknown` wins over latency when both would fire).
    pub fn solver_fault(&self, point: u64) -> Option<(FaultKind, SatFault)> {
        if self.hits(point, SALT_UNKNOWN, self.unknown_per_64k) {
            return Some((FaultKind::SolverUnknown, SatFault::Unknown));
        }
        if self.hits(point, SALT_LATENCY, self.latency_per_64k) {
            return Some((FaultKind::SatLatency, SatFault::Latency(self.latency)));
        }
        None
    }

    /// Records an injection in the plan's log and the `fault.*` counters.
    pub fn record(&self, point: u64, kind: FaultKind) {
        registry().counter(names::FAULT_INJECTED).incr();
        if kind == FaultKind::Kill {
            registry().counter(names::FAULT_KILLS).incr();
        }
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((point, kind));
    }

    /// Every injection so far, as `(point, kind)` in injection order.
    pub fn injections(&self) -> Vec<(u64, FaultKind)> {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The injection log rendered one `point:kind` line at a time, sorted
    /// by point index — schedule-independent, so two runs of the same
    /// seeded plan under the same point sequence render identically.
    pub fn rendered_log(&self) -> String {
        let mut inj = self.injections();
        inj.sort_unstable();
        let mut out = String::new();
        for (point, kind) in inj {
            out.push_str(&format!("{point}:{}\n", kind.name()));
        }
        out
    }

    /// A solver fault probe wired to this plan: draws a point per
    /// satisfiability query from the shared counter, records and journals
    /// any injection. Install via `GilState::install_fault_probe`.
    pub fn probe(self: &Arc<Self>, journal: Journal) -> FaultProbe {
        let plan = Arc::clone(self);
        Arc::new(move || {
            let point = plan.next_point();
            let (kind, fault) = plan.solver_fault(point)?;
            plan.record(point, kind);
            journal.record_shared(Event::FaultInjected {
                point,
                fault: kind.name(),
            });
            Some(fault)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed_and_point() {
        let a = FaultPlan::seeded(7).with_panic_rate(2000);
        let b = FaultPlan::seeded(7).with_panic_rate(2000);
        for p in 0..10_000 {
            assert_eq!(a.engine_fault(p), b.engine_fault(p));
        }
        // A different seed gives a different (but still deterministic)
        // injection pattern.
        let c = FaultPlan::seeded(8).with_panic_rate(2000);
        assert!((0..10_000).any(|p| a.engine_fault(p) != c.engine_fault(p)));
    }

    #[test]
    fn explicit_points_override_rates() {
        let plan = FaultPlan::seeded(0).kill_at(3);
        assert_eq!(plan.engine_fault(2), None);
        assert_eq!(plan.engine_fault(3), Some(FaultKind::Kill));
        // A kill is "at or after": a solver query may draw the exact
        // index, so the first engine draw past it must still kill.
        assert_eq!(plan.engine_fault(4), Some(FaultKind::Kill));
        let panic_only = FaultPlan::seeded(0).panic_at(5);
        assert_eq!(panic_only.engine_fault(5), Some(FaultKind::PathPanic));
        assert_eq!(panic_only.engine_fault(4), None);
    }

    #[test]
    fn point_counter_is_shared_and_monotonic() {
        let plan = FaultPlan::seeded(0);
        assert_eq!(plan.next_point(), 0);
        assert_eq!(plan.next_point(), 1);
        assert_eq!(plan.points_drawn(), 2);
    }

    #[test]
    fn rendered_log_sorts_by_point() {
        let plan = FaultPlan::seeded(0);
        plan.record(5, FaultKind::Kill);
        plan.record(2, FaultKind::PathPanic);
        assert_eq!(plan.rendered_log(), "2:path_panic\n5:kill\n");
    }

    #[test]
    fn solver_faults_draw_from_rates() {
        let plan = FaultPlan::seeded(11).with_unknown_rate(65536);
        let (kind, fault) = plan.solver_fault(0).expect("rate 64k/64k always fires");
        assert_eq!(kind, FaultKind::SolverUnknown);
        assert_eq!(fault, SatFault::Unknown);
        let none = FaultPlan::seeded(11);
        assert!(none.solver_fault(0).is_none());
    }
}
