//! Bounded whole-program path exploration.
//!
//! Drives the small-step semantics of [`crate::interp`] over a worklist,
//! exploring *all* paths and unrolling loops up to a bound (paper §1:
//! "Gillian symbolically executes these tests, exploring all paths and
//! unrolling loops up to a bound"). Per-path and global command budgets
//! keep exploration total; hitting a budget truncates the path and is
//! reported (a truncated run yields a *bounded* verification guarantee
//! only).

use crate::interp::{step, Config, Final, Outcome, StepOut};
use crate::state::GilState;
use gillian_gil::Prog;

/// The order in which pending configurations are explored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Depth-first (the default): completes individual paths early, which
    /// suits bug finding and keeps the frontier small.
    #[default]
    Dfs,
    /// Breadth-first: explores all paths in lockstep, which suits
    /// shallow-bug sweeps and fair progress across branches.
    Bfs,
}

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum commands executed along a single path.
    pub max_cmds_per_path: u64,
    /// Maximum commands executed across all paths.
    pub max_total_cmds: u64,
    /// Maximum number of finished paths collected.
    pub max_paths: usize,
    /// Exploration order.
    pub strategy: SearchStrategy,
    /// Maximum pending (in-flight) configurations; branches beyond the cap
    /// are *dropped*. Paper §3.2's relaxed trace composition licenses
    /// this: soundness is per-trace, so dropping paths loses coverage but
    /// never validity — a standard scalability lever. Dropped paths are
    /// counted in [`ExploreResult::dropped_paths`] and mark the result
    /// truncated.
    pub max_pending: Option<usize>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_cmds_per_path: 100_000,
            max_total_cmds: 10_000_000,
            max_paths: 4096,
            strategy: SearchStrategy::Dfs,
            max_pending: None,
        }
    }
}

/// The outcome of one explored path.
#[derive(Clone, Debug, PartialEq)]
pub enum ExploreOutcome<V> {
    /// Terminated with `N(v)`.
    Normal(V),
    /// Terminated with `E(v)`.
    Error(V),
    /// Discarded by `vanish` (e.g. a failed `assume`).
    Vanished,
    /// Cut off by a budget — the path may have continued.
    Truncated,
}

impl<V> From<Outcome<V>> for ExploreOutcome<V> {
    fn from(o: Outcome<V>) -> Self {
        match o {
            Outcome::Normal(v) => ExploreOutcome::Normal(v),
            Outcome::Error(v) => ExploreOutcome::Error(v),
            Outcome::Vanished => ExploreOutcome::Vanished,
        }
    }
}

/// One finished (or truncated) path.
#[derive(Clone, Debug)]
pub struct PathResult<S: GilState> {
    /// The state at the end of the path.
    pub state: S,
    /// How the path ended.
    pub outcome: ExploreOutcome<S::V>,
    /// Commands executed along this path.
    pub cmds: u64,
}

/// The result of exploring a program from an entry point.
#[derive(Clone, Debug)]
pub struct ExploreResult<S: GilState> {
    /// All finished paths, in exploration order.
    pub paths: Vec<PathResult<S>>,
    /// Total GIL commands executed (the paper's "GIL Cmds" column).
    pub total_cmds: u64,
    /// True when some budget was hit.
    pub truncated: bool,
    /// Branches dropped by the [`ExploreConfig::max_pending`] cap.
    pub dropped_paths: usize,
}

impl<S: GilState> ExploreResult<S> {
    /// Paths that ended in an error.
    pub fn errors(&self) -> impl Iterator<Item = &PathResult<S>> {
        self.paths
            .iter()
            .filter(|p| matches!(p.outcome, ExploreOutcome::Error(_)))
    }

    /// Paths that returned normally.
    pub fn normal(&self) -> impl Iterator<Item = &PathResult<S>> {
        self.paths
            .iter()
            .filter(|p| matches!(p.outcome, ExploreOutcome::Normal(_)))
    }
}

/// Explores all paths of `prog` starting from `entry` in `initial` state.
pub fn explore<S: GilState>(
    prog: &Prog,
    entry: &str,
    initial: S,
    cfg: ExploreConfig,
) -> ExploreResult<S> {
    let mut worklist: std::collections::VecDeque<(Config<S>, u64)> =
        std::collections::VecDeque::from([(Config::entry(entry, initial), 0)]);
    let mut result = ExploreResult {
        paths: Vec::new(),
        total_cmds: 0,
        truncated: false,
        dropped_paths: 0,
    };
    let pop = |wl: &mut std::collections::VecDeque<(Config<S>, u64)>, strategy| match strategy {
        SearchStrategy::Dfs => wl.pop_back(),
        SearchStrategy::Bfs => wl.pop_front(),
    };
    while let Some((config, cmds)) = pop(&mut worklist, cfg.strategy) {
        if result.total_cmds >= cfg.max_total_cmds || result.paths.len() >= cfg.max_paths {
            result.truncated = true;
            break;
        }
        if cmds >= cfg.max_cmds_per_path {
            result.truncated = true;
            result.paths.push(PathResult {
                state: config.state,
                outcome: ExploreOutcome::Truncated,
                cmds,
            });
            continue;
        }
        result.total_cmds += 1;
        for out in step(prog, config) {
            match out {
                StepOut::Next(c) => {
                    if cfg.max_pending.is_some_and(|cap| worklist.len() >= cap) {
                        result.dropped_paths += 1;
                        result.truncated = true;
                        continue;
                    }
                    worklist.push_back((c, cmds + 1));
                }
                StepOut::Done(Final { state, outcome }) => {
                    result.paths.push(PathResult {
                        state,
                        outcome: outcome.into(),
                        cmds: cmds + 1,
                    });
                }
            }
        }
    }
    if !worklist.is_empty() {
        result.truncated = true;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{SymBranch, SymbolicMemory};
    use crate::symbolic::SymbolicState;
    use gillian_gil::{Cmd, Expr, Proc};
    use gillian_solver::{PathCondition, Solver};
    use std::rc::Rc;

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl SymbolicMemory for NoMem {
        fn execute_action(
            &self,
            name: &str,
            _: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch {
                memory: NoMem,
                outcome: Err(Expr::str(format!("no actions ({name})"))),
                constraint: Expr::tt(),
            }]
        }
    }

    type St = SymbolicState<NoMem>;

    fn sym_state() -> St {
        SymbolicState::new(Rc::new(Solver::optimized()))
    }

    /// main() { x := iSym; ifgoto x < 10 ret; fail "big"; ret: return x }
    fn branching_prog() -> Prog {
        Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(10)), 3),
                Cmd::Fail(Expr::str("big")),
                Cmd::Return(Expr::pvar("x")),
            ],
        )])
    }

    #[test]
    fn symbolic_exploration_covers_both_branches() {
        let r = explore(&branching_prog(), "main", sym_state(), ExploreConfig::default());
        assert_eq!(r.paths.len(), 2);
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.normal().count(), 1);
        assert!(!r.truncated);
        assert!(r.total_cmds >= 4);
    }

    #[test]
    fn loops_are_unrolled_up_to_the_bound() {
        // main() { x := iSym; loop: ifgoto x < 1000000 body else done... }
        // An infinite symbolic loop must be truncated, not hang.
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(0)),
                Cmd::assign("x", Expr::pvar("x").add(Expr::int(1))),
                Cmd::Goto(1),
            ],
        )]);
        let cfg = ExploreConfig {
            max_cmds_per_path: 100,
            ..Default::default()
        };
        let r = explore(&prog, "main", sym_state(), cfg);
        assert!(r.truncated);
        assert!(matches!(r.paths[0].outcome, ExploreOutcome::Truncated));
    }

    #[test]
    fn global_budget_truncates() {
        let cfg = ExploreConfig {
            max_total_cmds: 2,
            ..Default::default()
        };
        let r = explore(&branching_prog(), "main", sym_state(), cfg);
        assert!(r.truncated);
    }

    #[test]
    fn vanish_paths_are_collected_but_harmless() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                // assume x = 5 (compiled form: ifgoto (x=5) 3; vanish)
                Cmd::IfGoto(Expr::pvar("x").eq(Expr::int(5)), 3),
                Cmd::Vanish,
                Cmd::Return(Expr::pvar("x")),
            ],
        )]);
        let r = explore(&prog, "main", sym_state(), ExploreConfig::default());
        let vanished = r
            .paths
            .iter()
            .filter(|p| p.outcome == ExploreOutcome::Vanished)
            .count();
        assert_eq!(vanished, 1);
        assert_eq!(r.normal().count(), 1);
        // The surviving path's pc knows x = 5.
        let normal = r.normal().next().unwrap();
        let pc = &normal.state.pc;
        assert!(
            pc.conjuncts()
                .iter()
                .any(|c| c.to_string().contains("= 5")),
            "pc {pc} should pin x to 5"
        );
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::memory::{SymBranch, SymbolicMemory};
    use crate::symbolic::SymbolicState;
    use gillian_gil::{Cmd, Expr, Proc, Prog};
    use gillian_solver::{PathCondition, Solver};
    use std::rc::Rc;

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl SymbolicMemory for NoMem {
        fn execute_action(
            &self,
            _: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch::ok(NoMem, arg.clone())]
        }
    }

    /// Three sequential symbolic branches → eight paths.
    fn wide_prog() -> Prog {
        let mut body = Vec::new();
        for i in 0..3u32 {
            let x = format!("x{i}");
            body.push(Cmd::isym(&x, i));
            let at = body.len();
            body.push(Cmd::IfGoto(Expr::pvar(&x).eq(Expr::int(0)), at + 1));
        }
        body.push(Cmd::Return(Expr::int(0)));
        Prog::from_procs([Proc::new("main", [], body)])
    }

    fn state() -> SymbolicState<NoMem> {
        SymbolicState::new(Rc::new(Solver::optimized()))
    }

    #[test]
    fn dfs_and_bfs_find_the_same_paths() {
        let dfs = explore(&wide_prog(), "main", state(), ExploreConfig::default());
        let bfs = explore(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                strategy: SearchStrategy::Bfs,
                ..Default::default()
            },
        );
        assert_eq!(dfs.paths.len(), 8);
        assert_eq!(bfs.paths.len(), 8);
        assert_eq!(dfs.total_cmds, bfs.total_cmds);
        let mut dfs_pcs: Vec<String> = dfs.paths.iter().map(|p| p.state.pc.to_string()).collect();
        let mut bfs_pcs: Vec<String> = bfs.paths.iter().map(|p| p.state.pc.to_string()).collect();
        dfs_pcs.sort();
        bfs_pcs.sort();
        assert_eq!(dfs_pcs, bfs_pcs, "same path set, different order");
    }

    #[test]
    fn path_dropping_bounds_the_frontier_and_is_reported() {
        let r = explore(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                max_pending: Some(1),
                ..Default::default()
            },
        );
        assert!(r.dropped_paths > 0, "branches beyond the cap are dropped");
        assert!(r.truncated);
        // The surviving paths are still complete, valid traces.
        assert!(r.paths.iter().all(|p| p.outcome != ExploreOutcome::Truncated));
        assert!(r.paths.len() + r.dropped_paths >= 4);
    }
}
