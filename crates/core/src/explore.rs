//! Bounded whole-program path exploration.
//!
//! Drives the small-step semantics of [`crate::interp`] over a worklist,
//! exploring *all* paths and unrolling loops up to a bound (paper §1:
//! "Gillian symbolically executes these tests, exploring all paths and
//! unrolling loops up to a bound"). Per-path and global command budgets
//! keep exploration total; hitting a budget truncates the path and is
//! reported (a truncated run yields a *bounded* verification guarantee
//! only).
//!
//! Two engines share the budget semantics:
//!
//! - [`explore`] — the serial worklist loop (DFS or BFS order);
//! - [`explore_parallel`] — a work-sharing multi-worker loop. Paper §3.2's
//!   relaxed trace composition makes this sound without further argument:
//!   the meaning of a symbolic testing run is the union of its per-trace
//!   guarantees, and each trace is explored independently of the order in
//!   which its siblings run. Workers therefore never need to coordinate
//!   beyond budget accounting.
//!
//! Both engines report the same *order-normalized* result: every explored
//! path appears exactly once, budget cut-offs surface as
//! [`ExploreOutcome::Truncated`] paths (or [`ExploreResult::dropped_paths`]
//! once `max_paths` is full) — pending work is never silently lost.

use crate::interp::{step, Config, Final, Outcome, StepOut};
use crate::state::GilState;
use gillian_gil::Prog;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The order in which pending configurations are explored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Depth-first (the default): completes individual paths early, which
    /// suits bug finding and keeps the frontier small.
    #[default]
    Dfs,
    /// Breadth-first: explores all paths in lockstep, which suits
    /// shallow-bug sweeps and fair progress across branches.
    Bfs,
}

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum commands executed along a single path.
    pub max_cmds_per_path: u64,
    /// Maximum commands executed across all paths.
    pub max_total_cmds: u64,
    /// Maximum number of finished paths collected. Never exceeded: once
    /// full, further paths (finished or pending) are counted in
    /// [`ExploreResult::dropped_paths`].
    pub max_paths: usize,
    /// Exploration order (serial engine only; the parallel engine's order
    /// is scheduling-dependent, its *result* is canonically ordered).
    pub strategy: SearchStrategy,
    /// Maximum pending (in-flight) configurations; branches beyond the cap
    /// are *dropped*. Paper §3.2's relaxed trace composition licenses
    /// this: soundness is per-trace, so dropping paths loses coverage but
    /// never validity — a standard scalability lever. Dropped paths are
    /// counted in [`ExploreResult::dropped_paths`] and mark the result
    /// truncated.
    pub max_pending: Option<usize>,
    /// Number of explorer workers. `0` or `1` selects the serial engine in
    /// [`explore_with`]; `explore_parallel` itself runs its machinery even
    /// with one worker.
    pub workers: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_cmds_per_path: 100_000,
            max_total_cmds: 10_000_000,
            max_paths: 4096,
            strategy: SearchStrategy::Dfs,
            max_pending: None,
            workers: 1,
        }
    }
}

/// The outcome of one explored path.
#[derive(Clone, Debug, PartialEq)]
pub enum ExploreOutcome<V> {
    /// Terminated with `N(v)`.
    Normal(V),
    /// Terminated with `E(v)`.
    Error(V),
    /// Discarded by `vanish` (e.g. a failed `assume`).
    Vanished,
    /// Cut off by a budget — the path may have continued.
    Truncated,
}

impl<V> From<Outcome<V>> for ExploreOutcome<V> {
    fn from(o: Outcome<V>) -> Self {
        match o {
            Outcome::Normal(v) => ExploreOutcome::Normal(v),
            Outcome::Error(v) => ExploreOutcome::Error(v),
            Outcome::Vanished => ExploreOutcome::Vanished,
        }
    }
}

/// One finished (or truncated) path.
#[derive(Clone, Debug)]
pub struct PathResult<S: GilState> {
    /// The state at the end of the path.
    pub state: S,
    /// How the path ended.
    pub outcome: ExploreOutcome<S::V>,
    /// Commands executed along this path.
    pub cmds: u64,
}

/// The result of exploring a program from an entry point.
#[derive(Clone, Debug)]
pub struct ExploreResult<S: GilState> {
    /// All finished paths. Serial engines list them in exploration order;
    /// the parallel engine in canonical branch order.
    pub paths: Vec<PathResult<S>>,
    /// Total GIL commands executed (the paper's "GIL Cmds" column).
    pub total_cmds: u64,
    /// True when some budget was hit.
    pub truncated: bool,
    /// Paths lost to a cap: branches beyond [`ExploreConfig::max_pending`],
    /// plus any path (finished or pending) arriving after
    /// [`ExploreConfig::max_paths`] results were already collected.
    pub dropped_paths: usize,
}

impl<S: GilState> ExploreResult<S> {
    /// Paths that ended in an error.
    pub fn errors(&self) -> impl Iterator<Item = &PathResult<S>> {
        self.paths
            .iter()
            .filter(|p| matches!(p.outcome, ExploreOutcome::Error(_)))
    }

    /// Paths that returned normally.
    pub fn normal(&self) -> impl Iterator<Item = &PathResult<S>> {
        self.paths
            .iter()
            .filter(|p| matches!(p.outcome, ExploreOutcome::Normal(_)))
    }

    /// Records a path without ever exceeding `max_paths`: overflow is
    /// counted in [`ExploreResult::dropped_paths`] and marks the result
    /// truncated.
    fn record(&mut self, max_paths: usize, path: PathResult<S>) {
        if self.paths.len() < max_paths {
            self.paths.push(path);
        } else {
            self.dropped_paths += 1;
            self.truncated = true;
        }
    }
}

/// Explores all paths of `prog` starting from `entry` in `initial` state.
///
/// Budgets are enforced at the point work is *produced*, not merely when it
/// is popped: the result never holds more than `max_paths` paths, and a
/// budget break drains the remaining worklist into
/// [`ExploreOutcome::Truncated`] paths (or `dropped_paths` once `max_paths`
/// is full) instead of silently discarding it.
pub fn explore<S: GilState>(
    prog: &Prog,
    entry: &str,
    initial: S,
    cfg: ExploreConfig,
) -> ExploreResult<S> {
    let mut worklist: VecDeque<(Config<S>, u64)> =
        VecDeque::from([(Config::entry(entry, initial), 0)]);
    let mut result = ExploreResult {
        paths: Vec::new(),
        total_cmds: 0,
        truncated: false,
        dropped_paths: 0,
    };
    let pop = |wl: &mut VecDeque<(Config<S>, u64)>, strategy| match strategy {
        SearchStrategy::Dfs => wl.pop_back(),
        SearchStrategy::Bfs => wl.pop_front(),
    };
    while result.total_cmds < cfg.max_total_cmds && result.paths.len() < cfg.max_paths {
        let Some((config, cmds)) = pop(&mut worklist, cfg.strategy) else {
            break;
        };
        if cmds >= cfg.max_cmds_per_path {
            result.truncated = true;
            result.record(
                cfg.max_paths,
                PathResult {
                    state: config.state,
                    outcome: ExploreOutcome::Truncated,
                    cmds,
                },
            );
            continue;
        }
        result.total_cmds += 1;
        for out in step(prog, config) {
            match out {
                StepOut::Next(c) => {
                    if cfg.max_pending.is_some_and(|cap| worklist.len() >= cap) {
                        result.dropped_paths += 1;
                        result.truncated = true;
                    } else {
                        worklist.push_back((c, cmds + 1));
                    }
                }
                StepOut::Done(Final { state, outcome }) => {
                    result.record(
                        cfg.max_paths,
                        PathResult {
                            state,
                            outcome: outcome.into(),
                            cmds: cmds + 1,
                        },
                    );
                }
            }
        }
    }
    // A budget break leaves pending configurations behind; surface every
    // one of them instead of losing them.
    while let Some((config, cmds)) = pop(&mut worklist, cfg.strategy) {
        result.truncated = true;
        result.record(
            cfg.max_paths,
            PathResult {
                state: config.state,
                outcome: ExploreOutcome::Truncated,
                cmds,
            },
        );
    }
    result
}

/// Explores with the configured engine: serial for `workers <= 1`, the
/// parallel explorer otherwise.
pub fn explore_with<S>(prog: &Prog, entry: &str, initial: S, cfg: ExploreConfig) -> ExploreResult<S>
where
    S: GilState + Send,
    S::V: Send,
    S::Store: Send,
{
    if cfg.workers > 1 {
        explore_parallel(prog, entry, initial, cfg)
    } else {
        explore(prog, entry, initial, cfg)
    }
}

/// A pending unit of work for the parallel explorer: a configuration, its
/// per-path command count, and its *branch trace* — the successor index
/// chosen at every branching step since the entry. Traces canonically
/// identify paths independently of scheduling, which is what lets the
/// parallel engine return a deterministically ordered result.
struct Job<S: GilState> {
    config: Config<S>,
    cmds: u64,
    trace: Vec<u32>,
}

/// Queue shared by the explorer workers. `in_flight` counts jobs popped
/// but not yet retired; the queue is only known empty-for-good when it is
/// empty *and* nothing is in flight.
struct JobQueue<S: GilState> {
    jobs: VecDeque<Job<S>>,
    in_flight: usize,
}

struct SharedExplorer<S: GilState> {
    queue: Mutex<JobQueue<S>>,
    work: Condvar,
    /// Commands claimed so far against `max_total_cmds`.
    total_cmds: AtomicU64,
    /// Finished paths so far (for the `max_paths` stop signal; the
    /// authoritative cap is applied at merge time).
    finished_paths: AtomicUsize,
    /// Set when a global budget is exhausted: workers park their current
    /// job as pending-truncated and drain the queue the same way.
    stop: AtomicBool,
    truncated: AtomicBool,
    dropped_paths: AtomicUsize,
}

impl<S: GilState> SharedExplorer<S> {
    fn note_finished(&self, cfg: &ExploreConfig) {
        if self.finished_paths.fetch_add(1, Ordering::Relaxed) + 1 >= cfg.max_paths {
            self.stop.store(true, Ordering::Relaxed);
            self.work.notify_all();
        }
    }
}

/// What one worker produced: finished paths and jobs cut off mid-path by a
/// global budget, both tagged with their branch trace for merging.
type WorkerYield<S> = (Vec<(Vec<u32>, PathResult<S>)>, Vec<Job<S>>);

fn explore_worker<S: GilState>(
    prog: &Prog,
    cfg: &ExploreConfig,
    shared: &SharedExplorer<S>,
) -> WorkerYield<S> {
    let mut finished: Vec<(Vec<u32>, PathResult<S>)> = Vec::new();
    let mut cut: Vec<Job<S>> = Vec::new();
    loop {
        // Acquire a job, or return once the queue is empty with nothing in
        // flight (no one can produce more work).
        let mut job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.jobs.pop_back() {
                    q.in_flight += 1;
                    break j;
                }
                if q.in_flight == 0 {
                    shared.work.notify_all();
                    return (finished, cut);
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        // Run the job depth-first locally: keep one successor, share the
        // rest. This keeps queue traffic proportional to branching, not to
        // path length.
        loop {
            if shared.stop.load(Ordering::Relaxed) {
                cut.push(job);
                break;
            }
            if job.cmds >= cfg.max_cmds_per_path {
                shared.truncated.store(true, Ordering::Relaxed);
                finished.push((
                    job.trace,
                    PathResult {
                        state: job.config.state,
                        outcome: ExploreOutcome::Truncated,
                        cmds: job.cmds,
                    },
                ));
                shared.note_finished(cfg);
                break;
            }
            // Claim one command against the global budget; returning the
            // failed claim keeps `total_cmds` equal to commands executed.
            if shared.total_cmds.fetch_add(1, Ordering::Relaxed) >= cfg.max_total_cmds {
                shared.total_cmds.fetch_sub(1, Ordering::Relaxed);
                shared.truncated.store(true, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Relaxed);
                shared.work.notify_all();
                cut.push(job);
                break;
            }
            let Job {
                config,
                cmds,
                trace,
            } = job;
            let outs = step(prog, config);
            let branching = outs.len() > 1;
            let mut continuation: Option<Job<S>> = None;
            let mut surplus: Vec<Job<S>> = Vec::new();
            for (i, out) in outs.into_iter().enumerate() {
                let mut child_trace = trace.clone();
                if branching {
                    child_trace.push(i as u32);
                }
                match out {
                    StepOut::Next(config) => {
                        let child = Job {
                            config,
                            cmds: cmds + 1,
                            trace: child_trace,
                        };
                        if continuation.is_none() {
                            continuation = Some(child);
                        } else {
                            surplus.push(child);
                        }
                    }
                    StepOut::Done(Final { state, outcome }) => {
                        finished.push((
                            child_trace,
                            PathResult {
                                state,
                                outcome: outcome.into(),
                                cmds: cmds + 1,
                            },
                        ));
                        shared.note_finished(cfg);
                    }
                }
            }
            if !surplus.is_empty() {
                let mut q = shared.queue.lock().unwrap();
                for child in surplus {
                    if cfg.max_pending.is_some_and(|cap| q.jobs.len() >= cap) {
                        shared.dropped_paths.fetch_add(1, Ordering::Relaxed);
                        shared.truncated.store(true, Ordering::Relaxed);
                    } else {
                        q.jobs.push_back(child);
                    }
                }
                drop(q);
                shared.work.notify_all();
            }
            match continuation {
                Some(next) => job = next,
                None => break,
            }
        }
        // Retire the job; if that empties the system, wake the waiters so
        // they can terminate.
        let mut q = shared.queue.lock().unwrap();
        q.in_flight -= 1;
        if q.in_flight == 0 && q.jobs.is_empty() {
            shared.work.notify_all();
        }
    }
}

/// Explores all paths of `prog` with `cfg.workers` worker threads sharing
/// one worklist (and one solver, via the state's `Arc<Solver>` — its SAT
/// cache is shared across workers).
///
/// Soundness: per §3.2 every explored trace carries its own guarantee, so
/// exploration order — and therefore parallel scheduling — cannot affect
/// which guarantees hold, only the order they are found in. To make the
/// *result* deterministic anyway, every path is tagged with its branch
/// trace and the merged result is sorted in canonical branch order; with
/// budgets that do not bind, the returned path set is identical to the
/// serial engines' (order-normalized).
///
/// Budget semantics match [`explore`]: never more than `max_paths` paths,
/// and work pending when a budget trips is surfaced as
/// [`ExploreOutcome::Truncated`] paths or counted in `dropped_paths`.
pub fn explore_parallel<S>(
    prog: &Prog,
    entry: &str,
    initial: S,
    cfg: ExploreConfig,
) -> ExploreResult<S>
where
    S: GilState + Send,
    S::V: Send,
    S::Store: Send,
{
    let workers = cfg.workers.max(1);
    let shared = SharedExplorer {
        queue: Mutex::new(JobQueue {
            jobs: VecDeque::from([Job {
                config: Config::entry(entry, initial),
                cmds: 0,
                trace: Vec::new(),
            }]),
            in_flight: 0,
        }),
        work: Condvar::new(),
        total_cmds: AtomicU64::new(0),
        finished_paths: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        dropped_paths: AtomicUsize::new(0),
    };
    let yields: Vec<WorkerYield<S>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| explore_worker(prog, &cfg, &shared)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("explorer worker panicked"))
            .collect()
    });

    // Deterministic merge: canonical branch order, finished paths first,
    // then budget-cut pending work — mirroring the serial engine's
    // "explore, then drain" shape.
    let mut finished: Vec<(Vec<u32>, PathResult<S>)> = Vec::new();
    let mut pending: Vec<Job<S>> = Vec::new();
    for (f, c) in yields {
        finished.extend(f);
        pending.extend(c);
    }
    finished.sort_by(|a, b| a.0.cmp(&b.0));
    pending.sort_by(|a, b| a.trace.cmp(&b.trace));

    let mut result = ExploreResult {
        paths: Vec::new(),
        total_cmds: shared.total_cmds.load(Ordering::Relaxed),
        truncated: shared.truncated.load(Ordering::Relaxed),
        dropped_paths: shared.dropped_paths.load(Ordering::Relaxed),
    };
    for (_, path) in finished {
        result.record(cfg.max_paths, path);
    }
    for job in pending {
        result.truncated = true;
        result.record(
            cfg.max_paths,
            PathResult {
                state: job.config.state,
                outcome: ExploreOutcome::Truncated,
                cmds: job.cmds,
            },
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{SymBranch, SymbolicMemory};
    use crate::symbolic::SymbolicState;
    use gillian_gil::{Cmd, Expr, Proc};
    use gillian_solver::{PathCondition, Solver};
    use std::sync::Arc;

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl SymbolicMemory for NoMem {
        fn execute_action(
            &self,
            name: &str,
            _: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch {
                memory: NoMem,
                outcome: Err(Expr::str(format!("no actions ({name})"))),
                constraint: Expr::tt(),
            }]
        }
    }

    type St = SymbolicState<NoMem>;

    fn sym_state() -> St {
        SymbolicState::new(Arc::new(Solver::optimized()))
    }

    /// main() { x := iSym; ifgoto x < 10 ret; fail "big"; ret: return x }
    fn branching_prog() -> Prog {
        Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(10)), 3),
                Cmd::Fail(Expr::str("big")),
                Cmd::Return(Expr::pvar("x")),
            ],
        )])
    }

    #[test]
    fn symbolic_exploration_covers_both_branches() {
        let r = explore(
            &branching_prog(),
            "main",
            sym_state(),
            ExploreConfig::default(),
        );
        assert_eq!(r.paths.len(), 2);
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.normal().count(), 1);
        assert!(!r.truncated);
        assert!(r.total_cmds >= 4);
    }

    #[test]
    fn loops_are_unrolled_up_to_the_bound() {
        // main() { x := iSym; loop: ifgoto x < 1000000 body else done... }
        // An infinite symbolic loop must be truncated, not hang.
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(0)),
                Cmd::assign("x", Expr::pvar("x").add(Expr::int(1))),
                Cmd::Goto(1),
            ],
        )]);
        let cfg = ExploreConfig {
            max_cmds_per_path: 100,
            ..Default::default()
        };
        let r = explore(&prog, "main", sym_state(), cfg);
        assert!(r.truncated);
        assert!(matches!(r.paths[0].outcome, ExploreOutcome::Truncated));
    }

    #[test]
    fn global_budget_truncates() {
        let cfg = ExploreConfig {
            max_total_cmds: 2,
            ..Default::default()
        };
        let r = explore(&branching_prog(), "main", sym_state(), cfg);
        assert!(r.truncated);
    }

    #[test]
    fn global_budget_break_surfaces_pending_paths() {
        // With a 2-command budget the ifgoto has just been expanded into
        // two pending configurations; neither may be silently lost.
        let cfg = ExploreConfig {
            max_total_cmds: 2,
            ..Default::default()
        };
        let r = explore(&branching_prog(), "main", sym_state(), cfg);
        assert_eq!(r.total_cmds, 2);
        assert_eq!(r.paths.len(), 2, "both pending branches surface");
        assert!(r
            .paths
            .iter()
            .all(|p| p.outcome == ExploreOutcome::Truncated));
        assert_eq!(r.dropped_paths, 0);
    }

    /// A memory whose single action fails on *two* branches at once, so one
    /// step can finish several paths — the overflow case for `max_paths`.
    #[derive(Clone, Debug, Default)]
    struct TwoErrMem;
    impl SymbolicMemory for TwoErrMem {
        fn execute_action(
            &self,
            _: &str,
            _: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![
                SymBranch::err_if(TwoErrMem, Expr::str("first"), Expr::tt()),
                SymBranch::err_if(TwoErrMem, Expr::str("second"), Expr::tt()),
            ]
        }
    }

    #[test]
    fn max_paths_is_never_exceeded() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![Cmd::Action {
                lhs: "r".into(),
                name: "boom".into(),
                arg: Expr::int(0),
            }],
        )]);
        let cfg = ExploreConfig {
            max_paths: 1,
            ..Default::default()
        };
        let r = explore(
            &prog,
            "main",
            SymbolicState::<TwoErrMem>::new(Arc::new(Solver::optimized())),
            cfg,
        );
        assert_eq!(r.paths.len(), 1, "the cap binds even within one step");
        assert_eq!(r.dropped_paths, 1, "the overflow path is accounted for");
        assert!(r.truncated);
    }

    #[test]
    fn vanish_paths_are_collected_but_harmless() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                // assume x = 5 (compiled form: ifgoto (x=5) 3; vanish)
                Cmd::IfGoto(Expr::pvar("x").eq(Expr::int(5)), 3),
                Cmd::Vanish,
                Cmd::Return(Expr::pvar("x")),
            ],
        )]);
        let r = explore(&prog, "main", sym_state(), ExploreConfig::default());
        let vanished = r
            .paths
            .iter()
            .filter(|p| p.outcome == ExploreOutcome::Vanished)
            .count();
        assert_eq!(vanished, 1);
        assert_eq!(r.normal().count(), 1);
        // The surviving path's pc knows x = 5.
        let normal = r.normal().next().unwrap();
        let pc = &normal.state.pc;
        assert!(
            pc.conjuncts().iter().any(|c| c.to_string().contains("= 5")),
            "pc {pc} should pin x to 5"
        );
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::memory::{SymBranch, SymbolicMemory};
    use crate::symbolic::SymbolicState;
    use gillian_gil::{Cmd, Expr, Proc, Prog};
    use gillian_solver::{PathCondition, Solver};
    use std::sync::Arc;

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl SymbolicMemory for NoMem {
        fn execute_action(
            &self,
            _: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch::ok(NoMem, arg.clone())]
        }
    }

    /// Three sequential symbolic branches → eight paths.
    fn wide_prog() -> Prog {
        let mut body = Vec::new();
        for i in 0..3u32 {
            let x = format!("x{i}");
            body.push(Cmd::isym(&x, i));
            let at = body.len();
            body.push(Cmd::IfGoto(Expr::pvar(&x).eq(Expr::int(0)), at + 1));
        }
        body.push(Cmd::Return(Expr::int(0)));
        Prog::from_procs([Proc::new("main", [], body)])
    }

    fn state() -> SymbolicState<NoMem> {
        SymbolicState::new(Arc::new(Solver::optimized()))
    }

    fn sorted_pcs(r: &ExploreResult<SymbolicState<NoMem>>) -> Vec<String> {
        let mut pcs: Vec<String> = r.paths.iter().map(|p| p.state.pc.to_string()).collect();
        pcs.sort();
        pcs
    }

    #[test]
    fn dfs_and_bfs_find_the_same_paths() {
        let dfs = explore(&wide_prog(), "main", state(), ExploreConfig::default());
        let bfs = explore(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                strategy: SearchStrategy::Bfs,
                ..Default::default()
            },
        );
        assert_eq!(dfs.paths.len(), 8);
        assert_eq!(bfs.paths.len(), 8);
        assert_eq!(dfs.total_cmds, bfs.total_cmds);
        assert_eq!(
            sorted_pcs(&dfs),
            sorted_pcs(&bfs),
            "same path set, different order"
        );
    }

    #[test]
    fn parallel_finds_the_same_paths_for_any_worker_count() {
        let serial = explore(&wide_prog(), "main", state(), ExploreConfig::default());
        for workers in 1..=4 {
            let par = explore_parallel(
                &wide_prog(),
                "main",
                state(),
                ExploreConfig {
                    workers,
                    ..Default::default()
                },
            );
            assert_eq!(par.paths.len(), 8, "workers={workers}");
            assert!(!par.truncated, "workers={workers}");
            assert_eq!(par.total_cmds, serial.total_cmds, "workers={workers}");
            assert_eq!(
                sorted_pcs(&par),
                sorted_pcs(&serial),
                "workers={workers}: same order-normalized path set"
            );
            assert_eq!(
                par.errors().count(),
                serial.errors().count(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn parallel_result_order_is_deterministic() {
        let once = explore_parallel(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                workers: 4,
                ..Default::default()
            },
        );
        let reference: Vec<String> = once.paths.iter().map(|p| p.state.pc.to_string()).collect();
        for _ in 0..5 {
            let again = explore_parallel(
                &wide_prog(),
                "main",
                state(),
                ExploreConfig {
                    workers: 4,
                    ..Default::default()
                },
            );
            let pcs: Vec<String> = again.paths.iter().map(|p| p.state.pc.to_string()).collect();
            assert_eq!(pcs, reference, "merge order must not depend on scheduling");
        }
    }

    #[test]
    fn parallel_respects_max_paths_and_reports_the_rest() {
        let r = explore_parallel(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                workers: 4,
                max_paths: 3,
                ..Default::default()
            },
        );
        assert!(r.paths.len() <= 3);
        assert!(r.truncated);
        // Everything the program could produce is either a path or counted
        // dropped: nothing vanishes silently.
        assert!(r.paths.len() + r.dropped_paths >= 4);
    }

    #[test]
    fn parallel_global_budget_truncates_without_losing_work() {
        let r = explore_parallel(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                workers: 2,
                max_total_cmds: 3,
                ..Default::default()
            },
        );
        assert!(r.truncated);
        assert!(r.total_cmds <= 3);
        assert!(
            r.paths
                .iter()
                .any(|p| p.outcome == ExploreOutcome::Truncated),
            "cut-off work surfaces as truncated paths"
        );
    }

    #[test]
    fn path_dropping_bounds_the_frontier_and_is_reported() {
        let r = explore(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                max_pending: Some(1),
                ..Default::default()
            },
        );
        assert!(r.dropped_paths > 0, "branches beyond the cap are dropped");
        assert!(r.truncated);
        // The surviving paths are still complete, valid traces.
        assert!(r
            .paths
            .iter()
            .all(|p| p.outcome != ExploreOutcome::Truncated));
        assert!(r.paths.len() + r.dropped_paths >= 4);
    }
}
