//! Bounded whole-program path exploration.
//!
//! Drives the GIL semantics over a worklist, exploring *all* paths and
//! unrolling loops up to a bound (paper §1: "Gillian symbolically
//! executes these tests, exploring all paths and unrolling loops up to a
//! bound"). The inner loop is the compiled-bytecode block dispatch of
//! [`crate::exec`] by default, with the [`crate::interp`] tree walk as
//! the reference backend (`GILLIAN_BYTECODE=0` /
//! [`ExploreConfig::bytecode`]). Per-path and global command budgets
//! keep exploration total; hitting a budget truncates the path and is
//! reported (a truncated run yields a *bounded* verification guarantee
//! only).
//!
//! Two engines share the budget semantics:
//!
//! - [`explore`] — the serial worklist loop (DFS or BFS order);
//! - [`explore_parallel`] — a work-sharing multi-worker loop. Paper §3.2's
//!   relaxed trace composition makes this sound without further argument:
//!   the meaning of a symbolic testing run is the union of its per-trace
//!   guarantees, and each trace is explored independently of the order in
//!   which its siblings run. Workers therefore never need to coordinate
//!   beyond budget accounting.
//!
//! Both engines report the same *order-normalized* result: every explored
//! path appears exactly once, budget cut-offs surface as
//! [`ExploreOutcome::Truncated`] paths (or [`ExploreResult::dropped_paths`]
//! once `max_paths` is full) — pending work is never silently lost.
//!
//! ## Resilience
//!
//! Command budgets alone cannot defend a run against a diverging solver
//! query, a spinning memory model, or a panicking one. Both engines
//! therefore also enforce (see `DESIGN.md`, "Resilience model"):
//!
//! - a wall-clock [`ExploreConfig::deadline`] and a cooperative
//!   [`CancelToken`], checked at every scheduling point and installed into
//!   the state's solver (via [`GilState::install_interrupt`]) so that long
//!   satisfiability queries give up with `Unknown` instead of spinning;
//! - per-path panic isolation: each interpreter step runs under a
//!   capturing `catch_unwind` (see `panic_guard`), so a panic in a
//!   language's memory model surfaces as one
//!   [`ExploreOutcome::EngineError`] path while every sibling finishes;
//! - [`ExploreDiagnostics`] on every result, counting deadline hits,
//!   cancellations, engine errors, and `Unknown` sat verdicts — nothing
//!   that weakened the run's guarantee goes unrecorded.

use crate::checkpoint::{
    self, CheckpointConfig, CheckpointData, FrontierItem, PathSummary, ResumeError, StateCtx,
};
use crate::exec::{step_block, BlockProfile, ExecProg, BLOCK_MAX};
use crate::faults::{FaultKind, FaultPlan};
use crate::interp::{Config, Final, Outcome, StepOut};
use crate::panic_guard;
use crate::state::GilState;
use gillian_gil::{EvalScratch, InternStats, Prog};
use gillian_solver::{CancelToken, Interrupt};
use gillian_telemetry::journal::{clear_path_context, set_path_context};
use gillian_telemetry::{
    names, registry, Event, Journal, LiveSink, LiveStats, Report, TreeStats, WorkerLog,
};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, tolerating poison: a panicking path may unwind while a
/// sibling holds engine locks, and the guarded data (job queues) is valid
/// after any partial mutation the engine performs.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The order in which pending configurations are explored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Depth-first (the default): completes individual paths early, which
    /// suits bug finding and keeps the frontier small.
    #[default]
    Dfs,
    /// Breadth-first: explores all paths in lockstep, which suits
    /// shallow-bug sweeps and fair progress across branches.
    Bfs,
}

/// Exploration limits.
///
/// No longer `Copy` (the cancellation token is shared); clone it freely —
/// clones share the same token, which is what callers want: cancelling a
/// run cancels everything configured from the same `ExploreConfig`.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum commands executed along a single path.
    pub max_cmds_per_path: u64,
    /// Maximum commands executed across all paths.
    pub max_total_cmds: u64,
    /// Maximum number of finished paths collected. Never exceeded: once
    /// full, further paths (finished or pending) are counted in
    /// [`ExploreResult::dropped_paths`].
    pub max_paths: usize,
    /// Exploration order (serial engine only; the parallel engine's order
    /// is scheduling-dependent, its *result* is canonically ordered).
    pub strategy: SearchStrategy,
    /// Maximum pending (in-flight) configurations; branches beyond the cap
    /// are *dropped*. Paper §3.2's relaxed trace composition licenses
    /// this: soundness is per-trace, so dropping paths loses coverage but
    /// never validity — a standard scalability lever. Dropped paths are
    /// counted in [`ExploreResult::dropped_paths`] and mark the result
    /// truncated.
    pub max_pending: Option<usize>,
    /// Number of explorer workers. `0` or `1` selects the serial engine in
    /// [`explore_with`]; `explore_parallel` itself runs its machinery even
    /// with one worker.
    pub workers: usize,
    /// Wall-clock budget for one exploration run, measured from the call.
    /// When it expires, pending paths are parked as
    /// [`ExploreOutcome::Truncated`] (counted in
    /// [`ExploreDiagnostics::deadline_hits`]) and in-flight solver queries
    /// answer `Unknown`. `None` (the default) means no time limit.
    ///
    /// The deadline is cooperative: it is checked between interpreter
    /// steps and inside solver queries, so a single step overshoots only
    /// by as long as it genuinely computes. Memory models with long
    /// actions should poll `Solver::interrupted` to stay within it.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation. Cancel the token (from any thread) to
    /// stop the run at its next scheduling point; remaining work is parked
    /// as truncated and counted in [`ExploreDiagnostics::cancellations`].
    /// The default is a fresh, never-cancelled token.
    pub cancel: CancelToken,
    /// The run's event journal. The default is [`Journal::from_env`]:
    /// disabled (free) unless `GILLIAN_TRACE`/`GILLIAN_TRACE_CHROME` is
    /// set, in which case every run journals path lifecycle, sat
    /// queries, and memory actions, and appends the merged trace to the
    /// configured sinks at explore end. Tests and embedders can install
    /// an explicit journal (e.g. [`Journal::enabled`]) instead.
    pub journal: Journal,
    /// Crash-safe checkpointing of the frontier (`DESIGN.md` §14):
    /// `None` (the default) writes nothing; otherwise the configured
    /// file receives atomic snapshots at the configured interval and on
    /// deadline/cancel/kill, from which [`explore_resume`] can continue
    /// the run.
    pub checkpoint: Option<CheckpointConfig>,
    /// Deterministic fault injection (`DESIGN.md` §14): `None` (the
    /// default) injects nothing; otherwise the plan's seeded decisions
    /// fire at engine scheduling points and solver queries. Testing
    /// machinery — never install one in production runs.
    pub faults: Option<Arc<FaultPlan>>,
    /// Execution backend selection (`DESIGN.md` §15): `Some(true)` runs
    /// the compiled register bytecode, `Some(false)` the reference tree
    /// walk, and `None` (the default) defers to the `GILLIAN_BYTECODE`
    /// environment variable (on unless set to `0`). Both backends
    /// produce identical `(trace, outcome, cmds)` path sets; the switch
    /// exists for differential testing and A/B benchmarking.
    pub bytecode: Option<bool>,
    /// Procedure-summary reuse (`DESIGN.md` §17): `Some(true)` arms the
    /// state's summary store for the run (recording clean callee windows,
    /// splicing them back at applicable `Call` sites), `Some(false)`
    /// leaves every call executing normally, and `None` (the default)
    /// defers to the `GILLIAN_SUMMARIES` environment variable — off
    /// unless set to something other than `0`. Summaries never change a
    /// path's `(trace, outcome)`: an applied summary replays a proven
    /// fork-free callee, retiring the whole call as the one `Call`
    /// command, so only `cmds` (and wall-clock) shrink. With
    /// `GILLIAN_SUMMARY_FILE` set, armed runs load the store from that
    /// file at start and persist it back at end (warm runs across
    /// processes); a corrupt file degrades to cold execution.
    pub summaries: Option<bool>,
}

impl ExploreConfig {
    /// This configuration with the given wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_cmds_per_path: 100_000,
            max_total_cmds: 10_000_000,
            max_paths: 4096,
            strategy: SearchStrategy::Dfs,
            max_pending: None,
            workers: 1,
            deadline: None,
            cancel: CancelToken::new(),
            journal: Journal::from_env(),
            checkpoint: None,
            faults: None,
            bytecode: None,
            summaries: None,
        }
    }
}

/// The `GILLIAN_SUMMARIES` resolution used when
/// [`ExploreConfig::summaries`] is `None`: off unless the variable is set
/// to something other than `0` (summaries are opt-in, unlike the
/// default-on bytecode backend — warm reuse is a deliberate choice, and
/// the cold path stays byte-identical to a build without the feature).
fn summaries_from_env() -> bool {
    std::env::var("GILLIAN_SUMMARIES").is_ok_and(|v| v != "0")
}

/// The outcome of one explored path.
#[derive(Clone, Debug, PartialEq)]
pub enum ExploreOutcome<V> {
    /// Terminated with `N(v)`.
    Normal(V),
    /// Terminated with `E(v)`.
    Error(V),
    /// Discarded by `vanish` (e.g. a failed `assume`).
    Vanished,
    /// Cut off by a budget — the path may have continued.
    Truncated,
    /// The engine (or a memory model it called) panicked while stepping
    /// this path. The panic was isolated: sibling paths are unaffected and
    /// carry their usual per-trace guarantee; *this* trace carries none.
    EngineError {
        /// The captured panic message, with source location when the
        /// panic hook could observe it.
        payload: String,
        /// The branch trace (successor index at every branching step from
        /// the entry) identifying which path died. The associated
        /// [`PathResult::state`] is a pristine clone of the *initial*
        /// state — the true final state was lost to the unwind.
        trace: Vec<u32>,
    },
}

impl<V> ExploreOutcome<V> {
    /// The journal/JSONL spelling of this outcome kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ExploreOutcome::Normal(_) => "normal",
            ExploreOutcome::Error(_) => "error",
            ExploreOutcome::Vanished => "vanished",
            ExploreOutcome::Truncated => "truncated",
            ExploreOutcome::EngineError { .. } => "engine_error",
        }
    }
}

impl<V> From<Outcome<V>> for ExploreOutcome<V> {
    fn from(o: Outcome<V>) -> Self {
        match o {
            Outcome::Normal(v) => ExploreOutcome::Normal(v),
            Outcome::Error(v) => ExploreOutcome::Error(v),
            Outcome::Vanished => ExploreOutcome::Vanished,
        }
    }
}

/// One finished (or truncated) path.
#[derive(Clone, Debug)]
pub struct PathResult<S: GilState> {
    /// The state at the end of the path.
    pub state: S,
    /// How the path ended.
    pub outcome: ExploreOutcome<S::V>,
    /// Commands executed along this path.
    pub cmds: u64,
    /// The branch trace: the successor index chosen at every branching
    /// step from the entry (the journal's schedule-independent path id).
    /// Feed it to [`replay_path`] to re-execute exactly this path.
    pub trace: Vec<u32>,
}

/// Counters for everything that weakened a run's guarantee beyond plain
/// command budgets. A clean run (all zeros) explored exactly what its
/// budgets allowed; any non-zero counter means some verdicts are bounded
/// or missing for the recorded reason.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreDiagnostics {
    /// Paths parked as truncated because the wall-clock deadline fired.
    pub deadline_hits: usize,
    /// Paths parked as truncated because the run was cancelled.
    pub cancellations: usize,
    /// Paths lost to an isolated panic (plus, in the parallel engine, any
    /// worker that died outside the per-step guard).
    pub engine_errors: usize,
    /// `Unknown` satisfiability verdicts observed during the run. Each one
    /// means a branch was kept because the solver could not *prove* it
    /// infeasible within budget — sound (over-approximating) but worth
    /// recording: bug reports remain true positives (models are verified),
    /// while "no bug found" weakens from the budget-bounded guarantee to
    /// one also conditioned on those undecided queries.
    pub unknown_verdicts: u64,
    /// Satisfiability queries answered by extending a frozen per-prefix
    /// solve context instead of re-solving the full conjunction.
    /// Telemetry only — reuse never changes a verdict — so this does not
    /// affect [`ExploreDiagnostics::is_clean`].
    pub incremental_hits: u64,
    /// Satisfiability queries answered by the implication-aware verdict
    /// index (UNSAT subsets, witnessed SAT supersets/models). Telemetry
    /// only, like [`ExploreDiagnostics::incremental_hits`].
    pub implication_hits: u64,
    /// Procedure summaries harvested during this run (clean callee
    /// windows recorded into the solver's summary store). Telemetry only,
    /// like [`ExploreDiagnostics::incremental_hits`]: recording never
    /// changes a verdict, so this does not affect
    /// [`ExploreDiagnostics::is_clean`].
    pub summaries_recorded: u64,
    /// `Call` sites answered by splicing a recorded summary instead of
    /// re-executing the callee. Telemetry only — an applied summary
    /// preserves the path's `(trace, outcome)` exactly.
    pub summaries_applied: u64,
    /// Interner activity attributed to this run: the sum of **per-worker
    /// thread-local** [`InternStats`] deltas (the serial engine's single
    /// thread, or every worker of the parallel engine), with `live`
    /// read globally at run end. Thread deltas make the attribution
    /// exact — diffing the process-global counters would fold in every
    /// other exploration running concurrently in the process (and, under
    /// the parallel engine, double-count the run's own traffic when
    /// worker snapshots were summed). Telemetry only: interner traffic
    /// never weakens a verdict, so these counters do not affect
    /// [`ExploreDiagnostics::is_clean`].
    pub interner: InternStats,
}

impl ExploreDiagnostics {
    /// True when nothing degraded the run: no deadline hits, no
    /// cancellations, no engine errors, no unknown verdicts. Interner
    /// telemetry is informational and deliberately excluded.
    pub fn is_clean(&self) -> bool {
        self.deadline_hits == 0
            && self.cancellations == 0
            && self.engine_errors == 0
            && self.unknown_verdicts == 0
    }
}

/// The result of exploring a program from an entry point.
#[derive(Clone, Debug)]
pub struct ExploreResult<S: GilState> {
    /// All finished paths. Serial engines list them in exploration order;
    /// the parallel engine in canonical branch order.
    pub paths: Vec<PathResult<S>>,
    /// Total GIL commands executed (the paper's "GIL Cmds" column).
    pub total_cmds: u64,
    /// True when some budget was hit.
    pub truncated: bool,
    /// Paths lost to a cap: branches beyond [`ExploreConfig::max_pending`],
    /// plus any path (finished or pending) arriving after
    /// [`ExploreConfig::max_paths`] results were already collected.
    pub dropped_paths: usize,
    /// True when a fault-injected kill stopped the run as if the process
    /// died. A killed result is incomplete by construction: its pending
    /// frontier lives only in the checkpoint file (when one was
    /// configured) and is *not* drained into truncated paths here —
    /// exactly what a real crash leaves behind. Resume with
    /// [`explore_resume`].
    pub killed: bool,
    /// What, if anything, degraded this run (deadlines, cancellation,
    /// isolated panics, undecided solver queries).
    pub diagnostics: ExploreDiagnostics,
    /// The run's exploration profile: metric deltas, branch-tree shape,
    /// and — when the journal was enabled — slowest sat queries and the
    /// per-language action table. Render with [`Report::render`];
    /// library code never prints it.
    pub report: Report,
}

impl<S: GilState> ExploreResult<S> {
    /// Paths that ended in an error.
    pub fn errors(&self) -> impl Iterator<Item = &PathResult<S>> {
        self.paths
            .iter()
            .filter(|p| matches!(p.outcome, ExploreOutcome::Error(_)))
    }

    /// Paths that returned normally.
    pub fn normal(&self) -> impl Iterator<Item = &PathResult<S>> {
        self.paths
            .iter()
            .filter(|p| matches!(p.outcome, ExploreOutcome::Normal(_)))
    }

    /// Paths that died to an isolated panic.
    pub fn engine_errors(&self) -> impl Iterator<Item = &PathResult<S>> {
        self.paths
            .iter()
            .filter(|p| matches!(p.outcome, ExploreOutcome::EngineError { .. }))
    }

    /// True when this result carries a *bounded* guarantee only: some
    /// budget truncated exploration, paths were dropped, or the
    /// diagnostics record a degradation (including `Unknown` verdicts,
    /// which truncate nothing but leave branches unproven-infeasible).
    pub fn bounded(&self) -> bool {
        self.truncated || self.dropped_paths > 0 || self.killed || !self.diagnostics.is_clean()
    }

    fn empty() -> Self {
        ExploreResult {
            paths: Vec::new(),
            total_cmds: 0,
            truncated: false,
            dropped_paths: 0,
            killed: false,
            diagnostics: ExploreDiagnostics::default(),
            report: Report::default(),
        }
    }

    /// Records a path without ever exceeding `max_paths`: overflow is
    /// counted in [`ExploreResult::dropped_paths`] and marks the result
    /// truncated. Returns whether the path was recorded, so callers can
    /// journal a `PathFinished` for exactly the reported paths.
    fn record(&mut self, max_paths: usize, path: PathResult<S>) -> bool {
        if self.paths.len() < max_paths {
            self.paths.push(path);
            true
        } else {
            self.dropped_paths += 1;
            self.truncated = true;
            false
        }
    }
}

/// Shared tail of both engines: merges the journal, exports it, and
/// fills in the run's [`Report`].
fn finish_report<S: GilState>(
    result: &mut ExploreResult<S>,
    journal: &Journal,
    traces: &[Vec<u32>],
    metrics_before: &gillian_telemetry::MetricsSnapshot,
    run_started: Instant,
    workers: u32,
) {
    if journal.is_enabled() {
        let merged = journal.finish_run();
        result
            .report
            .ingest_events(&merged, journal.events_dropped());
        result.report.trace_path = journal.jsonl_path().map(String::from);
    }
    result.report.wall_micros = run_started.elapsed().as_micros() as u64;
    result.report.workers = workers;
    result.report.tree = TreeStats::from_paths(traces.iter().map(Vec::as_slice));
    result.report.metrics = registry().snapshot().since(metrics_before);
}

/// Why the main loop stopped early (beyond budget exhaustion, which keeps
/// the historical accounting and no diagnostic).
#[derive(Clone, Copy)]
enum StopCause {
    Deadline,
    Cancelled,
}

/// Accounting carried into a resumed run from its checkpoint, so the
/// merged result reads as if the run was never interrupted: the global
/// command budget continues from the checkpoint's count and the
/// interrupted run's diagnostics are folded into the final ones.
#[derive(Clone, Copy, Debug, Default)]
struct ResumeBase {
    total_cmds: u64,
    truncated: bool,
    dropped_paths: usize,
    diagnostics: ExploreDiagnostics,
}

/// Summaries of a result's recorded paths, for checkpointing.
fn summaries<S: GilState>(result: &ExploreResult<S>) -> Vec<PathSummary> {
    result
        .paths
        .iter()
        .map(|p| PathSummary {
            trace: p.trace.clone(),
            outcome: p.outcome.kind().to_string(),
            cmds: p.cmds,
        })
        .collect()
}

/// Summaries of the parallel engine's not-yet-merged finished paths.
fn yield_summaries<S: GilState>(finished: &[(Vec<u32>, PathResult<S>)]) -> Vec<PathSummary> {
    finished
        .iter()
        .map(|(trace, p)| PathSummary {
            trace: trace.clone(),
            outcome: p.outcome.kind().to_string(),
            cmds: p.cmds,
        })
        .collect()
}

/// Writes one atomic checkpoint of the current frontier, journaling and
/// counting the write. Failures are counted
/// (`checkpoint.failed_writes`) but never interrupt exploration —
/// checkpointing is best-effort durability, not a correctness
/// dependency. Returns whether the write succeeded.
#[allow(clippy::too_many_arguments)] // internal; mirrors CheckpointData's fields
fn write_frontier_checkpoint<'a, S: GilState + 'a>(
    ckpt: &CheckpointConfig,
    cfg: &ExploreConfig,
    entry: &str,
    frontier: impl Iterator<Item = &'a FrontierItem<S>>,
    result: &ExploreResult<S>,
    completed: Vec<PathSummary>,
    diagnostics: ExploreDiagnostics,
    log: &mut WorkerLog,
) -> bool {
    let started = Instant::now();
    let data = CheckpointData {
        strategy: cfg.strategy,
        entry: entry.to_string(),
        total_cmds: result.total_cmds,
        truncated: result.truncated,
        dropped_paths: result.dropped_paths,
        diagnostics,
        completed,
        frontier: frontier.cloned().collect(),
    };
    match checkpoint::save_checkpoint(&ckpt.path, &data) {
        Ok(bytes) => {
            let micros = started.elapsed().as_micros() as u64;
            registry().counter(names::CHECKPOINT_WRITES).incr();
            registry().counter(names::CHECKPOINT_BYTES).add(bytes);
            registry()
                .histogram(names::CHECKPOINT_WRITE_MICROS)
                .record(micros);
            let pending = data.frontier.len() as u32;
            let completed = data.completed.len() as u32;
            log.emit_with(|| Event::CheckpointWritten {
                pending,
                completed,
                bytes,
                micros,
            });
            true
        }
        Err(_) => {
            registry().counter(names::CHECKPOINT_FAILED_WRITES).incr();
            false
        }
    }
}

/// A resumed exploration: the paths completed before the interruption
/// (from the checkpoint) plus the result of exploring the restored
/// frontier. `prior` and `result.paths` are disjoint by construction
/// (a path is either finished before the checkpoint or pending in it),
/// and for a kill-interrupted run their union is exactly the
/// uninterrupted run's path set, with the same branch-trace identities.
#[derive(Clone, Debug)]
pub struct ResumedExplore<S: GilState> {
    /// Paths completed before the checkpoint was written.
    pub prior: Vec<PathSummary>,
    /// The continuation run. Budgets continue from the checkpoint's
    /// accounting and [`ExploreDiagnostics`] are merged, so this reads
    /// like the tail of one uninterrupted run.
    pub result: ExploreResult<S>,
}

/// Resumes an interrupted exploration from the checkpoint at `path`.
///
/// The frontier is restored through `ctx` (intern ids remapped by
/// re-interning; states re-attached to `ctx.solver`), the checkpoint's
/// search strategy overrides `cfg.strategy`, and exploration continues
/// under `cfg`'s budgets with the checkpoint's command count already
/// spent. `sentinel` plays the role the initial state plays in
/// [`explore`]: a pristine state for interrupt/journal installation and
/// panic reporting — it is never stepped.
///
/// # Errors
///
/// Reports [`ResumeError`] when the file is missing, corrupt, from a
/// different format version, or holds states `S` cannot rebuild. Never
/// panics on untrusted bytes.
pub fn explore_resume<S>(
    prog: &Prog,
    path: &Path,
    ctx: &StateCtx,
    sentinel: S,
    mut cfg: ExploreConfig,
) -> Result<ResumedExplore<S>, ResumeError>
where
    S: GilState + Send,
    S::V: Send,
    S::Store: Send,
{
    let data: CheckpointData<S> = checkpoint::load_checkpoint(path, ctx)?;
    cfg.strategy = data.strategy;
    registry().counter(names::CHECKPOINT_RESUMES).incr();
    cfg.journal.record_shared(Event::Resumed {
        pending: data.frontier.len() as u32,
        completed: data.completed.len() as u32,
    });
    let base = ResumeBase {
        total_cmds: data.total_cmds,
        truncated: data.truncated,
        dropped_paths: data.dropped_paths,
        diagnostics: data.diagnostics,
    };
    let entry = data.entry.clone();
    let frontier: VecDeque<FrontierItem<S>> = data.frontier.into();
    let result = if cfg.workers > 1 {
        explore_parallel_frontier(prog, &entry, sentinel, frontier, cfg, base)
    } else {
        explore_frontier(prog, &entry, sentinel, frontier, cfg, base)
    };
    Ok(ResumedExplore {
        prior: data.completed,
        result,
    })
}

/// Explores all paths of `prog` starting from `entry` in `initial` state.
///
/// Budgets are enforced at the point work is *produced*, not merely when it
/// is popped: the result never holds more than `max_paths` paths, and a
/// budget break drains the remaining worklist into
/// [`ExploreOutcome::Truncated`] paths (or `dropped_paths` once `max_paths`
/// is full) instead of silently discarding it.
///
/// Deadline expiry and cancellation stop the loop the same way a budget
/// does, with the parked paths counted in [`ExploreDiagnostics`]; a panic
/// while stepping is isolated to its path (see
/// [`ExploreOutcome::EngineError`]).
pub fn explore<S: GilState>(
    prog: &Prog,
    entry: &str,
    initial: S,
    cfg: ExploreConfig,
) -> ExploreResult<S> {
    // A pristine clone of the initial state: it arms/disarms the solver
    // interrupt, provides the Unknown-verdict counter, and stands in as
    // the reported state of paths whose true state was lost to a panic.
    let sentinel = initial.clone();
    let worklist = VecDeque::from([FrontierItem {
        config: Config::entry(entry, initial),
        cmds: 0,
        trace: Vec::new(),
    }]);
    explore_frontier(prog, entry, sentinel, worklist, cfg, ResumeBase::default())
}

/// The serial engine over an explicit starting frontier: [`explore`] seeds
/// it with the entry configuration, [`explore_resume`] with a restored
/// checkpoint frontier plus the interrupted run's accounting in `base`.
fn explore_frontier<S: GilState>(
    prog: &Prog,
    entry: &str,
    sentinel: S,
    mut worklist: VecDeque<FrontierItem<S>>,
    cfg: ExploreConfig,
    base: ResumeBase,
) -> ExploreResult<S> {
    let run_started = Instant::now();
    let deadline = cfg.deadline.map(|d| run_started + d);
    // One-shot backend preparation: compile to bytecode (or keep the tree
    // walk, per config/environment), plus the per-run register scratch
    // and the crash-safe block-progress channel.
    let exec = ExecProg::prepare(prog, cfg.bytecode);
    let mut scratch = EvalScratch::new();
    let progress = AtomicU64::new(0);
    let interrupt = Interrupt::new(deadline, cfg.cancel.clone());
    sentinel.install_interrupt(interrupt.clone());
    let journal = cfg.journal.clone();
    sentinel.install_journal(journal.clone());
    let faults = cfg.faults.clone();
    if let Some(plan) = &faults {
        sentinel.install_fault_probe(plan.probe(journal.clone()));
    }
    // Summary arming (`DESIGN.md` §17): same one-run-at-a-time lifecycle
    // as the interrupt. Armed states load `GILLIAN_SUMMARY_FILE` (when
    // set) inside the configure hook, so warm entries apply from the
    // first path onward.
    let summaries_on = cfg.summaries.unwrap_or_else(summaries_from_env);
    if summaries_on {
        sentinel.configure_summaries(prog, true);
    }
    let ckpt = cfg.checkpoint.clone();
    let mut next_ckpt = ckpt.as_ref().and_then(|c| c.every).map(|e| run_started + e);
    let unknowns_before = sentinel.unknown_verdicts();
    let reuse_before = sentinel.solver_reuse();
    let summary_before = sentinel.summary_stats();
    // Thread-local snapshot: the whole run executes on this thread, so
    // the delta attributes exactly this run's interner traffic.
    let interner_before = InternStats::thread_snapshot();
    let metrics_before = registry().snapshot();
    let mut log = journal.worker(0);
    log.emit_with(|| Event::PathStarted { path: Vec::new() });
    // Branch traces of every *recorded* path, for the report's tree stats.
    let mut traces: Vec<Vec<u32>> = Vec::new();
    // Profiler hooks, both off by default: the dispatcher's per-proc time
    // attribution (journal-armed runs only) and the `GILLIAN_LIVE` frame
    // sink. Depth is the branch-trace length of the path last stepped.
    let mut profile = journal.is_enabled().then(BlockProfile::new);
    let mut live = LiveSink::from_env();
    let mut live_depth = 0u32;

    let mut result = ExploreResult::empty();
    result.total_cmds = base.total_cmds;
    result.truncated = base.truncated;
    result.dropped_paths = base.dropped_paths;
    // Diagnostics as they stand mid-run (for checkpoints): run counters so
    // far plus the solver deltas normally computed at run end, plus the
    // resumed-from accounting.
    let diag_now = |result: &ExploreResult<S>| {
        let mut d = result.diagnostics;
        d.deadline_hits += base.diagnostics.deadline_hits;
        d.cancellations += base.diagnostics.cancellations;
        d.engine_errors += base.diagnostics.engine_errors;
        d.unknown_verdicts = sentinel.unknown_verdicts().saturating_sub(unknowns_before)
            + base.diagnostics.unknown_verdicts;
        let reuse = sentinel.solver_reuse();
        d.incremental_hits =
            reuse.0.saturating_sub(reuse_before.0) + base.diagnostics.incremental_hits;
        d.implication_hits =
            reuse.1.saturating_sub(reuse_before.1) + base.diagnostics.implication_hits;
        let summ = sentinel.summary_stats();
        d.summaries_recorded =
            summ.0.saturating_sub(summary_before.0) + base.diagnostics.summaries_recorded;
        d.summaries_applied =
            summ.1.saturating_sub(summary_before.1) + base.diagnostics.summaries_applied;
        d
    };
    let pop = |wl: &mut VecDeque<FrontierItem<S>>, strategy| match strategy {
        SearchStrategy::Dfs => wl.pop_back(),
        SearchStrategy::Bfs => wl.pop_front(),
    };
    let mut stop_cause: Option<StopCause> = None;
    let mut killed = false;
    while result.total_cmds < cfg.max_total_cmds && result.paths.len() < cfg.max_paths {
        if cfg.cancel.is_cancelled() {
            stop_cause = Some(StopCause::Cancelled);
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            log.emit_with(|| Event::DeadlineHit { path: Vec::new() });
            stop_cause = Some(StopCause::Deadline);
            break;
        }
        if let Some(l) = live.as_mut() {
            l.tick(&LiveStats {
                paths_finished: result.paths.len() as u64,
                pending: worklist.len() as u64,
                depth: live_depth,
                cmds: result.total_cmds,
                workers: 1,
            });
        }
        if let (Some(c), Some(at)) = (ckpt.as_ref(), next_ckpt) {
            if Instant::now() >= at {
                let diag = diag_now(&result);
                write_frontier_checkpoint(
                    c,
                    &cfg,
                    entry,
                    worklist.iter(),
                    &result,
                    summaries(&result),
                    diag,
                    &mut log,
                );
                next_ckpt = c.every.map(|e| Instant::now() + e);
            }
        }
        // One fault point per scheduling step. A kill fires *before* the
        // pop, so the checkpointed frontier below is exactly what was
        // pending; an injected panic is armed here and fires inside the
        // step's panic guard, exercising the same isolation a real
        // memory-model panic would.
        let mut inject_panic = false;
        if let Some(plan) = &faults {
            let point = plan.next_point();
            match plan.engine_fault(point) {
                Some(FaultKind::Kill) => {
                    plan.record(point, FaultKind::Kill);
                    log.emit_with(|| Event::FaultInjected {
                        point,
                        fault: "kill",
                    });
                    killed = true;
                    break;
                }
                Some(FaultKind::PathPanic) => {
                    plan.record(point, FaultKind::PathPanic);
                    log.emit_with(|| Event::FaultInjected {
                        point,
                        fault: "path_panic",
                    });
                    inject_panic = true;
                }
                _ => {}
            }
        }
        let Some(FrontierItem {
            config,
            cmds,
            mut trace,
        }) = pop(&mut worklist, cfg.strategy)
        else {
            break;
        };
        if cmds >= cfg.max_cmds_per_path {
            result.truncated = true;
            if result.record(
                cfg.max_paths,
                PathResult {
                    state: config.state,
                    outcome: ExploreOutcome::Truncated,
                    cmds,
                    trace: trace.clone(),
                },
            ) {
                log.emit_with(|| Event::PathFinished {
                    path: trace.clone(),
                    outcome: "truncated",
                    cmds,
                });
                traces.push(trace);
            }
            continue;
        }
        // Block budget: never beyond the path's or the run's remaining
        // command allowance (both positive — the checks above guarantee
        // it), so the block loop itself never has to consult budgets.
        let limit = BLOCK_MAX
            .min(cfg.max_cmds_per_path - cmds)
            .min(cfg.max_total_cmds - result.total_cmds);
        progress.store(0, Ordering::Relaxed);
        live_depth = trace.len() as u32;
        // Attribute the solver/memory events this step emits to the path
        // being stepped (thread-local; cleared when the run ends).
        if profile.is_some() {
            set_path_context(&trace);
        }
        let caught = {
            let scratch = &mut scratch;
            let progress = &progress;
            let exec = &exec;
            let interrupt = &interrupt;
            let prof = profile.as_mut();
            panic_guard::catch(move || {
                if inject_panic {
                    panic!("injected fault: path panic");
                }
                step_block(
                    prog, exec, config, limit, interrupt, progress, scratch, prof,
                )
            })
        };
        // Commands the block actually charged — published *before* each
        // command executes, so a panic mid-block still bills every
        // command up to and including the one that died (`max(1)` covers
        // an injected panic ahead of the first command, which the tree
        // walk charges as one).
        let consumed = progress.load(Ordering::Relaxed).max(1);
        result.total_cmds += consumed;
        if let Some(p) = profile.as_mut() {
            for (stack, seg_cmds, micros) in p.drain(progress.load(Ordering::Relaxed)) {
                log.emit_with(|| Event::ProcTime {
                    path: trace.clone(),
                    stack,
                    cmds: seg_cmds,
                    micros,
                });
            }
        }
        let outs = match caught {
            Ok(outs) => outs,
            Err(payload) => {
                result.truncated = true;
                result.diagnostics.engine_errors += 1;
                log.emit_with(|| Event::PanicIsolated {
                    path: trace.clone(),
                    payload: payload.clone(),
                });
                // The sentinel clone itself may panic (a poisoned user
                // Clone impl); then the path is counted but has no state
                // to report.
                if let Ok(state) = panic_guard::catch(|| sentinel.clone()) {
                    if result.record(
                        cfg.max_paths,
                        PathResult {
                            state,
                            outcome: ExploreOutcome::EngineError {
                                payload,
                                trace: trace.clone(),
                            },
                            cmds: cmds + consumed,
                            trace: trace.clone(),
                        },
                    ) {
                        log.emit_with(|| Event::PathFinished {
                            path: trace.clone(),
                            outcome: "engine_error",
                            cmds: cmds + consumed,
                        });
                        traces.push(trace);
                    }
                }
                continue;
            }
        };
        let branching = outs.len() > 1;
        if branching {
            let arms = outs.len() as u32;
            log.emit_with(|| Event::PathForked {
                parent: trace.clone(),
                arms,
            });
        }
        for (i, out) in outs.into_iter().enumerate() {
            let child_trace = if branching {
                let mut t = trace.clone();
                t.push(i as u32);
                t
            } else {
                std::mem::take(&mut trace)
            };
            match out {
                StepOut::Next(c) => {
                    if cfg.max_pending.is_some_and(|cap| worklist.len() >= cap) {
                        result.dropped_paths += 1;
                        result.truncated = true;
                    } else {
                        worklist.push_back(FrontierItem {
                            config: c,
                            cmds: cmds + consumed,
                            trace: child_trace,
                        });
                    }
                }
                StepOut::Done(Final { state, outcome }) => {
                    let outcome: ExploreOutcome<_> = outcome.into();
                    let kind = outcome.kind();
                    if result.record(
                        cfg.max_paths,
                        PathResult {
                            state,
                            outcome,
                            cmds: cmds + consumed,
                            trace: child_trace.clone(),
                        },
                    ) {
                        log.emit_with(|| Event::PathFinished {
                            path: child_trace.clone(),
                            outcome: kind,
                            cmds: cmds + consumed,
                        });
                        traces.push(child_trace);
                    }
                }
            }
        }
    }
    // Final checkpoint: always on a kill (that *is* the crash being
    // simulated), and on deadline/cancel when configured — written before
    // pending work is drained, so the file holds the true frontier.
    let mut frontier_checkpointed = false;
    if let Some(c) = ckpt.as_ref() {
        let wanted = killed
            || match stop_cause {
                Some(StopCause::Deadline) => c.on_deadline,
                Some(StopCause::Cancelled) => c.on_cancel,
                None => false,
            };
        if wanted {
            let diag = diag_now(&result);
            frontier_checkpointed = write_frontier_checkpoint(
                c,
                &cfg,
                entry,
                worklist.iter(),
                &result,
                summaries(&result),
                diag,
                &mut log,
            );
        }
    }
    result.killed = killed;
    if killed && frontier_checkpointed {
        // A killed run mimics process death: its pending work survives
        // only in the checkpoint, so it is *not* drained into truncated
        // paths here (resume-equivalence depends on it appearing exactly
        // once — in the resumed run).
        worklist.clear();
    }
    // A budget/deadline/cancel break leaves pending configurations behind;
    // surface every one of them instead of losing them.
    while let Some(FrontierItem {
        config,
        cmds,
        trace,
    }) = pop(&mut worklist, cfg.strategy)
    {
        result.truncated = true;
        match stop_cause {
            Some(StopCause::Deadline) => result.diagnostics.deadline_hits += 1,
            Some(StopCause::Cancelled) => result.diagnostics.cancellations += 1,
            None => {}
        }
        if result.record(
            cfg.max_paths,
            PathResult {
                state: config.state,
                outcome: ExploreOutcome::Truncated,
                cmds,
                trace: trace.clone(),
            },
        ) {
            log.emit_with(|| Event::PathFinished {
                path: trace.clone(),
                outcome: "truncated",
                cmds,
            });
            traces.push(trace);
        }
    }
    if profile.is_some() {
        clear_path_context();
    }
    if let Some(l) = live.as_mut() {
        l.finish(&LiveStats {
            paths_finished: result.paths.len() as u64,
            pending: 0,
            depth: live_depth,
            cmds: result.total_cmds,
            workers: 1,
        });
    }
    sentinel.clear_interrupt();
    result.diagnostics.unknown_verdicts =
        sentinel.unknown_verdicts().saturating_sub(unknowns_before)
            + base.diagnostics.unknown_verdicts;
    let reuse_after = sentinel.solver_reuse();
    result.diagnostics.incremental_hits =
        reuse_after.0.saturating_sub(reuse_before.0) + base.diagnostics.incremental_hits;
    result.diagnostics.implication_hits =
        reuse_after.1.saturating_sub(reuse_before.1) + base.diagnostics.implication_hits;
    let summary_after = sentinel.summary_stats();
    result.diagnostics.summaries_recorded =
        summary_after.0.saturating_sub(summary_before.0) + base.diagnostics.summaries_recorded;
    result.diagnostics.summaries_applied =
        summary_after.1.saturating_sub(summary_before.1) + base.diagnostics.summaries_applied;
    result.diagnostics.deadline_hits += base.diagnostics.deadline_hits;
    result.diagnostics.cancellations += base.diagnostics.cancellations;
    result.diagnostics.engine_errors += base.diagnostics.engine_errors;
    result.diagnostics.interner = InternStats::thread_snapshot().since(&interner_before);
    if summaries_on {
        // Disarm (persisting to `GILLIAN_SUMMARY_FILE` when set); entries
        // stay in the store for the next armed run in this process.
        sentinel.configure_summaries(prog, false);
    }
    if faults.is_some() {
        sentinel.clear_fault_probe();
    }
    drop(log);
    finish_report(
        &mut result,
        &journal,
        &traces,
        &metrics_before,
        run_started,
        1,
    );
    sentinel.clear_journal();
    result
}

/// Explores with the configured engine: serial for `workers <= 1`, the
/// parallel explorer otherwise.
pub fn explore_with<S>(prog: &Prog, entry: &str, initial: S, cfg: ExploreConfig) -> ExploreResult<S>
where
    S: GilState + Send,
    S::V: Send,
    S::Store: Send,
{
    if cfg.workers > 1 {
        explore_parallel(prog, entry, initial, cfg)
    } else {
        explore(prog, entry, initial, cfg)
    }
}

/// Why a forced-branch replay could not follow its trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The program branched more often than the trace has entries.
    TraceExhausted {
        /// Commands executed when the trace ran dry.
        cmds: u64,
    },
    /// The trace picked a successor index the step did not produce.
    NoSuchArm {
        /// The trace's successor index.
        index: u32,
        /// How many successors the step actually produced.
        arms: usize,
    },
    /// A step produced no successor at all (every branch infeasible).
    DeadEnd {
        /// Commands executed when the path died.
        cmds: u64,
    },
    /// The command budget ran out before the path finished.
    BudgetExhausted,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::TraceExhausted { cmds } => {
                write!(f, "trace exhausted after {cmds} commands")
            }
            ReplayError::NoSuchArm { index, arms } => {
                write!(f, "trace picked arm {index} of {arms}")
            }
            ReplayError::DeadEnd { cmds } => {
                write!(f, "no feasible successor after {cmds} commands")
            }
            ReplayError::BudgetExhausted => write!(f, "replay command budget exhausted"),
        }
    }
}

/// Deterministic single-path replay: re-executes `entry` from `initial`,
/// forcing the successor index recorded in `trace` at every branching
/// step (the branch trace of a [`PathResult`] or journal path id).
///
/// Allocator sites are re-seeded for free — a fresh state replays the
/// same `uSym`/`iSym` sequence, because allocation order is a function of
/// the path, and the path is forced. Replaying a finished path's trace on
/// an equal initial state therefore reproduces its final state and
/// outcome exactly; the differential harness leans on this to turn a
/// divergent path into a standalone, debuggable repro.
///
/// # Errors
///
/// Fails when the trace and the program disagree (more or fewer branch
/// points than recorded, or an arm index out of range) — which, on a
/// replay of a just-explored path, indicates nondeterminism in the engine
/// or a memory model — or when `max_cmds` runs out.
pub fn replay_path<S: GilState>(
    prog: &Prog,
    entry: &str,
    initial: S,
    trace: &[u32],
    max_cmds: u64,
) -> Result<PathResult<S>, ReplayError> {
    let exec = ExecProg::prepare(prog, None);
    let mut scratch = EvalScratch::new();
    let progress = AtomicU64::new(0);
    // Replay has no deadline or cancellation; the default interrupt never
    // fires.
    let interrupt = Interrupt::default();
    let mut config = Config::entry(entry, initial);
    let mut cmds = 0u64;
    let mut followed: Vec<u32> = Vec::new();
    let mut next = trace.iter().copied();
    loop {
        if cmds >= max_cmds {
            return Err(ReplayError::BudgetExhausted);
        }
        let limit = BLOCK_MAX.min(max_cmds - cmds);
        progress.store(0, Ordering::Relaxed);
        let mut outs = step_block(
            prog,
            &exec,
            config,
            limit,
            &interrupt,
            &progress,
            &mut scratch,
            None,
        );
        cmds += progress.load(Ordering::Relaxed).max(1);
        let pick = if outs.len() > 1 {
            let Some(i) = next.next() else {
                return Err(ReplayError::TraceExhausted { cmds });
            };
            if (i as usize) >= outs.len() {
                return Err(ReplayError::NoSuchArm {
                    index: i,
                    arms: outs.len(),
                });
            }
            followed.push(i);
            i as usize
        } else if outs.is_empty() {
            return Err(ReplayError::DeadEnd { cmds });
        } else {
            0
        };
        match outs.swap_remove(pick) {
            StepOut::Next(c) => config = c,
            StepOut::Done(Final { state, outcome }) => {
                return Ok(PathResult {
                    state,
                    outcome: outcome.into(),
                    cmds,
                    trace: followed,
                });
            }
        }
    }
}

/// Queue shared by the explorer workers (elements are [`FrontierItem`]s —
/// the same worklist unit the serial engine and checkpoints use; branch
/// traces canonically identify paths independently of scheduling, which
/// is what lets the parallel engine return a deterministically ordered
/// result). `in_flight` counts jobs popped but not yet retired; the queue
/// is only known empty-for-good when it is empty *and* nothing is in
/// flight.
struct JobQueue<S: GilState> {
    jobs: VecDeque<FrontierItem<S>>,
    in_flight: usize,
}

/// Stop-cause constants for [`SharedExplorer::stop_cause`]; the first
/// cause to fire wins and attributes the parked pending work.
/// `CAUSE_CHECKPOINT` pauses the round for a stop-the-world frontier
/// snapshot (the run restarts afterwards); `CAUSE_KILLED` is a
/// fault-injected simulated process death.
const CAUSE_NONE: u8 = 0;
const CAUSE_DEADLINE: u8 = 1;
const CAUSE_CANCELLED: u8 = 2;
const CAUSE_CHECKPOINT: u8 = 3;
const CAUSE_KILLED: u8 = 4;

struct SharedExplorer<S: GilState> {
    queue: Mutex<JobQueue<S>>,
    work: Condvar,
    /// Commands claimed so far against `max_total_cmds`.
    total_cmds: AtomicU64,
    /// Finished paths so far (for the `max_paths` stop signal; the
    /// authoritative cap is applied at merge time).
    finished_paths: AtomicUsize,
    /// Set when a global budget is exhausted (or the run is interrupted):
    /// workers park their current job as pending-truncated and drain the
    /// queue the same way.
    stop: AtomicBool,
    /// Why `stop` was raised, when the reason was an interruption rather
    /// than a command budget (one of the `CAUSE_*` constants).
    stop_cause: AtomicU8,
    truncated: AtomicBool,
    dropped_paths: AtomicUsize,
    /// Paths lost to isolated panics, counted by the workers.
    engine_errors: AtomicUsize,
    /// The run deadline, pre-resolved to an instant.
    deadline: Option<Instant>,
    cancel: CancelToken,
    /// When the next periodic checkpoint is due: the first worker past
    /// this instant raises `CAUSE_CHECKPOINT` and the round quiesces so
    /// the main thread can snapshot a consistent frontier.
    checkpoint_at: Option<Instant>,
    /// The run's fault-injection plan, if any.
    faults: Option<Arc<FaultPlan>>,
}

impl<S: GilState> SharedExplorer<S> {
    fn note_finished(&self, cfg: &ExploreConfig) {
        if self.finished_paths.fetch_add(1, Ordering::Relaxed) + 1 >= cfg.max_paths {
            self.stop.store(true, Ordering::Relaxed);
            self.work.notify_all();
        }
    }

    /// Raises the stop flag for an interruption, recording the first cause.
    fn halt(&self, cause: u8) {
        let _ = self.stop_cause.compare_exchange(
            CAUSE_NONE,
            cause,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        // A checkpoint pause resumes afterwards and a kill's pending work
        // survives in the checkpoint file — neither truncates the result.
        if cause == CAUSE_DEADLINE || cause == CAUSE_CANCELLED {
            self.truncated.store(true, Ordering::Relaxed);
        }
        self.stop.store(true, Ordering::Relaxed);
        self.work.notify_all();
    }
}

/// Decrements `in_flight` on drop — *unconditionally*, including when the
/// worker unwinds. Without this, a panicking worker would leave its claim
/// behind and every sibling would wait forever on the condvar.
struct InFlightToken<'a, S: GilState> {
    shared: &'a SharedExplorer<S>,
}

impl<S: GilState> Drop for InFlightToken<'_, S> {
    fn drop(&mut self) {
        let mut q = lock_unpoisoned(&self.shared.queue);
        q.in_flight -= 1;
        if q.in_flight == 0 && q.jobs.is_empty() {
            self.shared.work.notify_all();
        }
    }
}

/// What one worker produced: finished paths and jobs cut off mid-path by a
/// global budget (both tagged with their branch trace for merging), plus
/// the worker thread's own interner delta for exact run attribution.
struct WorkerYield<S: GilState> {
    finished: Vec<(Vec<u32>, PathResult<S>)>,
    cut: Vec<FrontierItem<S>>,
    interner: InternStats,
}

fn explore_worker<S: GilState>(
    prog: &Prog,
    exec: &ExecProg,
    cfg: &ExploreConfig,
    shared: &SharedExplorer<S>,
    sentinel: S,
    worker: u32,
    journal: &Journal,
) -> WorkerYield<S> {
    let interner_before = InternStats::thread_snapshot();
    let mut scratch = EvalScratch::new();
    let progress = AtomicU64::new(0);
    let interrupt = Interrupt::new(shared.deadline, shared.cancel.clone());
    let mut log = journal.worker(worker);
    let mut profile = journal.is_enabled().then(BlockProfile::new);
    let mut finished: Vec<(Vec<u32>, PathResult<S>)> = Vec::new();
    let mut cut: Vec<FrontierItem<S>> = Vec::new();
    // Steps this worker has executed this round. A checkpoint pause is only
    // honored after at least one local step, so even a zero-length interval
    // cannot livelock the restart loop: every round makes progress.
    let mut steps = 0u64;
    loop {
        // Acquire a job, or return once the queue is empty with nothing in
        // flight (no one can produce more work).
        let (mut job, _token) = {
            let mut q = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(j) = q.jobs.pop_back() {
                    q.in_flight += 1;
                    break (j, InFlightToken { shared });
                }
                if q.in_flight == 0 {
                    shared.work.notify_all();
                    drop(q);
                    if profile.is_some() {
                        clear_path_context();
                    }
                    return WorkerYield {
                        finished,
                        cut,
                        interner: InternStats::thread_snapshot().since(&interner_before),
                    };
                }
                q = shared.work.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Run the job depth-first locally: keep one successor, share the
        // rest. This keeps queue traffic proportional to branching, not to
        // path length.
        loop {
            if shared.stop.load(Ordering::Relaxed) {
                cut.push(job);
                break;
            }
            if shared.cancel.is_cancelled() {
                shared.halt(CAUSE_CANCELLED);
                cut.push(job);
                break;
            }
            if shared.deadline.is_some_and(|d| Instant::now() >= d) {
                log.emit_with(|| Event::DeadlineHit {
                    path: job.trace.clone(),
                });
                shared.halt(CAUSE_DEADLINE);
                cut.push(job);
                break;
            }
            if steps > 0 && shared.checkpoint_at.is_some_and(|at| Instant::now() >= at) {
                shared.halt(CAUSE_CHECKPOINT);
                cut.push(job);
                break;
            }
            // One fault point per scheduling step, drawn from the plan's
            // *shared* counter (solver queries draw from the same one). A
            // kill parks the item *before* it is stepped, so the quiesced
            // frontier written by the main thread is exactly what was
            // pending; an injected panic is armed here and fires inside
            // the step's panic guard below.
            let mut inject_panic = false;
            if let Some(plan) = &shared.faults {
                let point = plan.next_point();
                match plan.engine_fault(point) {
                    Some(FaultKind::Kill) => {
                        plan.record(point, FaultKind::Kill);
                        log.emit_with(|| Event::FaultInjected {
                            point,
                            fault: "kill",
                        });
                        shared.halt(CAUSE_KILLED);
                        cut.push(job);
                        break;
                    }
                    Some(FaultKind::PathPanic) => {
                        plan.record(point, FaultKind::PathPanic);
                        log.emit_with(|| Event::FaultInjected {
                            point,
                            fault: "path_panic",
                        });
                        inject_panic = true;
                    }
                    _ => {}
                }
            }
            if job.cmds >= cfg.max_cmds_per_path {
                shared.truncated.store(true, Ordering::Relaxed);
                finished.push((
                    job.trace.clone(),
                    PathResult {
                        state: job.config.state,
                        outcome: ExploreOutcome::Truncated,
                        cmds: job.cmds,
                        trace: job.trace,
                    },
                ));
                shared.note_finished(cfg);
                break;
            }
            // Claim a block of commands against the global budget. The
            // claim is optimistic (`want` commands) and settled to the
            // truth afterwards: a partial grant refunds the un-granted
            // tail immediately, and the block's unconsumed remainder is
            // refunded after it runs — so `total_cmds` always ends equal
            // to commands actually executed. A transiently inflated
            // counter can make a *sibling's* claim fail a few commands
            // early, which is indistinguishable from the budget binding
            // there anyway.
            let want = BLOCK_MAX.min(cfg.max_cmds_per_path - job.cmds);
            let prev = shared.total_cmds.fetch_add(want, Ordering::Relaxed);
            if prev >= cfg.max_total_cmds {
                shared.total_cmds.fetch_sub(want, Ordering::Relaxed);
                shared.truncated.store(true, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Relaxed);
                shared.work.notify_all();
                cut.push(job);
                break;
            }
            let allowed = want.min(cfg.max_total_cmds - prev);
            if allowed < want {
                // Partial grant: refund the tail but do NOT stop — the
                // next claim will fail outright and raise the flag, as
                // the one-command-at-a-time protocol did.
                shared
                    .total_cmds
                    .fetch_sub(want - allowed, Ordering::Relaxed);
            }
            steps += 1;
            let FrontierItem {
                config,
                cmds,
                mut trace,
            } = job;
            progress.store(0, Ordering::Relaxed);
            // Attribute the solver/memory events this step emits to the
            // path being stepped (thread-local per worker).
            if profile.is_some() {
                set_path_context(&trace);
            }
            let caught = {
                let scratch = &mut scratch;
                let progress = &progress;
                let interrupt = &interrupt;
                let prof = profile.as_mut();
                panic_guard::catch(move || {
                    if inject_panic {
                        panic!("injected fault: path panic");
                    }
                    step_block(
                        prog, exec, config, allowed, interrupt, progress, scratch, prof,
                    )
                })
            };
            let consumed = progress.load(Ordering::Relaxed).max(1);
            if consumed < allowed {
                shared
                    .total_cmds
                    .fetch_sub(allowed - consumed, Ordering::Relaxed);
            }
            if let Some(p) = profile.as_mut() {
                for (stack, seg_cmds, micros) in p.drain(progress.load(Ordering::Relaxed)) {
                    log.emit_with(|| Event::ProcTime {
                        path: trace.clone(),
                        stack,
                        cmds: seg_cmds,
                        micros,
                    });
                }
            }
            let outs = match caught {
                Ok(outs) => outs,
                Err(payload) => {
                    shared.engine_errors.fetch_add(1, Ordering::Relaxed);
                    shared.truncated.store(true, Ordering::Relaxed);
                    log.emit_with(|| Event::PanicIsolated {
                        path: trace.clone(),
                        payload: payload.clone(),
                    });
                    if let Ok(state) = panic_guard::catch(|| sentinel.clone()) {
                        finished.push((
                            trace.clone(),
                            PathResult {
                                state,
                                outcome: ExploreOutcome::EngineError {
                                    payload,
                                    trace: trace.clone(),
                                },
                                cmds: cmds + consumed,
                                trace,
                            },
                        ));
                        shared.note_finished(cfg);
                    }
                    break;
                }
            };
            let branching = outs.len() > 1;
            if branching {
                let arms = outs.len() as u32;
                log.emit_with(|| Event::PathForked {
                    parent: trace.clone(),
                    arms,
                });
            }
            let mut continuation: Option<FrontierItem<S>> = None;
            let mut surplus: Vec<FrontierItem<S>> = Vec::new();
            for (i, out) in outs.into_iter().enumerate() {
                let child_trace = if branching {
                    let mut t = trace.clone();
                    t.push(i as u32);
                    t
                } else {
                    std::mem::take(&mut trace)
                };
                match out {
                    StepOut::Next(config) => {
                        let child = FrontierItem {
                            config,
                            cmds: cmds + consumed,
                            trace: child_trace,
                        };
                        if continuation.is_none() {
                            continuation = Some(child);
                        } else {
                            surplus.push(child);
                        }
                    }
                    StepOut::Done(Final { state, outcome }) => {
                        finished.push((
                            child_trace.clone(),
                            PathResult {
                                state,
                                outcome: outcome.into(),
                                cmds: cmds + consumed,
                                trace: child_trace,
                            },
                        ));
                        shared.note_finished(cfg);
                    }
                }
            }
            if !surplus.is_empty() {
                let mut q = lock_unpoisoned(&shared.queue);
                for child in surplus {
                    if cfg.max_pending.is_some_and(|cap| q.jobs.len() >= cap) {
                        shared.dropped_paths.fetch_add(1, Ordering::Relaxed);
                        shared.truncated.store(true, Ordering::Relaxed);
                    } else {
                        q.jobs.push_back(child);
                    }
                }
                drop(q);
                shared.work.notify_all();
            }
            match continuation {
                Some(next) => job = next,
                None => break,
            }
        }
        // `_token` retires the job here (and on any unwind above).
    }
}

/// Explores all paths of `prog` with `cfg.workers` worker threads sharing
/// one worklist (and one solver, via the state's `Arc<Solver>` — its SAT
/// cache is shared across workers).
///
/// Soundness: per §3.2 every explored trace carries its own guarantee, so
/// exploration order — and therefore parallel scheduling — cannot affect
/// which guarantees hold, only the order they are found in. To make the
/// *result* deterministic anyway, every path is tagged with its branch
/// trace and the merged result is sorted in canonical branch order; with
/// budgets that do not bind, the returned path set is identical to the
/// serial engines' (order-normalized).
///
/// Budget semantics match [`explore`]: never more than `max_paths` paths,
/// and work pending when a budget trips is surfaced as
/// [`ExploreOutcome::Truncated`] paths or counted in `dropped_paths`.
/// Deadline expiry and cancellation behave like a budget trip attributed
/// in [`ExploreDiagnostics`]; panics are isolated per-path inside each
/// worker, and a worker dying *outside* that guard is itself captured —
/// its queued jobs are drained as truncated and the death is counted as an
/// engine error instead of aborting the merge.
pub fn explore_parallel<S>(
    prog: &Prog,
    entry: &str,
    initial: S,
    cfg: ExploreConfig,
) -> ExploreResult<S>
where
    S: GilState + Send,
    S::V: Send,
    S::Store: Send,
{
    let sentinel = initial.clone();
    let seeds = VecDeque::from([FrontierItem {
        config: Config::entry(entry, initial),
        cmds: 0,
        trace: Vec::new(),
    }]);
    explore_parallel_frontier(prog, entry, sentinel, seeds, cfg, ResumeBase::default())
}

/// The parallel engine over an explicit starting frontier —
/// [`explore_parallel`] seeds it with the entry configuration,
/// [`explore_resume`] with a restored checkpoint frontier plus the
/// interrupted run's accounting in `base`.
///
/// Periodic checkpoints are *stop-the-world*: the first worker past the
/// interval raises `CAUSE_CHECKPOINT`, every worker parks its current
/// item, the quiesced frontier is snapshotted atomically, and a fresh
/// round restarts from exactly that frontier. Each round's shared atomics
/// start from the previous round's totals, so budgets and accounting are
/// continuous — a paused-and-restarted run is indistinguishable from an
/// uninterrupted one in its result.
fn explore_parallel_frontier<S>(
    prog: &Prog,
    entry: &str,
    sentinel: S,
    seeds: VecDeque<FrontierItem<S>>,
    cfg: ExploreConfig,
    base: ResumeBase,
) -> ExploreResult<S>
where
    S: GilState + Send,
    S::V: Send,
    S::Store: Send,
{
    let workers = cfg.workers.max(1);
    let run_started = Instant::now();
    let deadline = cfg.deadline.map(|d| run_started + d);
    // One compiled program for the whole run: workers share the
    // instruction stream and its inline caches (resolution is idempotent,
    // so racing resolvers store the same value).
    let exec = ExecProg::prepare(prog, cfg.bytecode);
    sentinel.install_interrupt(Interrupt::new(deadline, cfg.cancel.clone()));
    let journal = cfg.journal.clone();
    sentinel.install_journal(journal.clone());
    if let Some(plan) = &cfg.faults {
        sentinel.install_fault_probe(plan.probe(journal.clone()));
    }
    // Summary arming: one shared store (it lives on the shared solver),
    // armed once for the whole worker pool.
    let summaries_on = cfg.summaries.unwrap_or_else(summaries_from_env);
    if summaries_on {
        sentinel.configure_summaries(prog, true);
    }
    let ckpt = cfg.checkpoint.clone();
    let mut next_ckpt = ckpt.as_ref().and_then(|c| c.every).map(|e| run_started + e);
    let unknowns_before = sentinel.unknown_verdicts();
    let reuse_before = sentinel.solver_reuse();
    let summary_before = sentinel.summary_stats();
    // The run's interner traffic is the sum of each worker thread's delta
    // plus this (main) thread's — entry-state construction interns here.
    let main_interner_before = InternStats::thread_snapshot();
    let metrics_before = registry().snapshot();
    let mut log = journal.worker(0);
    log.emit_with(|| Event::PathStarted { path: Vec::new() });
    // Diagnostics as they stand mid-run (for checkpoints): the resumed-from
    // accounting plus this run's counters and solver deltas.
    let diag_now = |run_errors: usize| {
        let mut d = base.diagnostics;
        d.engine_errors = base.diagnostics.engine_errors + run_errors;
        d.unknown_verdicts = sentinel.unknown_verdicts().saturating_sub(unknowns_before)
            + base.diagnostics.unknown_verdicts;
        let reuse = sentinel.solver_reuse();
        d.incremental_hits =
            reuse.0.saturating_sub(reuse_before.0) + base.diagnostics.incremental_hits;
        d.implication_hits =
            reuse.1.saturating_sub(reuse_before.1) + base.diagnostics.implication_hits;
        let summ = sentinel.summary_stats();
        d.summaries_recorded =
            summ.0.saturating_sub(summary_before.0) + base.diagnostics.summaries_recorded;
        d.summaries_applied =
            summ.1.saturating_sub(summary_before.1) + base.diagnostics.summaries_applied;
        d
    };

    // Accounting carried across checkpoint rounds (seeded from `base` on a
    // resume): (total_cmds, truncated, dropped_paths, engine_errors).
    let mut carried = (base.total_cmds, base.truncated, base.dropped_paths, 0usize);
    let mut finished: Vec<(Vec<u32>, PathResult<S>)> = Vec::new();
    let mut pending: Vec<FrontierItem<S>> = Vec::new();
    let mut worklist = seeds;
    let mut crashed_workers = 0usize;
    let mut interner = InternStats::default();
    // `GILLIAN_LIVE` sink, owned by the main thread; each round lends it
    // to a sampler thread that polls the shared counters.
    let mut live = LiveSink::from_env();
    let cause = loop {
        let sampler_stop = AtomicBool::new(false);
        let shared = SharedExplorer {
            queue: Mutex::new(JobQueue {
                jobs: std::mem::take(&mut worklist),
                in_flight: 0,
            }),
            work: Condvar::new(),
            total_cmds: AtomicU64::new(carried.0),
            finished_paths: AtomicUsize::new(finished.len()),
            stop: AtomicBool::new(false),
            stop_cause: AtomicU8::new(CAUSE_NONE),
            truncated: AtomicBool::new(carried.1),
            dropped_paths: AtomicUsize::new(carried.2),
            engine_errors: AtomicUsize::new(carried.3),
            deadline,
            cancel: cfg.cancel.clone(),
            checkpoint_at: next_ckpt,
            faults: cfg.faults.clone(),
        };
        let yields: Vec<Result<WorkerYield<S>, String>> = std::thread::scope(|scope| {
            let cfg = &cfg;
            let shared = &shared;
            let journal = &journal;
            let exec = &exec;
            // Live sampler: one thread per round polling the shared
            // counters at the frame interval, parked once the workers
            // retire. Frontier size and depth come from a brief queue
            // lock; everything else is relaxed atomics.
            if let Some(l) = live.as_mut() {
                let stop = &sampler_stop;
                scope.spawn(move || {
                    let nap = l.every().min(Duration::from_millis(50));
                    loop {
                        let (pending_now, depth) = {
                            let q = lock_unpoisoned(&shared.queue);
                            (
                                (q.jobs.len() + q.in_flight) as u64,
                                q.jobs.back().map_or(0, |j| j.trace.len() as u32),
                            )
                        };
                        l.tick(&LiveStats {
                            paths_finished: shared.finished_paths.load(Ordering::Relaxed) as u64,
                            pending: pending_now,
                            depth,
                            cmds: shared.total_cmds.load(Ordering::Relaxed),
                            workers: workers as u32,
                        });
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(nap);
                    }
                });
            }
            // All per-worker sentinels are cloned *before* the first spawn:
            // once a worker runs it may poison the state (e.g. a memory whose
            // `Clone` panics after a fault), and an unguarded clone racing
            // with it would kill the whole run instead of one worker.
            let sentinels: Vec<S> = (0..workers).map(|_| sentinel.clone()).collect();
            let handles: Vec<_> = sentinels
                .into_iter()
                .enumerate()
                .map(|(i, worker_sentinel)| {
                    // Worker ids start at 1; id 0 is the merge (main) thread.
                    let worker = (i + 1) as u32;
                    scope.spawn(move || {
                        panic_guard::catch(|| {
                            explore_worker(
                                prog,
                                exec,
                                cfg,
                                shared,
                                worker_sentinel,
                                worker,
                                journal,
                            )
                        })
                    })
                })
                .collect();
            let yields = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("explorer worker died outside capture".to_string()))
                })
                .collect();
            sampler_stop.store(true, Ordering::Relaxed);
            yields
        });

        for y in yields {
            match y {
                Ok(wy) => {
                    finished.extend(wy.finished);
                    pending.extend(wy.cut);
                    interner.mints += wy.interner.mints;
                    interner.hits += wy.interner.hits;
                }
                // A crashed worker's thread-local interner delta died with
                // it; its traffic is simply unattributed, and its local
                // paths died too — it is counted as an engine error below.
                Err(_payload) => crashed_workers += 1,
            }
        }
        pending.extend(lock_unpoisoned(&shared.queue).jobs.drain(..));
        carried = (
            shared.total_cmds.load(Ordering::Relaxed),
            shared.truncated.load(Ordering::Relaxed),
            shared.dropped_paths.load(Ordering::Relaxed),
            shared.engine_errors.load(Ordering::Relaxed),
        );
        let cause = shared.stop_cause.load(Ordering::Relaxed);
        if cause != CAUSE_CHECKPOINT || pending.is_empty() {
            break cause;
        }
        // Interval checkpoint: every worker is parked, so sorting and
        // writing here sees a consistent, canonical frontier; the next
        // round then resumes from exactly this frontier.
        finished.sort_by(|a, b| a.0.cmp(&b.0));
        pending.sort_by(|a, b| a.trace.cmp(&b.trace));
        if let Some(c) = ckpt.as_ref() {
            let mut snap = ExploreResult::empty();
            snap.total_cmds = carried.0;
            snap.truncated = carried.1;
            snap.dropped_paths = carried.2;
            write_frontier_checkpoint(
                c,
                &cfg,
                entry,
                pending.iter(),
                &snap,
                yield_summaries(&finished),
                diag_now(carried.3 + crashed_workers),
                &mut log,
            );
            next_ckpt = c.every.map(|e| Instant::now() + e);
        }
        worklist = pending.drain(..).collect();
    };

    // Deterministic merge: canonical branch order, finished paths first,
    // then budget-cut pending work — mirroring the serial engine's
    // "explore, then drain" shape. A crashed worker contributes no paths
    // (its local results died with it) but is counted as an engine error,
    // and any jobs left on the shared queue are drained as truncated.
    finished.sort_by(|a, b| a.0.cmp(&b.0));
    pending.sort_by(|a, b| a.trace.cmp(&b.trace));
    let mut result = ExploreResult::empty();
    result.total_cmds = carried.0;
    result.truncated = carried.1 || crashed_workers > 0;
    result.dropped_paths = carried.2;
    result.diagnostics.engine_errors = carried.3 + crashed_workers;
    let killed = cause == CAUSE_KILLED;
    // Final checkpoint: always on a kill (that *is* the crash being
    // simulated), and on deadline/cancel when configured — written before
    // pending work is drained, so the file holds the true frontier.
    let mut frontier_checkpointed = false;
    if let Some(c) = ckpt.as_ref() {
        let wanted = killed
            || match cause {
                CAUSE_DEADLINE => c.on_deadline,
                CAUSE_CANCELLED => c.on_cancel,
                _ => false,
            };
        if wanted {
            let mut snap = ExploreResult::empty();
            snap.total_cmds = result.total_cmds;
            snap.truncated = result.truncated;
            snap.dropped_paths = result.dropped_paths;
            frontier_checkpointed = write_frontier_checkpoint(
                c,
                &cfg,
                entry,
                pending.iter(),
                &snap,
                yield_summaries(&finished),
                diag_now(carried.3 + crashed_workers),
                &mut log,
            );
        }
    }
    result.killed = killed;
    if killed && frontier_checkpointed {
        // A killed run mimics process death: its pending work survives
        // only in the checkpoint, so it is *not* drained into truncated
        // paths here (resume-equivalence depends on it appearing exactly
        // once — in the resumed run).
        pending.clear();
    }
    // `PathFinished` is journaled here, at merge — not by the workers —
    // so exactly the *recorded* paths (those surviving the `max_paths`
    // cap) get a finish event, keeping the trace consistent with the
    // result for any scheduling.
    let mut traces: Vec<Vec<u32>> = Vec::new();
    for (trace, path) in finished {
        let kind = path.outcome.kind();
        let cmds = path.cmds;
        if result.record(cfg.max_paths, path) {
            log.emit_with(|| Event::PathFinished {
                path: trace.clone(),
                outcome: kind,
                cmds,
            });
            traces.push(trace);
        }
    }
    for FrontierItem {
        config,
        cmds,
        trace,
    } in pending
    {
        result.truncated = true;
        match cause {
            CAUSE_DEADLINE => result.diagnostics.deadline_hits += 1,
            CAUSE_CANCELLED => result.diagnostics.cancellations += 1,
            _ => {}
        }
        if result.record(
            cfg.max_paths,
            PathResult {
                state: config.state,
                outcome: ExploreOutcome::Truncated,
                cmds,
                trace: trace.clone(),
            },
        ) {
            log.emit_with(|| Event::PathFinished {
                path: trace.clone(),
                outcome: "truncated",
                cmds,
            });
            traces.push(trace);
        }
    }
    if let Some(l) = live.as_mut() {
        l.finish(&LiveStats {
            paths_finished: result.paths.len() as u64,
            pending: 0,
            depth: 0,
            cmds: result.total_cmds,
            workers: workers as u32,
        });
    }
    sentinel.clear_interrupt();
    result.diagnostics.unknown_verdicts =
        sentinel.unknown_verdicts().saturating_sub(unknowns_before)
            + base.diagnostics.unknown_verdicts;
    let reuse_after = sentinel.solver_reuse();
    result.diagnostics.incremental_hits =
        reuse_after.0.saturating_sub(reuse_before.0) + base.diagnostics.incremental_hits;
    result.diagnostics.implication_hits =
        reuse_after.1.saturating_sub(reuse_before.1) + base.diagnostics.implication_hits;
    let summary_after = sentinel.summary_stats();
    result.diagnostics.summaries_recorded =
        summary_after.0.saturating_sub(summary_before.0) + base.diagnostics.summaries_recorded;
    result.diagnostics.summaries_applied =
        summary_after.1.saturating_sub(summary_before.1) + base.diagnostics.summaries_applied;
    result.diagnostics.deadline_hits += base.diagnostics.deadline_hits;
    result.diagnostics.cancellations += base.diagnostics.cancellations;
    result.diagnostics.engine_errors += base.diagnostics.engine_errors;
    let main_delta = InternStats::thread_snapshot().since(&main_interner_before);
    interner.mints += main_delta.mints;
    interner.hits += main_delta.hits;
    interner.live = InternStats::snapshot().live;
    result.diagnostics.interner = interner;
    if summaries_on {
        sentinel.configure_summaries(prog, false);
    }
    if cfg.faults.is_some() {
        sentinel.clear_fault_probe();
    }
    drop(log);
    finish_report(
        &mut result,
        &journal,
        &traces,
        &metrics_before,
        run_started,
        workers as u32,
    );
    sentinel.clear_journal();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{SymBranch, SymbolicMemory};
    use crate::symbolic::SymbolicState;
    use gillian_gil::{Cmd, Expr, Proc};
    use gillian_solver::{PathCondition, Solver};
    use std::sync::Arc;

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl SymbolicMemory for NoMem {
        fn execute_action(
            &self,
            name: &str,
            _: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch {
                memory: NoMem,
                outcome: Err(Expr::str(format!("no actions ({name})"))),
                constraint: Expr::tt(),
            }]
        }
    }

    type St = SymbolicState<NoMem>;

    fn sym_state() -> St {
        SymbolicState::new(Arc::new(Solver::optimized()))
    }

    /// main() { x := iSym; ifgoto x < 10 ret; fail "big"; ret: return x }
    fn branching_prog() -> Prog {
        Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(10)), 3),
                Cmd::Fail(Expr::str("big")),
                Cmd::Return(Expr::pvar("x")),
            ],
        )])
    }

    #[test]
    fn symbolic_exploration_covers_both_branches() {
        let r = explore(
            &branching_prog(),
            "main",
            sym_state(),
            ExploreConfig::default(),
        );
        assert_eq!(r.paths.len(), 2);
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.normal().count(), 1);
        assert!(!r.truncated);
        assert!(r.total_cmds >= 4);
        assert!(r.diagnostics.is_clean());
        assert!(!r.bounded());
    }

    #[test]
    fn path_results_carry_their_branch_trace() {
        let r = explore(
            &branching_prog(),
            "main",
            sym_state(),
            ExploreConfig::default(),
        );
        let traces: Vec<&[u32]> = r.paths.iter().map(|p| p.trace.as_slice()).collect();
        assert_eq!(traces.len(), 2);
        assert_ne!(traces[0], traces[1], "distinct paths, distinct traces");
        assert!(traces.iter().all(|t| t.len() == 1), "one branch point");
    }

    #[test]
    fn replay_reproduces_each_explored_path() {
        let solver = Arc::new(Solver::optimized());
        let r = explore(
            &branching_prog(),
            "main",
            SymbolicState::<NoMem>::new(solver.clone()),
            ExploreConfig::default(),
        );
        assert_eq!(r.paths.len(), 2);
        for path in &r.paths {
            let replayed = replay_path(
                &branching_prog(),
                "main",
                SymbolicState::<NoMem>::new(solver.clone()),
                &path.trace,
                10_000,
            )
            .expect("replay follows a just-explored trace");
            assert_eq!(replayed.outcome, path.outcome);
            assert_eq!(replayed.trace, path.trace);
            assert_eq!(replayed.state.pc, path.state.pc);
        }
    }

    #[test]
    fn replay_rejects_trace_program_disagreements() {
        let solver = Arc::new(Solver::optimized());
        // Arm index beyond what the single ifgoto can produce.
        let err = replay_path(
            &branching_prog(),
            "main",
            SymbolicState::<NoMem>::new(solver.clone()),
            &[7],
            10_000,
        )
        .unwrap_err();
        assert!(matches!(err, ReplayError::NoSuchArm { index: 7, .. }));
        // Too few entries for the branch points along the path.
        let err = replay_path(
            &branching_prog(),
            "main",
            SymbolicState::<NoMem>::new(solver),
            &[],
            10_000,
        )
        .unwrap_err();
        assert!(matches!(err, ReplayError::TraceExhausted { .. }));
    }

    #[test]
    fn loops_are_unrolled_up_to_the_bound() {
        // main() { x := iSym; loop: ifgoto x < 1000000 body else done... }
        // An infinite symbolic loop must be truncated, not hang.
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(0)),
                Cmd::assign("x", Expr::pvar("x").add(Expr::int(1))),
                Cmd::Goto(1),
            ],
        )]);
        let cfg = ExploreConfig {
            max_cmds_per_path: 100,
            ..Default::default()
        };
        let r = explore(&prog, "main", sym_state(), cfg);
        assert!(r.truncated);
        assert!(matches!(r.paths[0].outcome, ExploreOutcome::Truncated));
    }

    #[test]
    fn global_budget_truncates() {
        let cfg = ExploreConfig {
            max_total_cmds: 2,
            ..Default::default()
        };
        let r = explore(&branching_prog(), "main", sym_state(), cfg);
        assert!(r.truncated);
    }

    #[test]
    fn global_budget_break_surfaces_pending_paths() {
        // With a 2-command budget the ifgoto has just been expanded into
        // two pending configurations; neither may be silently lost.
        let cfg = ExploreConfig {
            max_total_cmds: 2,
            ..Default::default()
        };
        let r = explore(&branching_prog(), "main", sym_state(), cfg);
        assert_eq!(r.total_cmds, 2);
        assert_eq!(r.paths.len(), 2, "both pending branches surface");
        assert!(r
            .paths
            .iter()
            .all(|p| p.outcome == ExploreOutcome::Truncated));
        assert_eq!(r.dropped_paths, 0);
        // Command-budget truncation is not an interruption.
        assert_eq!(r.diagnostics.deadline_hits, 0);
        assert_eq!(r.diagnostics.cancellations, 0);
    }

    /// A memory whose single action fails on *two* branches at once, so one
    /// step can finish several paths — the overflow case for `max_paths`.
    #[derive(Clone, Debug, Default)]
    struct TwoErrMem;
    impl SymbolicMemory for TwoErrMem {
        fn execute_action(
            &self,
            _: &str,
            _: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![
                SymBranch::err_if(TwoErrMem, Expr::str("first"), Expr::tt()),
                SymBranch::err_if(TwoErrMem, Expr::str("second"), Expr::tt()),
            ]
        }
    }

    #[test]
    fn max_paths_is_never_exceeded() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![Cmd::Action {
                lhs: "r".into(),
                name: "boom".into(),
                arg: Expr::int(0),
            }],
        )]);
        let cfg = ExploreConfig {
            max_paths: 1,
            ..Default::default()
        };
        let r = explore(
            &prog,
            "main",
            SymbolicState::<TwoErrMem>::new(Arc::new(Solver::optimized())),
            cfg,
        );
        assert_eq!(r.paths.len(), 1, "the cap binds even within one step");
        assert_eq!(r.dropped_paths, 1, "the overflow path is accounted for");
        assert!(r.truncated);
    }

    #[test]
    fn vanish_paths_are_collected_but_harmless() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                // assume x = 5 (compiled form: ifgoto (x=5) 3; vanish)
                Cmd::IfGoto(Expr::pvar("x").eq(Expr::int(5)), 3),
                Cmd::Vanish,
                Cmd::Return(Expr::pvar("x")),
            ],
        )]);
        let r = explore(&prog, "main", sym_state(), ExploreConfig::default());
        let vanished = r
            .paths
            .iter()
            .filter(|p| p.outcome == ExploreOutcome::Vanished)
            .count();
        assert_eq!(vanished, 1);
        assert_eq!(r.normal().count(), 1);
        // The surviving path's pc knows x = 5.
        let normal = r.normal().next().unwrap();
        let pc = &normal.state.pc;
        assert!(
            pc.conjuncts().iter().any(|c| c.to_string().contains("= 5")),
            "pc {pc} should pin x to 5"
        );
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;
    use crate::memory::{SymBranch, SymbolicMemory};
    use crate::symbolic::SymbolicState;
    use gillian_gil::{Cmd, Expr, Proc, Prog};
    use gillian_solver::{PathCondition, Solver};
    use std::sync::Arc;

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl SymbolicMemory for NoMem {
        fn execute_action(
            &self,
            _: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch::ok(NoMem, arg.clone())]
        }
    }

    /// Three sequential symbolic branches → eight paths.
    fn wide_prog() -> Prog {
        let mut body = Vec::new();
        for i in 0..3u32 {
            let x = format!("x{i}");
            body.push(Cmd::isym(&x, i));
            let at = body.len();
            body.push(Cmd::IfGoto(Expr::pvar(&x).eq(Expr::int(0)), at + 1));
        }
        body.push(Cmd::Return(Expr::int(0)));
        Prog::from_procs([Proc::new("main", [], body)])
    }

    fn state() -> SymbolicState<NoMem> {
        SymbolicState::new(Arc::new(Solver::optimized()))
    }

    fn sorted_pcs(r: &ExploreResult<SymbolicState<NoMem>>) -> Vec<String> {
        let mut pcs: Vec<String> = r.paths.iter().map(|p| p.state.pc.to_string()).collect();
        pcs.sort();
        pcs
    }

    #[test]
    fn dfs_and_bfs_find_the_same_paths() {
        let dfs = explore(&wide_prog(), "main", state(), ExploreConfig::default());
        let bfs = explore(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                strategy: SearchStrategy::Bfs,
                ..Default::default()
            },
        );
        assert_eq!(dfs.paths.len(), 8);
        assert_eq!(bfs.paths.len(), 8);
        assert_eq!(dfs.total_cmds, bfs.total_cmds);
        assert_eq!(
            sorted_pcs(&dfs),
            sorted_pcs(&bfs),
            "same path set, different order"
        );
    }

    #[test]
    fn parallel_finds_the_same_paths_for_any_worker_count() {
        let serial = explore(&wide_prog(), "main", state(), ExploreConfig::default());
        for workers in 1..=4 {
            let par = explore_parallel(
                &wide_prog(),
                "main",
                state(),
                ExploreConfig {
                    workers,
                    ..Default::default()
                },
            );
            assert_eq!(par.paths.len(), 8, "workers={workers}");
            assert!(!par.truncated, "workers={workers}");
            assert_eq!(par.total_cmds, serial.total_cmds, "workers={workers}");
            assert_eq!(
                sorted_pcs(&par),
                sorted_pcs(&serial),
                "workers={workers}: same order-normalized path set"
            );
            assert_eq!(
                par.errors().count(),
                serial.errors().count(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn engines_agree_with_resilience_fields_armed() {
        // A generous deadline and a live (uncancelled) token must be
        // invisible: same order-normalized path set, clean diagnostics.
        let cfg = ExploreConfig::default().with_deadline(std::time::Duration::from_secs(3600));
        let serial = explore(&wide_prog(), "main", state(), cfg.clone());
        assert!(serial.diagnostics.is_clean());
        assert!(!serial.bounded());
        for workers in [2, 4] {
            let par = explore_parallel(
                &wide_prog(),
                "main",
                state(),
                ExploreConfig {
                    workers,
                    ..cfg.clone()
                },
            );
            assert_eq!(sorted_pcs(&par), sorted_pcs(&serial), "workers={workers}");
            assert!(par.diagnostics.is_clean(), "workers={workers}");
            assert!(!par.bounded(), "workers={workers}");
        }
    }

    #[test]
    fn parallel_result_order_is_deterministic() {
        let once = explore_parallel(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                workers: 4,
                ..Default::default()
            },
        );
        let reference: Vec<String> = once.paths.iter().map(|p| p.state.pc.to_string()).collect();
        for _ in 0..5 {
            let again = explore_parallel(
                &wide_prog(),
                "main",
                state(),
                ExploreConfig {
                    workers: 4,
                    ..Default::default()
                },
            );
            let pcs: Vec<String> = again.paths.iter().map(|p| p.state.pc.to_string()).collect();
            assert_eq!(pcs, reference, "merge order must not depend on scheduling");
        }
    }

    #[test]
    fn parallel_respects_max_paths_and_reports_the_rest() {
        let r = explore_parallel(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                workers: 4,
                max_paths: 3,
                ..Default::default()
            },
        );
        assert!(r.paths.len() <= 3);
        assert!(r.truncated);
        // Everything the program could produce is either a path or counted
        // dropped: nothing vanishes silently.
        assert!(r.paths.len() + r.dropped_paths >= 4);
    }

    #[test]
    fn parallel_global_budget_truncates_without_losing_work() {
        let r = explore_parallel(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                workers: 2,
                max_total_cmds: 3,
                ..Default::default()
            },
        );
        assert!(r.truncated);
        assert!(r.total_cmds <= 3);
        assert!(
            r.paths
                .iter()
                .any(|p| p.outcome == ExploreOutcome::Truncated),
            "cut-off work surfaces as truncated paths"
        );
    }

    #[test]
    fn path_dropping_bounds_the_frontier_and_is_reported() {
        let r = explore(
            &wide_prog(),
            "main",
            state(),
            ExploreConfig {
                max_pending: Some(1),
                ..Default::default()
            },
        );
        assert!(r.dropped_paths > 0, "branches beyond the cap are dropped");
        assert!(r.truncated);
        // The surviving paths are still complete, valid traces.
        assert!(r
            .paths
            .iter()
            .all(|p| p.outcome != ExploreOutcome::Truncated));
        assert!(r.paths.len() + r.dropped_paths >= 4);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use crate::memory::{SymBranch, SymbolicMemory};
    use crate::symbolic::SymbolicState;
    use gillian_gil::{Cmd, Expr, Proc, Prog};
    use gillian_solver::{PathCondition, Solver};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    /// Echoes its argument, except the `boom` action panics.
    #[derive(Clone, Debug, Default)]
    struct BoomMem;
    impl SymbolicMemory for BoomMem {
        fn execute_action(
            &self,
            name: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            if name == "boom" {
                panic!("boom action");
            }
            vec![SymBranch::ok(BoomMem, arg.clone())]
        }
    }

    fn state<M: SymbolicMemory>() -> SymbolicState<M> {
        SymbolicState::new(Arc::new(Solver::optimized()))
    }

    /// x := iSym; ifgoto (x < 0) boom-branch; return 0 — one healthy
    /// sibling, one path that panics inside the memory model.
    fn boom_on_negative() -> Prog {
        Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(0)), 3),
                Cmd::Return(Expr::int(0)),
                Cmd::Action {
                    lhs: "r".into(),
                    name: "boom".into(),
                    arg: Expr::int(0),
                },
                Cmd::Return(Expr::pvar("r")),
            ],
        )])
    }

    #[test]
    fn serial_panic_is_isolated_to_its_path() {
        let r = explore(
            &boom_on_negative(),
            "main",
            state::<BoomMem>(),
            ExploreConfig::default(),
        );
        assert_eq!(r.diagnostics.engine_errors, 1);
        assert!(r.truncated && r.bounded());
        assert_eq!(r.normal().count(), 1, "the sibling path finished");
        let (payload, trace) = r
            .paths
            .iter()
            .find_map(|p| match &p.outcome {
                ExploreOutcome::EngineError { payload, trace } => {
                    Some((payload.clone(), trace.clone()))
                }
                _ => None,
            })
            .expect("an EngineError path");
        assert!(payload.contains("boom action"), "payload: {payload}");
        assert!(
            payload.contains("explore.rs"),
            "payload should carry the source location: {payload}"
        );
        assert_eq!(trace, vec![0], "the true branch of the single split died");
    }

    #[test]
    fn parallel_panic_is_isolated_to_its_path() {
        for workers in [2, 4] {
            let r = explore_parallel(
                &boom_on_negative(),
                "main",
                state::<BoomMem>(),
                ExploreConfig {
                    workers,
                    ..Default::default()
                },
            );
            assert_eq!(r.diagnostics.engine_errors, 1, "workers={workers}");
            assert_eq!(r.normal().count(), 1, "workers={workers}");
            assert_eq!(r.engine_errors().count(), 1, "workers={workers}");
            assert!(r.truncated, "workers={workers}");
        }
    }

    #[test]
    fn pre_expired_deadline_parks_all_work() {
        let cfg = ExploreConfig::default().with_deadline(Duration::ZERO);
        let r = explore(&boom_on_negative(), "main", state::<BoomMem>(), cfg.clone());
        assert_eq!(r.total_cmds, 0, "nothing ran");
        assert_eq!(r.paths.len(), 1, "the entry configuration is parked");
        assert_eq!(r.paths[0].outcome, ExploreOutcome::Truncated);
        assert_eq!(r.diagnostics.deadline_hits, 1);
        assert!(r.truncated && r.bounded());

        let par = explore_parallel(
            &boom_on_negative(),
            "main",
            state::<BoomMem>(),
            ExploreConfig { workers: 2, ..cfg },
        );
        assert_eq!(par.total_cmds, 0);
        assert_eq!(par.diagnostics.deadline_hits, 1);
        assert!(par.truncated);
    }

    #[test]
    fn cancellation_parks_all_work() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let cfg = ExploreConfig {
            cancel: cancel.clone(),
            ..Default::default()
        };
        let r = explore(&boom_on_negative(), "main", state::<BoomMem>(), cfg.clone());
        assert_eq!(r.total_cmds, 0);
        assert_eq!(r.diagnostics.cancellations, 1);
        assert!(r.truncated);

        let par = explore_parallel(
            &boom_on_negative(),
            "main",
            state::<BoomMem>(),
            ExploreConfig { workers: 2, ..cfg },
        );
        assert_eq!(par.total_cmds, 0);
        assert_eq!(par.diagnostics.cancellations, 1);
        assert!(par.truncated);
    }

    /// A memory whose `boom` action arms a flag and panics; once armed,
    /// *cloning* the memory panics too. This poisons even the engine's
    /// sentinel-clone fallback, proving a hostile `Clone` cannot kill a
    /// run either — the path is counted, with no state to report.
    #[derive(Debug, Default)]
    struct CloneBomb {
        armed: Arc<AtomicBool>,
    }
    impl Clone for CloneBomb {
        fn clone(&self) -> Self {
            if self.armed.load(Ordering::Relaxed) {
                panic!("clone after arm");
            }
            CloneBomb {
                armed: self.armed.clone(),
            }
        }
    }
    impl SymbolicMemory for CloneBomb {
        fn execute_action(
            &self,
            name: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            if name == "boom" {
                self.armed.store(true, Ordering::Relaxed);
                panic!("armed boom");
            }
            vec![SymBranch::ok(self.clone(), arg.clone())]
        }
    }

    #[test]
    fn panicking_clone_cannot_kill_the_run() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::Action {
                    lhs: "r".into(),
                    name: "boom".into(),
                    arg: Expr::int(0),
                },
                Cmd::Return(Expr::pvar("r")),
            ],
        )]);
        let r = explore(
            &prog,
            "main",
            state::<CloneBomb>(),
            ExploreConfig::default(),
        );
        assert_eq!(r.diagnostics.engine_errors, 1);
        assert!(r.truncated);
        assert!(r.paths.is_empty(), "no state survived to report");

        let par = explore_parallel(
            &prog,
            "main",
            state::<CloneBomb>(),
            ExploreConfig {
                workers: 2,
                ..Default::default()
            },
        );
        assert!(par.diagnostics.engine_errors >= 1);
        assert!(par.truncated);
    }
}
