//! Soundness infrastructure (paper §3.2): memory interpretation functions
//! and differential checking.
//!
//! Theorem 3.10 lifts a *memory interpretation function* `I` (Def. 3.7) —
//! plus the built-in allocator interpretation — to a soundness relation
//! between the lifted state models, which the GIL semantics preserves
//! (Theorem 3.6). A tool developer therefore only proves the two memory
//! lemmas MA-RS and MA-RC.
//!
//! This module provides the Rust rendering of `I` ([`MemoryInterpretation`])
//! and *empirical* checkers for the lemmas and the end-to-end theorem:
//!
//! - [`check_action`] exercises MA-RS/MA-RC on a single symbolic action:
//!   every branch's learned constraint is modelled, the symbolic memory is
//!   interpreted through the model, the concrete action is run, and the
//!   outcomes are compared under the model.
//! - [`check_program`] exercises GIL Restricted Soundness end-to-end: every
//!   finished symbolic path with a modelled path condition is replayed
//!   concretely under the model-derived allocator script, and the final
//!   outcomes must coincide.
//!
//! Instantiations call these from their test suites (and property tests)
//! instead of hand-writing per-language soundness arguments.

use crate::explore::{explore, ExploreConfig, ExploreOutcome};
use crate::memory::{ConcreteMemory, SymbolicMemory};
use crate::symbolic::SymbolicState;
use crate::testing::script_from_model;
use crate::ConcreteState;
use gillian_gil::{Expr, Prog, Value};
use gillian_solver::{Model, PathCondition, Solver};
use std::sync::Arc;

/// A memory interpretation function `I : (X̂ ⇀ V) ⇀ |M̂| → |M|` (Def. 3.7):
/// interprets a symbolic memory under a logical environment.
pub trait MemoryInterpretation {
    /// The concrete memory model `M`.
    type Concrete: ConcreteMemory;
    /// The symbolic memory model `M̂`.
    type Symbolic: SymbolicMemory;

    /// Interprets `sym` under `model`, producing a concrete memory.
    ///
    /// # Errors
    ///
    /// Returns a description when the model does not cover the memory's
    /// logical variables or interpretation produces an ill-formed memory
    /// (e.g. two symbolic cells collapsing onto one concrete cell).
    fn interpret(&self, model: &Model, sym: &Self::Symbolic) -> Result<Self::Concrete, String>;
}

/// A discrepancy found by a differential check — evidence against MA-RS.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// Which check failed.
    pub context: String,
    /// What the symbolic side produced.
    pub symbolic: String,
    /// What the concrete side produced.
    pub concrete: String,
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: symbolic {} vs concrete {}",
            self.context, self.symbolic, self.concrete
        )
    }
}

/// Completes a model into a full logical environment: every variable in
/// `needed` that the model leaves unassigned gets a default value (an
/// unconstrained logical variable may take *any* value, so this is a valid
/// extension of `ε`).
pub fn complete_model(model: &Model, needed: impl IntoIterator<Item = gillian_gil::LVar>) -> Model {
    let mut assignment: std::collections::BTreeMap<gillian_gil::LVar, Value> =
        model.iter().map(|(x, v)| (*x, v.clone())).collect();
    for x in needed {
        assignment.entry(x).or_insert(Value::Int(0));
    }
    Model::from_assignment(assignment)
}

/// Empirically checks MA-RS and MA-RC for one action application.
///
/// For every branch `(µ̂′, ê′, π̂′)` of the symbolic action with `π ∧ π̂′`
/// modelled by some `ε`: interprets `µ̂` through `ε`, runs the concrete
/// action on `⟦arg⟧ε`, and demands the concrete outcome match `⟦ê′⟧ε`
/// (MA-RS) and exist at all (MA-RC).
///
/// # Errors
///
/// Returns the list of discrepancies (empty ⇒ the lemma held on this
/// instance).
pub fn check_action<I: MemoryInterpretation>(
    interp: &I,
    solver: &Solver,
    sym_mem: &I::Symbolic,
    action: &str,
    arg: &Expr,
    pc: &PathCondition,
) -> Result<usize, Vec<Discrepancy>> {
    let mut checked = 0;
    let mut problems = Vec::new();
    let branches = sym_mem.execute_action(action, arg, pc, solver);
    for branch in branches {
        let mut pc2 = pc.clone();
        pc2.push(branch.constraint.clone());
        let Some(model) = solver.model(&pc2) else {
            continue; // no model within budget: nothing to check
        };
        let mut needed = sym_mem.lvars();
        needed.extend(arg.lvars());
        needed.extend(
            branch
                .outcome
                .as_ref()
                .map_or_else(|e| e.lvars(), |v| v.lvars()),
        );
        let model = complete_model(&model, needed);
        let concrete_arg = match model.eval(arg) {
            Ok(v) => v,
            Err(e) => {
                problems.push(Discrepancy {
                    context: format!("action {action}: argument interpretation"),
                    symbolic: arg.to_string(),
                    concrete: e.to_string(),
                });
                continue;
            }
        };
        let mut conc_mem = match interp.interpret(&model, sym_mem) {
            Ok(m) => m,
            Err(e) => {
                problems.push(Discrepancy {
                    context: format!("action {action}: memory interpretation"),
                    symbolic: format!("{sym_mem:?}"),
                    concrete: e,
                });
                continue;
            }
        };
        checked += 1;
        let concrete_out = conc_mem.execute_action(action, concrete_arg);
        match (&branch.outcome, &concrete_out) {
            (Ok(se), Ok(cv)) => match model.eval(se) {
                Ok(sv) if &sv == cv => {}
                Ok(sv) => problems.push(Discrepancy {
                    context: format!("action {action}: value outputs differ"),
                    symbolic: sv.to_string(),
                    concrete: cv.to_string(),
                }),
                Err(e) => problems.push(Discrepancy {
                    context: format!("action {action}: symbolic output uninterpretable"),
                    symbolic: se.to_string(),
                    concrete: e.to_string(),
                }),
            },
            (Err(_), Err(_)) => {} // both error: aligned (messages may differ)
            (s, c) => problems.push(Discrepancy {
                context: format!("action {action}: outcome kinds differ"),
                symbolic: format!("{s:?}"),
                concrete: format!("{c:?}"),
            }),
        }
    }
    if problems.is_empty() {
        Ok(checked)
    } else {
        Err(problems)
    }
}

/// Statistics of an end-to-end differential run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SoundnessReport {
    /// Symbolic paths explored.
    pub sym_paths: usize,
    /// Paths whose final path condition was modelled and replayed.
    pub replayed: usize,
    /// Paths skipped (no model within budget, or truncated).
    pub skipped: usize,
}

/// Empirically checks GIL Restricted Soundness (Theorem 3.6) end-to-end:
/// runs `entry` symbolically from empty memory; for every finished path
/// whose final path condition has a model, replays the program concretely
/// under the model-derived allocator script and compares final outcomes.
///
/// # Errors
///
/// Returns the discrepancies found (empty ⇒ the theorem held on every
/// modelled path of this program).
pub fn check_program<M, C>(
    prog: &Prog,
    entry: &str,
    solver: Arc<Solver>,
    cfg: ExploreConfig,
) -> Result<SoundnessReport, Vec<Discrepancy>>
where
    M: SymbolicMemory,
    C: ConcreteMemory,
{
    let initial = SymbolicState::<M>::new(solver.clone());
    let sym = explore(prog, entry, initial, cfg.clone());
    let mut report = SoundnessReport {
        sym_paths: sym.paths.len(),
        ..Default::default()
    };
    let mut problems = Vec::new();
    for path in &sym.paths {
        if matches!(
            path.outcome,
            ExploreOutcome::Truncated | ExploreOutcome::EngineError { .. }
        ) {
            // Truncated paths prove nothing to replay; EngineError paths
            // carry a sentinel state whose pc is not the dead path's.
            report.skipped += 1;
            continue;
        }
        let Some(model) = solver.model(&path.state.pc) else {
            report.skipped += 1;
            continue;
        };
        // Complete the environment over every lvar the comparison touches:
        // the iSym trace (script) and the symbolic return value.
        let mut needed: std::collections::BTreeSet<gillian_gil::LVar> = path
            .state
            .alloc()
            .isym_trace()
            .iter()
            .map(|(_, x)| *x)
            .collect();
        if let ExploreOutcome::Normal(se) = &path.outcome {
            needed.extend(se.lvars());
        }
        let model = complete_model(&model, needed);
        let script = script_from_model(&path.state, &model);
        let conc = explore(
            prog,
            entry,
            ConcreteState::<C>::with_script(script),
            cfg.clone(),
        );
        let Some(cpath) = conc.paths.first() else {
            problems.push(Discrepancy {
                context: format!("{entry}: concrete run produced no path"),
                symbolic: format!("{:?}", path.outcome),
                concrete: "nothing".into(),
            });
            continue;
        };
        report.replayed += 1;
        match (&path.outcome, &cpath.outcome) {
            (ExploreOutcome::Normal(se), ExploreOutcome::Normal(cv)) => match model.eval(se) {
                Ok(sv) if &sv == cv => {}
                Ok(sv) => problems.push(Discrepancy {
                    context: format!("{entry}: return values differ"),
                    symbolic: sv.to_string(),
                    concrete: cv.to_string(),
                }),
                Err(e) => problems.push(Discrepancy {
                    context: format!("{entry}: symbolic return uninterpretable"),
                    symbolic: se.to_string(),
                    concrete: e.to_string(),
                }),
            },
            (ExploreOutcome::Error(_), ExploreOutcome::Error(_)) => {}
            (ExploreOutcome::Vanished, ExploreOutcome::Vanished) => {}
            (s, c) => problems.push(Discrepancy {
                context: format!("{entry}: outcomes differ"),
                symbolic: format!("{s:?}"),
                concrete: format!("{c:?}"),
            }),
        }
    }
    if problems.is_empty() {
        Ok(report)
    } else {
        Err(problems)
    }
}

/// The identity interpretation for memoryless instantiations (both
/// memories are `()`-like). Useful in engine-level tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrivialInterpretation<C, S> {
    _marker: std::marker::PhantomData<(C, S)>,
}

impl<C, S> MemoryInterpretation for TrivialInterpretation<C, S>
where
    C: ConcreteMemory,
    S: SymbolicMemory,
{
    type Concrete = C;
    type Symbolic = S;

    fn interpret(&self, _model: &Model, _sym: &S) -> Result<C, String> {
        Ok(C::default())
    }
}

/// Convenience for instantiations: interprets a symbolic value expression
/// as a concrete value under a model, mapping failures to strings.
pub fn interpret_expr(model: &Model, e: &Expr) -> Result<Value, String> {
    model.eval(e).map_err(|err| err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::{Cmd, Proc};

    #[derive(Clone, Debug, Default)]
    struct NoSymMem;
    impl SymbolicMemory for NoSymMem {
        fn execute_action(
            &self,
            _: &str,
            arg: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<crate::memory::SymBranch<Self>> {
            vec![crate::memory::SymBranch::ok(NoSymMem, arg.clone())]
        }
    }
    #[derive(Clone, Debug, Default)]
    struct NoConcMem;
    impl ConcreteMemory for NoConcMem {
        fn execute_action(&mut self, _: &str, arg: Value) -> Result<Value, Value> {
            Ok(arg)
        }
    }

    #[test]
    fn trivial_action_soundness_holds() {
        let solver = Solver::optimized();
        let interp = TrivialInterpretation::<NoConcMem, NoSymMem>::default();
        let pc = PathCondition::new();
        let checked =
            check_action(&interp, &solver, &NoSymMem, "echo", &Expr::int(3), &pc).unwrap();
        assert_eq!(checked, 1);
    }

    #[test]
    fn program_soundness_on_branching_program() {
        // x := iSym; ifgoto x < 10: return x else fail.
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::isym("x", 0),
                Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(10)), 3),
                Cmd::Fail(Expr::str("big")),
                Cmd::Return(Expr::pvar("x")),
            ],
        )]);
        let report = check_program::<NoSymMem, NoConcMem>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        )
        .unwrap();
        assert_eq!(report.sym_paths, 2);
        assert_eq!(report.replayed, 2);
        assert_eq!(report.skipped, 0);
    }

    #[test]
    fn program_soundness_detects_divergence() {
        // A symbolic memory that claims success while the concrete memory
        // errors — MA-RS violated, check_program must notice.
        #[derive(Clone, Debug, Default)]
        struct LyingConc;
        impl ConcreteMemory for LyingConc {
            fn execute_action(&mut self, _: &str, _: Value) -> Result<Value, Value> {
                Err(Value::str("concrete always fails"))
            }
        }
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::action("r", "touch", Expr::int(0)),
                Cmd::Return(Expr::pvar("r")),
            ],
        )]);
        let result = check_program::<NoSymMem, LyingConc>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        );
        assert!(result.is_err(), "divergence must be reported");
    }
}
