//! Scoped panic capture for per-path isolation.
//!
//! The exploration engines wrap each interpreter step in [`catch`] so a
//! panic inside a language's `SymbolicMemory` (or the interpreter itself)
//! kills one path, not the run. [`std::panic::catch_unwind`] alone loses
//! the panic's source location and spams stderr through the default hook;
//! this module installs a process-wide hook **once** that, for threads
//! currently inside a [`catch`] scope, records the message and location
//! into a thread-local slot and stays silent. Panics outside a scope —
//! test-harness assertions, user code — are delegated to the previously
//! installed hook unchanged.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Whether this thread is inside a [`catch`] scope right now.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// The captured message of the most recent in-scope panic.
    static MESSAGE: RefCell<Option<String>> = const { RefCell::new(None) };
}

static INSTALL: Once = Once::new();

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) into a
/// human-readable string. `panic!("...")` yields `&str`, formatted panics
/// yield `String`; anything else is opaque.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn install_hook() {
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if ACTIVE.with(Cell::get) {
                let msg = payload_message(info.payload());
                let located = match info.location() {
                    Some(l) => format!("{msg} (at {l})"),
                    None => msg,
                };
                MESSAGE.with(|m| *m.borrow_mut() = Some(located));
            } else {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting an unwind into `Err(message)` where the message
/// carries the panic text and source location captured by the hook.
///
/// The `AssertUnwindSafe` is deliberate: the engine only ever re-uses
/// values that were cloned *before* the closure ran (worklist items,
/// sentinel states), never state the closure may have half-mutated. Shared
/// solver caches are protected separately by poison-tolerant locks.
pub(crate) fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_hook();
    let was_active = ACTIVE.with(|a| a.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    ACTIVE.with(|a| a.set(was_active));
    match result {
        Ok(v) => Ok(v),
        Err(payload) => Err(MESSAGE
            .with(|m| m.borrow_mut().take())
            .unwrap_or_else(|| payload_message(payload.as_ref()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_message_and_location() {
        let err = catch(|| -> () { panic!("boom {}", 42) }).unwrap_err();
        assert!(err.contains("boom 42"), "got: {err}");
        assert!(err.contains("panic_guard.rs"), "location missing: {err}");
    }

    #[test]
    fn passes_through_success() {
        assert_eq!(catch(|| 7), Ok(7));
    }

    #[test]
    fn nested_catch_restores_scope() {
        let outer = catch(|| {
            let inner = catch(|| -> () { panic!("inner") });
            assert!(inner.is_err());
            // Still inside the outer scope: this panic must also be caught
            // silently, proving the inner catch didn't clear ACTIVE.
            panic!("outer")
        });
        assert!(outer.unwrap_err().contains("outer"));
    }
}
