//! The concrete state constructor `CSC` (paper Def. 2.5).
//!
//! Lifts any [`ConcreteMemory`] to a full concrete state model by pairing
//! it with a concrete variable store and the built-in concrete allocator:
//! `|S| = |M| × (X ⇀ V) × |AL|`.

use crate::allocator::ConcAllocator;
use crate::memory::ConcreteMemory;
use crate::state::{GilState, GuardEval};
use gillian_gil::eval::{eval, Store};
use gillian_gil::{EvalScratch, Expr, ExprCode, Ident, Value};

/// A concrete GIL state `⟨µ, ρ, ξ⟩` over memory model `M`.
#[derive(Clone, Debug, Default)]
pub struct ConcreteState<M> {
    /// The language memory `µ`.
    pub memory: M,
    store: Store,
    alloc: ConcAllocator,
}

impl<M: ConcreteMemory> ConcreteState<M> {
    /// A state with empty memory and store and a fresh allocator.
    pub fn new() -> Self {
        ConcreteState {
            memory: M::default(),
            store: Store::new(),
            alloc: ConcAllocator::new(),
        }
    }

    /// A state whose allocator replays `script` for `iSym` allocations —
    /// the restriction-directed executions of paper §3.
    pub fn with_script(script: impl IntoIterator<Item = Value>) -> Self {
        ConcreteState {
            memory: M::default(),
            store: Store::new(),
            alloc: ConcAllocator::scripted(script),
        }
    }

    /// A state over an explicit initial memory.
    pub fn with_memory(memory: M) -> Self {
        ConcreteState {
            memory,
            store: Store::new(),
            alloc: ConcAllocator::new(),
        }
    }

    /// The allocator record (inspectable in tests).
    pub fn alloc(&self) -> &ConcAllocator {
        &self.alloc
    }
}

impl<M: ConcreteMemory> GilState for ConcreteState<M> {
    type V = Value;
    type Store = Store;

    fn eval(&self, e: &Expr) -> Result<Value, Value> {
        eval(&self.store, e).map_err(|err| Value::str(err.0))
    }

    fn set_var(&mut self, x: &Ident, v: Value) {
        self.store.set(x.as_ref(), v);
    }

    fn store(&self) -> &Store {
        &self.store
    }

    fn set_store(&mut self, store: Store) {
        self.store = store;
    }

    fn make_store(&self, params: &[Ident], args: Vec<Value>) -> Store {
        params.iter().cloned().zip(args).collect()
    }

    fn resolve_proc(&self, v: &Value) -> Result<Ident, Value> {
        match v {
            Value::Proc(f) => Ok(f.clone()),
            Value::Str(s) => Ok(s.clone()),
            other => Err(Value::str(format!("cannot call non-procedure {other}"))),
        }
    }

    fn branch_on(&self, e: &Expr) -> Result<Vec<(Self, bool)>, Value> {
        match self.eval(e)? {
            Value::Bool(b) => Ok(vec![(self.clone(), b)]),
            other => Err(Value::str(format!("non-boolean guard {other}"))),
        }
    }

    fn fresh_usym(&mut self, site: u32) -> Value {
        Value::Sym(self.alloc.alloc_usym(site))
    }

    fn fresh_isym(&mut self, site: u32) -> Value {
        self.alloc.alloc_isym(site)
    }

    fn execute_action(mut self, name: &str, arg: Value) -> Vec<(Self, Result<Value, Value>)> {
        let outcome = self.memory.execute_action(name, arg);
        vec![(self, outcome)]
    }

    fn error_value(&self, msg: &str) -> Value {
        Value::str(msg)
    }

    fn eval_code(&self, code: &ExprCode, scratch: &mut EvalScratch) -> Result<Value, Value> {
        code.eval_concrete(&self.store, scratch)
            .map_err(|err| Value::str(err.0))
    }

    /// Concrete guards never fork: decide in place, with no state clone
    /// and no successor vector (`Take(b)` ≡ the single branch
    /// [`GilState::branch_on`] would return).
    fn guard_code(&self, code: &ExprCode, scratch: &mut EvalScratch) -> GuardEval<Self> {
        match code.eval_concrete(&self.store, scratch) {
            Ok(Value::Bool(b)) => GuardEval::Take(b),
            Ok(other) => GuardEval::Fail(Value::str(format!("non-boolean guard {other}"))),
            Err(err) => GuardEval::Fail(Value::str(err.0)),
        }
    }

    fn action_code(&self, name: &str) -> Option<u16> {
        self.memory.action_code(name)
    }

    fn execute_action_coded(
        mut self,
        code: u16,
        name: &str,
        arg: Value,
    ) -> Vec<(Self, Result<Value, Value>)> {
        let outcome = self.memory.execute_action_coded(code, name, arg);
        vec![(self, outcome)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A toy memory: a single counter cell with `inc`/`get` actions.
    #[derive(Clone, Debug, Default)]
    struct Counter(BTreeMap<String, i64>);

    impl ConcreteMemory for Counter {
        fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
            let key = arg
                .as_str()
                .ok_or_else(|| Value::str("expected key"))?
                .to_string();
            match name {
                "inc" => {
                    let c = self.0.entry(key).or_insert(0);
                    *c += 1;
                    Ok(Value::Int(*c))
                }
                "get" => self
                    .0
                    .get(&key)
                    .map(|&c| Value::Int(c))
                    .ok_or_else(|| Value::str(format!("no counter {key}"))),
                other => Err(Value::str(format!("unknown action {other}"))),
            }
        }
    }

    #[test]
    fn state_lifts_memory_actions() {
        let st = ConcreteState::<Counter>::new();
        let branches = st.execute_action("inc", Value::str("a"));
        let (st, out) = branches.into_iter().next().unwrap();
        assert_eq!(out, Ok(Value::Int(1)));
        let (_, out2) = st
            .execute_action("get", Value::str("a"))
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(out2, Ok(Value::Int(1)));
    }

    #[test]
    fn action_errors_surface_as_error_values() {
        let st = ConcreteState::<Counter>::new();
        let (_, out) = st
            .execute_action("get", Value::str("missing"))
            .into_iter()
            .next()
            .unwrap();
        assert!(out.is_err());
    }

    #[test]
    fn branch_on_requires_boolean() {
        let mut st = ConcreteState::<Counter>::new();
        st.set_var(&"b".into(), Value::Bool(true));
        let branches = st.clone().branch_on(&Expr::pvar("b")).unwrap();
        assert_eq!(branches.len(), 1);
        assert!(branches[0].1);
        assert!(st.branch_on(&Expr::int(1)).is_err());
    }

    #[test]
    fn usym_and_isym_allocate() {
        let mut st = ConcreteState::<Counter>::new();
        let s1 = st.fresh_usym(0);
        let s2 = st.fresh_usym(0);
        assert_ne!(s1, s2);
        assert_eq!(st.fresh_isym(1), Value::Int(0));
        let mut scripted = ConcreteState::<Counter>::with_script([Value::Int(42)]);
        assert_eq!(scripted.fresh_isym(1), Value::Int(42));
    }
}
