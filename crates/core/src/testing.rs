//! Symbolic unit testing (paper §1, §4): whole-program symbolic execution
//! with *verified* counter-models and restriction-directed concrete replay.
//!
//! A symbolic test is a GIL procedure (typically compiled from a guest
//! language) that creates symbolic inputs (`iSym`), constrains them
//! (`assume` → `ifgoto`/`vanish`), exercises the code under test, and
//! checks assertions (`assert` → `ifgoto`/`fail`). Running it explores all
//! paths up to a bound and yields either:
//!
//! - a **bounded verification guarantee** — no error path was found and no
//!   budget was hit; or
//! - **bug reports** — error paths, each with a path condition. A report
//!   is *confirmed* only when the solver produces a model of that path
//!   condition **and** replaying the test concretely under the scripted
//!   allocator derived from the model reproduces an error. Confirmed
//!   reports are true positives (the computational content of paper
//!   Theorem 3.6: symbolic testing has no false positives).

use crate::concrete::ConcreteState;
use crate::explore::{
    explore, explore_with, ExploreConfig, ExploreDiagnostics, ExploreOutcome, ExploreResult,
};
use crate::memory::{ConcreteMemory, SymbolicMemory};
use crate::symbolic::SymbolicState;
use gillian_gil::{Prog, Value};
use gillian_solver::{Model, PathCondition, Solver};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The status of replaying a bug's model concretely.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayStatus {
    /// The concrete run errored as predicted — the bug is real.
    ConfirmedError(Value),
    /// The concrete run diverged from the symbolic path (would indicate a
    /// soundness bug in a memory model; never expected).
    Diverged(String),
}

/// One error path found by a symbolic test.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// Rendering of the symbolic error value.
    pub error: String,
    /// The final path condition of the error path.
    pub pc: PathCondition,
    /// A verified model of `pc`, when the solver found one.
    pub model: Option<Model>,
    /// Concrete `iSym` inputs derived from the model (in allocation order):
    /// the script that steers a concrete run down this path.
    pub script: Vec<Value>,
    /// Result of concrete replay, when attempted.
    pub replay: Option<ReplayStatus>,
}

impl BugReport {
    /// True when the report is backed by a model (and, if replay was
    /// attempted, by a confirming concrete run).
    pub fn confirmed(&self) -> bool {
        self.model.is_some() && !matches!(self.replay, Some(ReplayStatus::Diverged(_)))
    }
}

/// The outcome of one symbolic test.
#[derive(Debug)]
pub struct SymTestOutcome<M: SymbolicMemory> {
    /// The raw exploration result.
    pub result: ExploreResult<SymbolicState<M>>,
    /// One report per error path.
    pub bugs: Vec<BugReport>,
}

impl<M: SymbolicMemory> SymTestOutcome<M> {
    /// True when every path terminated cleanly within budget: the test's
    /// assertions hold on all inputs up to the exploration bound.
    ///
    /// Interruptions (deadline, cancellation) and isolated panics mark the
    /// result truncated, so they fail verification here. `Unknown` solver
    /// verdicts do *not*: they only widen exploration (branches kept
    /// unproven-infeasible), so a bug-free run still verifies — but see
    /// [`SymTestOutcome::bounded`] and the result's
    /// [`ExploreDiagnostics`] for how bounded that guarantee is.
    pub fn verified(&self) -> bool {
        self.bugs.is_empty() && !self.result.truncated
    }

    /// True when the guarantee is bounded beyond the command budgets:
    /// truncation, dropped paths, or any diagnostic (including `Unknown`
    /// verdicts).
    pub fn bounded(&self) -> bool {
        self.result.bounded()
    }

    /// Total GIL commands executed (the tables' "GIL Cmds" column).
    pub fn gil_cmds(&self) -> u64 {
        self.result.total_cmds
    }
}

/// Runs one symbolic test: explores `entry` and builds bug reports (with
/// models, but without concrete replay — see [`run_test_with_replay`]).
pub fn run_test<M: SymbolicMemory>(
    prog: &Prog,
    entry: &str,
    solver: Arc<Solver>,
    cfg: ExploreConfig,
) -> SymTestOutcome<M> {
    let initial = SymbolicState::<M>::new(solver.clone());
    let result = explore_with(prog, entry, initial, cfg);
    let mut bugs = Vec::new();
    for path in result.errors() {
        let pc = path.state.pc.clone();
        // Fall back to the escalated search when the configured budget
        // fails: an unmodelled true positive is a report nobody can act on.
        let model = solver.model(&pc).or_else(|| solver.model_for_replay(&pc));
        let script = model
            .as_ref()
            .map(|m| script_from_model(&path.state, m))
            .unwrap_or_default();
        let error = match &path.outcome {
            ExploreOutcome::Error(e) => e.to_string(),
            _ => unreachable!("errors() yields only error paths"),
        };
        bugs.push(BugReport {
            error,
            pc,
            model,
            script,
            replay: None,
        });
    }
    SymTestOutcome { result, bugs }
}

/// Derives the concrete `iSym` input script from a model and the symbolic
/// allocator's trace (restriction-directed execution, paper §3).
pub fn script_from_model<M: SymbolicMemory>(state: &SymbolicState<M>, model: &Model) -> Vec<Value> {
    state
        .alloc()
        .isym_trace()
        .iter()
        .map(|(_site, x)| model.get(*x).cloned().unwrap_or(Value::Int(0)))
        .collect()
}

/// Runs one symbolic test and concretely replays every modelled bug using
/// the concrete memory `C` (both memories start empty, so no interpretation
/// function is needed for the *initial* state).
pub fn run_test_with_replay<M: SymbolicMemory, C: ConcreteMemory>(
    prog: &Prog,
    entry: &str,
    solver: Arc<Solver>,
    cfg: ExploreConfig,
) -> SymTestOutcome<M> {
    let mut out = run_test::<M>(prog, entry, solver, cfg.clone());
    for bug in &mut out.bugs {
        if bug.model.is_none() {
            continue;
        }
        bug.replay = Some(replay_concrete::<C>(
            prog,
            entry,
            bug.script.clone(),
            cfg.clone(),
        ));
    }
    out
}

/// Replays a test concretely under a scripted allocator; reports whether
/// the run errors (confirming the symbolic bug) or diverges.
pub fn replay_concrete<C: ConcreteMemory>(
    prog: &Prog,
    entry: &str,
    script: Vec<Value>,
    cfg: ExploreConfig,
) -> ReplayStatus {
    let initial = ConcreteState::<C>::with_script(script);
    let result = explore(prog, entry, initial, cfg);
    // Concrete execution is deterministic: exactly one path.
    match result.paths.first().map(|p| &p.outcome) {
        Some(ExploreOutcome::Error(v)) => ReplayStatus::ConfirmedError(v.clone()),
        Some(other) => ReplayStatus::Diverged(format!(
            "concrete replay ended with {other:?} instead of an error"
        )),
        None => ReplayStatus::Diverged("concrete replay produced no path".into()),
    }
}

/// Aggregated statistics for a suite of symbolic tests — one row of the
/// paper's Tables 1/2.
#[derive(Clone, Debug, Default)]
pub struct TestSuiteResult {
    /// Suite name (e.g. the data structure under test).
    pub name: String,
    /// Number of tests run (`#T`).
    pub tests: usize,
    /// Total GIL commands executed.
    pub gil_cmds: u64,
    /// Total symbolic paths explored across every test of the suite.
    pub paths: usize,
    /// Wall-clock time for the whole suite.
    pub time: Duration,
    /// Tests that produced confirmed bug reports, with the report errors.
    pub failures: Vec<(String, Vec<String>)>,
    /// Tests that hit an exploration budget (including the suite deadline:
    /// tests skipped because the suite ran out of time appear here with
    /// zero commands executed).
    pub truncated: Vec<String>,
    /// Tests whose exploration recorded an isolated panic
    /// ([`ExploreOutcome::EngineError`] paths).
    pub errored: Vec<String>,
    /// Diagnostics summed across every test of the suite.
    pub diagnostics: ExploreDiagnostics,
}

impl TestSuiteResult {
    /// True when every test verified cleanly (no confirmed bugs, no
    /// truncation, no engine errors).
    pub fn all_verified(&self) -> bool {
        self.failures.is_empty() && self.truncated.is_empty() && self.errored.is_empty()
    }
}

/// Runs a named suite of symbolic tests (each an entry procedure of
/// `prog`), returning table-row statistics.
///
/// `cfg.deadline`, when set, bounds the **whole suite**: each test runs
/// with the time still remaining, and once none remains the leftover tests
/// are reported in [`TestSuiteResult::truncated`] (with a deadline hit
/// each in the aggregated diagnostics) rather than run with no limit. A
/// batch under a serving timeout thus degrades to fewer-but-honest rows
/// instead of blowing the timeout on one pathological test.
pub fn run_suite<M: SymbolicMemory>(
    name: &str,
    prog: &Prog,
    entries: &[String],
    solver_factory: impl Fn() -> Solver,
    cfg: ExploreConfig,
) -> TestSuiteResult {
    let start = Instant::now();
    let suite_deadline = cfg.deadline.map(|d| start + d);
    let mut suite = TestSuiteResult {
        name: name.to_string(),
        tests: entries.len(),
        ..Default::default()
    };
    for entry in entries {
        let mut test_cfg = cfg.clone();
        if let Some(deadline) = suite_deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                suite.truncated.push(entry.clone());
                suite.diagnostics.deadline_hits += 1;
                continue;
            }
            test_cfg.deadline = Some(remaining);
        }
        let solver = Arc::new(solver_factory());
        let outcome = run_test::<M>(prog, entry, solver, test_cfg);
        suite.gil_cmds += outcome.gil_cmds();
        suite.paths += outcome.result.paths.len();
        let d = outcome.result.diagnostics;
        suite.diagnostics.deadline_hits += d.deadline_hits;
        suite.diagnostics.cancellations += d.cancellations;
        suite.diagnostics.engine_errors += d.engine_errors;
        suite.diagnostics.unknown_verdicts += d.unknown_verdicts;
        suite.diagnostics.incremental_hits += d.incremental_hits;
        suite.diagnostics.implication_hits += d.implication_hits;
        suite.diagnostics.interner = suite.diagnostics.interner.merge(&d.interner);
        if outcome.result.truncated {
            suite.truncated.push(entry.clone());
        }
        if d.engine_errors > 0 {
            suite.errored.push(entry.clone());
        }
        let confirmed: Vec<String> = outcome
            .bugs
            .iter()
            .filter(|b| b.confirmed())
            .map(|b| b.error.clone())
            .collect();
        if !confirmed.is_empty() {
            suite.failures.push((entry.clone(), confirmed));
        }
    }
    suite.time = start.elapsed();
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::SymBranch;
    use gillian_gil::{Cmd, Expr, Proc};

    /// Memories for a language with no heap: all state is in variables.
    #[derive(Clone, Debug, Default)]
    struct NoSymMem;
    impl SymbolicMemory for NoSymMem {
        fn execute_action(
            &self,
            name: &str,
            _: &Expr,
            _: &PathCondition,
            _: &Solver,
        ) -> Vec<SymBranch<Self>> {
            vec![SymBranch {
                memory: NoSymMem,
                outcome: Err(Expr::str(format!("no actions ({name})"))),
                constraint: Expr::tt(),
            }]
        }
    }
    #[derive(Clone, Debug, Default)]
    struct NoConcMem;
    impl ConcreteMemory for NoConcMem {
        fn execute_action(&mut self, name: &str, _: Value) -> Result<Value, Value> {
            Err(Value::str(format!("no actions ({name})")))
        }
    }

    /// test() { x := iSym; assume 0 ≤ x; assert x ≠ 7 }  — buggy at x = 7.
    fn buggy_prog() -> Prog {
        Prog::from_procs([Proc::new(
            "test",
            [],
            vec![
                Cmd::isym("x", 0),
                Cmd::IfGoto(Expr::int(0).le(Expr::pvar("x")), 3),
                Cmd::Vanish,
                Cmd::IfGoto(Expr::pvar("x").ne(Expr::int(7)), 5),
                Cmd::Fail(Expr::str("x hit the magic value")),
                Cmd::Return(Expr::tt()),
            ],
        )])
    }

    /// test() { x := iSym; assert x = x }  — always verifies.
    fn clean_prog() -> Prog {
        Prog::from_procs([Proc::new(
            "test",
            [],
            vec![
                Cmd::isym("x", 0),
                Cmd::IfGoto(Expr::pvar("x").eq(Expr::pvar("x")), 3),
                Cmd::Fail(Expr::str("reflexivity broke")),
                Cmd::Return(Expr::tt()),
            ],
        )])
    }

    #[test]
    fn clean_test_verifies() {
        let out = run_test::<NoSymMem>(
            &clean_prog(),
            "test",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        );
        assert!(out.verified());
        assert!(out.bugs.is_empty());
    }

    #[test]
    fn buggy_test_produces_modelled_report() {
        let out = run_test::<NoSymMem>(
            &buggy_prog(),
            "test",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        );
        assert_eq!(out.bugs.len(), 1);
        let bug = &out.bugs[0];
        assert!(bug.model.is_some(), "pc: {}", bug.pc);
        assert_eq!(bug.script, vec![Value::Int(7)], "model must pin x to 7");
    }

    #[test]
    fn replay_confirms_the_bug() {
        let out = run_test_with_replay::<NoSymMem, NoConcMem>(
            &buggy_prog(),
            "test",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        );
        let bug = &out.bugs[0];
        match &bug.replay {
            Some(ReplayStatus::ConfirmedError(v)) => {
                assert_eq!(v, &Value::str("x hit the magic value"));
            }
            other => panic!("expected confirmation, got {other:?}"),
        }
        assert!(bug.confirmed());
    }

    #[test]
    fn suite_aggregates_rows() {
        let mut prog = buggy_prog();
        // Rename the clean test into the same program.
        let clean = clean_prog();
        let mut p = clean.proc("test").unwrap().clone();
        p.name = "test_clean".into();
        prog.add(p);
        let suite = run_suite::<NoSymMem>(
            "demo",
            &prog,
            &["test".to_string(), "test_clean".to_string()],
            Solver::optimized,
            ExploreConfig::default(),
        );
        assert_eq!(suite.tests, 2);
        assert_eq!(suite.failures.len(), 1);
        assert!(suite.gil_cmds > 0);
        assert!(!suite.all_verified());
    }
}
