//! The bytecode execution backend: block dispatch over compiled GIL.
//!
//! [`step_block`] is the engine's inner loop. Where [`crate::interp::step`]
//! executes exactly one command and hands every successor back to the
//! explorer's worklist, `step_block` retires up to a *block* of commands in
//! place — a fused basic-block dispatch over the register bytecode of
//! [`gillian_gil::compile`] — and only surfaces when the path forks,
//! finishes, or exhausts its block budget. The worklist round-trip,
//! configuration re-destructuring, and per-command panic-guard entry that
//! dominate straight-line cost in the tree walk are paid once per block
//! instead of once per command.
//!
//! ## Exact equivalence contract
//!
//! Both backends must produce the same `(trace, outcome, cmds)` triple for
//! every path, on every program, under every state model:
//!
//! - **Traces.** A branch-trace entry is pushed only when a step yields
//!   more than one successor. The block loop continues in place *only* on
//!   single-successor steps, so it forks exactly where the tree walk
//!   forks — and returns the fork to the explorer, which applies the same
//!   trace rule to both backends.
//! - **Command accounting.** The loop publishes its progress through a
//!   caller-supplied atomic *before* executing each command: when the
//!   block returns (or panics out through the explorer's panic guard),
//!   the atomic holds exactly the number of commands the tree walk would
//!   have charged, including the in-flight one.
//! - **Semantics.** Each [`Instr`] arm mirrors the corresponding
//!   [`crate::interp::step`] rule operation-for-operation — same
//!   evaluation order, same error messages, same error precedence. The
//!   state-model hooks it calls ([`GilState::eval_code`],
//!   [`GilState::guard_code`], [`GilState::execute_action_coded`])
//!   default to the tree-walk methods and are overridden only by
//!   implementations that promise exact agreement.
//!
//! ## Inline caches
//!
//! Memory-action sites carry a per-site [`AtomicU32`] inline cache mapping
//! the action name to the memory model's dense action code
//! ([`GilState::action_code`]). The first dispatch at a site resolves the
//! cache; every later dispatch skips string matching. Caches are never
//! invalidated: programs are immutable after compile and an exploration
//! binds a single memory model, so a resolved code can never go stale.
//!
//! ## The escape hatch
//!
//! `GILLIAN_BYTECODE=0` (or [`ExploreConfig::bytecode`] `Some(false)`)
//! keeps the tree walk alive behind the same block interface:
//! [`ExecProg::prepare`] then skips compilation and `step_block` drives
//! [`crate::interp::step`] one command at a time with identical
//! accounting. Every equivalence battery runs both backends
//! differentially through this switch.
//!
//! [`ExploreConfig::bytecode`]: crate::explore::ExploreConfig::bytecode
//! [`Instr`]: gillian_gil::compile::Instr
//! [`AtomicU32`]: std::sync::atomic::AtomicU32

use crate::interp::{self, Config, Final, Frame, Outcome, StepOut};
use crate::state::{GilState, GuardEval};
use gillian_gil::compile::{CompiledProg, EvalScratch, Instr, IC_BIAS, IC_NO_CODE, IC_UNRESOLVED};
use gillian_gil::{Ident, Prog};
use gillian_solver::Interrupt;
use gillian_telemetry::{names, registry, Counter, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

/// Upper bound on commands retired per [`step_block`] call. Large enough
/// to amortize dispatch overhead over straight-line runs, small enough
/// that per-path budget clamping keeps blocks exact. (Deadline and
/// cancellation stay per-command responsive regardless: the block polls
/// its [`Interrupt`] between commands and surfaces early when it fires.)
pub const BLOCK_MAX: u64 = 64;

fn exec_blocks() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| registry().counter(names::EXEC_BLOCKS))
}

fn exec_cmds() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| registry().counter(names::EXEC_CMDS))
}

fn block_cmds_histogram() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| registry().histogram(names::EXEC_BLOCK_CMDS))
}

fn ic_hits() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| registry().counter(names::EXEC_IC_HITS))
}

fn ic_misses() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| registry().counter(names::EXEC_IC_MISSES))
}

/// The dispatcher's per-step time attribution, fed to the exploration
/// profiler. The engines pass one (only when the journal is armed — a
/// disabled run passes `None` and pays a single branch per block) and
/// drain it into `ProcTime` journal events after each step.
///
/// A **segment** is a maximal run of commands executed under one call
/// stack. The block loop observes the stack before every command; a
/// segment closes when the stack changes (call/return) or when the
/// engine drains, charging the segment its elapsed wall time and
/// retired commands. The call stack is rendered bottom-first and joined
/// with `;` (`"main;f"`), ready for folded-stack output.
#[derive(Debug, Default)]
pub struct BlockProfile {
    segments: Vec<(String, u64, u64)>,
    open: Option<OpenSegment>,
}

#[derive(Debug)]
struct OpenSegment {
    /// Cheap identity of the stack: `(depth, pid)`. Every call/return
    /// changes the depth, so within one block the key changes exactly
    /// at proc transitions — the rendered stack is built only then.
    key: (usize, u32),
    stack: String,
    since_cmds: u64,
    t0: std::time::Instant,
}

impl BlockProfile {
    /// An empty profile.
    pub fn new() -> BlockProfile {
        BlockProfile::default()
    }

    /// Notes that the next command executes under the stack identified
    /// by `key` (`cmds` commands having completed so far); `render` is
    /// invoked only when this opens a new segment.
    fn observe(&mut self, key: (usize, u32), cmds: u64, render: impl FnOnce() -> String) {
        match &self.open {
            Some(open) if open.key == key => {}
            _ => {
                self.close(cmds);
                self.open = Some(OpenSegment {
                    key,
                    stack: render(),
                    since_cmds: cmds,
                    t0: std::time::Instant::now(),
                });
            }
        }
    }

    fn close(&mut self, cmds: u64) {
        let Some(open) = self.open.take() else { return };
        let micros = open.t0.elapsed().as_micros() as u64;
        let seg_cmds = cmds.saturating_sub(open.since_cmds);
        if seg_cmds == 0 && micros == 0 {
            return;
        }
        if let Some(last) = self.segments.last_mut() {
            if last.0 == open.stack {
                last.1 += seg_cmds;
                last.2 += micros;
                return;
            }
        }
        self.segments.push((open.stack, seg_cmds, micros));
    }

    /// Closes the in-flight segment (charging it up to `cmds` retired
    /// commands — the engine passes the block's final progress reading,
    /// which is exact even when the block panicked out) and takes every
    /// accumulated `(stack, cmds, micros)` segment.
    pub fn drain(&mut self, cmds: u64) -> Vec<(String, u64, u64)> {
        self.close(cmds);
        std::mem::take(&mut self.segments)
    }
}

/// Renders a configuration's call stack bottom-first (`"main;f"`): each
/// frame's caller, then the procedure currently executing.
fn render_stack<S: GilState>(stack: &[Frame<S>], proc: &Ident) -> String {
    let mut out = String::new();
    for frame in stack {
        out.push_str(frame.caller.as_ref());
        out.push(';');
    }
    out.push_str(proc.as_ref());
    out
}

/// Whether the bytecode backend is enabled by the environment:
/// `GILLIAN_BYTECODE=0` disables it, anything else (including unset)
/// enables it.
pub fn bytecode_from_env() -> bool {
    std::env::var("GILLIAN_BYTECODE").map_or(true, |v| v != "0")
}

/// A program prepared for execution: the compiled bytecode when the
/// backend is on, or nothing (tree walk) when it is off. Cheap to clone —
/// the compiled program is shared behind an [`Arc`] so parallel workers
/// share one instruction stream (and its inline caches).
#[derive(Clone, Debug, Default)]
pub struct ExecProg {
    compiled: Option<Arc<CompiledProg>>,
}

impl ExecProg {
    /// Prepares `prog` for execution. `bytecode` forces the backend on or
    /// off; `None` defers to [`bytecode_from_env`]. Compilation is
    /// memoized on the program ([`Prog::bytecode`]) — a suite exploring
    /// the same program hundreds of times compiles once and shares the
    /// warm inline caches — and counted under `exec.compiles` when the
    /// memo is cold.
    pub fn prepare(prog: &Prog, bytecode: Option<bool>) -> ExecProg {
        let on = bytecode.unwrap_or_else(bytecode_from_env);
        ExecProg {
            compiled: on.then(|| prog.bytecode()),
        }
    }

    /// True when the bytecode backend is active.
    pub fn bytecode(&self) -> bool {
        self.compiled.is_some()
    }
}

fn done<S: GilState>(state: S, outcome: Outcome<S::V>) -> StepOut<S> {
    StepOut::Done(Final { state, outcome })
}

fn err_done<S: GilState>(state: S, v: S::V) -> StepOut<S> {
    done(state, Outcome::Error(v))
}

fn next<S: GilState>(state: S, stack: Vec<Frame<S>>, proc: Ident, idx: usize) -> StepOut<S> {
    StepOut::Next(Config {
        state,
        stack,
        proc,
        idx,
    })
}

/// Executes up to `limit` commands from `cfg`, returning the successors of
/// the last command executed (exactly as [`crate::interp::step`] would for
/// that command).
///
/// `limit` must be at least 1 and must already be clamped to the path and
/// total command budgets — the block never checks them itself. `progress`
/// is the crash-safe accounting channel: it is set to `n` immediately
/// before the `n`-th command of the block executes, so the caller can read
/// the exact charge even if the command panics out through a guard.
/// `scratch` is the per-worker register file for compiled expression
/// evaluation. `interrupt` is the run's deadline/cancel pair: the block
/// polls it between commands and surfaces its in-flight configuration
/// early when it fires, so the explorer's scheduling-point checks stay
/// per-command responsive exactly as under the tree walk. `profile`, when
/// present, accumulates per-call-stack exclusive time segments for the
/// exploration profiler (see [`BlockProfile`]); pass `None` on untraced
/// runs to keep the block loop timer-free.
#[allow(clippy::too_many_arguments)]
pub fn step_block<S: GilState>(
    prog: &Prog,
    exec: &ExecProg,
    cfg: Config<S>,
    limit: u64,
    interrupt: &Interrupt,
    progress: &AtomicU64,
    scratch: &mut EvalScratch,
    profile: Option<&mut BlockProfile>,
) -> Vec<StepOut<S>> {
    debug_assert!(limit >= 1, "block budget must admit at least one command");
    match &exec.compiled {
        Some(compiled) => {
            let outs = block_compiled(compiled, cfg, limit, interrupt, progress, scratch, profile);
            let charged = progress.load(Ordering::Relaxed);
            exec_blocks().incr();
            exec_cmds().add(charged);
            block_cmds_histogram().record(charged);
            outs
        }
        None => block_tree(prog, cfg, limit, interrupt, progress, profile),
    }
}

/// The escape-hatch block: drives the tree walk one command at a time,
/// continuing in place on single-successor steps so the explorer sees the
/// same block interface (and pays the same per-block worklist costs) under
/// both backends.
fn block_tree<S: GilState>(
    prog: &Prog,
    mut cfg: Config<S>,
    limit: u64,
    interrupt: &Interrupt,
    progress: &AtomicU64,
    mut profile: Option<&mut BlockProfile>,
) -> Vec<StepOut<S>> {
    let mut charged = 0u64;
    loop {
        if let Some(p) = profile.as_deref_mut() {
            p.observe((cfg.stack.len(), u32::MAX), charged, || {
                render_stack(&cfg.stack, &cfg.proc)
            });
        }
        charged += 1;
        progress.store(charged, Ordering::Relaxed);
        let mut outs = interp::step(prog, cfg);
        if outs.len() == 1
            && matches!(outs[0], StepOut::Next(_))
            && charged < limit
            && !interrupt.interrupted()
        {
            let Some(StepOut::Next(c)) = outs.pop() else {
                unreachable!("just matched a single Next");
            };
            cfg = c;
            continue;
        }
        return outs;
    }
}

/// The compiled block: direct dispatch over [`Instr`], mirroring
/// [`crate::interp::step`] arm-for-arm.
#[allow(clippy::too_many_arguments)]
fn block_compiled<S: GilState>(
    compiled: &CompiledProg,
    cfg: Config<S>,
    limit: u64,
    interrupt: &Interrupt,
    progress: &AtomicU64,
    scratch: &mut EvalScratch,
    mut profile: Option<&mut BlockProfile>,
) -> Vec<StepOut<S>> {
    let Config {
        mut state,
        mut stack,
        mut proc,
        mut idx,
    } = cfg;
    // Dense id of the procedure currently executing; `None` reproduces
    // the tree walk's "unknown procedure" error on the next charged
    // command (e.g. after returning into a caller the program no longer
    // defines — impossible for frames this loop pushed, possible for
    // hand-built configurations).
    let mut cur = compiled.pid(&proc);
    // Dense ids of the callers of frames *this block* pushed, so returns
    // within the block skip the name lookup. Frames pushed by earlier
    // blocks fall back to `pid(frame.caller)`.
    let mut shadow: Vec<u32> = Vec::new();
    let mut charged = 0u64;
    loop {
        if let Some(p) = profile.as_deref_mut() {
            p.observe((stack.len(), cur.unwrap_or(u32::MAX)), charged, || {
                render_stack(&stack, &proc)
            });
        }
        charged += 1;
        progress.store(charged, Ordering::Relaxed);
        let Some(pid) = cur else {
            let v = state.error_value(&format!("unknown procedure {proc}"));
            return vec![err_done(state, v)];
        };
        let body = &compiled.by_pid(pid).body;
        let Some(instr) = body.get(idx) else {
            let v = state.error_value(&format!("fell off the end of {proc} at {idx}"));
            return vec![err_done(state, v)];
        };
        match instr {
            Instr::Assign { lhs, code } => match state.eval_code(code, scratch) {
                Ok(v) => {
                    state.set_var(lhs, v);
                    idx += 1;
                }
                Err(v) => return vec![err_done(state, v)],
            },
            Instr::CmpGoto { code, target } => match state.guard_code(code, scratch) {
                GuardEval::Take(taken) => {
                    idx = if taken { *target } else { idx + 1 };
                }
                GuardEval::Fork(mut branches) => match branches.len() {
                    0 => return Vec::new(),
                    1 => {
                        let (st, taken) = branches.pop().expect("len checked");
                        state = st;
                        idx = if taken { *target } else { idx + 1 };
                    }
                    _ => {
                        return branches
                            .into_iter()
                            .map(|(st, taken)| {
                                let j = if taken { *target } else { idx + 1 };
                                next(st, stack.clone(), proc.clone(), j)
                            })
                            .collect()
                    }
                },
                GuardEval::Fail(v) => return vec![err_done(state, v)],
            },
            Instr::Goto { target } => idx = *target,
            Instr::Call {
                lhs,
                code,
                args,
                hint,
            } => {
                let callee_v = match state.eval_code(code, scratch) {
                    Ok(v) => v,
                    Err(v) => return vec![err_done(state, v)],
                };
                // Dynamic resolution stays even for hinted sites: a
                // custom state model may reject (or rewrite) callee
                // values, and the hint is only a post-resolution pid
                // shortcut.
                let callee = match state.resolve_proc(&callee_v) {
                    Ok(f) => f,
                    Err(v) => return vec![err_done(state, v)],
                };
                let mut arg_vs = Vec::with_capacity(args.len());
                for a in args {
                    match state.eval_code(a, scratch) {
                        Ok(v) => arg_vs.push(v),
                        Err(v) => return vec![err_done(state, v)],
                    }
                }
                let np = match hint {
                    Some(h) if h.name == callee => h.pid,
                    _ => compiled.pid(&callee),
                };
                // "unknown procedure" is raised *after* argument
                // evaluation, exactly as the tree walk orders it.
                let Some(np) = np else {
                    let v = state.error_value(&format!("unknown procedure {callee}"));
                    return vec![err_done(state, v)];
                };
                // Summary fast path, mirroring the tree walk exactly: an
                // applicable summary splices the callee's post-state and
                // the call retires as this one charged instruction.
                if let Some(v) = state.summary_apply(&callee, &arg_vs) {
                    state.set_var(lhs, v);
                    idx += 1;
                } else {
                    state.summary_call(&callee, &arg_vs, stack.len() + 1);
                    let new_store = state.make_store(&compiled.by_pid(np).params, arg_vs);
                    let caller_store = state.store().clone();
                    shadow.push(pid);
                    stack.push(Frame {
                        caller: std::mem::replace(&mut proc, callee),
                        ret_var: lhs.clone(),
                        store: caller_store,
                        ret_idx: idx + 1,
                    });
                    state.set_store(new_store);
                    cur = Some(np);
                    idx = 0;
                }
            }
            Instr::Return { code } => match state.eval_code(code, scratch) {
                Ok(v) => {
                    // Harvest hook (same site as the tree walk's).
                    state.summary_return(&v, stack.len());
                    match stack.pop() {
                        Some(frame) => {
                            state.set_store(frame.store);
                            state.set_var(&frame.ret_var, v);
                            proc = frame.caller;
                            idx = frame.ret_idx;
                            cur = shadow.pop().or_else(|| compiled.pid(&proc));
                        }
                        None => return vec![done(state, Outcome::Normal(v))],
                    }
                }
                Err(v) => return vec![err_done(state, v)],
            },
            Instr::Fail { code } => match state.eval_code(code, scratch) {
                Ok(v) | Err(v) => return vec![err_done(state, v)],
            },
            Instr::Vanish => return vec![done(state, Outcome::Vanished)],
            Instr::Action {
                lhs,
                name,
                code,
                ic,
            } => {
                let arg_v = match state.eval_code(code, scratch) {
                    Ok(v) => v,
                    Err(v) => return vec![err_done(state, v)],
                };
                let action = match ic.load(Ordering::Relaxed) {
                    IC_UNRESOLVED => {
                        let c = state.action_code(name.as_ref());
                        ic.store(
                            c.map_or(IC_NO_CODE, |k| u32::from(k) + IC_BIAS),
                            Ordering::Relaxed,
                        );
                        ic_misses().incr();
                        c
                    }
                    IC_NO_CODE => {
                        ic_hits().incr();
                        None
                    }
                    k => {
                        ic_hits().incr();
                        Some((k - IC_BIAS) as u16)
                    }
                };
                let mut branches = match action {
                    Some(k) => state.execute_action_coded(k, name.as_ref(), arg_v),
                    None => state.execute_action(name.as_ref(), arg_v),
                };
                match branches.len() {
                    0 => return Vec::new(),
                    1 => {
                        let (mut st, outcome) = branches.pop().expect("len checked");
                        match outcome {
                            Ok(v) => {
                                st.set_var(lhs, v);
                                state = st;
                                idx += 1;
                            }
                            Err(v) => return vec![err_done(st, v)],
                        }
                    }
                    _ => {
                        return branches
                            .into_iter()
                            .map(|(mut st, outcome)| match outcome {
                                Ok(v) => {
                                    st.set_var(lhs, v);
                                    next(st, stack.clone(), proc.clone(), idx + 1)
                                }
                                Err(v) => err_done(st, v),
                            })
                            .collect()
                    }
                }
            }
            Instr::USym { lhs, site } => {
                let v = state.fresh_usym(*site);
                state.set_var(lhs, v);
                idx += 1;
            }
            Instr::ISym { lhs, site } => {
                let v = state.fresh_isym(*site);
                state.set_var(lhs, v);
                idx += 1;
            }
            Instr::Skip => idx += 1,
        }
        if charged >= limit || interrupt.interrupted() {
            return vec![next(state, stack, proc, idx)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::ConcreteState;
    use crate::memory::ConcreteMemory;
    use gillian_gil::{Cmd, Expr, Proc, Value};

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl ConcreteMemory for NoMem {
        fn execute_action(&mut self, name: &str, _: Value) -> Result<Value, Value> {
            Err(Value::str(format!("no actions ({name})")))
        }
    }

    type St = ConcreteState<NoMem>;

    /// Runs `prog` to completion under both backends with the given block
    /// limit, asserting identical outcomes and command charges.
    fn run_both(prog: &Prog, limit: u64) -> (Outcome<Value>, u64) {
        let mut results = Vec::new();
        for bytecode in [false, true] {
            let exec = ExecProg::prepare(prog, Some(bytecode));
            let progress = AtomicU64::new(0);
            let mut scratch = EvalScratch::new();
            let mut pending = vec![Config::entry("main", St::new())];
            let mut cmds = 0u64;
            let mut finals = Vec::new();
            let mut fuel = 10_000;
            while let Some(cfg) = pending.pop() {
                fuel -= 1;
                assert!(fuel > 0, "runaway test program");
                progress.store(0, Ordering::Relaxed);
                let outs = step_block(
                    prog,
                    &exec,
                    cfg,
                    limit,
                    &Interrupt::default(),
                    &progress,
                    &mut scratch,
                    None,
                );
                cmds += progress.load(Ordering::Relaxed);
                for out in outs {
                    match out {
                        StepOut::Next(c) => pending.push(c),
                        StepOut::Done(f) => finals.push(f),
                    }
                }
            }
            assert_eq!(finals.len(), 1, "concrete execution is deterministic");
            results.push((finals.pop().unwrap().outcome, cmds));
        }
        let tree = results.remove(0);
        let byte = results.remove(0);
        assert_eq!(tree.0, byte.0, "outcomes must agree across backends");
        assert_eq!(tree.1, byte.1, "command charges must agree across backends");
        byte
    }

    fn call_prog() -> Prog {
        Prog::from_procs([
            Proc::new(
                "main",
                [],
                vec![
                    Cmd::assign("x", Expr::int(1)),
                    Cmd::call_static("y", "double", vec![Expr::int(21)]),
                    Cmd::Return(Expr::pvar("x").add(Expr::pvar("y"))),
                ],
            ),
            Proc::new(
                "double",
                ["n"],
                vec![
                    Cmd::assign("x", Expr::pvar("n").mul(Expr::int(2))),
                    Cmd::Return(Expr::pvar("x")),
                ],
            ),
        ])
    }

    #[test]
    fn blocks_agree_with_tree_walk_on_calls() {
        for limit in [1, 2, 3, BLOCK_MAX] {
            let (outcome, cmds) = run_both(&call_prog(), limit);
            assert_eq!(outcome, Outcome::Normal(Value::Int(43)));
            assert_eq!(cmds, 5, "three main cmds + two double cmds");
        }
    }

    #[test]
    fn loops_and_branches_agree() {
        // while (x < 40) x := x + 1; return x
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(0)),
                Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(40)), 3),
                Cmd::Return(Expr::pvar("x")),
                Cmd::assign("x", Expr::pvar("x").add(Expr::int(1))),
                Cmd::Goto(1),
            ],
        )]);
        for limit in [1, 7, BLOCK_MAX] {
            let (outcome, _) = run_both(&prog, limit);
            assert_eq!(outcome, Outcome::Normal(Value::Int(40)));
        }
    }

    #[test]
    fn errors_agree_in_message_and_charge() {
        for body in [
            vec![Cmd::assign("x", Expr::pvar("missing"))],
            vec![Cmd::assign("x", Expr::int(1).div(Expr::int(0)))],
            vec![Cmd::call_static("r", "nope", vec![])],
            vec![Cmd::Fail(Expr::str("boom"))],
            vec![Cmd::assign("x", Expr::int(0))], // falls off the end
        ] {
            let prog = Prog::from_procs([Proc::new("main", [], body)]);
            let (outcome, _) = run_both(&prog, BLOCK_MAX);
            assert!(outcome.is_error(), "got {outcome:?}");
        }
    }

    #[test]
    fn unknown_entry_procedure_errors() {
        let prog = Prog::from_procs([Proc::new("main", [], vec![Cmd::Vanish])]);
        let exec = ExecProg::prepare(&prog, Some(true));
        let progress = AtomicU64::new(0);
        let mut scratch = EvalScratch::new();
        let cfg = Config::entry("nope", St::new());
        let outs = step_block(
            &prog,
            &exec,
            cfg,
            BLOCK_MAX,
            &Interrupt::default(),
            &progress,
            &mut scratch,
            None,
        );
        assert_eq!(outs.len(), 1);
        let StepOut::Done(f) = &outs[0] else {
            panic!("expected a finished path");
        };
        assert_eq!(
            f.outcome,
            Outcome::Error(Value::str("unknown procedure nope"))
        );
        assert_eq!(progress.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn block_limit_cuts_exactly_and_resumes() {
        let prog = call_prog();
        let exec = ExecProg::prepare(&prog, Some(true));
        let progress = AtomicU64::new(0);
        let mut scratch = EvalScratch::new();
        let outs = step_block(
            &prog,
            &exec,
            Config::entry("main", St::new()),
            2,
            &Interrupt::default(),
            &progress,
            &mut scratch,
            None,
        );
        assert_eq!(progress.load(Ordering::Relaxed), 2);
        assert_eq!(outs.len(), 1);
        let StepOut::Next(c) = outs.into_iter().next().unwrap() else {
            panic!("expected a continuation");
        };
        // Two commands in: inside `double`, with the caller frame saved.
        assert_eq!(c.proc.as_ref(), "double");
        assert_eq!(c.stack.len(), 1);
    }

    #[test]
    fn action_inline_cache_resolves_to_no_code() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![Cmd::action("r", "poke", Expr::int(1))],
        )]);
        let exec = ExecProg::prepare(&prog, Some(true));
        let progress = AtomicU64::new(0);
        let mut scratch = EvalScratch::new();
        let outs = step_block(
            &prog,
            &exec,
            Config::entry("main", St::new()),
            BLOCK_MAX,
            &Interrupt::default(),
            &progress,
            &mut scratch,
            None,
        );
        assert_eq!(outs.len(), 1, "NoMem action errors deterministically");
        // The site's cache is now resolved to "no dense code".
        let compiled = exec.compiled.as_ref().unwrap();
        let Instr::Action { ic, .. } = &compiled.proc("main").unwrap().body[0] else {
            panic!("expected an action instruction");
        };
        assert_eq!(ic.load(Ordering::Relaxed), IC_NO_CODE);
    }

    #[test]
    fn env_toggle_selects_backend() {
        // `prepare(.., Some(_))` must ignore the environment entirely.
        let prog = call_prog();
        assert!(ExecProg::prepare(&prog, Some(true)).bytecode());
        assert!(!ExecProg::prepare(&prog, Some(false)).bytecode());
    }
}
