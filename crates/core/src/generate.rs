//! Seeded random GIL program generation for differential testing.
//!
//! The differential oracle ([`crate::difftest`]) validates the engine by
//! running the same program under the symbolic *and* the concrete state
//! constructor and comparing what comes out. Its food supply is this
//! module: a deterministic, seed-driven generator of small GIL programs
//! covering the constructs the engine executes differently under the two
//! constructors — stores and shadowing, both allocator kinds (`uSym` /
//! `iSym`), integer and wrap arithmetic, list operations, guarded
//! division, two-way branching, static calls, and the memory actions of
//! the While and MiniC instantiations.
//!
//! Everything is reproducible from a single `u64` seed: the RNG is a
//! self-contained SplitMix64 (no external crates, no global state), the
//! op-to-GIL compilation is deterministic, and allocation sites are
//! numbered in emission order. `seed → program` is a pure function, so a
//! failing seed in CI replays exactly on any machine.
//!
//! When the oracle finds a divergence, [`minimize`] shrinks the op list
//! greedily (delta-debugging over spans, then single ops) so the committed
//! regression test is the smallest op list that still diverges.

use gillian_gil::{BinOp, Cmd, Expr, Proc, Prog, UnOp, Value};

/// A deterministic SplitMix64 PRNG — the standard 64-bit mixer, small
/// enough to vendor and stable across platforms and releases.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A small signed constant in `-8..=8`.
    pub fn small_i64(&mut self) -> i64 {
        (self.below(17) as i64) - 8
    }
}

/// Which memory-model dialect the generator emits actions for.
///
/// Action names and argument shapes are plain GIL data, so the dialects
/// live here in core without depending on the language crates; the root
/// crate's battery pins the C shapes against `gillian_c::Chunk::to_expr`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MemDialect {
    /// No memory actions (pure store/arithmetic/control programs).
    #[default]
    None,
    /// The While model: `lookup [loc, prop]`, `mutate [loc, prop, val]`,
    /// `dispose loc` over `uSym` locations.
    While,
    /// The MiniC model: `alloc [b, size]`, `store [chunk, b, off, v]`,
    /// `load [chunk, b, off]`, `free [b, 0]` over `uSym` block symbols,
    /// with 8-byte signed-int chunks (the `long` type).
    C,
}

/// A dialect-specific memory step over the generator's location pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Allocate a fresh object/block and initialise its first slot.
    New,
    /// Write a value (a symbolic input) into slot `slot` of location
    /// `loc` (both taken modulo the pools).
    Write {
        /// Location index into the pool.
        loc: u8,
        /// Slot index (property name / byte offset).
        slot: u8,
        /// Symbolic input index providing the stored value.
        sym: u8,
    },
    /// Read slot `slot` of location `loc` into the accumulator. Reading
    /// an absent slot errors — on both sides, which is the point.
    Read {
        /// Location index into the pool.
        loc: u8,
        /// Slot index (property name / byte offset).
        slot: u8,
    },
    /// Dispose/free location `loc`. Later reads error on both sides.
    Free {
        /// Location index into the pool.
        loc: u8,
    },
}

/// One building block of a generated program. Indices into the symbolic
/// input / location pools are taken modulo the pool size (allocating one
/// member when the pool is empty), so every op list is well-formed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenOp {
    /// `s_k := iSym` plus an `Int` type assumption (mirrors how language
    /// front ends constrain `symb_long()`-style inputs).
    Input,
    /// `acc := acc + k`.
    Bump(i64),
    /// `acc := acc ⊕ rhs` where `⊕` is indexed by `op` (add, sub, mul,
    /// bit-and/or/xor, shifts) and `rhs` is input `sym` or the constant
    /// `k` (chosen by `use_sym`).
    Arith {
        /// Operator selector (modulo the op table).
        op: u8,
        /// Input index for a symbolic right-hand side.
        sym: u8,
        /// Constant right-hand side.
        k: i64,
        /// Whether the right-hand side is the symbolic input.
        use_sym: bool,
    },
    /// `acc := wrap_{s,u}_w(acc)` — two's-complement truncation.
    Wrap {
        /// Bit width, clamped into `1..=64` at emission.
        bits: u8,
        /// Signed (sign-extend) or unsigned (zero-extend) wrap.
        signed: bool,
    },
    /// Guarded integer division/modulo by input `sym`: the division only
    /// executes on the branch where the divisor is non-zero, the way
    /// compiled code guards a trapping operation.
    GuardedDiv {
        /// Input index for the divisor.
        sym: u8,
        /// `true` for `%`, `false` for `/`.
        modulo: bool,
    },
    /// Build a small list from `acc` and input `sym`, then fold its
    /// length and a constant-index element back into `acc`.
    ListRound {
        /// Input index for the second element.
        sym: u8,
    },
    /// Two-way branch `ifgoto s_sym < k` bumping `acc` on the
    /// fall-through side.
    Branch {
        /// Input index for the guard.
        sym: u8,
        /// Guard constant.
        k: i64,
    },
    /// Branch on the *accumulator* — a guard over a derived expression,
    /// which exercises simplifier-built terms in `branch_on`.
    BranchAcc(i64),
    /// `assume s_sym < k`: the false side vanishes.
    Assume {
        /// Input index for the guard.
        sym: u8,
        /// Guard constant.
        k: i64,
    },
    /// `if s_sym = k then fail` — seeds error paths.
    FailIf {
        /// Input index for the guard.
        sym: u8,
        /// Guard constant.
        k: i64,
    },
    /// `acc := helper(acc, s_sym)` — a static call to a branching helper
    /// procedure (store save/restore across frames).
    Call {
        /// Input index for the second argument.
        sym: u8,
    },
    /// Store shadowing: save `acc`, overwrite it, then recombine.
    Shadow {
        /// Input index for the overwriting value.
        sym: u8,
    },
    /// A dialect memory action (no-op under [`MemDialect::None`]).
    Mem(MemOp),
}

/// Integer binary operators the `Arith` op draws from. Shift amounts are
/// taken modulo 64 by the semantics, so every member is total on
/// `Int × Int`.
const ARITH_OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
    BinOp::Shl,
    BinOp::ShrA,
];

/// Draws a weighted random op list of length `n` for `dialect`.
pub fn gen_ops(rng: &mut Rng, n: usize, dialect: MemDialect) -> Vec<GenOp> {
    let mem_weight = if dialect == MemDialect::None { 0 } else { 12 };
    let total = 88 + mem_weight;
    (0..n)
        .map(|_| {
            let roll = rng.below(total as u64) as u32;
            let sym = rng.below(4) as u8;
            let k = rng.small_i64();
            match roll {
                0..=9 => GenOp::Input,
                10..=17 => GenOp::Bump(k),
                18..=33 => GenOp::Arith {
                    op: rng.below(ARITH_OPS.len() as u64) as u8,
                    sym,
                    k,
                    use_sym: rng.below(2) == 0,
                },
                34..=40 => GenOp::Wrap {
                    bits: (rng.below(64) + 1) as u8,
                    signed: rng.below(2) == 0,
                },
                41..=45 => GenOp::GuardedDiv {
                    sym,
                    modulo: rng.below(2) == 0,
                },
                46..=51 => GenOp::ListRound { sym },
                52..=62 => GenOp::Branch { sym, k },
                63..=67 => GenOp::BranchAcc(k),
                68..=73 => GenOp::Assume { sym, k },
                74..=77 => GenOp::FailIf { sym, k },
                78..=82 => GenOp::Call { sym },
                83..=87 => GenOp::Shadow { sym },
                _ => GenOp::Mem(match rng.below(10) {
                    0..=2 => MemOp::New,
                    3..=5 => MemOp::Write {
                        loc: rng.below(3) as u8,
                        slot: rng.below(2) as u8,
                        sym,
                    },
                    6..=8 => MemOp::Read {
                        loc: rng.below(3) as u8,
                        slot: rng.below(2) as u8,
                    },
                    _ => MemOp::Free {
                        loc: rng.below(3) as u8,
                    },
                }),
            }
        })
        .collect()
}

/// The helper procedure every generated program links against: branches
/// on its arguments and returns a derived value, exercising call-frame
/// save/restore and cross-procedure path conditions.
fn helper_proc() -> Proc {
    Proc::new(
        "helper",
        ["a", "b"],
        vec![
            Cmd::IfGoto(Expr::pvar("a").lt(Expr::pvar("b")), 2),
            Cmd::Return(Expr::pvar("a").add(Expr::pvar("b").mul(Expr::int(2)))),
            Cmd::Return(Expr::pvar("b").sub(Expr::pvar("a"))),
        ],
    )
}

/// The While property names the generator writes to.
const WHILE_PROPS: [&str; 2] = ["f", "g"];

/// The serialized 8-byte signed-int chunk (`long`) — the MiniC
/// `Chunk::int(8).to_expr()` shape `[size, kind-name, signed]`. The root
/// battery asserts this literal matches `gillian_c::Chunk`.
fn c_long_chunk() -> Expr {
    Expr::Val(Value::List(vec![
        Value::Int(8),
        Value::str("int"),
        Value::Bool(true),
    ]))
}

/// Compiles an op list into a GIL program with entry `main`.
///
/// Emission is deterministic: allocation sites number `iSym`/`uSym` in
/// order of appearance, temporaries are numbered per op, and referenced
/// pools auto-allocate a member when empty (so no op is ever dangling).
pub fn build_prog(ops: &[GenOp], dialect: MemDialect) -> Prog {
    let mut body = vec![Cmd::assign("acc", Expr::int(1))];
    let mut syms: Vec<String> = Vec::new();
    let mut locs: Vec<String> = Vec::new();
    let mut site: u32 = 0;
    let mut tmp: u32 = 0;

    fn alloc_input(body: &mut Vec<Cmd>, syms: &mut Vec<String>, site: &mut u32) {
        let name = format!("s{}", syms.len());
        body.push(Cmd::isym(&name, *site));
        *site += 1;
        // assume typeOf(s) = Int — skip over a vanish, like compiled
        // `symb_long()`.
        let skip = body.len() + 2;
        body.push(Cmd::IfGoto(
            Expr::pvar(&name).has_type(gillian_gil::TypeTag::Int),
            skip,
        ));
        body.push(Cmd::Vanish);
        syms.push(name);
    }

    fn alloc_loc(
        body: &mut Vec<Cmd>,
        locs: &mut Vec<String>,
        site: &mut u32,
        tmp: &mut u32,
        dialect: MemDialect,
    ) {
        let name = format!("l{}", locs.len());
        body.push(Cmd::usym(&name, *site));
        *site += 1;
        match dialect {
            MemDialect::None => {}
            MemDialect::While => {
                body.push(Cmd::action(
                    format!("t{tmp}"),
                    "mutate",
                    Expr::list([Expr::pvar(&name), Expr::str(WHILE_PROPS[0]), Expr::int(0)]),
                ));
                *tmp += 1;
            }
            MemDialect::C => {
                body.push(Cmd::action(
                    format!("t{tmp}"),
                    "alloc",
                    Expr::list([Expr::pvar(&name), Expr::int(16)]),
                ));
                *tmp += 1;
                body.push(Cmd::action(
                    format!("t{tmp}"),
                    "store",
                    Expr::list([
                        c_long_chunk(),
                        Expr::pvar(&name),
                        Expr::int(0),
                        Expr::int(0),
                    ]),
                ));
                *tmp += 1;
            }
        }
        locs.push(name);
    }

    let mut need_helper = false;
    for op in ops {
        // Ops that reference a pool make sure it is non-empty.
        let needs_sym = matches!(
            op,
            GenOp::Arith { use_sym: true, .. }
                | GenOp::GuardedDiv { .. }
                | GenOp::ListRound { .. }
                | GenOp::Branch { .. }
                | GenOp::Assume { .. }
                | GenOp::FailIf { .. }
                | GenOp::Call { .. }
                | GenOp::Shadow { .. }
                | GenOp::Mem(MemOp::Write { .. })
        );
        if needs_sym && syms.is_empty() {
            alloc_input(&mut body, &mut syms, &mut site);
        }
        if matches!(op, GenOp::Mem(m) if !matches!(m, MemOp::New)) && locs.is_empty() {
            alloc_loc(&mut body, &mut locs, &mut site, &mut tmp, dialect);
        }
        let pick = |pool: &[String], i: u8| pool[i as usize % pool.len()].clone();
        match op {
            GenOp::Input => alloc_input(&mut body, &mut syms, &mut site),
            GenOp::Bump(k) => {
                body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::int(*k))));
            }
            GenOp::Arith {
                op,
                sym,
                k,
                use_sym,
            } => {
                let bop = ARITH_OPS[*op as usize % ARITH_OPS.len()];
                let shift = matches!(bop, BinOp::Shl | BinOp::ShrA);
                let rhs = if *use_sym {
                    let s = Expr::pvar(pick(&syms, *sym));
                    // Shift counts are masked small, like compiled code
                    // masks them: unmasked counts wrap `acc` to the i64
                    // boundary so often that the solver's mathematical
                    // linear reasoning admits wrapping-infeasible paths,
                    // drowning the battery in no-model skips.
                    if shift {
                        s.bin(BinOp::BitAnd, Expr::int(7))
                    } else {
                        s
                    }
                } else if shift {
                    Expr::int(k.rem_euclid(8))
                } else {
                    Expr::int(*k)
                };
                body.push(Cmd::assign("acc", Expr::pvar("acc").bin(bop, rhs)));
            }
            GenOp::Wrap { bits, signed } => {
                let w = (*bits).clamp(1, 64);
                let un = if *signed {
                    UnOp::WrapSigned(w)
                } else {
                    UnOp::WrapUnsigned(w)
                };
                body.push(Cmd::assign("acc", Expr::pvar("acc").un(un)));
            }
            GenOp::GuardedDiv { sym, modulo } => {
                let d = Expr::pvar(pick(&syms, *sym));
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(d.clone().eq(Expr::int(0)), skip));
                let divided = if *modulo {
                    Expr::pvar("acc").rem(d)
                } else {
                    Expr::pvar("acc").div(d)
                };
                body.push(Cmd::assign("acc", divided));
            }
            GenOp::ListRound { sym } => {
                let s = Expr::pvar(pick(&syms, *sym));
                let xs = format!("xs{tmp}");
                tmp += 1;
                body.push(Cmd::assign(
                    &xs,
                    Expr::list([Expr::pvar("acc"), s, Expr::int(3)]),
                ));
                body.push(Cmd::assign(
                    "acc",
                    Expr::pvar(&xs)
                        .clone()
                        .lst_nth(Expr::int(1))
                        .add(Expr::pvar(&xs).lst_len()),
                ));
            }
            GenOp::Branch { sym, k } => {
                let s = Expr::pvar(pick(&syms, *sym));
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(s.lt(Expr::int(*k)), skip));
                body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::int(1))));
            }
            GenOp::BranchAcc(k) => {
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(Expr::pvar("acc").lt(Expr::int(*k)), skip));
                body.push(Cmd::assign("acc", Expr::int(0).sub(Expr::pvar("acc"))));
            }
            GenOp::Assume { sym, k } => {
                let s = Expr::pvar(pick(&syms, *sym));
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(s.lt(Expr::int(*k)), skip));
                body.push(Cmd::Vanish);
            }
            GenOp::FailIf { sym, k } => {
                let s = Expr::pvar(pick(&syms, *sym));
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(s.ne(Expr::int(*k)), skip));
                body.push(Cmd::Fail(Expr::str("difftest: seeded failure")));
            }
            GenOp::Call { sym } => {
                need_helper = true;
                let s = Expr::pvar(pick(&syms, *sym));
                body.push(Cmd::call_static(
                    "acc",
                    "helper",
                    vec![Expr::pvar("acc"), s],
                ));
            }
            GenOp::Shadow { sym } => {
                let t = format!("t{tmp}");
                tmp += 1;
                body.push(Cmd::assign(&t, Expr::pvar("acc")));
                body.push(Cmd::assign("acc", Expr::pvar(pick(&syms, *sym))));
                body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::pvar(&t))));
            }
            GenOp::Mem(m) => {
                if dialect == MemDialect::None {
                    continue;
                }
                match m {
                    MemOp::New => alloc_loc(&mut body, &mut locs, &mut site, &mut tmp, dialect),
                    MemOp::Write { loc, slot, sym } => {
                        let l = Expr::pvar(pick(&locs, *loc));
                        let v = Expr::pvar(pick(&syms, *sym));
                        let arg = match dialect {
                            MemDialect::While => Expr::list([
                                l,
                                Expr::str(WHILE_PROPS[*slot as usize % WHILE_PROPS.len()]),
                                v,
                            ]),
                            MemDialect::C => Expr::list([
                                c_long_chunk(),
                                l,
                                Expr::int((*slot as i64 % 2) * 8),
                                v,
                            ]),
                            MemDialect::None => unreachable!(),
                        };
                        let name = if dialect == MemDialect::While {
                            "mutate"
                        } else {
                            "store"
                        };
                        body.push(Cmd::action(format!("t{tmp}"), name, arg));
                        tmp += 1;
                    }
                    MemOp::Read { loc, slot } => {
                        let l = Expr::pvar(pick(&locs, *loc));
                        let (name, arg) = match dialect {
                            MemDialect::While => (
                                "lookup",
                                Expr::list([
                                    l,
                                    Expr::str(WHILE_PROPS[*slot as usize % WHILE_PROPS.len()]),
                                ]),
                            ),
                            MemDialect::C => (
                                "load",
                                Expr::list([c_long_chunk(), l, Expr::int((*slot as i64 % 2) * 8)]),
                            ),
                            MemDialect::None => unreachable!(),
                        };
                        let r = format!("r{tmp}");
                        tmp += 1;
                        body.push(Cmd::action(&r, name, arg));
                        body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::pvar(&r))));
                    }
                    MemOp::Free { loc } => {
                        let l = Expr::pvar(pick(&locs, *loc));
                        let (name, arg) = match dialect {
                            MemDialect::While => ("dispose", l),
                            MemDialect::C => ("free", Expr::list([l, Expr::int(0)])),
                            MemDialect::None => unreachable!(),
                        };
                        body.push(Cmd::action(format!("t{tmp}"), name, arg));
                        tmp += 1;
                    }
                }
            }
        }
    }
    body.push(Cmd::Return(Expr::pvar("acc")));
    let mut prog = Prog::from_procs([Proc::new("main", [], body)]);
    if need_helper {
        prog.add(helper_proc());
    }
    prog
}

/// Greedily minimizes an op list against a divergence predicate: tries
/// removing spans of halving size, then single ops, keeping any removal
/// under which `diverges` still holds. The result is 1-minimal (no
/// single op can be removed) whenever the predicate is deterministic.
pub fn minimize(ops: &[GenOp], diverges: impl Fn(&[GenOp]) -> bool) -> Vec<GenOp> {
    let mut cur: Vec<GenOp> = ops.to_vec();
    if !diverges(&cur) {
        return cur;
    }
    let mut span = cur.len() / 2;
    while span >= 1 {
        let mut i = 0;
        while i < cur.len() {
            let end = (i + span).min(cur.len());
            let mut candidate = cur.clone();
            candidate.drain(i..end);
            if diverges(&candidate) {
                cur = candidate; // keep the removal; retry at same index
            } else {
                i += span;
            }
        }
        if span == 1 {
            break;
        }
        span /= 2;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "no collisions in 32 draws");
    }

    #[test]
    fn generation_is_reproducible() {
        for dialect in [MemDialect::None, MemDialect::While, MemDialect::C] {
            let a = gen_ops(&mut Rng::new(7), 40, dialect);
            let b = gen_ops(&mut Rng::new(7), 40, dialect);
            assert_eq!(a, b);
            let pa = build_prog(&a, dialect);
            let pb = build_prog(&b, dialect);
            assert_eq!(format!("{pa:?}"), format!("{pb:?}"));
        }
    }

    #[test]
    fn none_dialect_emits_no_actions() {
        let ops = gen_ops(&mut Rng::new(3), 60, MemDialect::None);
        let prog = build_prog(&ops, MemDialect::None);
        for proc in prog.iter() {
            assert!(!proc.body.iter().any(|c| matches!(c, Cmd::Action { .. })));
        }
    }

    #[test]
    fn minimize_is_one_minimal() {
        // Predicate: diverges iff the list still contains a Bump(3) and a
        // Bump(5) (order-independent pair).
        let ops = vec![
            GenOp::Input,
            GenOp::Bump(3),
            GenOp::Shadow { sym: 0 },
            GenOp::Bump(5),
            GenOp::Input,
        ];
        let has = |ops: &[GenOp]| ops.contains(&GenOp::Bump(3)) && ops.contains(&GenOp::Bump(5));
        let min = minimize(&ops, has);
        assert_eq!(min, vec![GenOp::Bump(3), GenOp::Bump(5)]);
    }

    #[test]
    fn minimize_keeps_nondiverging_input_intact() {
        let ops = vec![GenOp::Input, GenOp::Bump(1)];
        assert_eq!(minimize(&ops, |_| false), ops);
    }
}
