//! The GIL semantics (paper Fig. 1), written once over [`GilState`].
//!
//! Transitions are `p ⊢ ⟨σ, cs, i⟩ ⇝ ⟨σ′, cs′, j⟩ᵒ`: configurations carry a
//! state, a call stack and the index of the next command; outcomes are
//! continuation, return `N(v)`, or error `E(v)` — plus `vanish`, which
//! silently discards the path. Symbolic states make [`step`] return
//! several successor configurations (conditional gotos and branching
//! memory actions); concrete states return exactly one.
//!
//! [`step`] is the **reference backend**: the explorer's default inner
//! loop is the compiled-bytecode block dispatch of [`crate::exec`],
//! which must agree with `step` command-for-command (same successors,
//! same outcomes, same error text — see `exec`'s equivalence contract).
//! This tree walk stays authoritative for the semantics, serves as the
//! differential oracle in the bytecode batteries, and remains selectable
//! at run time via `GILLIAN_BYTECODE=0`.
//!
//! ## Panic contract
//!
//! [`step`] itself never panics on well-formed programs, but it calls into
//! tool-developer code — [`SymbolicMemory`] actions and the hosted
//! expression evaluator — which may. The interpreter does *not* catch
//! those panics: it promises only not to corrupt any state it did not
//! consume (it takes configurations by value). Isolation is layered above:
//! [`explore`](crate::explore) wraps each `step` call in a panic guard, so
//! a panicking memory action kills one path (reported as
//! [`ExploreOutcome::EngineError`](crate::explore::ExploreOutcome)), never
//! the whole exploration.
//!
//! [`SymbolicMemory`]: crate::memory::SymbolicMemory

use crate::state::GilState;
use gillian_gil::{Cmd, Ident, Prog};

/// A non-continuation outcome `o ∈ O` of a finished path.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome<V> {
    /// `N(v)` — top-level return.
    Normal(V),
    /// `E(v)` — execution failed with error value `v`.
    Error(V),
    /// The path was silently discarded (`vanish`).
    Vanished,
}

impl<V> Outcome<V> {
    /// True for the error outcome.
    pub fn is_error(&self) -> bool {
        matches!(self, Outcome::Error(_))
    }
}

/// An inner stack frame `⟨f, x, ρ, i⟩`: callee name, return variable,
/// caller store, return index — plus the caller's procedure name, which the
/// paper recovers from the remainder of the stack.
#[derive(Clone, Debug)]
pub struct Frame<S: GilState> {
    /// Procedure executing *below* this frame (the caller).
    pub caller: Ident,
    /// Variable receiving the return value.
    pub ret_var: Ident,
    /// The caller's store `ρ`.
    pub store: S::Store,
    /// Index to resume at in the caller.
    pub ret_idx: usize,
}

/// A configuration `⟨σ, cs, i⟩`.
#[derive(Clone, Debug)]
pub struct Config<S: GilState> {
    /// The current state `σ`.
    pub state: S,
    /// Inner frames of the call stack (bottom → top).
    pub stack: Vec<Frame<S>>,
    /// The procedure currently executing (top of the call stack).
    pub proc: Ident,
    /// Index of the next command.
    pub idx: usize,
}

impl<S: GilState> Config<S> {
    /// The initial configuration: `⟨σ, ⟨f⟩, 0⟩` with an empty store.
    pub fn entry(proc: impl AsRef<str>, mut state: S) -> Self {
        let empty = state.make_store(&[], vec![]);
        state.set_store(empty);
        Config {
            state,
            stack: Vec::new(),
            proc: Ident::from(proc.as_ref()),
            idx: 0,
        }
    }
}

/// A finished path: final state plus outcome.
#[derive(Clone, Debug)]
pub struct Final<S: GilState> {
    /// The state at termination.
    pub state: S,
    /// The path's outcome.
    pub outcome: Outcome<S::V>,
}

/// The result of one small step from a configuration.
#[derive(Clone, Debug)]
pub enum StepOut<S: GilState> {
    /// Execution continues from a successor configuration.
    Next(Config<S>),
    /// The path finished.
    Done(Final<S>),
}

fn done<S: GilState>(state: S, outcome: Outcome<S::V>) -> StepOut<S> {
    StepOut::Done(Final { state, outcome })
}

fn err_done<S: GilState>(state: S, v: S::V) -> StepOut<S> {
    done(state, Outcome::Error(v))
}

/// Executes the command at `cfg`'s program point, returning all successor
/// configurations / finished paths (Fig. 1, one match arm per rule).
pub fn step<S: GilState>(prog: &Prog, cfg: Config<S>) -> Vec<StepOut<S>> {
    let Config {
        mut state,
        mut stack,
        proc,
        idx,
    } = cfg;
    let Some(p) = prog.proc(&proc) else {
        let v = state.error_value(&format!("unknown procedure {proc}"));
        return vec![err_done(state, v)];
    };
    let Some(cmd) = p.body.get(idx) else {
        let v = state.error_value(&format!("fell off the end of {proc} at {idx}"));
        return vec![err_done(state, v)];
    };
    let next = |state: S, stack: Vec<Frame<S>>, proc: Ident, idx: usize| {
        StepOut::Next(Config {
            state,
            stack,
            proc,
            idx,
        })
    };
    match cmd {
        // [Assignment]  σ.(setVarₓ ∘ evalₑ)
        Cmd::Assign(x, e) => match state.eval(e) {
            Ok(v) => {
                state.set_var(x, v);
                vec![next(state, stack, proc, idx + 1)]
            }
            Err(v) => vec![err_done(state, v)],
        },
        // [IfGoto-True] / [IfGoto-False]  σ.(assume ∘ eval)
        Cmd::IfGoto(e, j) => match state.branch_on(e) {
            Ok(branches) => branches
                .into_iter()
                .map(|(st, taken)| {
                    let target = if taken { *j } else { idx + 1 };
                    next(st, stack.clone(), proc.clone(), target)
                })
                .collect(),
            Err(v) => vec![err_done(state, v)],
        },
        Cmd::Goto(j) => vec![next(state, stack, proc, *j)],
        // [Call]
        Cmd::Call {
            lhs,
            proc: pe,
            args,
        } => {
            let callee_v = match state.eval(pe) {
                Ok(v) => v,
                Err(v) => return vec![err_done(state, v)],
            };
            let callee = match state.resolve_proc(&callee_v) {
                Ok(f) => f,
                Err(v) => return vec![err_done(state, v)],
            };
            let mut arg_vs = Vec::with_capacity(args.len());
            for a in args {
                match state.eval(a) {
                    Ok(v) => arg_vs.push(v),
                    Err(v) => return vec![err_done(state, v)],
                }
            }
            let Some(callee_proc) = prog.proc(&callee) else {
                let v = state.error_value(&format!("unknown procedure {callee}"));
                return vec![err_done(state, v)];
            };
            // Summary fast path (`DESIGN.md` §17): a recorded summary that
            // applies under the current condition splices the callee's
            // post-state — the path condition was advanced inside
            // `summary_apply`, the return value binds here, and the callee
            // is never entered. The whole call retires as this one
            // command, exactly like any other single-successor step.
            if let Some(v) = state.summary_apply(&callee, &arg_vs) {
                state.set_var(lhs, v);
                return vec![next(state, stack, proc, idx + 1)];
            }
            state.summary_call(&callee, &arg_vs, stack.len() + 1);
            let new_store = state.make_store(&callee_proc.params, arg_vs);
            let caller_store = state.store().clone();
            stack.push(Frame {
                caller: proc,
                ret_var: lhs.clone(),
                store: caller_store,
                ret_idx: idx + 1,
            });
            state.set_store(new_store);
            vec![next(state, stack, callee, 0)]
        }
        // [Return] / [Top Return]
        Cmd::Return(e) => match state.eval(e) {
            Ok(v) => {
                // Harvest hook: a clean window for the returning frame
                // becomes a recorded summary (no-op for concrete states
                // and disarmed stores).
                state.summary_return(&v, stack.len());
                match stack.pop() {
                    Some(frame) => {
                        state.set_store(frame.store);
                        state.set_var(&frame.ret_var, v);
                        vec![next(state, stack, frame.caller, frame.ret_idx)]
                    }
                    None => vec![done(state, Outcome::Normal(v))],
                }
            }
            Err(v) => vec![err_done(state, v)],
        },
        // [Fail]
        Cmd::Fail(e) => match state.eval(e) {
            Ok(v) | Err(v) => vec![err_done(state, v)],
        },
        Cmd::Vanish => vec![done(state, Outcome::Vanished)],
        // [Action]  σ.(setVarₓ ∘ α ∘ evalₑ)
        Cmd::Action { lhs, name, arg } => {
            let arg_v = match state.eval(arg) {
                Ok(v) => v,
                Err(v) => return vec![err_done(state, v)],
            };
            state
                .execute_action(name, arg_v)
                .into_iter()
                .map(|(mut st, outcome)| match outcome {
                    Ok(v) => {
                        st.set_var(lhs, v);
                        next(st, stack.clone(), proc.clone(), idx + 1)
                    }
                    Err(v) => err_done(st, v),
                })
                .collect()
        }
        // [uSym] / [iSym]
        Cmd::USym { lhs, site } => {
            let v = state.fresh_usym(*site);
            state.set_var(lhs, v);
            vec![next(state, stack, proc, idx + 1)]
        }
        Cmd::ISym { lhs, site } => {
            let v = state.fresh_isym(*site);
            state.set_var(lhs, v);
            vec![next(state, stack, proc, idx + 1)]
        }
        Cmd::Skip => vec![next(state, stack, proc, idx + 1)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::ConcreteState;
    use crate::memory::ConcreteMemory;
    use gillian_gil::{Expr, Proc, Value};

    #[derive(Clone, Debug, Default)]
    struct NoMem;
    impl ConcreteMemory for NoMem {
        fn execute_action(&mut self, name: &str, _: Value) -> Result<Value, Value> {
            Err(Value::str(format!("no actions ({name})")))
        }
    }

    type St = ConcreteState<NoMem>;

    fn run_to_end(prog: &Prog, entry: &str) -> Final<St> {
        let mut pending = vec![Config::entry(entry, St::new())];
        let mut finals = Vec::new();
        let mut steps = 0;
        while let Some(cfg) = pending.pop() {
            steps += 1;
            assert!(steps < 10_000, "runaway test program");
            for out in step(prog, cfg) {
                match out {
                    StepOut::Next(c) => pending.push(c),
                    StepOut::Done(f) => finals.push(f),
                }
            }
        }
        assert_eq!(finals.len(), 1, "concrete execution is deterministic");
        finals.pop().unwrap()
    }

    #[test]
    fn straight_line_returns() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(40)),
                Cmd::assign("x", Expr::pvar("x").add(Expr::int(2))),
                Cmd::Return(Expr::pvar("x")),
            ],
        )]);
        let f = run_to_end(&prog, "main");
        assert_eq!(f.outcome, Outcome::Normal(Value::Int(42)));
    }

    #[test]
    fn calls_save_and_restore_stores() {
        let prog = Prog::from_procs([
            Proc::new(
                "main",
                [],
                vec![
                    Cmd::assign("x", Expr::int(1)),
                    Cmd::call_static("y", "double", vec![Expr::int(21)]),
                    // x must still be 1 after the call.
                    Cmd::Return(Expr::pvar("x").add(Expr::pvar("y"))),
                ],
            ),
            Proc::new(
                "double",
                ["n"],
                vec![
                    Cmd::assign("x", Expr::pvar("n").mul(Expr::int(2))),
                    Cmd::Return(Expr::pvar("x")),
                ],
            ),
        ]);
        let f = run_to_end(&prog, "main");
        assert_eq!(f.outcome, Outcome::Normal(Value::Int(43)));
    }

    #[test]
    fn ifgoto_takes_the_right_branch() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(5)),
                Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(10)), 3),
                Cmd::Fail(Expr::str("wrong branch")),
                Cmd::Return(Expr::tt()),
            ],
        )]);
        let f = run_to_end(&prog, "main");
        assert_eq!(f.outcome, Outcome::Normal(Value::Bool(true)));
    }

    #[test]
    fn fail_and_vanish_terminate() {
        let fail = Prog::from_procs([Proc::new("main", [], vec![Cmd::Fail(Expr::str("boom"))])]);
        assert_eq!(
            run_to_end(&fail, "main").outcome,
            Outcome::Error(Value::str("boom"))
        );
        let vanish = Prog::from_procs([Proc::new("main", [], vec![Cmd::Vanish])]);
        assert_eq!(run_to_end(&vanish, "main").outcome, Outcome::Vanished);
    }

    #[test]
    fn dynamic_call_through_value() {
        let prog = Prog::from_procs([
            Proc::new(
                "main",
                [],
                vec![
                    Cmd::assign("f", Expr::proc("id")),
                    Cmd::Call {
                        lhs: "r".into(),
                        proc: Expr::pvar("f"),
                        args: vec![Expr::int(9)],
                    },
                    Cmd::Return(Expr::pvar("r")),
                ],
            ),
            Proc::new("id", ["v"], vec![Cmd::Return(Expr::pvar("v"))]),
        ]);
        let f = run_to_end(&prog, "main");
        assert_eq!(f.outcome, Outcome::Normal(Value::Int(9)));
    }

    #[test]
    fn errors_propagate_from_eval() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![Cmd::assign("x", Expr::pvar("missing"))],
        )]);
        assert!(run_to_end(&prog, "main").outcome.is_error());
        let oob = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![Cmd::assign("x", Expr::int(1).div(Expr::int(0)))],
        )]);
        assert!(run_to_end(&oob, "main").outcome.is_error());
    }

    #[test]
    fn unknown_procedure_is_an_error() {
        let prog = Prog::from_procs([Proc::new(
            "main",
            [],
            vec![Cmd::call_static("r", "nope", vec![])],
        )]);
        assert!(run_to_end(&prog, "main").outcome.is_error());
    }
}
