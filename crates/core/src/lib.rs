#![warn(missing_docs)]

//! # Gillian core: the parametric symbolic execution engine
//!
//! This crate is the paper's primary contribution (PLDI 2020, §2–§3): a
//! symbolic execution engine for GIL that is *parametric on the memory
//! model* of the target language.
//!
//! ## Architecture
//!
//! - A tool developer implements [`ConcreteMemory`] and [`SymbolicMemory`]
//!   for their language — a set of *actions* over their memory type
//!   (paper Defs. 2.3/2.4).
//! - The engine lifts those memories to full *state models* with the
//!   concrete and symbolic state constructors
//!   ([`ConcreteState`]/[`SymbolicState`], Defs. 2.5/2.6), adding the
//!   variable store, the built-in allocator (Def. 2.2), and — symbolically
//!   — the path condition and solver integration.
//! - The GIL interpreter ([`interp`], Fig. 1) runs over any [`GilState`],
//!   so the same rules execute both concretely and symbolically.
//! - [`explore`] drives whole-program bounded symbolic execution;
//!   [`testing`] packages it as symbolic unit testing with *verified*
//!   counter-models and concrete replay (the computational content of the
//!   soundness theorem, §3);
//! - [`restriction`] defines the paper's novel restriction operator `⇃`
//!   and its laws; [`soundness`] provides memory interpretation functions
//!   (Def. 3.7) and a differential checker used by instantiations to
//!   validate the two memory lemmas (MA-RS / MA-RC) empirically.
//!
//! ## Example
//!
//! Instantiations live in their own crates (`gillian-while`, `gillian-js`,
//! `gillian-c`); see `gillian-while` for the smallest complete example.

pub mod allocator;
pub mod checkpoint;
pub mod concrete;
pub mod difftest;
pub mod exec;
pub mod explore;
pub mod faults;
pub mod generate;
pub mod interp;
pub mod memory;
mod panic_guard;
pub mod restriction;
pub mod soundness;
pub mod state;
pub mod symbolic;
pub mod testing;

pub use allocator::{ConcAllocator, SymAllocator};
pub use checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointConfig, CheckpointData, FrontierItem, PathSummary,
    ResumeError, SaveError, StateCtx, StateIoError,
};
pub use concrete::ConcreteState;
pub use difftest::{
    run_differential, run_differential_with, DifftestReport, Divergence, InterpMemoryCheck,
    MemoryCheck, MismatchClass, NoMemoryCheck, SkippedPath,
};
pub use exec::{bytecode_from_env, step_block, BlockProfile, ExecProg, BLOCK_MAX};
pub use explore::{
    explore_parallel, explore_resume, explore_with, replay_path, ExploreConfig, ExploreDiagnostics,
    ExploreOutcome, ExploreResult, PathResult, ReplayError, ResumedExplore, SearchStrategy,
};
pub use faults::{FaultKind, FaultPlan};
pub use generate::{build_prog, gen_ops, minimize, GenOp, MemDialect, Rng};
pub use gillian_solver::{CancelToken, Interrupt};
pub use interp::{Config, Final, Outcome};
pub use memory::{ConcreteMemory, SymBranch, SymbolicMemory};
pub use restriction::Restrict;
pub use state::GilState;
pub use symbolic::SymbolicState;
pub use testing::{BugReport, SymTestOutcome, TestSuiteResult};
