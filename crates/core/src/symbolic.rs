//! The symbolic state constructor `SSC` (paper Def. 2.6).
//!
//! Lifts any [`SymbolicMemory`] to a full symbolic state model by pairing
//! it with a symbolic store (program variables ⇀ logical expressions), the
//! built-in symbolic allocator, and a path condition:
//! `|S| = |M̂| × (X ⇀ Ê) × |ÂL| × Π`.
//!
//! Expression evaluation substitutes store bindings and simplifies through
//! the solver; `assume` (inside [`GilState::branch_on`]) strengthens the
//! path condition when satisfiable; actions delegate to the parameter
//! memory and conjoin the learned constraint (Def. 2.6, `[Action]`).

use crate::allocator::SymAllocator;
use crate::checkpoint::{StateCtx, StateIoError};
use crate::memory::SymbolicMemory;
use crate::restriction::Restrict;
use crate::state::{GilState, GuardEval};
use gillian_gil::compile::{EvalScratch, ExprCode, ExprKind};
use gillian_gil::serial::{self, ByteReader, Decoder, Encoder};
use gillian_gil::{Expr, Ident, LVar, Prog, Term, Value};
use gillian_solver::summary;
use gillian_solver::{FaultProbe, Interrupt, PathCondition, SatResult, Solver};
use gillian_telemetry::{names, registry, Event, Journal};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The always-on action-latency histogram, fetched from the telemetry
/// registry once per process so the dispatch hot path never takes the
/// registry lock.
fn action_micros_histogram() -> &'static gillian_telemetry::Histogram {
    static H: std::sync::OnceLock<&'static gillian_telemetry::Histogram> =
        std::sync::OnceLock::new();
    H.get_or_init(|| registry().histogram(names::ACTION_MICROS))
}

/// One memory action in this many is wall-clock timed into the latency
/// histogram (power of two). Actions are frequent enough on the C and
/// JS memory models that an unconditional clock pair per action shows
/// up in end-to-end throughput; uniform sampling keeps the histogram's
/// shape. A run with the journal armed times every action instead —
/// `action_exec` events carry per-action micros, and traced runs are
/// not throughput-gated.
const ACTION_SAMPLE: u64 = 8;

thread_local! {
    /// Action counter driving the 1-in-[`ACTION_SAMPLE`] probe.
    static TL_ACTION_SAMPLE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// An open summary-harvest window (`DESIGN.md` §17): a call frame whose
/// execution has, so far, stayed summarizable — no fork, no memory
/// action, no fresh symbol. Windows nest with the call stack; any
/// footprint escape poisons every open window at once (the escape is
/// inside all of them).
#[derive(Clone, Debug)]
struct CallProbe {
    /// Stack depth of the frame this window belongs to (matched against
    /// the depth the engine reports at `Return`).
    depth: usize,
    callee: Ident,
    /// The call's evaluated arguments (interned; summaries require exact
    /// term identity at application).
    args: Vec<Expr>,
    /// The path condition at call entry. Its conjunct count marks where
    /// the callee's deltas start; the condition itself becomes the
    /// summary's entry condition on harvest. Persistent representation:
    /// the clone is O(1).
    entry_pc: PathCondition,
}

/// A symbolic variable store `ρ̂ : X ⇀ Ê`.
pub type SymStore = BTreeMap<Ident, Expr>;

/// The store handle threaded through the interpreter: copy-on-write
/// behind an [`Arc`], so the per-branch state clones and per-call frame
/// saves of symbolic execution are O(1) refcount bumps. Straight-line
/// writes mutate in place (`Arc::make_mut`) and pay one map clone only on
/// the first write after a snapshot — and error/vanish branches, which
/// never write, pay nothing.
pub type SharedSymStore = Arc<SymStore>;

/// A symbolic GIL state `⟨µ̂, ρ̂, ξ̂, π̂⟩` over symbolic memory model `M`.
#[derive(Clone, Debug)]
pub struct SymbolicState<M> {
    /// The language symbolic memory `µ̂`.
    pub memory: M,
    store: SharedSymStore,
    alloc: SymAllocator,
    /// The path condition `π̂`.
    pub pc: PathCondition,
    solver: Arc<Solver>,
    /// Open summary-harvest windows, innermost last. Empty whenever the
    /// solver's summary store is disarmed (the hooks gate on it), and
    /// deliberately not checkpointed — windows open across a crash are
    /// simply not harvested on resume.
    probes: Vec<CallProbe>,
}

impl<M: SymbolicMemory> SymbolicState<M> {
    /// A state with empty memory, store and path condition.
    pub fn new(solver: Arc<Solver>) -> Self {
        SymbolicState {
            memory: M::default(),
            store: SharedSymStore::default(),
            alloc: SymAllocator::new(),
            pc: PathCondition::new(),
            solver,
            probes: Vec::new(),
        }
    }

    /// A state over an explicit initial memory.
    pub fn with_memory(solver: Arc<Solver>, memory: M) -> Self {
        SymbolicState {
            memory,
            store: SharedSymStore::default(),
            alloc: SymAllocator::new(),
            pc: PathCondition::new(),
            solver,
            probes: Vec::new(),
        }
    }

    /// The solver handle shared by this state.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// The allocator record (inspectable; used for concrete replay).
    pub fn alloc(&self) -> &SymAllocator {
        &self.alloc
    }

    /// Conjoins a constraint onto the path condition without checking
    /// satisfiability (used by harnesses encoding preconditions).
    pub fn assume_unchecked(&mut self, e: Expr) {
        // A harness-injected assumption inside a call window is not part
        // of the callee's own effect: poison rather than mis-record it.
        self.poison_probes();
        let e = self.solver.simplify(&self.pc, &e);
        self.pc.push(e);
    }

    /// Shared tail of [`GilState::branch_on`] and
    /// [`GilState::guard_code`] on the symbolic-guard path: summary
    /// windows survive a branch only when it was a *proven* one-sided
    /// decision — exactly one side alive with an exact `Sat` verdict (the
    /// dead side being proven `Unsat` by its elimination). A fork, or a
    /// survivor kept only on an `Unknown` verdict, poisons every open
    /// window in every surviving state: the recorded deltas would not be
    /// the unique proven continuation under the entry condition.
    fn prune_probes_after_branch(out: &mut [(Self, bool)], v_then: SatResult, v_else: SatResult) {
        match out {
            [] => {}
            [(st, taken)] => {
                let sole = if *taken { v_then } else { v_else };
                if sole != SatResult::Sat {
                    st.poison_probes();
                }
            }
            many => {
                for (st, _) in many.iter_mut() {
                    st.poison_probes();
                }
            }
        }
    }

    /// Invalidates every open summary-harvest window (a footprint escape:
    /// fork, memory action, fresh symbol, or external pc mutation
    /// happened inside all of them). No-cost when no window is open.
    fn poison_probes(&mut self) {
        if !self.probes.is_empty() {
            let n = self.probes.len() as u64;
            self.probes.clear();
            self.solver.summaries().note_escaped(n);
        }
    }

    /// The shared body of [`GilState::execute_action`] and
    /// [`GilState::execute_action_coded`]: timing, journaling, and branch
    /// post-processing are identical; only the memory dispatch differs.
    fn run_action(
        self,
        name: &str,
        arg: Expr,
        code: Option<u16>,
    ) -> Vec<(Self, Result<Expr, Expr>)> {
        let journal_on = self.solver.journal_enabled();
        let timer = (journal_on
            || TL_ACTION_SAMPLE.with(|c| {
                let n = c.get().wrapping_add(1);
                c.set(n);
                n & (ACTION_SAMPLE - 1) == 0
            }))
        .then(std::time::Instant::now);
        let branches = match code {
            Some(k) => self
                .memory
                .execute_action_coded(k, name, &arg, &self.pc, &self.solver),
            None => self
                .memory
                .execute_action(name, &arg, &self.pc, &self.solver),
        };
        if let Some(started) = timer {
            let micros = started.elapsed().as_micros() as u64;
            action_micros_histogram().record(micros);
            if journal_on {
                self.solver.journal().record_shared(Event::ActionExec {
                    lang: M::language(),
                    action: name.to_string(),
                    branches: branches.len() as u32,
                    micros,
                });
            }
        }
        let mut out = Vec::with_capacity(branches.len());
        let n = branches.len();
        let mut this = Some(self);
        for (i, b) in branches.into_iter().enumerate() {
            // The last branch takes the state by move — the common
            // single-branch action never pays a state clone.
            let mut st = if i + 1 == n {
                this.take()
                    .expect("state consumed once, on the last branch")
            } else {
                this.as_ref()
                    .expect("state live until the last branch")
                    .clone()
            };
            st.memory = b.memory;
            // A memory action is a heap-footprint escape on every branch:
            // a summary replays no memory effect, so no window spanning
            // an action may be harvested.
            st.poison_probes();
            let constraint = st.solver.simplify(&st.pc, &b.constraint);
            if constraint.as_bool() == Some(false) {
                continue;
            }
            st.pc.push(constraint);
            out.push((st, b.outcome));
        }
        out
    }
}

impl<M: SymbolicMemory> GilState for SymbolicState<M> {
    type V = Expr;
    type Store = SharedSymStore;

    fn eval(&self, e: &Expr) -> Result<Expr, Expr> {
        // Substitute program variables by their store bindings; an unbound
        // variable is an evaluation error as in the concrete semantics.
        // Binding lookups clone the stored expression, which is a refcount
        // bump under the interned representation, and `subst` shares every
        // untouched subtree, so evaluation never deep-copies terms.
        let unbound = std::cell::RefCell::new(None);
        let substituted = e.subst(&|sub| match sub {
            Expr::PVar(x) => match self.store.get(x.as_ref() as &str) {
                Some(bound) => Some(bound.clone()),
                None => {
                    unbound.borrow_mut().get_or_insert_with(|| x.clone());
                    None
                }
            },
            _ => None,
        });
        if let Some(x) = unbound.into_inner() {
            return Err(Expr::str(format!("unbound variable {x}")));
        }
        Ok(self.solver.simplify(&self.pc, &substituted))
    }

    fn set_var(&mut self, x: &Ident, v: Expr) {
        Arc::make_mut(&mut self.store).insert(x.clone(), v);
    }

    fn store(&self) -> &SharedSymStore {
        &self.store
    }

    fn set_store(&mut self, store: SharedSymStore) {
        self.store = store;
    }

    fn make_store(&self, params: &[Ident], args: Vec<Expr>) -> SharedSymStore {
        Arc::new(params.iter().cloned().zip(args).collect())
    }

    fn resolve_proc(&self, v: &Expr) -> Result<Ident, Expr> {
        match v {
            Expr::Val(Value::Proc(f)) => Ok(f.clone()),
            Expr::Val(Value::Str(s)) => Ok(s.clone()),
            other => Err(Expr::str(format!(
                "cannot call unresolved procedure value {other}"
            ))),
        }
    }

    fn branch_on(&self, e: &Expr) -> Result<Vec<(Self, bool)>, Expr> {
        let guard = self.eval(e)?;
        // Literal guards do not branch and add nothing to the path
        // condition (mirrors the concrete rule exactly).
        if let Some(b) = guard.as_bool() {
            return Ok(vec![(self.clone(), b)]);
        }
        let neg = self.solver.simplify(&self.pc, &guard.clone().not());
        let mut out = Vec::with_capacity(2);
        // Each branch *adopts* the extended condition the solver actually
        // checked: pushing the guard onto a fresh clone would mint a chain
        // node with an empty context slot and strand the solve context the
        // query just froze (incremental solving, `DESIGN.md` §12).
        let (v_then, pc_then) = self.solver.sat_assume(&self.pc, &guard);
        if v_then.possibly_sat() {
            let mut st = self.clone();
            st.pc = pc_then;
            out.push((st, true));
        }
        let (v_else, pc_else) = self.solver.sat_assume(&self.pc, &neg);
        if v_else.possibly_sat() {
            let mut st = self.clone();
            st.pc = pc_else;
            out.push((st, false));
        }
        Self::prune_probes_after_branch(&mut out, v_then, v_else);
        Ok(out)
    }

    fn fresh_usym(&mut self, site: u32) -> Expr {
        // Splicing a summary skips the callee's allocator increments, so
        // a window spanning an allocation can never be harvested.
        self.poison_probes();
        Expr::Val(Value::Sym(self.alloc.alloc_usym(site)))
    }

    fn fresh_isym(&mut self, site: u32) -> Expr {
        self.poison_probes();
        Expr::LVar(self.alloc.alloc_isym(site))
    }

    fn execute_action(self, name: &str, arg: Expr) -> Vec<(Self, Result<Expr, Expr>)> {
        self.run_action(name, arg, None)
    }

    fn error_value(&self, msg: &str) -> Expr {
        Expr::str(msg)
    }

    fn eval_code(&self, code: &ExprCode, scratch: &mut EvalScratch) -> Result<Expr, Expr> {
        match code.kind() {
            // `simplify` is the identity on literals in every solver tier,
            // so a literal site skips both the substitution walk and the
            // simplifier call.
            ExprKind::Lit(_) => Ok(code.source().clone()),
            // No program variables: substitution is the identity (logical
            // variables are *kept* symbolically), but simplification may
            // still depend on the path condition's typing environment.
            ExprKind::Closed(_) => Ok(self.solver.simplify(&self.pc, code.source())),
            ExprKind::Var(x) => match self.store.get(x.as_ref() as &str) {
                // `simplify` is the identity on literals and variables in
                // every tier; the call (and its memo probe) is elided.
                Some(bound @ (Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_))) => Ok(bound.clone()),
                Some(bound) => Ok(self.solver.simplify(&self.pc, bound)),
                None => Err(Expr::str(format!("unbound variable {x}"))),
            },
            // Rebuild exactly what `Expr::subst` would: a fresh interned
            // term for the substituted variable side, the original term
            // (shared) for the literal side — then one root simplify.
            ExprKind::Bin1 {
                op,
                var,
                lit,
                lit_term,
                var_on_left,
                ..
            } => match self.store.get(var.as_ref() as &str) {
                // Both sides literal: every tier constant-folds via
                // `eval_binop` and returns the residual node on failure
                // *before* any other rewrite, so the fold is computed
                // here directly — no interning, no memo probe.
                Some(Expr::Val(bv)) => {
                    let (a, b) = if *var_on_left { (bv, lit) } else { (lit, bv) };
                    match gillian_gil::ops::eval_binop(*op, a, b) {
                        Ok(f) => Ok(Expr::Val(f)),
                        Err(_) => {
                            let sub: Term = Expr::Val(bv.clone()).into();
                            Ok(if *var_on_left {
                                Expr::Bin(*op, sub, lit_term.clone())
                            } else {
                                Expr::Bin(*op, lit_term.clone(), sub)
                            })
                        }
                    }
                }
                Some(bound) => {
                    let sub: Term = bound.clone().into();
                    let e = if *var_on_left {
                        Expr::Bin(*op, sub, lit_term.clone())
                    } else {
                        Expr::Bin(*op, lit_term.clone(), sub)
                    };
                    Ok(self.solver.simplify(&self.pc, &e))
                }
                None => Err(Expr::str(format!("unbound variable {var}"))),
            },
            // The general case runs the register program symbolically:
            // literal subresults fold in value space (no substitution
            // walk, no interning of intermediate nodes), symbolic parts
            // rebuild residual nodes, and one root simplify normalizes —
            // `RegProg::run_symbolic` documents why the result matches
            // `simplify(pc, subst(e))` for every tier.
            ExprKind::Reg(rp) => {
                let e = rp
                    .run_symbolic(|x| self.store.get(x.as_ref() as &str).cloned(), scratch)
                    .map_err(|x| Expr::str(format!("unbound variable {x}")))?;
                // Fully folded results are already in `simplify`-normal
                // form (identity on literals/variables in every tier).
                if matches!(e, Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_)) {
                    return Ok(e);
                }
                Ok(self.solver.simplify(&self.pc, &e))
            }
        }
    }

    fn guard_code(&self, code: &ExprCode, scratch: &mut EvalScratch) -> GuardEval<Self> {
        let guard = match self.eval_code(code, scratch) {
            Ok(g) => g,
            Err(v) => return GuardEval::Fail(v),
        };
        // A literal guard neither forks nor extends the path condition
        // (`branch_on` clones the state for its single branch; `Take`
        // elides that clone).
        if let Some(b) = guard.as_bool() {
            return GuardEval::Take(b);
        }
        let neg = self.solver.simplify(&self.pc, &guard.clone().not());
        let mut out = Vec::with_capacity(2);
        // Identical to `branch_on`: each branch adopts the extended
        // condition the solver actually checked (`DESIGN.md` §12).
        let (v_then, pc_then) = self.solver.sat_assume(&self.pc, &guard);
        if v_then.possibly_sat() {
            let mut st = self.clone();
            st.pc = pc_then;
            out.push((st, true));
        }
        let (v_else, pc_else) = self.solver.sat_assume(&self.pc, &neg);
        if v_else.possibly_sat() {
            let mut st = self.clone();
            st.pc = pc_else;
            out.push((st, false));
        }
        Self::prune_probes_after_branch(&mut out, v_then, v_else);
        GuardEval::Fork(out)
    }

    fn action_code(&self, name: &str) -> Option<u16> {
        self.memory.action_code(name)
    }

    fn execute_action_coded(
        self,
        code: u16,
        name: &str,
        arg: Expr,
    ) -> Vec<(Self, Result<Expr, Expr>)> {
        self.run_action(name, arg, Some(code))
    }

    fn install_interrupt(&self, interrupt: Interrupt) {
        self.solver.set_interrupt(interrupt);
    }

    fn clear_interrupt(&self) {
        self.solver.clear_interrupt();
    }

    fn install_journal(&self, journal: Journal) {
        self.solver.set_journal(journal);
    }

    fn clear_journal(&self) {
        self.solver.clear_journal();
    }

    fn unknown_verdicts(&self) -> u64 {
        self.solver.stats().sat_unknowns
    }

    fn solver_reuse(&self) -> (u64, u64) {
        let stats = self.solver.stats();
        (stats.incremental_hits, stats.implication_hits)
    }

    /// Layout: store, allocator record, path condition, memory. The
    /// solver is process infrastructure and comes back from [`StateCtx`];
    /// its caches are deliberately not checkpointed.
    fn save_state(&self, enc: &mut Encoder, out: &mut Vec<u8>) -> Result<(), StateIoError> {
        Self::save_store(&self.store, enc, out)?;
        let (next_sym, next_lvar, isym_trace) = self.alloc.parts();
        serial::put_u64(out, next_sym);
        serial::put_u64(out, next_lvar);
        serial::put_len(out, isym_trace.len(), "isym trace")?;
        for (site, lv) in isym_trace {
            serial::put_u32(out, *site);
            serial::put_u64(out, lv.0);
        }
        self.pc.save(enc, out)?;
        self.memory.save(enc, out)
    }

    fn load_state(
        ctx: &StateCtx,
        dec: &Decoder,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, StateIoError> {
        let store = Self::load_store(ctx, dec, r)?;
        let next_sym = r.u64()?;
        let next_lvar = r.u64()?;
        let n = r.count()?;
        let mut isym_trace = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let site = r.u32()?;
            let lv = LVar(r.u64()?);
            isym_trace.push((site, lv));
        }
        let pc = PathCondition::load(dec, r)?;
        let memory = M::load(dec, r)?;
        Ok(SymbolicState {
            memory,
            store,
            alloc: SymAllocator::from_parts(next_sym, next_lvar, isym_trace),
            pc,
            solver: ctx.solver.clone(),
            probes: Vec::new(),
        })
    }

    fn save_store(
        store: &SharedSymStore,
        enc: &mut Encoder,
        out: &mut Vec<u8>,
    ) -> Result<(), StateIoError> {
        serial::put_len(out, store.len(), "symbolic store")?;
        // BTreeMap iteration is canonical, so equal stores encode equally.
        for (x, e) in store.iter() {
            serial::put_str(out, x)?;
            enc.write_expr(out, e)?;
        }
        Ok(())
    }

    fn load_store(
        _ctx: &StateCtx,
        dec: &Decoder,
        r: &mut ByteReader<'_>,
    ) -> Result<SharedSymStore, StateIoError> {
        let n = r.count()?;
        let mut store = SymStore::new();
        for _ in 0..n {
            let x = Ident::from(r.str()?);
            let e = dec.read_expr(r)?;
            store.insert(x, e);
        }
        Ok(Arc::new(store))
    }

    fn install_fault_probe(&self, probe: FaultProbe) {
        self.solver.set_fault_probe(probe);
    }

    fn clear_fault_probe(&self) {
        self.solver.clear_fault_probe();
    }

    fn configure_summaries(&self, prog: &Prog, enabled: bool) {
        let store = self.solver.summaries();
        if enabled {
            // Warm start: merge the persisted store (when configured)
            // before arming. A missing or corrupt file degrades to cold
            // execution — summaries are a cache, never a dependency.
            if let Some(path) = summary::file_from_env() {
                let _ = store.load_file(&path);
            }
            store.arm(summary::program_fingerprints(prog));
        } else {
            if store.armed() {
                if let Some(path) = summary::file_from_env() {
                    let _ = store.save_file(&path);
                }
            }
            store.disarm();
        }
    }

    fn summary_apply(&mut self, callee: &Ident, args: &[Expr]) -> Option<Expr> {
        let store = self.solver.summaries();
        if !store.armed() {
            return None;
        }
        store.try_apply(callee, args, &mut self.pc, &self.solver)
    }

    fn summary_call(&mut self, callee: &Ident, args: &[Expr], depth: usize) {
        if !self.solver.summaries().armed() || args.len() > summary::MAX_ARGS {
            return;
        }
        self.probes.push(CallProbe {
            depth,
            callee: callee.clone(),
            args: args.to_vec(),
            entry_pc: self.pc.clone(),
        });
    }

    fn summary_return(&mut self, ret: &Expr, depth: usize) {
        if self.probes.is_empty() {
            return;
        }
        // Windows deeper than this return belong to frames that no longer
        // exist (e.g. a checkpoint restored mid-call); drop them.
        while self.probes.last().is_some_and(|p| p.depth > depth) {
            self.probes.pop();
        }
        let Some(probe) = self.probes.last() else {
            return;
        };
        if probe.depth != depth {
            return;
        }
        let probe = self
            .probes
            .pop()
            .expect("probe for this depth checked just above");
        let entry_len = probe.entry_pc.len();
        let conjuncts = self.pc.conjuncts();
        if conjuncts.len() < entry_len {
            return;
        }
        // Everything the callee window added, in push order: with the
        // window clean, these are the callee's entire effect beyond the
        // return value.
        let deltas = conjuncts[entry_len..].to_vec();
        self.solver.summaries().record(
            &probe.callee,
            &probe.args,
            probe.entry_pc,
            deltas,
            ret.clone(),
        );
    }

    fn summary_stats(&self) -> (u64, u64) {
        let stats = self.solver.summaries().stats();
        (stats.recorded, stats.applied)
    }
}

impl<M: SymbolicMemory> Restrict for SymbolicState<M> {
    /// State restriction of the lifted model (Def. 3.9):
    /// `⟨µ̂, ρ̂, ξ̂, π̂⟩ ⇃ ⟨-, -, ξ̂′, π̂′⟩ = ⟨µ̂, ρ̂, ξ̂ ⇃ ξ̂′, π̂ ∧ π̂′⟩`.
    fn restrict(&self, other: &Self) -> Self {
        let mut st = self.clone();
        // Restriction rewrites the pc from outside any call window.
        st.poison_probes();
        st.alloc = st.alloc.restrict(&other.alloc);
        st.pc.extend(&other.pc);
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::SymBranch;
    use gillian_gil::LVar;

    /// A toy symbolic memory: a single symbolic cell with `set`/`get`.
    #[derive(Clone, Debug, Default)]
    struct Cell(Option<Expr>);

    impl SymbolicMemory for Cell {
        fn execute_action(
            &self,
            name: &str,
            arg: &Expr,
            _pc: &PathCondition,
            _solver: &Solver,
        ) -> Vec<SymBranch<Self>> {
            match name {
                "set" => vec![SymBranch::ok(Cell(Some(arg.clone())), Expr::tt())],
                "get" => match &self.0 {
                    Some(e) => vec![SymBranch::ok(self.clone(), e.clone())],
                    None => vec![SymBranch {
                        memory: self.clone(),
                        outcome: Err(Expr::str("empty cell")),
                        constraint: Expr::tt(),
                    }],
                },
                _ => vec![],
            }
        }
    }

    fn state() -> SymbolicState<Cell> {
        SymbolicState::new(Arc::new(Solver::optimized()))
    }

    #[test]
    fn eval_substitutes_and_simplifies() {
        let mut st = state();
        st.set_var(&"x".into(), Expr::int(2));
        let v = st.eval(&Expr::pvar("x").add(Expr::int(3))).unwrap();
        assert_eq!(v, Expr::int(5));
        assert!(st.eval(&Expr::pvar("missing")).is_err());
    }

    #[test]
    fn eval_shares_bound_expressions_without_deep_copies() {
        use gillian_gil::InternStats;
        let mut st = state();
        // A ~800-node bound expression: a left-leaning sum of distinct
        // logical variables the simplifier cannot fold.
        let mut big = st.fresh_isym(0);
        for _ in 0..400 {
            big = big.add(st.fresh_isym(0));
        }
        st.set_var(&"x".into(), big);
        let warm = st.eval(&Expr::pvar("x")).unwrap();
        // A second lookup of the same binding must be pure sharing: zero
        // nodes minted (no deep copy, no rebuild), and interner traffic
        // bounded by a small constant (the simplifier memo key), not by
        // the node count of the bound expression.
        let before = InternStats::thread_snapshot();
        let again = st.eval(&Expr::pvar("x")).unwrap();
        let delta = InternStats::thread_snapshot().since(&before);
        assert_eq!(again, warm);
        assert_eq!(delta.mints, 0, "eval must not rebuild the bound expression");
        assert!(
            delta.hits <= 4,
            "eval should be O(1) interner traffic, got {} hits",
            delta.hits
        );
    }

    #[test]
    fn branch_on_symbolic_guard_forks() {
        let mut st = state();
        let x = st.fresh_isym(0);
        st.set_var(&"x".into(), x.clone());
        let branches = st
            .clone()
            .branch_on(&Expr::pvar("x").lt(Expr::int(5)))
            .unwrap();
        assert_eq!(branches.len(), 2, "both branches feasible");
        for (s, taken) in &branches {
            let expected = if *taken {
                x.clone().lt(Expr::int(5))
            } else {
                Expr::int(5).le(x.clone())
            };
            assert!(
                s.pc.conjuncts().contains(&expected),
                "pc {} missing {expected}",
                s.pc
            );
        }
    }

    #[test]
    fn branch_on_prunes_infeasible() {
        let mut st = state();
        let x = st.fresh_isym(0);
        st.assume_unchecked(x.clone().eq(Expr::int(3)));
        st.set_var(&"x".into(), x);
        let branches = st.branch_on(&Expr::pvar("x").lt(Expr::int(5))).unwrap();
        assert_eq!(branches.len(), 1);
        assert!(branches[0].1, "only the true branch survives");
    }

    #[test]
    fn literal_guard_does_not_extend_pc() {
        let st = state();
        let branches = st.branch_on(&Expr::tt()).unwrap();
        assert_eq!(branches.len(), 1);
        assert!(branches[0].0.pc.is_empty());
    }

    #[test]
    fn actions_thread_memory_and_errors() {
        let st = state();
        let branches = st.execute_action("set", Expr::int(7));
        let (st, out) = branches.into_iter().next().unwrap();
        assert!(out.is_ok());
        let (_, got) = st
            .execute_action("get", Expr::nil())
            .into_iter()
            .next()
            .unwrap();
        assert_eq!(got, Ok(Expr::int(7)));
        let empty = state();
        let (_, e) = empty
            .execute_action("get", Expr::nil())
            .into_iter()
            .next()
            .unwrap();
        assert!(e.is_err());
    }

    #[test]
    fn isym_mints_distinct_lvars() {
        let mut st = state();
        assert_eq!(st.fresh_isym(0), Expr::LVar(LVar(0)));
        assert_eq!(st.fresh_isym(0), Expr::LVar(LVar(1)));
    }

    #[test]
    fn restriction_conjoins_pc_and_merges_alloc() {
        let mut a = state();
        let mut b = state();
        let x = b.fresh_isym(0);
        b.assume_unchecked(x.clone().eq(Expr::int(1)));
        let r = a.restrict(&b);
        assert!(r.pc.conjuncts().contains(&x.eq(Expr::int(1))));
        // Idempotence on states (pc set union semantics).
        let _ = a.fresh_isym(0);
        let ra = a.restrict(&a);
        assert_eq!(ra.pc, a.pc);
    }
}
