//! Built-in fresh-value allocators (paper Def. 2.2).
//!
//! "The generation of fresh values is a common source of technical clutter
//! … Gillian takes care of this issue for the tool developer by having
//! built-in fresh-value allocators."
//!
//! An allocator record `ξ` tracks what has been allocated; `alloc(j)`
//! takes an allocation site `j` and yields a fresh value from the relevant
//! range:
//!
//! - `uSym_j` allocates from the uninterpreted symbols `U`, in both the
//!   concrete and the symbolic semantics;
//! - `iSym_j` allocates an *arbitrary value* concretely and a fresh
//!   *logical variable* symbolically (the standard interpretation of
//!   logical variables, §3.2).
//!
//! For the soundness-directed concrete replays of §3 (restriction directs
//! the concrete execution), [`ConcAllocator`] can be *scripted*: the
//! symbolic run records its `iSym` allocations in order
//! ([`SymAllocator::isym_trace`]); composing that trace with a model `ε`
//! yields the exact sequence of concrete values that steers the concrete
//! execution down the symbolic path.

use crate::restriction::Restrict;
use gillian_gil::{LVar, Sym, Value};
use std::collections::VecDeque;

/// The symbolic allocator: mints uninterpreted symbols and logical
/// variables, recording the `iSym` allocation order for replay.
#[derive(Clone, Debug, PartialEq)]
pub struct SymAllocator {
    next_sym: u64,
    next_lvar: u64,
    isym_trace: Vec<(u32, LVar)>,
}

impl Default for SymAllocator {
    fn default() -> Self {
        SymAllocator {
            next_sym: Sym::FIRST_FRESH,
            next_lvar: 0,
            isym_trace: Vec::new(),
        }
    }
}

impl SymAllocator {
    /// Creates a fresh allocator record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh uninterpreted symbol at site `j`.
    pub fn alloc_usym(&mut self, _site: u32) -> Sym {
        let s = Sym(self.next_sym);
        self.next_sym += 1;
        s
    }

    /// Allocates a fresh logical variable at site `j`, recording it in the
    /// replay trace.
    pub fn alloc_isym(&mut self, site: u32) -> LVar {
        let x = LVar(self.next_lvar);
        self.next_lvar += 1;
        self.isym_trace.push((site, x));
        x
    }

    /// The `iSym` allocations made so far, in order, with their sites.
    pub fn isym_trace(&self) -> &[(u32, LVar)] {
        &self.isym_trace
    }

    /// Pre-reserves logical-variable ids below `n` (used when a harness
    /// mints lvars outside the allocator, e.g. for preconditions).
    pub fn reserve_lvars(&mut self, n: u64) {
        self.next_lvar = self.next_lvar.max(n);
    }

    /// The full allocation record `(next_sym, next_lvar, isym_trace)`, for
    /// checkpoint serialization. Counters must survive a checkpoint
    /// round-trip exactly: a resumed path that re-minted an already-used
    /// symbol would alias two distinct heap locations.
    pub fn parts(&self) -> (u64, u64, &[(u32, LVar)]) {
        (self.next_sym, self.next_lvar, &self.isym_trace)
    }

    /// Rebuilds an allocator record from [`SymAllocator::parts`].
    pub fn from_parts(next_sym: u64, next_lvar: u64, isym_trace: Vec<(u32, LVar)>) -> Self {
        SymAllocator {
            next_sym,
            next_lvar,
            isym_trace,
        }
    }
}

impl Restrict for SymAllocator {
    /// `ξ₁ ⇃ ξ₂` merges allocation knowledge: counters advance to the
    /// maximum, and the trace of the *more advanced* record wins (it is an
    /// extension of the other along the same path).
    fn restrict(&self, other: &Self) -> Self {
        let trace = if other.isym_trace.len() > self.isym_trace.len() {
            other.isym_trace.clone()
        } else {
            self.isym_trace.clone()
        };
        SymAllocator {
            next_sym: self.next_sym.max(other.next_sym),
            next_lvar: self.next_lvar.max(other.next_lvar),
            isym_trace: trace,
        }
    }
}

/// The concrete allocator: mints uninterpreted symbols; `iSym` yields
/// either the next scripted value (replay mode) or a default.
#[derive(Clone, Debug, PartialEq)]
pub struct ConcAllocator {
    next_sym: u64,
    script: VecDeque<Value>,
}

impl Default for ConcAllocator {
    fn default() -> Self {
        ConcAllocator {
            next_sym: Sym::FIRST_FRESH,
            script: VecDeque::new(),
        }
    }
}

impl ConcAllocator {
    /// A free-running allocator (`iSym` yields `0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scripted allocator: `iSym` pops values from `script` in order —
    /// the restriction-directed execution of paper §3.
    pub fn scripted(script: impl IntoIterator<Item = Value>) -> Self {
        ConcAllocator {
            next_sym: Sym::FIRST_FRESH,
            script: script.into_iter().collect(),
        }
    }

    /// Allocates a fresh uninterpreted symbol — the same sequence the
    /// symbolic allocator produces, so locations coincide across runs.
    pub fn alloc_usym(&mut self, _site: u32) -> Sym {
        let s = Sym(self.next_sym);
        self.next_sym += 1;
        s
    }

    /// Produces the `iSym` value: scripted if available, `Int(0)` otherwise
    /// (any value is a valid instance of "arbitrary").
    pub fn alloc_isym(&mut self, _site: u32) -> Value {
        self.script.pop_front().unwrap_or(Value::Int(0))
    }

    /// Values still queued in the script.
    pub fn remaining_script(&self) -> usize {
        self.script.len()
    }
}

impl Restrict for ConcAllocator {
    fn restrict(&self, other: &Self) -> Self {
        ConcAllocator {
            next_sym: self.next_sym.max(other.next_sym),
            script: self.script.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usym_sequences_coincide_between_concrete_and_symbolic() {
        let mut s = SymAllocator::new();
        let mut c = ConcAllocator::new();
        for site in 0..5 {
            assert_eq!(s.alloc_usym(site), c.alloc_usym(site));
        }
    }

    #[test]
    fn usyms_are_fresh_and_above_reserved() {
        let mut a = SymAllocator::new();
        let s1 = a.alloc_usym(0);
        let s2 = a.alloc_usym(0);
        assert_ne!(s1, s2);
        assert!(s1.0 >= Sym::FIRST_FRESH);
    }

    #[test]
    fn isym_trace_records_order() {
        let mut a = SymAllocator::new();
        let x0 = a.alloc_isym(3);
        let x1 = a.alloc_isym(7);
        assert_eq!(a.isym_trace(), &[(3, x0), (7, x1)]);
        assert_ne!(x0, x1);
    }

    #[test]
    fn scripted_allocator_replays_in_order() {
        let mut c = ConcAllocator::scripted([Value::Int(9), Value::str("s")]);
        assert_eq!(c.alloc_isym(0), Value::Int(9));
        assert_eq!(c.alloc_isym(0), Value::str("s"));
        assert_eq!(c.alloc_isym(0), Value::Int(0), "falls back to default");
    }

    #[test]
    fn restriction_laws_on_allocators() {
        let mut a = SymAllocator::new();
        let _ = a.alloc_usym(0);
        let mut b = a.clone();
        let _ = b.alloc_usym(0);
        let _ = b.alloc_isym(1);
        // Idempotence.
        assert_eq!(a.restrict(&a), a);
        // Right commutativity.
        let mut c = b.clone();
        let _ = c.alloc_isym(2);
        assert_eq!(a.restrict(&b).restrict(&c), a.restrict(&c).restrict(&b));
        // Weakening: a⇃b⇃c == a⇃b (c adds nothing beyond b) case.
        let ab = a.restrict(&b);
        assert_eq!(ab.restrict(&a), ab);
        // Monotonicity w.r.t. allocation: allocating refines the record.
        let mut d = b.clone();
        let _ = d.alloc_usym(0);
        assert_eq!(d.restrict(&b), d);
    }
}
