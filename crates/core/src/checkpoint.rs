//! Crash-safe checkpointing of the exploration frontier (`DESIGN.md` §14).
//!
//! A checkpoint is a single, self-contained, versioned binary file holding
//! everything needed to *resume* an interrupted exploration run on a fresh
//! process: the pending frontier (configurations with their call stacks,
//! stores, path conditions and branch traces), summaries of the paths
//! already completed, and the run's budget/diagnostic accounting. Nothing
//! else — solver SAT caches, simplifier memos and the term interner are
//! deliberately **not** checkpointed: they are process-local performance
//! caches that a resumed run rebuilds lazily, and serializing them would
//! couple the format to cache internals without changing any verdict.
//!
//! ## Intern-id remapping
//!
//! Interned [`Term`](gillian_gil::Term) ids are mint-order dependent, so a
//! checkpoint never stores them as identity. Instead the whole file shares
//! one post-order term table ([`gillian_gil::serial`]): children appear
//! strictly before parents and every reference is a table slot. Loading
//! re-interns each entry in order, so pointer-equality (and everything
//! keyed on it — path-condition keys, simplifier memos) is rebuilt
//! correctly in the new process, with sharing preserved across the whole
//! frontier.
//!
//! ## File layout (version 2)
//!
//! ```text
//! magic "GILCKPT\0"           8 bytes
//! version                     u32 (little-endian)
//! checksum                    u64 FNV-1a over everything after this field
//! --- checksummed payload ---
//! strategy                    u8 (0 = DFS, 1 = BFS)
//! entry procedure             str
//! term table                  post-order DAG (serial::Encoder)
//! total_cmds                  u64
//! truncated                   u8
//! dropped_paths               u64
//! diagnostics                 count × (name str, u64)   -- forward-tolerant
//! completed paths             count × (trace, outcome str, cmds u64)
//! frontier                    count × FrontierItem
//! ```
//!
//! Version 2 (the bytecode backend) extends each `FrontierItem` with its
//! bytecode resume point: the program counter (`u64`, always equal to the
//! command index — compiled blocks are per-command, so `pc == idx` into
//! the source body) and the count of live evaluation registers (`u32`,
//! always `0`: checkpoints are only taken at command boundaries, where
//! every transient register is dead). Both are validated on load so a v2
//! reader rejects a file that claims mid-expression state it cannot
//! rebuild. Version 1 files are rejected with [`ResumeError::BadVersion`];
//! there is no silent migration, because a silently "upgraded" frontier
//! would erase the format's only cross-version honesty guarantee.
//!
//! The ordering of the header checks is deliberate: a wrong magic reports
//! [`ResumeError::BadMagic`], a patched version byte reports a clean
//! [`ResumeError::BadVersion`] (the checksum does not cover the version, so
//! the report names the real problem), and any flipped payload byte reports
//! [`ResumeError::ChecksumMismatch`] before a single structure is parsed.
//! Loading never panics on untrusted bytes.
//!
//! Writes are atomic: the file is written to `<path>.tmp` and renamed over
//! `<path>`, so a crash mid-write leaves the previous checkpoint intact.

use crate::explore::{ExploreDiagnostics, SearchStrategy};
use crate::interp::{Config, Frame};
use crate::state::GilState;
use gillian_gil::serial::{self, ByteReader, Decoder, Encoder, WireError};
use gillian_gil::Ident;
use gillian_solver::Solver;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// The checkpoint file magic.
pub const MAGIC: &[u8; 8] = b"GILCKPT\0";

/// The current checkpoint format version. Version 2 added the bytecode
/// resume point (pc + live-register count) to every frontier item.
pub const VERSION: u32 = 2;

/// When and where the exploration engines write checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// The checkpoint file. Written atomically (tmp file + rename); each
    /// write replaces the previous checkpoint.
    pub path: PathBuf,
    /// Periodic checkpointing: write at most once per this interval,
    /// checked at scheduling points. `None` (the default of
    /// [`CheckpointConfig::at`]) writes only on interruption.
    pub every: Option<Duration>,
    /// Write a final checkpoint when the wall-clock deadline fires, before
    /// pending work is parked as truncated. Default `true`.
    pub on_deadline: bool,
    /// Write a final checkpoint when the run is cancelled. Default `true`.
    pub on_cancel: bool,
}

impl CheckpointConfig {
    /// Checkpoint to `path` on interruption (deadline/cancel/kill) only.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            path: path.into(),
            every: None,
            on_deadline: true,
            on_cancel: true,
        }
    }

    /// This configuration with periodic checkpointing every `every`.
    pub fn with_interval(mut self, every: Duration) -> Self {
        self.every = Some(every);
        self
    }
}

/// Process-local context a state needs to rebuild itself from a
/// checkpoint: the solving machinery is shared infrastructure, not path
/// state, so it is provided by the resuming process rather than stored.
#[derive(Clone, Debug)]
pub struct StateCtx {
    /// The solver resumed states attach to (one per run, as usual).
    pub solver: Arc<Solver>,
}

impl StateCtx {
    /// A context around `solver`.
    pub fn new(solver: Arc<Solver>) -> Self {
        StateCtx { solver }
    }
}

/// Why a state or store could not be serialized or rebuilt.
#[derive(Debug)]
pub enum StateIoError {
    /// The state/store/memory type does not implement checkpoint
    /// serialization (the [`GilState`]/`SymbolicMemory` defaults).
    Unsupported(&'static str),
    /// The serialized form was malformed or truncated.
    Wire(WireError),
}

impl From<WireError> for StateIoError {
    fn from(e: WireError) -> Self {
        StateIoError::Wire(e)
    }
}

impl std::fmt::Display for StateIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateIoError::Unsupported(what) => {
                write!(f, "{what} does not support checkpoint serialization")
            }
            StateIoError::Wire(e) => write!(f, "state serialization: {e}"),
        }
    }
}

impl std::error::Error for StateIoError {}

/// A completed path as recorded in a checkpoint: its schedule-independent
/// branch trace, outcome kind and command count. Final states are *not*
/// checkpointed — a completed path's verdict is its trace + outcome, and
/// its full state can always be regenerated with
/// [`replay_path`](crate::explore::replay_path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSummary {
    /// The branch trace identifying the path.
    pub trace: Vec<u32>,
    /// The outcome kind (`normal`, `error`, `vanished`, `truncated`,
    /// `engine_error`) — stored as a string for version tolerance.
    pub outcome: String,
    /// Commands executed along the path.
    pub cmds: u64,
}

/// One pending unit of exploration work: a configuration, its per-path
/// command count, and its branch trace. This is the worklist element of
/// both exploration engines and the frontier element of a checkpoint.
#[derive(Clone, Debug)]
pub struct FrontierItem<S: GilState> {
    /// The pending configuration.
    pub config: Config<S>,
    /// Commands executed along this path so far.
    pub cmds: u64,
    /// The branch trace: successor index chosen at every branching step.
    pub trace: Vec<u32>,
}

/// Everything a checkpoint file holds.
#[derive(Clone, Debug)]
pub struct CheckpointData<S: GilState> {
    /// The interrupted run's search strategy (resume re-adopts it — a
    /// different order would still be sound but would break
    /// interrupted-then-resumed ≡ uninterrupted accounting).
    pub strategy: SearchStrategy,
    /// The entry procedure of the original run (informational; resumed
    /// work re-starts from explicit configurations, not the entry).
    pub entry: String,
    /// Commands executed before the checkpoint (resume continues the
    /// global budget from here).
    pub total_cmds: u64,
    /// Whether some budget had already truncated the run.
    pub truncated: bool,
    /// Paths already lost to `max_pending`/`max_paths` caps.
    pub dropped_paths: usize,
    /// Diagnostics accumulated before the checkpoint (interner telemetry
    /// excluded — it is process-local).
    pub diagnostics: ExploreDiagnostics,
    /// Paths completed before the checkpoint.
    pub completed: Vec<PathSummary>,
    /// The pending frontier.
    pub frontier: Vec<FrontierItem<S>>,
}

/// A checkpoint write failure.
#[derive(Debug)]
pub enum SaveError {
    /// Filesystem failure (tmp write or rename).
    Io(std::io::Error),
    /// A frontier state/store could not be serialized.
    State(StateIoError),
}

impl From<StateIoError> for SaveError {
    fn from(e: StateIoError) -> Self {
        SaveError::State(e)
    }
}

impl From<WireError> for SaveError {
    fn from(e: WireError) -> Self {
        SaveError::State(StateIoError::Wire(e))
    }
}

impl std::fmt::Display for SaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaveError::Io(e) => write!(f, "checkpoint write: {e}"),
            SaveError::State(e) => write!(f, "checkpoint encode: {e}"),
        }
    }
}

impl std::error::Error for SaveError {}

/// A checkpoint load failure. Every corruption class reports cleanly;
/// loading never panics on untrusted bytes.
#[derive(Debug)]
pub enum ResumeError {
    /// Filesystem failure reading the checkpoint.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not the supported one.
    BadVersion {
        /// The version the file declares.
        found: u32,
        /// The version this build supports.
        expected: u32,
    },
    /// The payload checksum does not match — the file was corrupted or
    /// truncated after the header.
    ChecksumMismatch,
    /// The checksummed payload parsed incorrectly (a format bug or a
    /// checksum collision; includes bad intern-table slots).
    Corrupt(WireError),
    /// A frontier state could not be rebuilt.
    State(StateIoError),
    /// The payload parsed but its contents are inconsistent.
    BadData(&'static str),
}

impl From<WireError> for ResumeError {
    fn from(e: WireError) -> Self {
        ResumeError::Corrupt(e)
    }
}

impl From<StateIoError> for ResumeError {
    fn from(e: StateIoError) -> Self {
        match e {
            StateIoError::Wire(w) => ResumeError::Corrupt(w),
            other => ResumeError::State(other),
        }
    }
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "checkpoint read: {e}"),
            ResumeError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            ResumeError::BadVersion { found, expected } => {
                write!(
                    f,
                    "checkpoint version {found} (this build reads {expected})"
                )
            }
            ResumeError::ChecksumMismatch => write!(f, "checkpoint payload checksum mismatch"),
            ResumeError::Corrupt(e) => write!(f, "checkpoint payload corrupt: {e}"),
            ResumeError::State(e) => write!(f, "checkpoint state: {e}"),
            ResumeError::BadData(what) => write!(f, "checkpoint inconsistent: {what}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// FNV-1a over `bytes` — dependency-free corruption detection (not
/// cryptographic; the threat model is torn writes and bit rot, not
/// adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_trace(out: &mut Vec<u8>, trace: &[u32]) -> Result<(), WireError> {
    serial::put_len(out, trace.len(), "branch trace")?;
    for &t in trace {
        serial::put_u32(out, t);
    }
    Ok(())
}

fn read_trace(r: &mut ByteReader) -> Result<Vec<u32>, WireError> {
    let n = r.count()?;
    let mut trace = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        trace.push(r.u32()?);
    }
    Ok(trace)
}

fn diag_pairs(d: &ExploreDiagnostics) -> [(&'static str, u64); 8] {
    [
        ("deadline_hits", d.deadline_hits as u64),
        ("cancellations", d.cancellations as u64),
        ("engine_errors", d.engine_errors as u64),
        ("unknown_verdicts", d.unknown_verdicts),
        ("incremental_hits", d.incremental_hits),
        ("implication_hits", d.implication_hits),
        ("summaries_recorded", d.summaries_recorded),
        ("summaries_applied", d.summaries_applied),
    ]
}

/// Encodes a checkpoint to bytes (the file contents, header included).
pub fn encode_checkpoint<S: GilState>(data: &CheckpointData<S>) -> Result<Vec<u8>, SaveError> {
    let mut enc = Encoder::new();
    // The body is encoded first so the encoder mints every term slot; the
    // table itself is then written *before* the body in the payload, which
    // is the order the decoder needs (slots resolve before use).
    let mut body = Vec::new();
    serial::put_u64(&mut body, data.total_cmds);
    serial::put_u8(&mut body, data.truncated as u8);
    serial::put_u64(&mut body, data.dropped_paths as u64);
    let pairs = diag_pairs(&data.diagnostics);
    serial::put_len(&mut body, pairs.len(), "diagnostics")?;
    for (name, v) in pairs {
        serial::put_str(&mut body, name)?;
        serial::put_u64(&mut body, v);
    }
    serial::put_len(&mut body, data.completed.len(), "completed paths")?;
    for p in &data.completed {
        put_trace(&mut body, &p.trace)?;
        serial::put_str(&mut body, &p.outcome)?;
        serial::put_u64(&mut body, p.cmds);
    }
    serial::put_len(&mut body, data.frontier.len(), "frontier")?;
    for item in &data.frontier {
        put_trace(&mut body, &item.trace)?;
        serial::put_u64(&mut body, item.cmds);
        serial::put_str(&mut body, &item.config.proc)?;
        serial::put_u64(&mut body, item.config.idx as u64);
        // v2: the bytecode resume point. Compiled blocks are per-command,
        // so the pc is the command index; checkpoints happen only at
        // command boundaries, where no transient register is live.
        serial::put_u64(&mut body, item.config.idx as u64);
        serial::put_u32(&mut body, 0);
        serial::put_len(&mut body, item.config.stack.len(), "call stack")?;
        for frame in &item.config.stack {
            serial::put_str(&mut body, &frame.caller)?;
            serial::put_str(&mut body, &frame.ret_var)?;
            serial::put_u64(&mut body, frame.ret_idx as u64);
            S::save_store(&frame.store, &mut enc, &mut body)?;
        }
        item.config.state.save_state(&mut enc, &mut body)?;
    }

    let mut payload = Vec::new();
    serial::put_u8(
        &mut payload,
        match data.strategy {
            SearchStrategy::Dfs => 0,
            SearchStrategy::Bfs => 1,
        },
    );
    serial::put_str(&mut payload, &data.entry)?;
    enc.write_table(&mut payload)?;
    payload.extend_from_slice(&body);

    let mut out = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
    out.extend_from_slice(MAGIC);
    serial::put_u32(&mut out, VERSION);
    serial::put_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Writes a checkpoint atomically: encode, write to `<path>.tmp`, rename
/// over `path`. Returns the number of bytes written.
///
/// # Errors
///
/// Fails when a frontier state does not support serialization or the
/// filesystem rejects the write; the previous checkpoint at `path` (if
/// any) is left intact in every failure mode.
pub fn save_checkpoint<S: GilState>(
    path: &Path,
    data: &CheckpointData<S>,
) -> Result<u64, SaveError> {
    let bytes = encode_checkpoint(data)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes).map_err(SaveError::Io)?;
    std::fs::rename(&tmp, path).map_err(SaveError::Io)?;
    Ok(bytes.len() as u64)
}

/// Decodes a checkpoint from raw file bytes, rebuilding every frontier
/// state through `ctx` (intern ids are remapped by re-interning the term
/// table; see the module docs).
///
/// # Errors
///
/// Reports the first failing validation layer: magic, then version, then
/// checksum, then structure. Never panics on untrusted bytes.
pub fn decode_checkpoint<S: GilState>(
    bytes: &[u8],
    ctx: &StateCtx,
) -> Result<CheckpointData<S>, ResumeError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(ResumeError::BadMagic);
    }
    let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
    let version = r.u32()?;
    if version != VERSION {
        return Err(ResumeError::BadVersion {
            found: version,
            expected: VERSION,
        });
    }
    let sum = r.u64()?;
    let payload = r.take(r.remaining())?;
    if fnv1a(payload) != sum {
        return Err(ResumeError::ChecksumMismatch);
    }

    let mut r = ByteReader::new(payload);
    let strategy = match r.u8()? {
        0 => SearchStrategy::Dfs,
        1 => SearchStrategy::Bfs,
        tag => {
            return Err(ResumeError::Corrupt(WireError::BadTag {
                what: "search strategy",
                tag,
            }))
        }
    };
    let entry = r.str()?.to_string();
    let dec = Decoder::read_table(&mut r)?;
    let total_cmds = r.u64()?;
    let truncated = r.u8()? != 0;
    let dropped_paths = r.u64()? as usize;
    let mut diagnostics = ExploreDiagnostics::default();
    let n = r.count()?;
    for _ in 0..n {
        let name = r.str()?;
        let v = r.u64()?;
        // Unknown names are skipped: a same-version file never has any,
        // but tolerating them keeps minor additions non-breaking.
        match name {
            "deadline_hits" => diagnostics.deadline_hits = v as usize,
            "cancellations" => diagnostics.cancellations = v as usize,
            "engine_errors" => diagnostics.engine_errors = v as usize,
            "unknown_verdicts" => diagnostics.unknown_verdicts = v,
            "incremental_hits" => diagnostics.incremental_hits = v,
            "implication_hits" => diagnostics.implication_hits = v,
            "summaries_recorded" => diagnostics.summaries_recorded = v,
            "summaries_applied" => diagnostics.summaries_applied = v,
            _ => {}
        }
    }
    let n = r.count()?;
    let mut completed = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let trace = read_trace(&mut r)?;
        let outcome = r.str()?.to_string();
        let cmds = r.u64()?;
        completed.push(PathSummary {
            trace,
            outcome,
            cmds,
        });
    }
    let n = r.count()?;
    let mut frontier = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let trace = read_trace(&mut r)?;
        let cmds = r.u64()?;
        let proc = Ident::from(r.str()?);
        let idx = r.u64()? as usize;
        let pc = r.u64()?;
        let live_regs = r.u32()?;
        if pc != idx as u64 {
            return Err(ResumeError::BadData(
                "frontier bytecode pc disagrees with command index",
            ));
        }
        if live_regs != 0 {
            return Err(ResumeError::BadData(
                "frontier claims live evaluation registers at a command boundary",
            ));
        }
        let frames = r.count()?;
        let mut stack = Vec::with_capacity(frames.min(1024));
        for _ in 0..frames {
            let caller = Ident::from(r.str()?);
            let ret_var = Ident::from(r.str()?);
            let ret_idx = r.u64()? as usize;
            let store = S::load_store(ctx, &dec, &mut r)?;
            stack.push(Frame {
                caller,
                ret_var,
                store,
                ret_idx,
            });
        }
        let state = S::load_state(ctx, &dec, &mut r)?;
        frontier.push(FrontierItem {
            config: Config {
                state,
                stack,
                proc,
                idx,
            },
            cmds,
            trace,
        });
    }
    if !r.is_empty() {
        return Err(ResumeError::BadData("trailing bytes after frontier"));
    }
    Ok(CheckpointData {
        strategy,
        entry,
        total_cmds,
        truncated,
        dropped_paths,
        diagnostics,
        completed,
        frontier,
    })
}

/// Reads and decodes the checkpoint at `path`.
///
/// # Errors
///
/// See [`decode_checkpoint`]; filesystem failures report
/// [`ResumeError::Io`].
pub fn load_checkpoint<S: GilState>(
    path: &Path,
    ctx: &StateCtx,
) -> Result<CheckpointData<S>, ResumeError> {
    let bytes = std::fs::read(path).map_err(ResumeError::Io)?;
    decode_checkpoint(&bytes, ctx)
}
