//! Summary-reuse equivalence battery (`DESIGN.md` §17).
//!
//! The core property: procedure summaries are a pure *speedup*. For any
//! seeded program, exploring with summaries {off, on-cold, on-warm-from-
//! disk} yields identical path sets — same branch-trace identities, same
//! outcome kinds — across DFS/BFS, serial and parallel engines, and both
//! the tree-walk and bytecode backends. The only licensed difference is
//! command counts: a spliced call charges the `Call` command but skips
//! the callee's body, so per-path `cmds` with summaries on is bounded by
//! the summaries-off count for the same trace.
//!
//! The second half is the corruption battery for the on-disk store: every
//! way of damaging a summary file — truncation at every length, bad
//! magic, a stale version (live-patched and canned fixture), byte flips,
//! random multi-byte damage — must produce a typed [`SummaryLoadError`]
//! and never a panic, and a poisoned file must degrade the run to cold
//! execution rather than aborting it.
//!
//! Reproducibility knobs (environment variables):
//!
//! - `GILLIAN_SUMMARY_SEED`  — base program seed (default 0).
//! - `GILLIAN_SUMMARY_CASES` — programs per engine config (default 25).
//! - `GILLIAN_WORKERS`       — exploration workers (default 1); CI runs
//!   the battery under both 1 and 4.

use gillian_core::explore::{explore_with, ExploreConfig, ExploreResult, SearchStrategy};
use gillian_core::generate::{build_prog, gen_ops, GenOp, MemDialect, Rng};
use gillian_core::memory::{SymBranch, SymbolicMemory};
use gillian_core::symbolic::SymbolicState;
use gillian_gil::{Expr, Prog};
use gillian_solver::summary::{SUMMARY_MAGIC, SUMMARY_VERSION};
use gillian_solver::{PathCondition, Solver, SummaryLoadError, SummaryStore};
use gillian_telemetry::Journal;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stateless echo memory: summaries never fire around memory actions, so
/// the engine and the summary plumbing are the only things under test.
#[derive(Clone, Debug, Default)]
struct EchoSym;
impl SymbolicMemory for EchoSym {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(EchoSym, arg.clone())]
    }
}

type St = SymbolicState<EchoSym>;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// A unique scratch file path in the system temp dir.
fn scratch_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let pid = std::process::id();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gillian-summ-{pid}-{seq}-{tag}.gilsum"))
}

fn config(strategy: SearchStrategy, bytecode: bool, summaries: bool) -> ExploreConfig {
    ExploreConfig {
        strategy,
        workers: env_u64("GILLIAN_WORKERS", 1) as usize,
        bytecode: Some(bytecode),
        summaries: Some(summaries),
        journal: Journal::disabled(),
        ..Default::default()
    }
}

/// The per-trace identity of a run: outcome kind and command count,
/// keyed by branch trace (scheduling-independent).
fn path_map(result: &ExploreResult<St>) -> BTreeMap<Vec<u32>, (String, u64)> {
    let mut map = BTreeMap::new();
    for p in &result.paths {
        let prev = map.insert(p.trace.clone(), (p.outcome.kind().to_string(), p.cmds));
        assert!(prev.is_none(), "duplicate trace {:?}", p.trace);
    }
    map
}

fn gen_case(seed: u64) -> (Vec<GenOp>, Prog) {
    let ops = gen_ops(&mut Rng::new(seed), 16, MemDialect::None);
    let prog = build_prog(&ops, MemDialect::None);
    (ops, prog)
}

/// Asserts the three-way equivalence for one run pair: identical traces,
/// identical outcomes, and summaries-on command counts bounded by the
/// summaries-off counts (equality when no summary fired on that path).
fn assert_equiv(
    off: &BTreeMap<Vec<u32>, (String, u64)>,
    on: &BTreeMap<Vec<u32>, (String, u64)>,
    what: &str,
    ctx: &str,
) {
    let off_traces: Vec<_> = off.keys().collect();
    let on_traces: Vec<_> = on.keys().collect();
    assert_eq!(off_traces, on_traces, "{ctx}: {what} changed the trace set");
    for (trace, (off_kind, off_cmds)) in off {
        let (on_kind, on_cmds) = &on[trace];
        assert_eq!(
            off_kind, on_kind,
            "{ctx}: {what} changed the outcome of trace {trace:?}"
        );
        assert!(
            on_cmds <= off_cmds,
            "{ctx}: {what} *grew* cmds on trace {trace:?} ({on_cmds} > {off_cmds}) — \
             a spliced call must only skip callee commands"
        );
    }
}

/// The tentpole battery: {off, on-cold, on-warm-from-disk} over seeded
/// programs, for one (strategy, bytecode) engine configuration. The warm
/// leg round-trips the cold leg's harvest through a summary file into a
/// fresh solver, exactly as `GILLIAN_SUMMARY_FILE` does across processes.
fn equivalence_battery(strategy: SearchStrategy, bytecode: bool, salt: u64) {
    let base = env_u64("GILLIAN_SUMMARY_SEED", 0);
    let cases = env_u64("GILLIAN_SUMMARY_CASES", 25);
    let (mut recorded, mut warm_applied) = (0u64, 0u64);
    for i in 0..cases {
        let seed = base.wrapping_add(salt).wrapping_add(i);
        let (ops, prog) = gen_case(seed);
        let ctx = format!("seed {seed} ({strategy:?}, bytecode={bytecode})");

        let off_solver = Arc::new(Solver::optimized());
        let off = explore_with(
            &prog,
            "main",
            St::new(off_solver),
            config(strategy, bytecode, false),
        );
        assert_eq!(
            off.diagnostics.summaries_recorded, 0,
            "{ctx}: summaries-off run harvested entries\nops: {ops:?}"
        );
        let want = path_map(&off);

        // Cold: a fresh, empty store that harvests as it goes (and may
        // already apply within the run when a call site repeats).
        let cold_solver = Arc::new(Solver::optimized());
        let cold = explore_with(
            &prog,
            "main",
            St::new(cold_solver.clone()),
            config(strategy, bytecode, true),
        );
        assert_equiv(&want, &path_map(&cold), "cold summaries", &ctx);
        recorded += cold.diagnostics.summaries_recorded;

        // Warm: the cold harvest through disk into a fresh solver, so the
        // applications come from deserialized (re-interned) entries.
        let path = scratch_path(&format!("equiv-{seed}"));
        cold_solver
            .summaries()
            .save_file(&path)
            .unwrap_or_else(|e| panic!("{ctx}: save failed: {e}"));
        let warm_solver = Arc::new(Solver::optimized());
        warm_solver
            .summaries()
            .load_file(&path)
            .unwrap_or_else(|e| panic!("{ctx}: load failed: {e}"));
        let _ = std::fs::remove_file(&path);
        let warm = explore_with(
            &prog,
            "main",
            St::new(warm_solver),
            config(strategy, bytecode, true),
        );
        assert_equiv(&want, &path_map(&warm), "warm summaries", &ctx);
        warm_applied += warm.diagnostics.summaries_applied;
    }
    // The battery must actually exercise the machinery: the corpus draws
    // `helper` calls often enough that some windows harvest, and a warm
    // run must splice from its preloaded store.
    assert!(recorded > 0, "battery harvested no summaries");
    assert!(warm_applied > 0, "warm runs never applied a summary");
    eprintln!(
        "summary equivalence battery ({strategy:?}, bytecode={bytecode}): \
         {recorded} recorded, {warm_applied} warm applications"
    );
}

#[test]
fn summary_equivalence_dfs() {
    equivalence_battery(SearchStrategy::Dfs, false, 0x5C_0000);
}

#[test]
fn summary_equivalence_bfs() {
    equivalence_battery(SearchStrategy::Bfs, false, 0x5C_1000);
}

#[test]
fn summary_equivalence_dfs_bytecode() {
    equivalence_battery(SearchStrategy::Dfs, true, 0x5C_0000);
}

#[test]
fn summary_equivalence_bfs_bytecode() {
    equivalence_battery(SearchStrategy::Bfs, true, 0x5C_1000);
}

/// Both backends against the *same* store: a summary harvested by the
/// tree-walk engine must splice identically under the bytecode engine
/// and vice versa (the hooks sit above the dispatch strategy).
#[test]
fn summaries_are_backend_agnostic() {
    let base = env_u64("GILLIAN_SUMMARY_SEED", 0);
    for i in 0..5u64 {
        let seed = base.wrapping_add(0x5C_2000).wrapping_add(i);
        let (ops, prog) = gen_case(seed);
        let off = explore_with(
            &prog,
            "main",
            St::new(Arc::new(Solver::optimized())),
            config(SearchStrategy::Dfs, false, false),
        );
        let want = path_map(&off);
        // Harvest under the tree walk, splice under bytecode (shared
        // solver carries the store across the two runs).
        let solver = Arc::new(Solver::optimized());
        let tree = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(SearchStrategy::Dfs, false, true),
        );
        let ctx = format!("seed {seed} (cross-backend)");
        assert_equiv(&want, &path_map(&tree), "tree-walk summaries", &ctx);
        let byte = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(SearchStrategy::Dfs, true, true),
        );
        assert_equiv(
            &want,
            &path_map(&byte),
            "bytecode-over-tree-walk store",
            &ctx,
        );
        if tree.diagnostics.summaries_recorded > 0 {
            assert!(
                byte.diagnostics.summaries_applied > 0,
                "seed {seed}: bytecode run ignored the tree-walk harvest\nops: {ops:?}"
            );
        }
    }
}

/// A store armed for one program must never answer calls from another:
/// re-arming swaps the fingerprint map, and a procedure body edit changes
/// its fingerprint even when the name collides.
#[test]
fn summaries_do_not_leak_across_programs() {
    let base = env_u64("GILLIAN_SUMMARY_SEED", 0);
    let solver = Arc::new(Solver::optimized());
    // Warm the shared store on a corpus of programs, then check each
    // program still explores to its summaries-off path set (fingerprints
    // confine every entry to the body it was harvested from — `helper`
    // is shared verbatim, so cross-program reuse of it is sound).
    let seeds: Vec<u64> = (0..6).map(|i| base.wrapping_add(0x5C_3000 + i)).collect();
    for &seed in &seeds {
        let (_, prog) = gen_case(seed);
        explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(SearchStrategy::Dfs, false, true),
        );
    }
    for &seed in &seeds {
        let (ops, prog) = gen_case(seed);
        let off = explore_with(
            &prog,
            "main",
            St::new(Arc::new(Solver::optimized())),
            config(SearchStrategy::Dfs, false, false),
        );
        let warm = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(SearchStrategy::Dfs, false, true),
        );
        assert_equiv(
            &path_map(&off),
            &path_map(&warm),
            "cross-program store",
            &format!("seed {seed}\nops: {ops:?}"),
        );
    }
}

/// Builds a summary store with a few real harvested entries and returns
/// its serialized bytes (via an actual file round-trip, so the corruption
/// sweep damages exactly what `save_file` writes).
fn harvested_store_bytes() -> Vec<u8> {
    let solver = Arc::new(Solver::optimized());
    let base = env_u64("GILLIAN_SUMMARY_SEED", 0);
    for i in 0..10u64 {
        let (_, prog) = gen_case(base.wrapping_add(0x5C_4000).wrapping_add(i));
        explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(SearchStrategy::Dfs, false, true),
        );
        if !solver.summaries().is_empty() {
            break;
        }
    }
    assert!(
        !solver.summaries().is_empty(),
        "corpus produced no summaries to corrupt"
    );
    let path = scratch_path("pristine");
    solver.summaries().save_file(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Loads `bytes` from a scratch file into a fresh store, returning the
/// typed result exactly as a warm run's preload would see it.
fn load_bytes(bytes: &[u8], tag: &str) -> Result<usize, SummaryLoadError> {
    let path = scratch_path(tag);
    std::fs::write(&path, bytes).expect("write scratch");
    let store = SummaryStore::new();
    let r = store.load_file(&path);
    if r.is_err() {
        assert!(
            store.is_empty(),
            "a failed load must leave the store unchanged"
        );
    }
    let _ = std::fs::remove_file(&path);
    r
}

/// Every way of damaging a summary file must produce a clean, typed
/// error — truncation at *every* length, bad magic, a patched version,
/// and byte flips — and never a panic.
#[test]
fn corrupted_summary_files_fail_cleanly() {
    let bytes = harvested_store_bytes();
    assert!(
        load_bytes(&bytes, "ok").expect("pristine file must load") > 0,
        "pristine file merged nothing"
    );

    // Truncation at every length strictly shorter than the file.
    for cut in 0..bytes.len() {
        let r = load_bytes(&bytes[..cut], "trunc");
        assert!(r.is_err(), "truncation to {cut}/{} loaded", bytes.len());
    }

    // Magic damage reports BadMagic; version damage reports BadVersion
    // (the checksum deliberately does not cover the version field, so a
    // stale file is reported as such rather than as corruption).
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        load_bytes(&bad, "magic"),
        Err(SummaryLoadError::BadMagic)
    ));
    let mut bad = bytes.clone();
    bad[8] = bad[8].wrapping_add(1);
    assert!(matches!(
        load_bytes(&bad, "version"),
        Err(SummaryLoadError::BadVersion { expected, .. }) if expected == SUMMARY_VERSION
    ));

    // Any single-byte flip past the version field must be caught — by the
    // checksum, or (for flips inside the checksum field itself) by the
    // mismatch it creates.
    for i in 12..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x01;
        match load_bytes(&bad, "flip") {
            Err(SummaryLoadError::ChecksumMismatch) => {}
            Err(other) => panic!("flip at {i}: expected ChecksumMismatch, got {other}"),
            Ok(_) => panic!("flip at byte {i} went undetected"),
        }
    }

    // Seeded random multi-byte damage: loading must never panic.
    let mut rng = Rng::new(0xBAD_5C4);
    for _ in 0..200 {
        let mut bad = bytes.clone();
        let flips = 1 + rng.below(8) as usize;
        for _ in 0..flips {
            let at = rng.below(bad.len() as u64) as usize;
            bad[at] ^= (rng.below(255) + 1) as u8;
        }
        let _ = load_bytes(&bad, "rand");
    }
}

/// A canned version-1 summary file (from before the generalized-apply
/// verdict replay added per-delta proofs to the format) must be rejected
/// with a clean [`SummaryLoadError::BadVersion`] — not checksum noise
/// (the checksum deliberately excludes the version field precisely so
/// this report stays accurate), and never a panic.
#[test]
fn canned_v1_summary_reports_bad_version() {
    let bytes: &[u8] = include_bytes!("fixtures/summary_v1.bin");
    // Guard the fixture itself: a valid v1 header is magic then version 1.
    assert_eq!(&bytes[..8], SUMMARY_MAGIC);
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
    match load_bytes(bytes, "canned-v1") {
        Err(SummaryLoadError::BadVersion { found: 1, expected }) => {
            assert_eq!(expected, SUMMARY_VERSION);
        }
        other => panic!("v1 fixture: expected BadVersion, got {other:?}"),
    }
}

/// A poisoned summary file degrades the run to *cold* execution: the
/// preload fails with a typed error, the store stays empty, and the
/// exploration itself proceeds to the exact summaries-off path set.
#[test]
fn poisoned_store_degrades_to_cold_execution() {
    let (ops, prog) = gen_case(env_u64("GILLIAN_SUMMARY_SEED", 0) ^ 0x5C5);
    let off = explore_with(
        &prog,
        "main",
        St::new(Arc::new(Solver::optimized())),
        config(SearchStrategy::Dfs, false, false),
    );

    let solver = Arc::new(Solver::optimized());
    let path = scratch_path("poison");
    std::fs::write(&path, b"GILSUM\0\0garbage-that-is-not-a-store").expect("write");
    let r = solver.summaries().load_file(&path);
    let _ = std::fs::remove_file(&path);
    assert!(r.is_err(), "garbage loaded as a summary store");
    assert!(solver.summaries().is_empty());

    let cold = explore_with(
        &prog,
        "main",
        St::new(solver),
        config(SearchStrategy::Dfs, false, true),
    );
    assert_equiv(
        &path_map(&off),
        &path_map(&cold),
        "post-poison cold run",
        &format!("ops: {ops:?}"),
    );
}

/// Loading a file that never existed is a clean I/O error.
#[test]
fn missing_summary_file_is_clean() {
    let store = SummaryStore::new();
    let r = store.load_file(&scratch_path("missing"));
    assert!(matches!(r, Err(SummaryLoadError::Io(_))));
}
