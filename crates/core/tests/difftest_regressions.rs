//! Minimized regressions from the differential battery's first fixed-seed
//! run. Each test is the `generate::minimize` output for a seed whose
//! symbolic execution disagreed with its concrete replay — kept exactly as
//! shrunk, so the engine bug each one caught stays dead.
//!
//! Both seeds reduced to the same root cause: the simplifier folded
//! same-base comparisons `x + c₁ ⋈ x + c₂` to `c₁ ⋈ c₂`, which is
//! unsound under GIL's wrapping integer arithmetic — `x - 3 < x` is
//! false at `x = i64::MIN + 2`. The folded guard never reached the path
//! condition, so the oracle's boundary counter-model steered the concrete
//! replay down the arm the symbolic run thought impossible.

use gillian_core::difftest::run_differential;
use gillian_core::explore::ExploreConfig;
use gillian_core::generate::{build_prog, GenOp, MemDialect};
use gillian_core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian_gil::{Expr, Value};
use gillian_solver::{PathCondition, Solver};
use gillian_telemetry::Journal;
use std::sync::Arc;

#[derive(Clone, Debug, Default)]
struct EchoSym;
impl SymbolicMemory for EchoSym {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(EchoSym, arg.clone())]
    }
}

#[derive(Clone, Debug, Default)]
struct EchoConc;
impl ConcreteMemory for EchoConc {
    fn execute_action(&mut self, _: &str, arg: Value) -> Result<Value, Value> {
        Ok(arg)
    }
}

fn assert_agrees(ops: &[GenOp]) {
    let prog = build_prog(ops, MemDialect::None);
    let cfg = ExploreConfig {
        journal: Journal::disabled(),
        ..Default::default()
    };
    let report =
        run_differential::<EchoSym, EchoConc>(&prog, "main", Arc::new(Solver::optimized()), cfg);
    assert!(
        report.agreed(),
        "regression resurfaced: {:?}\nprogram:\n{prog}",
        report.divergences
    );
    assert!(report.replayed > 0, "regression program was never replayed");
}

/// Battery seed 1592590343, minimized from 16 ops to 4. The shift mints
/// an `i64`-boundary accumulator; the second `helper` call's guard
/// `(s0 - C) < s0` was folded `true` mathematically while the concrete
/// wrap made it false. Also pins the fold-guard overflow: the old "safe
/// offset" check used `abs()`, which wraps (and panics in debug) at
/// exactly `i64::MIN`.
#[test]
fn boundary_shift_then_call_chain() {
    assert_agrees(&[
        GenOp::Branch { sym: 0, k: -8 },
        GenOp::Arith {
            op: 6, // Shl
            sym: 0,
            k: -2,
            use_sym: false,
        },
        GenOp::Call { sym: 2 },
        GenOp::Call { sym: 1 },
    ]);
}

/// Battery seed 1592590388, minimized from 16 ops to 4. No shifts at all:
/// a plain `acc - 3 < acc` guard inside `helper`, with the model search
/// choosing `s0 = i64::MIN + 2` so the subtraction wraps to `i64::MAX`.
/// Proof that the offset-size guard on the old fold could never be
/// sufficient — the *base* sits at the boundary, not the offset.
#[test]
fn small_offset_comparison_at_boundary_base() {
    assert_agrees(&[
        GenOp::Call { sym: 1 },
        GenOp::ListRound { sym: 0 },
        GenOp::Bump(-6),
        GenOp::Call { sym: 2 },
    ]);
}
