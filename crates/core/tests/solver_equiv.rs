//! Solver-equivalence battery: the incremental per-prefix contexts and
//! the implication-aware verdict index are *transparent* optimizations —
//! every configuration of {incremental, implication index, exact cache}
//! must produce identical verdicts on identical queries, and every
//! witness model must concretely satisfy the condition it witnesses.
//!
//! Two generators drive the battery:
//!
//! - random *conjunct chains* grown one atom at a time through
//!   [`gillian_solver::Solver::sat_assume`], querying every prefix under
//!   all eight solver configurations (this is the exact access pattern
//!   the symbolic engine produces, so it exercises prefix reuse, subset
//!   and superset probes, and witness-model evaluation);
//! - random *branching programs* (the shared `common` generator) explored
//!   to completion under each configuration, comparing order-normalized
//!   path sets and command counts.
//!
//! Atoms are deliberately small (few variables, small constants) so the
//! checker's budgets never bind: budget exhaustion yields `Unknown`, and
//! an `Unknown` may legitimately differ across configurations (the
//! incremental path falls back to a monolithic solve precisely to keep
//! *decided* verdicts identical).

mod common;

use common::{build_prog, op_strategy, state_with, summary};
use gillian_core::explore::{explore, ExploreConfig};
use gillian_gil::{Expr, LVar};
use gillian_solver::{PathCondition, SatResult, Solver, SolverConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn x(i: u8) -> Expr {
    Expr::lvar(LVar(u64::from(i % 3)))
}

/// One random conjunct. Three variables and single-digit constants keep
/// every chain decidable within the default budgets.
#[derive(Clone, Debug)]
enum Atom {
    /// `x < c`
    Lt(u8, i64),
    /// `c ≤ x`
    Ge(u8, i64),
    /// `x = c`
    Eq(u8, i64),
    /// `x ≠ c`
    Ne(u8, i64),
    /// `x + y = c`
    SumEq(u8, u8, i64),
    /// `x = y`
    VarEq(u8, u8),
    /// `x < c ∨ y = d` — forces a case split, so the solve ends without
    /// a capturable state and descendants re-solve monolithically.
    Or(u8, i64, u8, i64),
}

fn atom_expr(a: &Atom) -> Expr {
    match *a {
        Atom::Lt(v, c) => x(v).lt(Expr::int(c)),
        Atom::Ge(v, c) => Expr::int(c).le(x(v)),
        Atom::Eq(v, c) => x(v).eq(Expr::int(c)),
        Atom::Ne(v, c) => x(v).ne(Expr::int(c)),
        Atom::SumEq(a, b, c) => x(a).add(x(b)).eq(Expr::int(c)),
        Atom::VarEq(a, b) => x(a).eq(x(b)),
        Atom::Or(v, c, w, d) => x(v).lt(Expr::int(c)).or(x(w).eq(Expr::int(d))),
    }
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    prop_oneof![
        3 => (0u8..3, -4i64..5).prop_map(|(v, c)| Atom::Lt(v, c)),
        3 => (0u8..3, -4i64..5).prop_map(|(v, c)| Atom::Ge(v, c)),
        2 => (0u8..3, -4i64..5).prop_map(|(v, c)| Atom::Eq(v, c)),
        2 => (0u8..3, -4i64..5).prop_map(|(v, c)| Atom::Ne(v, c)),
        1 => (0u8..3, 0u8..3, -4i64..5).prop_map(|(a, b, c)| Atom::SumEq(a, b, c)),
        1 => (0u8..3, 0u8..3).prop_map(|(a, b)| Atom::VarEq(a, b)),
        1 => (0u8..3, -4i64..5, 0u8..3, -4i64..5)
            .prop_map(|(v, c, w, d)| Atom::Or(v, c, w, d)),
    ]
}

/// All eight {incremental, implication, exact cache} configurations, each
/// with its own solver instance (caches must not leak across legs).
fn solver_grid() -> Vec<(String, Solver)> {
    let mut out = Vec::new();
    for incremental in [false, true] {
        for implication in [false, true] {
            for caching in [false, true] {
                let cfg = SolverConfig {
                    incremental,
                    implication_caching: implication,
                    caching,
                    ..SolverConfig::optimized()
                };
                out.push((
                    format!("inc={incremental} impl={implication} cache={caching}"),
                    Solver::new(cfg),
                ));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_solver_configs_agree_on_growing_conditions(
        atoms in proptest::collection::vec(atom_strategy(), 1..10),
    ) {
        let grid = solver_grid();
        // Each solver grows its own chain through `sat_assume`, exactly
        // as the engine does, so frozen contexts land on the live chain.
        let mut pcs: Vec<PathCondition> = vec![PathCondition::new(); grid.len()];
        for atom in &atoms {
            let e = atom_expr(atom);
            let mut reference: Option<(SatResult, &str)> = None;
            for ((name, solver), pc) in grid.iter().zip(pcs.iter_mut()) {
                let (verdict, grown) = solver.sat_assume(pc, &e);
                *pc = grown;
                prop_assert_ne!(
                    verdict, SatResult::Unknown,
                    "budgets must not bind on these chains ({})", name
                );
                match reference {
                    None => reference = Some((verdict, name)),
                    Some((expected, ref_name)) => prop_assert_eq!(
                        verdict, expected,
                        "{} diverged from {} on {}", name, ref_name, pc
                    ),
                }
                if verdict == SatResult::Sat {
                    if let Some(m) = solver.model(pc) {
                        prop_assert!(
                            m.satisfies(&pc.conjuncts()),
                            "unverified witness from {} for {}", name, pc
                        );
                    }
                }
            }
        }
        // Re-query every full chain: the answered-from-cache paths (exact
        // and implication) must agree with the freshly solved ones too.
        let mut reference: Option<SatResult> = None;
        for ((name, solver), pc) in grid.iter().zip(pcs.iter()) {
            let verdict = solver.check_sat(pc);
            match reference {
                None => reference = Some(verdict),
                Some(expected) => prop_assert_eq!(
                    verdict, expected,
                    "re-query under {} diverged on {}", name, pc
                ),
            }
        }
    }

    #[test]
    fn exploration_agrees_across_solver_configs(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);
        let mut reference: Option<(Vec<(String, String)>, u64)> = None;
        for incremental in [false, true] {
            for implication in [false, true] {
                let cfg = SolverConfig {
                    incremental,
                    implication_caching: implication,
                    ..SolverConfig::optimized()
                };
                let r = explore(
                    &prog,
                    "main",
                    state_with(Arc::new(Solver::new(cfg))),
                    ExploreConfig::default(),
                );
                prop_assert!(!r.truncated, "budgets must not bind on these programs");
                prop_assert!(
                    r.diagnostics.is_clean(),
                    "unexpected incidents: {:?}", r.diagnostics
                );
                let s = summary(&r);
                match &reference {
                    None => reference = Some((s, r.total_cmds)),
                    Some((expected, cmds)) => {
                        prop_assert_eq!(
                            &s, expected,
                            "inc={} impl={} changed the explored paths",
                            incremental, implication
                        );
                        prop_assert_eq!(r.total_cmds, *cmds);
                    }
                }
            }
        }
    }
}
