//! Bytecode-vs-tree-walk differential battery: seeded random GIL programs
//! (the same `generate.rs` seed scheme the CSC difftest uses) explored
//! twice — once on the reference tree-walking evaluator, once on the
//! compiled register bytecode — across DFS/BFS and 1–4 workers. The two
//! backends must produce *identical* path identities: same branch traces,
//! same outcome kinds, same per-path command counts, same totals. The
//! bytecode compiler is a pure representation change (`DESIGN.md` §15);
//! any divergence here is a compiler bug, not a semantic choice.
//!
//! Reproducibility knobs (environment variables):
//!
//! - `GILLIAN_BYTECODE_SEED`  — base seed (default 0); case `i` runs with
//!   seed `base + salt + i`, printed on failure.
//! - `GILLIAN_BYTECODE_CASES` — programs per engine config (default 40).
//!
//! `GILLIAN_BYTECODE` (the process-wide backend toggle) is deliberately
//! overridden here: both legs force the backend through
//! [`ExploreConfig::bytecode`], so the battery checks both sides no
//! matter how the environment is set.

use gillian_core::explore::{explore_with, ExploreConfig, ExploreResult, SearchStrategy};
use gillian_core::generate::{build_prog, gen_ops, MemDialect, Rng};
use gillian_core::memory::{SymBranch, SymbolicMemory};
use gillian_core::symbolic::SymbolicState;
use gillian_gil::Expr;
use gillian_solver::{PathCondition, Solver};
use gillian_telemetry::Journal;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Stateless echo memory: actions return their argument, so the battery
/// isolates the engine + evaluator (memory models have their own
/// bytecode batteries in `crates/while`).
#[derive(Clone, Debug, Default)]
struct EchoSym;
impl SymbolicMemory for EchoSym {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(EchoSym, arg.clone())]
    }
}

type St = SymbolicState<EchoSym>;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// The schedule-independent identity of a run: branch trace, outcome
/// kind, and per-path command count for every path.
fn path_set(result: &ExploreResult<St>) -> BTreeSet<(Vec<u32>, String, u64)> {
    result
        .paths
        .iter()
        .map(|p| (p.trace.clone(), p.outcome.kind().to_string(), p.cmds))
        .collect()
}

fn config(strategy: SearchStrategy, workers: usize, bytecode: bool) -> ExploreConfig {
    ExploreConfig {
        strategy,
        workers,
        bytecode: Some(bytecode),
        journal: Journal::disabled(),
        ..Default::default()
    }
}

fn run_battery(strategy: SearchStrategy, workers: usize, salt: u64) {
    let base = env_u64("GILLIAN_BYTECODE_SEED", 0);
    let cases = env_u64("GILLIAN_BYTECODE_CASES", 40);
    let solver = Arc::new(Solver::optimized());
    let mut paths = 0usize;
    for i in 0..cases {
        let seed = base.wrapping_add(salt).wrapping_add(i);
        let ops = gen_ops(&mut Rng::new(seed), 16, MemDialect::None);
        let prog = build_prog(&ops, MemDialect::None);
        let tree = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(strategy, workers, false),
        );
        let byte = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(strategy, workers, true),
        );
        assert_eq!(
            path_set(&tree),
            path_set(&byte),
            "seed {seed} ({strategy:?}, {workers} workers): bytecode \
             diverged from tree walk\nops: {ops:?}"
        );
        assert_eq!(
            tree.total_cmds, byte.total_cmds,
            "seed {seed}: total command counts diverged"
        );
        assert_eq!(
            tree.errors().count(),
            byte.errors().count(),
            "seed {seed}: error path counts diverged"
        );
        paths += tree.paths.len();
    }
    assert!(paths > 0, "battery explored nothing");
    eprintln!("bytecode battery ({strategy:?}, {workers} workers): {paths} paths agreed");
}

#[test]
fn bytecode_matches_treewalk_dfs_serial() {
    run_battery(SearchStrategy::Dfs, 1, 0xB17E_0000);
}

#[test]
fn bytecode_matches_treewalk_bfs_serial() {
    run_battery(SearchStrategy::Bfs, 1, 0xB17E_1000);
}

#[test]
fn bytecode_matches_treewalk_dfs_parallel() {
    for workers in 2..=4 {
        run_battery(SearchStrategy::Dfs, workers, 0xB17E_2000 + workers as u64);
    }
}

#[test]
fn bytecode_matches_treewalk_bfs_parallel() {
    for workers in 2..=4 {
        run_battery(SearchStrategy::Bfs, workers, 0xB17E_3000 + workers as u64);
    }
}
