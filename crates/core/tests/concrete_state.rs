//! `ConcreteState` edge cases: the CSC (paper Def. 2.5) under inputs the
//! inline unit tests do not reach — empty memory-action arguments, store
//! shadowing across call frames, allocator behaviour around free, and
//! scripted-allocator exhaustion. The differential oracle leans on every
//! one of these behaviours when it replays a symbolic path concretely.

use gillian_core::explore::{explore, ExploreConfig, ExploreOutcome};
use gillian_core::memory::ConcreteMemory;
use gillian_core::state::GilState;
use gillian_core::ConcreteState;
use gillian_gil::{Cmd, Expr, Proc, Prog, Sym, Value};
use gillian_telemetry::Journal;
use std::collections::BTreeMap;

/// A toy heap keyed by location: `new []`, `write [loc, v]`, `read [loc]`,
/// `free [loc]`. `new` takes an *empty argument list* — the empty-action
/// edge the oracle's generated programs also exercise.
#[derive(Clone, Debug, Default, PartialEq)]
struct Heap {
    cells: BTreeMap<Value, Value>,
}

impl ConcreteMemory for Heap {
    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
        let args = arg.as_list().map(<[Value]>::to_vec).unwrap_or(vec![arg]);
        match (name, args.as_slice()) {
            ("new", []) => Ok(Value::Int(self.cells.len() as i64)),
            ("write", [loc, v]) => {
                self.cells.insert(loc.clone(), v.clone());
                Ok(v.clone())
            }
            ("read", [loc]) => self
                .cells
                .get(loc)
                .cloned()
                .ok_or_else(|| Value::str(format!("read of absent cell {loc}"))),
            ("free", [loc]) => self
                .cells
                .remove(loc)
                .map(|_| Value::Bool(true))
                .ok_or_else(|| Value::str(format!("double free of {loc}"))),
            _ => Err(Value::str(format!("bad action {name}({args:?})"))),
        }
    }
}

fn run(prog: &Prog, state: ConcreteState<Heap>) -> (ExploreOutcome<Value>, ConcreteState<Heap>) {
    let cfg = ExploreConfig {
        journal: Journal::disabled(),
        ..Default::default()
    };
    let mut r = explore(prog, "main", state, cfg);
    assert_eq!(r.paths.len(), 1, "concrete execution is deterministic");
    let path = r.paths.remove(0);
    (path.outcome, path.state)
}

#[test]
fn empty_action_argument_reaches_the_memory_intact() {
    // r := new []  — the action receives an empty list, not a missing arg.
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::action("r", "new", Expr::list([])),
            Cmd::Return(Expr::pvar("r")),
        ],
    )]);
    let (outcome, _) = run(&prog, ConcreteState::new());
    assert_eq!(outcome, ExploreOutcome::Normal(Value::Int(0)));
}

#[test]
fn store_shadowing_last_write_wins_and_frames_restore() {
    // main() { x := 1; x := 2; r := f(9); return x + r }
    // f(x)   { x := x + 1; return x }
    // The callee's `x` must shadow the caller's without clobbering it.
    let prog = Prog::from_procs([
        Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(1)),
                Cmd::assign("x", Expr::int(2)),
                Cmd::call_static("r", "f", vec![Expr::int(9)]),
                Cmd::Return(Expr::pvar("x").add(Expr::pvar("r"))),
            ],
        ),
        Proc::new(
            "f",
            ["x"],
            vec![
                Cmd::assign("x", Expr::pvar("x").add(Expr::int(1))),
                Cmd::Return(Expr::pvar("x")),
            ],
        ),
    ]);
    let (outcome, state) = run(&prog, ConcreteState::new());
    assert_eq!(outcome, ExploreOutcome::Normal(Value::Int(12)), "2 + 10");
    assert_eq!(state.store().get("x"), Some(&Value::Int(2)), "caller's x");
}

#[test]
fn allocator_never_reuses_locations_after_free() {
    // l1 := uSym; write it; free it; l2 := uSym — l2 must be a location
    // never seen before, even though l1's cell is gone. Reusing freed
    // locations would let a concrete replay alias cells the symbolic run
    // kept distinct.
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::usym("l1", 0),
            Cmd::action("w", "write", Expr::list([Expr::pvar("l1"), Expr::int(5)])),
            Cmd::action("d", "free", Expr::list([Expr::pvar("l1")])),
            Cmd::usym("l2", 0),
            Cmd::Return(Expr::pvar("l1").eq(Expr::pvar("l2"))),
        ],
    )]);
    let (outcome, state) = run(&prog, ConcreteState::new());
    assert_eq!(outcome, ExploreOutcome::Normal(Value::Bool(false)));
    assert!(state.memory.cells.is_empty(), "freed cell is gone");
    assert_eq!(
        state.store().get("l2"),
        Some(&Value::Sym(Sym(Sym::FIRST_FRESH + 1))),
        "the counter advances monotonically"
    );
}

#[test]
fn freed_cell_reads_and_double_frees_error() {
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::usym("l", 0),
            Cmd::action("w", "write", Expr::list([Expr::pvar("l"), Expr::int(1)])),
            Cmd::action("d", "free", Expr::list([Expr::pvar("l")])),
            Cmd::action("r", "read", Expr::list([Expr::pvar("l")])),
            Cmd::Return(Expr::pvar("r")),
        ],
    )]);
    let (outcome, _) = run(&prog, ConcreteState::new());
    assert!(
        matches!(outcome, ExploreOutcome::Error(_)),
        "use-after-free surfaces as E(v), got {outcome:?}"
    );
}

#[test]
fn scripted_allocator_exhaustion_defaults_every_remaining_isym() {
    // Three iSym sites, a one-value script: the first pops the script, the
    // rest default to Int(0) — exactly `complete_model`'s convention, so a
    // partial model still steers a replay instead of crashing it.
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::isym("a", 0),
            Cmd::isym("b", 1),
            Cmd::isym("c", 2),
            Cmd::Return(Expr::list([
                Expr::pvar("a"),
                Expr::pvar("b"),
                Expr::pvar("c"),
            ])),
        ],
    )]);
    let (outcome, state) = run(&prog, ConcreteState::with_script([Value::Int(42)]));
    assert_eq!(
        outcome,
        ExploreOutcome::Normal(Value::List(vec![
            Value::Int(42),
            Value::Int(0),
            Value::Int(0)
        ]))
    );
    assert_eq!(state.alloc().remaining_script(), 0);
}

#[test]
fn over_long_scripts_leave_the_surplus_queued() {
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![Cmd::isym("a", 0), Cmd::Return(Expr::pvar("a"))],
    )]);
    let script = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
    let (outcome, state) = run(&prog, ConcreteState::with_script(script));
    assert_eq!(outcome, ExploreOutcome::Normal(Value::Int(1)));
    assert_eq!(
        state.alloc().remaining_script(),
        2,
        "unconsumed values stay visible for diagnostics"
    );
}
