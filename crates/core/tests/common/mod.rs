//! Shared random-program generator for the exploration property tests.
//!
//! Builds small branching GIL programs from a list of [`Op`] building
//! blocks; used by the engine-equivalence test (`explore_equiv.rs`) and
//! the Unknown-verdict semantics test (`unknown_semantics.rs`).

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use gillian_core::explore::{ExploreOutcome, ExploreResult};
use gillian_core::memory::{SymBranch, SymbolicMemory};
use gillian_core::symbolic::SymbolicState;
use gillian_gil::{Cmd, Expr, Proc, Prog};
use gillian_solver::{PathCondition, Solver};
use proptest::prelude::*;
use std::sync::Arc;

/// A heap-less memory: every action just echoes its argument.
#[derive(Clone, Debug, Default)]
pub struct NoMem;
impl SymbolicMemory for NoMem {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(NoMem, arg.clone())]
    }
}

/// One building block of a random program. Variable indices are taken
/// modulo the symbols allocated so far (allocating one when none exist),
/// so every generated program is well-formed.
#[derive(Clone, Debug)]
pub enum Op {
    /// Allocate a fresh symbolic input.
    Sym,
    /// Two-way branch on `s_v < c`, bumping `acc` on the taken side.
    Branch(u8, i64),
    /// `acc := acc + k` — straight-line filler.
    Bump(i64),
    /// `assume s_v < c`: branch whose false side vanishes.
    Assume(u8, i64),
    /// `assert s_v ≠ c`: branch whose false side fails.
    FailIf(u8, i64),
}

pub fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Sym),
        3 => (0u8..4, -3i64..4).prop_map(|(v, c)| Op::Branch(v, c)),
        2 => (-5i64..5).prop_map(Op::Bump),
        2 => (0u8..4, 0i64..4).prop_map(|(v, c)| Op::Assume(v, c)),
        2 => (0u8..4, -3i64..4).prop_map(|(v, c)| Op::FailIf(v, c)),
    ]
}

/// Compiles an op list into a one-procedure GIL program.
pub fn build_prog(ops: &[Op]) -> Prog {
    let mut body = vec![Cmd::assign("acc", Expr::int(0))];
    let mut syms: Vec<String> = Vec::new();
    let alloc_sym = |body: &mut Vec<Cmd>, syms: &mut Vec<String>| {
        let name = format!("s{}", syms.len());
        body.push(Cmd::isym(&name, syms.len() as u32));
        syms.push(name);
    };
    for op in ops {
        // Ops that reference a symbol make sure one exists.
        if !matches!(op, Op::Sym | Op::Bump(_)) && syms.is_empty() {
            alloc_sym(&mut body, &mut syms);
        }
        match op {
            Op::Sym => alloc_sym(&mut body, &mut syms),
            Op::Bump(k) => {
                body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::int(*k))));
            }
            Op::Branch(v, c) => {
                let s = &syms[*v as usize % syms.len()];
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(Expr::pvar(s).lt(Expr::int(*c)), skip));
                body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::int(1))));
            }
            Op::Assume(v, c) => {
                let s = &syms[*v as usize % syms.len()];
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(Expr::pvar(s).lt(Expr::int(*c)), skip));
                body.push(Cmd::Vanish);
            }
            Op::FailIf(v, c) => {
                let s = &syms[*v as usize % syms.len()];
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(Expr::pvar(s).ne(Expr::int(*c)), skip));
                body.push(Cmd::Fail(Expr::str("hit")));
            }
        }
    }
    body.push(Cmd::Return(Expr::pvar("acc")));
    Prog::from_procs([Proc::new("main", [], body)])
}

/// A fresh symbolic state over the optimized solver.
pub fn state() -> SymbolicState<NoMem> {
    SymbolicState::new(Arc::new(Solver::optimized()))
}

/// A fresh symbolic state over an explicit solver.
pub fn state_with(solver: Arc<Solver>) -> SymbolicState<NoMem> {
    SymbolicState::new(solver)
}

/// Order-normalized summary of a result: sorted `(pc, outcome-tag)` pairs.
pub fn summary(r: &ExploreResult<SymbolicState<NoMem>>) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = r
        .paths
        .iter()
        .map(|p| {
            let tag = match &p.outcome {
                ExploreOutcome::Normal(v) => format!("N({v})"),
                ExploreOutcome::Error(v) => format!("E({v})"),
                ExploreOutcome::Vanished => "vanished".to_string(),
                ExploreOutcome::Truncated => "truncated".to_string(),
                ExploreOutcome::EngineError { payload, .. } => format!("engine-error({payload})"),
            };
            (p.state.pc.to_string(), tag)
        })
        .collect();
    pairs.sort();
    pairs
}
