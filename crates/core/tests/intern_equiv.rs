//! Extensional equivalence of the interned representation.
//!
//! The hash-consed `Term` representation and the interned-id-keyed solver
//! caches (the SAT memo keyed on `PcKey`, the simplifier memo keyed on
//! `(pc ids, term)`) are pure plumbing: they must never change what a
//! symbolic run observes. These properties drive whole random programs
//! (reusing the generator shared with the engine-equivalence tests)
//! through two solvers that differ only in that plumbing and require
//! identical order-normalized results:
//!
//! - **cached vs uncached** — the optimized solver answers from its
//!   id-keyed memo tables; the reference solver recomputes every
//!   simplification and satisfiability verdict structurally. Same path
//!   sets, same outcomes, same command counts.
//! - **sharing vs rebuilding** — running the same program twice reuses
//!   interned nodes the second time (the interner is global), which must
//!   not perturb results across engines or worker counts.

mod common;

use common::{build_prog, op_strategy, state_with, summary};
use gillian_core::explore::{explore, explore_parallel, ExploreConfig};
use gillian_solver::{Solver, SolverConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// The optimized pipeline with every result cache disabled: identical
/// simplification semantics, but each query recomputed from the
/// structural conjunction instead of answered by an interned-id lookup.
fn uncached() -> SolverConfig {
    SolverConfig {
        caching: false,
        ..SolverConfig::optimized()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_and_uncached_solvers_agree_on_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);
        let cached = explore(
            &prog,
            "main",
            state_with(Arc::new(Solver::optimized())),
            ExploreConfig::default(),
        );
        prop_assert!(cached.diagnostics.is_clean());
        let reference = explore(
            &prog,
            "main",
            state_with(Arc::new(Solver::new(uncached()))),
            ExploreConfig::default(),
        );
        prop_assert!(reference.diagnostics.is_clean());
        prop_assert_eq!(
            summary(&cached),
            summary(&reference),
            "id-keyed caches changed observable results"
        );
        prop_assert_eq!(cached.total_cmds, reference.total_cmds);
    }

    #[test]
    fn warm_interner_runs_match_cold_runs(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);
        // Cold-ish leg (this process shares one global interner, so
        // "cold" is relative — which is exactly the point: results may
        // not depend on what is already interned).
        let first = explore(
            &prog,
            "main",
            state_with(Arc::new(Solver::optimized())),
            ExploreConfig::default(),
        );
        let first_summary = summary(&first);
        // Warm legs: every term of the program is now interned, so these
        // runs are maximal-sharing replays, serial and parallel.
        let again = explore(
            &prog,
            "main",
            state_with(Arc::new(Solver::optimized())),
            ExploreConfig::default(),
        );
        prop_assert_eq!(&summary(&again), &first_summary);
        prop_assert_eq!(again.total_cmds, first.total_cmds);
        for workers in [2usize, 4] {
            let par = explore_parallel(
                &prog,
                "main",
                state_with(Arc::new(Solver::optimized())),
                ExploreConfig { workers, ..Default::default() },
            );
            prop_assert_eq!(
                &summary(&par),
                &first_summary,
                "warm parallel ({}) diverged",
                workers
            );
            prop_assert_eq!(par.total_cmds, first.total_cmds);
        }
    }
}
