//! Failure injection: deliberately broken memory models must be caught by
//! the differential soundness checkers. This is the evidence that the
//! empirical MA-RS/MA-RC checks (paper Def. 3.7) and the end-to-end
//! Theorem 3.6 check are not vacuous — they fail when a tool developer
//! gets a memory model wrong in the ways that actually happen.

//!
//! The second half injects *runtime* failures — a memory action that
//! panics, and one that spins forever — and checks the resilience story:
//! the run completes under its deadline, the faulty path is reported as an
//! engine error (or deadline-truncated), and sibling paths are unaffected.

use gillian_core::explore::{
    explore, explore_parallel, ExploreConfig, ExploreOutcome, ExploreResult,
};
use gillian_core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian_core::soundness::{check_action, check_program, MemoryInterpretation};
use gillian_core::symbolic::SymbolicState;
use gillian_gil::{Cmd, Expr, LVar, Proc, Prog, Value};
use gillian_solver::{Model, PathCondition, Solver};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The reference concrete memory: one cell holding a value.
#[derive(Clone, Debug, Default, PartialEq)]
struct Cell(Option<Value>);

impl ConcreteMemory for Cell {
    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
        match name {
            "set" => {
                self.0 = Some(arg);
                Ok(Value::Bool(true))
            }
            "get" => self.0.clone().ok_or_else(|| Value::str("empty cell")),
            other => Err(Value::str(format!("unknown action {other}"))),
        }
    }
}

/// A correct symbolic cell.
#[derive(Clone, Debug, Default, PartialEq)]
struct SymCell(Option<Expr>);

impl SymbolicMemory for SymCell {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _pc: &PathCondition,
        _solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        match name {
            "set" => vec![SymBranch::ok(SymCell(Some(arg.clone())), Expr::tt())],
            "get" => match &self.0 {
                Some(e) => vec![SymBranch::ok(self.clone(), e.clone())],
                None => vec![SymBranch::err_if(
                    self.clone(),
                    Expr::str("empty cell"),
                    Expr::tt(),
                )],
            },
            _ => vec![],
        }
    }

    fn lvars(&self) -> std::collections::BTreeSet<LVar> {
        self.0.iter().flat_map(|e| e.lvars()).collect()
    }
}

/// BROKEN: `get` returns the stored value *plus one* (a transcription bug).
#[derive(Clone, Debug, Default, PartialEq)]
struct OffByOneCell(Option<Expr>);

impl SymbolicMemory for OffByOneCell {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _pc: &PathCondition,
        _solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        match name {
            "set" => vec![SymBranch::ok(OffByOneCell(Some(arg.clone())), Expr::tt())],
            "get" => match &self.0 {
                Some(e) => vec![SymBranch::ok(
                    self.clone(),
                    e.clone().add(Expr::int(1)), // BUG
                )],
                None => vec![SymBranch::err_if(
                    self.clone(),
                    Expr::str("empty cell"),
                    Expr::tt(),
                )],
            },
            _ => vec![],
        }
    }

    fn lvars(&self) -> std::collections::BTreeSet<LVar> {
        self.0.iter().flat_map(|e| e.lvars()).collect()
    }
}

/// BROKEN: `get` of an empty cell claims success instead of erroring
/// (a missing error branch — MA-RS outcome-kind violation).
#[derive(Clone, Debug, Default, PartialEq)]
struct NoErrorCell(Option<Expr>);

impl SymbolicMemory for NoErrorCell {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _pc: &PathCondition,
        _solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        match name {
            "set" => vec![SymBranch::ok(NoErrorCell(Some(arg.clone())), Expr::tt())],
            "get" => vec![SymBranch::ok(
                self.clone(),
                self.0.clone().unwrap_or(Expr::int(0)), // BUG: never errors
            )],
            _ => vec![],
        }
    }
}

struct CellInterp;
impl MemoryInterpretation for CellInterp {
    type Concrete = Cell;
    type Symbolic = SymCell;
    fn interpret(&self, model: &Model, sym: &SymCell) -> Result<Cell, String> {
        Ok(Cell(match &sym.0 {
            Some(e) => Some(model.eval(e).map_err(|e| e.to_string())?),
            None => None,
        }))
    }
}

struct OffByOneInterp;
impl MemoryInterpretation for OffByOneInterp {
    type Concrete = Cell;
    type Symbolic = OffByOneCell;
    fn interpret(&self, model: &Model, sym: &OffByOneCell) -> Result<Cell, String> {
        Ok(Cell(match &sym.0 {
            Some(e) => Some(model.eval(e).map_err(|e| e.to_string())?),
            None => None,
        }))
    }
}

fn get_set_program() -> Prog {
    Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::isym("x", 0),
            Cmd::action("_", "set", Expr::pvar("x")),
            Cmd::action("y", "get", Expr::int(0)),
            Cmd::Return(Expr::pvar("y")),
        ],
    )])
}

#[test]
fn correct_memory_passes_both_checks() {
    let solver = Solver::optimized();
    let mem = SymCell(Some(Expr::lvar(LVar(0))));
    let checked = check_action(
        &CellInterp,
        &solver,
        &mem,
        "get",
        &Expr::int(0),
        &PathCondition::new(),
    )
    .expect("correct memory satisfies MA-RS");
    assert!(checked > 0);

    let report = check_program::<SymCell, Cell>(
        &get_set_program(),
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    )
    .expect("correct memory is restricted-sound");
    assert!(report.replayed > 0);
}

#[test]
fn wrong_value_output_is_caught_by_ma_rs() {
    let solver = Solver::optimized();
    let mem = OffByOneCell(Some(Expr::lvar(LVar(0))));
    let problems = check_action(
        &OffByOneInterp,
        &solver,
        &mem,
        "get",
        &Expr::int(0),
        &PathCondition::new(),
    )
    .expect_err("the off-by-one transcription must be caught");
    assert!(
        problems
            .iter()
            .any(|d| d.context.contains("value outputs differ")),
        "{problems:#?}"
    );
}

#[test]
fn wrong_value_output_is_caught_end_to_end() {
    let result = check_program::<OffByOneCell, Cell>(
        &get_set_program(),
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    );
    let problems = result.expect_err("end-to-end replay must diverge");
    assert!(
        problems
            .iter()
            .any(|d| d.context.contains("return values differ")),
        "{problems:#?}"
    );
}

#[test]
fn missing_error_branch_is_caught_end_to_end() {
    // Reading the never-written cell: symbolic claims N(0), concrete errs.
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::action("y", "get", Expr::int(0)),
            Cmd::Return(Expr::pvar("y")),
        ],
    )]);
    let result = check_program::<NoErrorCell, Cell>(
        &prog,
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    );
    let problems = result.expect_err("the missing error branch must be caught");
    assert!(
        problems
            .iter()
            .any(|d| d.context.contains("outcomes differ")),
        "{problems:#?}"
    );
}

// ---------------------------------------------------------------------------
// Runtime failure injection: panicking and non-terminating memory actions.
// ---------------------------------------------------------------------------

/// A well-behaved memory that echoes every action's argument — the
/// reference against which the faulty runs' sibling paths are compared.
#[derive(Clone, Debug, Default)]
struct EchoMem;
impl SymbolicMemory for EchoMem {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(EchoMem, arg.clone())]
    }
}

/// BROKEN: the `boom` action panics (an `unwrap` deep in a memory model).
#[derive(Clone, Debug, Default)]
struct PanickingMem;
impl SymbolicMemory for PanickingMem {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        if name == "boom" {
            panic!("injected memory fault");
        }
        vec![SymBranch::ok(PanickingMem, arg.clone())]
    }
}

/// BROKEN: the `spin` action busy-loops. It is *cooperative*: it polls
/// [`Solver::interrupted`] the way a long-running memory model should, so
/// the engine's deadline can reel it back in. (A ten-second failsafe keeps
/// a buggy test from hanging the suite.)
#[derive(Clone, Debug, Default)]
struct SpinMem;
impl SymbolicMemory for SpinMem {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        if name == "spin" {
            let failsafe = Instant::now() + Duration::from_secs(10);
            while !solver.interrupted() && Instant::now() < failsafe {
                std::hint::spin_loop();
            }
        }
        vec![SymBranch::ok(SpinMem, arg.clone())]
    }
}

/// `x < 0` reaches the faulty action; `x >= 0` returns 0 normally.
fn faulty_branch_program(action: &str) -> Prog {
    Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::isym("x", 0),
            Cmd::IfGoto(Expr::pvar("x").lt(Expr::int(0)), 3),
            Cmd::Return(Expr::int(0)),
            Cmd::action("y", action, Expr::pvar("x")),
            Cmd::Return(Expr::pvar("y")),
        ],
    )])
}

fn fresh<M: SymbolicMemory + Default>() -> SymbolicState<M> {
    SymbolicState::new(Arc::new(Solver::optimized()))
}

/// Sorted `(pc, outcome-tag)` pairs; the tag drops `EngineError` payloads
/// so summaries are comparable across memory types.
fn verdicts<M: SymbolicMemory>(r: &ExploreResult<SymbolicState<M>>) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = r
        .paths
        .iter()
        .map(|p| {
            let tag = match &p.outcome {
                ExploreOutcome::Normal(v) => format!("N({v})"),
                ExploreOutcome::Error(v) => format!("E({v})"),
                ExploreOutcome::Vanished => "vanished".to_string(),
                ExploreOutcome::Truncated => "truncated".to_string(),
                ExploreOutcome::EngineError { .. } => "engine-error".to_string(),
            };
            (p.state.pc.to_string(), tag)
        })
        .collect();
    pairs.sort();
    pairs
}

/// The sibling verdicts of a faulty run: everything that is neither the
/// engine-error report nor deadline-truncated.
fn siblings<M: SymbolicMemory>(r: &ExploreResult<SymbolicState<M>>) -> Vec<(String, String)> {
    verdicts(r)
        .into_iter()
        .filter(|(_, tag)| tag != "engine-error" && tag != "truncated")
        .collect()
}

/// The same run with the fault edited out: the reference verdicts minus
/// the path that reaches the faulty action (whose pc mentions `x < 0`
/// positively and whose outcome echoes `x`).
fn reference_siblings(prog: &Prog, faulty_tag: &str) -> Vec<(String, String)> {
    let reference = explore(prog, "main", fresh::<EchoMem>(), ExploreConfig::default());
    assert!(reference.diagnostics.is_clean());
    assert_eq!(reference.paths.len(), 2);
    verdicts(&reference)
        .into_iter()
        .filter(|(_, tag)| tag != faulty_tag)
        .collect()
}

#[test]
fn injected_panic_is_isolated_serial() {
    let prog = faulty_branch_program("boom");
    let expected = reference_siblings(&prog, "N(#x0)");

    let start = Instant::now();
    let res = explore(
        &prog,
        "main",
        fresh::<PanickingMem>(),
        ExploreConfig::default().with_deadline(Duration::from_secs(2)),
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "must finish under the deadline"
    );

    assert_eq!(res.diagnostics.engine_errors, 1);
    assert_eq!(
        res.diagnostics.deadline_hits, 0,
        "panic, not deadline, ended the path"
    );
    assert_eq!(
        res.engine_errors().count(),
        1,
        "the faulty path is reported as an engine error"
    );
    let reported = res.engine_errors().next().unwrap();
    match &reported.outcome {
        ExploreOutcome::EngineError { payload, .. } => {
            assert!(payload.contains("injected memory fault"), "{payload}");
        }
        other => panic!("expected an engine error, got {other:?}"),
    }
    assert_eq!(
        siblings(&res),
        expected,
        "sibling verdicts must be unaffected"
    );
    assert!(res.bounded());
}

#[test]
fn injected_panic_is_isolated_parallel() {
    let prog = faulty_branch_program("boom");
    let expected = reference_siblings(&prog, "N(#x0)");

    for workers in [2, 4] {
        let start = Instant::now();
        let mut cfg = ExploreConfig::default().with_deadline(Duration::from_secs(2));
        cfg.workers = workers;
        let res = explore_parallel(&prog, "main", fresh::<PanickingMem>(), cfg);
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_eq!(res.diagnostics.engine_errors, 1, "workers={workers}");
        assert_eq!(siblings(&res), expected, "workers={workers}");
    }
}

#[test]
fn injected_spin_loop_is_reeled_in_serial() {
    let prog = faulty_branch_program("spin");
    let expected = reference_siblings(&prog, "N(#x0)");

    let start = Instant::now();
    let res = explore(
        &prog,
        "main",
        fresh::<SpinMem>(),
        ExploreConfig::default().with_deadline(Duration::from_millis(250)),
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "must finish under two seconds"
    );

    assert!(res.truncated, "the deadline must mark the run truncated");
    assert!(res.diagnostics.deadline_hits >= 1, "{:?}", res.diagnostics);
    assert_eq!(res.diagnostics.engine_errors, 0);
    assert_eq!(
        siblings(&res),
        expected,
        "sibling verdicts must be unaffected"
    );
}

#[test]
fn injected_spin_loop_is_reeled_in_parallel() {
    let prog = faulty_branch_program("spin");
    let expected = reference_siblings(&prog, "N(#x0)");

    for workers in [2, 4] {
        let start = Instant::now();
        let mut cfg = ExploreConfig::default().with_deadline(Duration::from_millis(250));
        cfg.workers = workers;
        let res = explore_parallel(&prog, "main", fresh::<SpinMem>(), cfg);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "workers={workers}"
        );
        assert!(res.truncated, "workers={workers}");
        assert!(
            res.diagnostics.deadline_hits >= 1,
            "workers={workers}: {:?}",
            res.diagnostics
        );
        assert_eq!(siblings(&res), expected, "workers={workers}");
    }
}
