//! Failure injection: deliberately broken memory models must be caught by
//! the differential soundness checkers. This is the evidence that the
//! empirical MA-RS/MA-RC checks (paper Def. 3.7) and the end-to-end
//! Theorem 3.6 check are not vacuous — they fail when a tool developer
//! gets a memory model wrong in the ways that actually happen.

use gillian_core::explore::ExploreConfig;
use gillian_core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian_core::soundness::{check_action, check_program, MemoryInterpretation};
use gillian_gil::{Cmd, Expr, LVar, Proc, Prog, Value};
use gillian_solver::{Model, PathCondition, Solver};
use std::sync::Arc;

/// The reference concrete memory: one cell holding a value.
#[derive(Clone, Debug, Default, PartialEq)]
struct Cell(Option<Value>);

impl ConcreteMemory for Cell {
    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
        match name {
            "set" => {
                self.0 = Some(arg);
                Ok(Value::Bool(true))
            }
            "get" => self.0.clone().ok_or_else(|| Value::str("empty cell")),
            other => Err(Value::str(format!("unknown action {other}"))),
        }
    }
}

/// A correct symbolic cell.
#[derive(Clone, Debug, Default, PartialEq)]
struct SymCell(Option<Expr>);

impl SymbolicMemory for SymCell {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _pc: &PathCondition,
        _solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        match name {
            "set" => vec![SymBranch::ok(SymCell(Some(arg.clone())), Expr::tt())],
            "get" => match &self.0 {
                Some(e) => vec![SymBranch::ok(self.clone(), e.clone())],
                None => vec![SymBranch::err_if(
                    self.clone(),
                    Expr::str("empty cell"),
                    Expr::tt(),
                )],
            },
            _ => vec![],
        }
    }

    fn lvars(&self) -> std::collections::BTreeSet<LVar> {
        self.0.iter().flat_map(|e| e.lvars()).collect()
    }
}

/// BROKEN: `get` returns the stored value *plus one* (a transcription bug).
#[derive(Clone, Debug, Default, PartialEq)]
struct OffByOneCell(Option<Expr>);

impl SymbolicMemory for OffByOneCell {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _pc: &PathCondition,
        _solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        match name {
            "set" => vec![SymBranch::ok(OffByOneCell(Some(arg.clone())), Expr::tt())],
            "get" => match &self.0 {
                Some(e) => vec![SymBranch::ok(
                    self.clone(),
                    e.clone().add(Expr::int(1)), // BUG
                )],
                None => vec![SymBranch::err_if(
                    self.clone(),
                    Expr::str("empty cell"),
                    Expr::tt(),
                )],
            },
            _ => vec![],
        }
    }

    fn lvars(&self) -> std::collections::BTreeSet<LVar> {
        self.0.iter().flat_map(|e| e.lvars()).collect()
    }
}

/// BROKEN: `get` of an empty cell claims success instead of erroring
/// (a missing error branch — MA-RS outcome-kind violation).
#[derive(Clone, Debug, Default, PartialEq)]
struct NoErrorCell(Option<Expr>);

impl SymbolicMemory for NoErrorCell {
    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        _pc: &PathCondition,
        _solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        match name {
            "set" => vec![SymBranch::ok(NoErrorCell(Some(arg.clone())), Expr::tt())],
            "get" => vec![SymBranch::ok(
                self.clone(),
                self.0.clone().unwrap_or(Expr::int(0)), // BUG: never errors
            )],
            _ => vec![],
        }
    }
}

struct CellInterp;
impl MemoryInterpretation for CellInterp {
    type Concrete = Cell;
    type Symbolic = SymCell;
    fn interpret(&self, model: &Model, sym: &SymCell) -> Result<Cell, String> {
        Ok(Cell(match &sym.0 {
            Some(e) => Some(model.eval(e).map_err(|e| e.to_string())?),
            None => None,
        }))
    }
}

struct OffByOneInterp;
impl MemoryInterpretation for OffByOneInterp {
    type Concrete = Cell;
    type Symbolic = OffByOneCell;
    fn interpret(&self, model: &Model, sym: &OffByOneCell) -> Result<Cell, String> {
        Ok(Cell(match &sym.0 {
            Some(e) => Some(model.eval(e).map_err(|e| e.to_string())?),
            None => None,
        }))
    }
}

fn get_set_program() -> Prog {
    Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::isym("x", 0),
            Cmd::action("_", "set", Expr::pvar("x")),
            Cmd::action("y", "get", Expr::int(0)),
            Cmd::Return(Expr::pvar("y")),
        ],
    )])
}

#[test]
fn correct_memory_passes_both_checks() {
    let solver = Solver::optimized();
    let mem = SymCell(Some(Expr::lvar(LVar(0))));
    let checked = check_action(
        &CellInterp,
        &solver,
        &mem,
        "get",
        &Expr::int(0),
        &PathCondition::new(),
    )
    .expect("correct memory satisfies MA-RS");
    assert!(checked > 0);

    let report = check_program::<SymCell, Cell>(
        &get_set_program(),
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    )
    .expect("correct memory is restricted-sound");
    assert!(report.replayed > 0);
}

#[test]
fn wrong_value_output_is_caught_by_ma_rs() {
    let solver = Solver::optimized();
    let mem = OffByOneCell(Some(Expr::lvar(LVar(0))));
    let problems = check_action(
        &OffByOneInterp,
        &solver,
        &mem,
        "get",
        &Expr::int(0),
        &PathCondition::new(),
    )
    .expect_err("the off-by-one transcription must be caught");
    assert!(
        problems
            .iter()
            .any(|d| d.context.contains("value outputs differ")),
        "{problems:#?}"
    );
}

#[test]
fn wrong_value_output_is_caught_end_to_end() {
    let result = check_program::<OffByOneCell, Cell>(
        &get_set_program(),
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    );
    let problems = result.expect_err("end-to-end replay must diverge");
    assert!(
        problems
            .iter()
            .any(|d| d.context.contains("return values differ")),
        "{problems:#?}"
    );
}

#[test]
fn missing_error_branch_is_caught_end_to_end() {
    // Reading the never-written cell: symbolic claims N(0), concrete errs.
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::action("y", "get", Expr::int(0)),
            Cmd::Return(Expr::pvar("y")),
        ],
    )]);
    let result = check_program::<NoErrorCell, Cell>(
        &prog,
        "main",
        Arc::new(Solver::optimized()),
        ExploreConfig::default(),
    );
    let problems = result.expect_err("the missing error branch must be caught");
    assert!(
        problems
            .iter()
            .any(|d| d.context.contains("outcomes differ")),
        "{problems:#?}"
    );
}
