//! Crash-safety battery: checkpoint/resume equivalence under deterministic
//! fault injection (`DESIGN.md` §14).
//!
//! The core property: for any seeded program, killing the explorer at any
//! scheduling point and resuming from its checkpoint yields *exactly* the
//! uninterrupted run's path set — same branch-trace identities, same
//! outcomes, same per-path command counts — across both engines (serial
//! DFS/BFS and the parallel explorer).
//!
//! Reproducibility knobs (environment variables):
//!
//! - `GILLIAN_CHECKPOINT_SEED`  — base program seed (default 0).
//! - `GILLIAN_CHECKPOINT_CASES` — programs per engine config (default 3).
//! - `GILLIAN_FAULT_ARTIFACTS`  — directory to keep checkpoint files in
//!   (default: a temp dir, best-effort cleaned). CI sets this so a failed
//!   battery uploads the exact files to replay against.

use gillian_core::checkpoint::{decode_checkpoint, ResumeError, StateCtx, StateIoError};
use gillian_core::explore::{
    explore_resume, explore_with, ExploreConfig, ExploreResult, SearchStrategy,
};
use gillian_core::faults::FaultPlan;
use gillian_core::generate::{build_prog, gen_ops, GenOp, MemDialect, Rng};
use gillian_core::memory::{SymBranch, SymbolicMemory};
use gillian_core::symbolic::SymbolicState;
use gillian_core::CheckpointConfig;
use gillian_gil::serial::{ByteReader, Decoder, Encoder};
use gillian_gil::{Expr, Prog};
use gillian_solver::{PathCondition, Solver};
use gillian_telemetry::Journal;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stateless echo memory with trivial checkpoint support: the engine and
/// the checkpoint plumbing are the only things under test.
#[derive(Clone, Debug, Default)]
struct EchoSym;
impl SymbolicMemory for EchoSym {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(EchoSym, arg.clone())]
    }

    fn save(&self, _enc: &mut Encoder, _out: &mut Vec<u8>) -> Result<(), StateIoError> {
        Ok(())
    }

    fn load(_dec: &Decoder, _r: &mut ByteReader<'_>) -> Result<Self, StateIoError> {
        Ok(EchoSym)
    }
}

type St = SymbolicState<EchoSym>;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// A unique checkpoint file path. Under `GILLIAN_FAULT_ARTIFACTS` the
/// files persist (CI uploads them on failure); otherwise they land in the
/// system temp dir and are removed by the caller on success.
fn ckpt_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match std::env::var("GILLIAN_FAULT_ARTIFACTS") {
        Ok(d) if !d.trim().is_empty() => {
            let dir = PathBuf::from(d);
            let _ = std::fs::create_dir_all(&dir);
            dir
        }
        _ => std::env::temp_dir(),
    };
    let pid = std::process::id();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("gillian-ckpt-{pid}-{seq}-{tag}.bin"))
}

fn config(strategy: SearchStrategy, workers: usize) -> ExploreConfig {
    ExploreConfig {
        strategy,
        workers,
        journal: Journal::disabled(),
        ..Default::default()
    }
}

/// The canonical identity of a run's paths: branch trace, outcome kind,
/// and per-path command count — all scheduling-independent.
fn path_set(result: &ExploreResult<St>) -> BTreeSet<(Vec<u32>, String, u64)> {
    result
        .paths
        .iter()
        .map(|p| (p.trace.clone(), p.outcome.kind().to_string(), p.cmds))
        .collect()
}

fn gen_case(seed: u64) -> (Vec<GenOp>, Prog) {
    let ops = gen_ops(&mut Rng::new(seed), 16, MemDialect::None);
    let prog = build_prog(&ops, MemDialect::None);
    (ops, prog)
}

/// Kill the run at every Nth scheduling point and check that resume
/// reconstructs exactly the uninterrupted path set.
fn kill_resume_battery(strategy: SearchStrategy, workers: usize, salt: u64) {
    let base = env_u64("GILLIAN_CHECKPOINT_SEED", 0);
    let cases = env_u64("GILLIAN_CHECKPOINT_CASES", 3);
    let solver = Arc::new(Solver::optimized());
    let ctx = StateCtx::new(solver.clone());
    let mut kills = 0usize;
    for i in 0..cases {
        let seed = base.wrapping_add(salt).wrapping_add(i);
        let (ops, prog) = gen_case(seed);
        // Uninterrupted baseline, with a fault plan that injects nothing —
        // it counts the scheduling points the run draws, which bounds the
        // kill sweep.
        let probe_plan = Arc::new(FaultPlan::seeded(seed));
        let mut cfg = config(strategy, workers);
        cfg.faults = Some(probe_plan.clone());
        let baseline = explore_with(&prog, "main", St::new(solver.clone()), cfg);
        assert!(
            !baseline.bounded(),
            "seed {seed}: baseline run should be exhaustive\nops: {ops:?}"
        );
        let want = path_set(&baseline);
        let points = probe_plan.points_drawn().max(1);
        // ~12 kill points per case, always including the first and one
        // past the end (a kill that never fires).
        let step = (points / 12).max(1);
        let mut k = 0u64;
        while k <= points {
            let path = ckpt_path(&format!("kill-{seed}-{k}-w{workers}"));
            let plan = Arc::new(FaultPlan::seeded(seed).kill_at(k));
            let mut cfg = config(strategy, workers);
            cfg.faults = Some(plan);
            cfg.checkpoint = Some(CheckpointConfig::at(&path));
            let cut = explore_with(&prog, "main", St::new(solver.clone()), cfg);
            if cut.killed {
                kills += 1;
                let resumed = explore_resume(
                    &prog,
                    &path,
                    &ctx,
                    St::new(solver.clone()),
                    config(strategy, workers),
                )
                .unwrap_or_else(|e| {
                    panic!("seed {seed} kill@{k} w{workers}: resume failed: {e}\nops: {ops:?}")
                });
                // Disjoint union of (paths finished before the kill) and
                // (paths explored by the continuation) == baseline.
                let mut got: BTreeSet<(Vec<u32>, String, u64)> = BTreeSet::new();
                for p in &resumed.prior {
                    assert!(
                        got.insert((p.trace.clone(), p.outcome.clone(), p.cmds)),
                        "seed {seed} kill@{k} w{workers}: duplicate prior path {:?}",
                        p.trace
                    );
                }
                for p in path_set(&resumed.result) {
                    assert!(
                        got.insert(p.clone()),
                        "seed {seed} kill@{k} w{workers}: path {p:?} in both prior and resumed"
                    );
                }
                assert_eq!(
                    got, want,
                    "seed {seed} kill@{k} w{workers} ({strategy:?}): \
                     resumed path set differs from uninterrupted run\nops: {ops:?}"
                );
                if workers <= 1 {
                    assert_eq!(
                        resumed.result.total_cmds, baseline.total_cmds,
                        "seed {seed} kill@{k}: command accounting diverged across resume"
                    );
                }
            } else {
                // Kill point past the end: the run completed untouched.
                assert_eq!(
                    path_set(&cut),
                    want,
                    "seed {seed} kill@{k} w{workers}: unkilled run perturbed by the harness"
                );
            }
            let _ = std::fs::remove_file(&path);
            k += step;
        }
    }
    assert!(kills > 0, "battery never managed to kill a run");
    eprintln!("kill/resume battery ({strategy:?}, workers={workers}): {kills} kills resumed");
}

#[test]
fn kill_resume_equivalence_dfs_serial() {
    kill_resume_battery(SearchStrategy::Dfs, 1, 0xC0_0000);
}

#[test]
fn kill_resume_equivalence_bfs_serial() {
    kill_resume_battery(SearchStrategy::Bfs, 1, 0xC1_0000);
}

#[test]
fn kill_resume_equivalence_parallel_2() {
    kill_resume_battery(SearchStrategy::Dfs, 2, 0xC2_0000);
}

#[test]
fn kill_resume_equivalence_parallel_4() {
    kill_resume_battery(SearchStrategy::Dfs, 4, 0xC3_0000);
}

/// Interval checkpointing must not perturb the result — only record it.
/// A zero interval is the adversarial case: it checkpoints at every
/// serial scheduling point and forces the parallel engine through its
/// stop-the-world restart round after every step.
#[test]
fn interval_checkpointing_does_not_perturb_results() {
    let solver = Arc::new(Solver::optimized());
    for workers in [1usize, 4] {
        let (ops, prog) = gen_case(env_u64("GILLIAN_CHECKPOINT_SEED", 0) ^ 0xD0);
        let baseline = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(SearchStrategy::Dfs, workers),
        );
        let path = ckpt_path(&format!("interval-w{workers}"));
        let mut cfg = config(SearchStrategy::Dfs, workers);
        cfg.checkpoint = Some(CheckpointConfig::at(&path).with_interval(Duration::ZERO));
        let ticked = explore_with(&prog, "main", St::new(solver.clone()), cfg);
        assert_eq!(
            path_set(&ticked),
            path_set(&baseline),
            "workers={workers}: interval checkpointing changed the result\nops: {ops:?}"
        );
        assert!(!ticked.killed);
        assert!(
            path.exists(),
            "workers={workers}: no checkpoint file written"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// A kill with no checkpoint configured must degrade gracefully: the
/// pending frontier is drained as truncated paths instead of being lost.
#[test]
fn kill_without_checkpoint_drains_frontier() {
    let solver = Arc::new(Solver::optimized());
    let (ops, prog) = gen_case(env_u64("GILLIAN_CHECKPOINT_SEED", 0) ^ 0xE0);
    let mut cfg = config(SearchStrategy::Dfs, 1);
    cfg.faults = Some(Arc::new(FaultPlan::seeded(7).kill_at(3)));
    let r = explore_with(&prog, "main", St::new(solver), cfg);
    assert!(r.killed, "kill@3 did not fire\nops: {ops:?}");
    assert!(
        r.bounded(),
        "a killed run must not report itself exhaustive"
    );
    assert!(
        r.paths.iter().any(|p| p.outcome.kind() == "truncated"),
        "killed run without a checkpoint must surface its frontier as \
         truncated paths\nops: {ops:?}"
    );
}

/// Same seed ⇒ identical injections, identical results: the whole point
/// of the deterministic harness is that a fault schedule is replayable.
#[test]
fn fault_schedule_is_deterministic() {
    let (ops, prog) = gen_case(env_u64("GILLIAN_CHECKPOINT_SEED", 0) ^ 0xF0);
    // A fresh solver per run: determinism is claimed for identical initial
    // conditions, and a shared solver's warmed caches legitimately change
    // how many internal queries (and thus fault points) a run draws.
    let run = |seed: u64| {
        let plan = Arc::new(
            FaultPlan::seeded(seed)
                .with_panic_rate(3000)
                .with_unknown_rate(3000)
                .with_latency(1500, Duration::from_micros(10)),
        );
        let mut cfg = config(SearchStrategy::Dfs, 1);
        cfg.faults = Some(plan.clone());
        let r = explore_with(&prog, "main", St::new(Arc::new(Solver::optimized())), cfg);
        (plan.rendered_log(), plan.points_drawn(), path_set(&r))
    };
    let (log_a, points_a, paths_a) = run(42);
    let (log_b, points_b, paths_b) = run(42);
    assert_eq!(log_a, log_b, "same seed produced different fault schedules");
    assert_eq!(points_a, points_b);
    assert_eq!(
        paths_a, paths_b,
        "same fault schedule produced different results\nops: {ops:?}"
    );
    assert!(!log_a.is_empty(), "rates this high should inject something");
    // A different seed lands its faults elsewhere (and may explore a
    // different tree as a consequence — forced Unknowns keep branches).
    let (log_c, _, _) = run(43);
    assert_ne!(
        log_a, log_c,
        "different seeds produced identical non-empty schedules: {log_a:?}"
    );
}

/// Every way of damaging a checkpoint file must produce a clean, typed
/// error — truncation at *every* length, bad magic, a patched version,
/// and byte flips — and never a panic.
#[test]
fn corrupted_checkpoints_fail_cleanly() {
    let solver = Arc::new(Solver::optimized());
    let ctx = StateCtx::new(solver.clone());
    let (ops, prog) = gen_case(env_u64("GILLIAN_CHECKPOINT_SEED", 0) ^ 0xAB);
    let path = ckpt_path("corrupt");
    let mut cfg = config(SearchStrategy::Dfs, 1);
    cfg.faults = Some(Arc::new(FaultPlan::seeded(1).kill_at(5)));
    cfg.checkpoint = Some(CheckpointConfig::at(&path));
    let r = explore_with(&prog, "main", St::new(solver.clone()), cfg);
    assert!(r.killed, "kill@5 did not fire\nops: {ops:?}");
    let bytes = std::fs::read(&path).expect("checkpoint file");
    let _ = std::fs::remove_file(&path);
    assert!(
        decode_checkpoint::<St>(&bytes, &ctx).is_ok(),
        "pristine checkpoint failed to decode"
    );

    // Truncation at every length strictly shorter than the file.
    for cut in 0..bytes.len() {
        let r = decode_checkpoint::<St>(&bytes[..cut], &ctx);
        assert!(r.is_err(), "truncation to {cut}/{} decoded", bytes.len());
    }

    // Magic damage reports BadMagic; version damage reports BadVersion
    // (the checksum deliberately does not cover the version field, so a
    // version bump is reported as such rather than as corruption).
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        decode_checkpoint::<St>(&bad, &ctx),
        Err(ResumeError::BadMagic)
    ));
    let mut bad = bytes.clone();
    bad[8] = bad[8].wrapping_add(1);
    assert!(matches!(
        decode_checkpoint::<St>(&bad, &ctx),
        Err(ResumeError::BadVersion { expected: 2, .. })
    ));

    // Any single-byte flip past the version field must be caught — by the
    // checksum, or (for flips inside the checksum field itself) by the
    // mismatch it creates.
    for i in 12..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x01;
        match decode_checkpoint::<St>(&bad, &ctx) {
            Err(ResumeError::ChecksumMismatch) => {}
            Err(other) => panic!("flip at {i}: expected ChecksumMismatch, got {other}"),
            Ok(_) => panic!("flip at byte {i} went undetected"),
        }
    }

    // Seeded random multi-byte damage: decoding must never panic.
    let mut rng = Rng::new(0xBADC0DE);
    for _ in 0..200 {
        let mut bad = bytes.clone();
        let flips = 1 + rng.below(8) as usize;
        for _ in 0..flips {
            let at = rng.below(bad.len() as u64) as usize;
            bad[at] ^= (rng.below(255) + 1) as u8;
        }
        let _ = decode_checkpoint::<St>(&bad, &ctx);
    }
}

/// A canned version-1 checkpoint (written before the bytecode resume
/// point was added to frontier items) must be rejected with a clean
/// [`ResumeError::BadVersion`] — not `ChecksumMismatch` (the checksum
/// deliberately excludes the version field precisely so this report stays
/// accurate), and never a panic or a silently misparsed frontier.
#[test]
fn canned_v1_checkpoint_reports_bad_version() {
    let bytes: &[u8] = include_bytes!("fixtures/checkpoint_v1.bin");
    // Guard the fixture itself: a valid v1 header is magic then version 1.
    assert_eq!(&bytes[..8], gillian_core::checkpoint::MAGIC);
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
    let ctx = StateCtx::new(Arc::new(Solver::optimized()));
    match decode_checkpoint::<St>(bytes, &ctx) {
        Err(ResumeError::BadVersion { found: 1, expected }) => {
            assert_eq!(expected, gillian_core::checkpoint::VERSION);
        }
        other => panic!("v1 fixture: expected BadVersion, got {other:?}"),
    }
}

/// Resuming from a file that never existed is a clean I/O error.
#[test]
fn resume_from_missing_file_is_clean() {
    let solver = Arc::new(Solver::optimized());
    let ctx = StateCtx::new(solver.clone());
    let (_, prog) = gen_case(1);
    let err = explore_resume(
        &prog,
        &ckpt_path("missing"),
        &ctx,
        St::new(solver),
        config(SearchStrategy::Dfs, 1),
    );
    assert!(matches!(err, Err(ResumeError::Io(_))));
}
