//! Event-journal properties (DESIGN.md §11):
//!
//! 1. **Schedule independence** — the merged journal's path ids and fork
//!    edges depend only on the program, not on the worker count or
//!    scheduling: 1 worker and 4 workers produce identical finished-path
//!    sets and fork-edge sets, and repeated 4-worker runs are
//!    *identical* after the deterministic merge.
//! 2. **JSONL round-trip** — a run traced through an explicit
//!    [`Journal::jsonl_sink`] writes a schema-valid JSONL file with
//!    exactly one `path_finished` record per reported path.
//!
//! Journals here are installed explicitly on [`ExploreConfig`] — never
//! via `GILLIAN_TRACE` (the env is read once per process and would leak
//! across parallel test binaries).

mod common;

use common::{build_prog, state, Op};
use gillian_core::explore::{explore, explore_parallel, ExploreConfig};
use gillian_telemetry::{validate_jsonl, Event, EventRecord, Journal};

/// A ten-way branching program: 2^10 = 1024 paths with real fork
/// structure at every level.
fn wide_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..10u8 {
        ops.push(Op::Sym);
        ops.push(Op::Branch(i, 1));
    }
    ops
}

/// The journal's finished paths as a sorted `(path, outcome)` set.
fn finished_set(events: &[EventRecord]) -> Vec<(Vec<u32>, String)> {
    let mut out: Vec<(Vec<u32>, String)> = events
        .iter()
        .filter_map(|r| match &r.event {
            Event::PathFinished { path, outcome, .. } => Some((path.clone(), outcome.to_string())),
            _ => None,
        })
        .collect();
    out.sort();
    out
}

/// The journal's fork edges as a sorted `(parent, arms)` set.
fn fork_set(events: &[EventRecord]) -> Vec<(Vec<u32>, u32)> {
    let mut out: Vec<(Vec<u32>, u32)> = events
        .iter()
        .filter_map(|r| match &r.event {
            Event::PathForked { parent, arms } => Some((parent.clone(), *arms)),
            _ => None,
        })
        .collect();
    out.sort();
    out
}

fn run_journaled(workers: usize) -> (usize, Vec<EventRecord>) {
    let journal = Journal::enabled();
    let cfg = ExploreConfig {
        workers,
        journal: journal.clone(),
        ..Default::default()
    };
    let prog = build_prog(&wide_ops());
    let r = if workers > 1 {
        explore_parallel(&prog, "main", state(), cfg)
    } else {
        explore(&prog, "main", state(), cfg)
    };
    (r.paths.len(), journal.last_run().to_vec())
}

#[test]
fn merged_journal_is_schedule_independent() {
    let (paths1, serial) = run_journaled(1);
    let (paths4, par) = run_journaled(4);
    assert_eq!(paths1, 1024);
    assert_eq!(paths4, 1024);
    assert_eq!(
        finished_set(&serial),
        finished_set(&par),
        "finished-path sets must not depend on scheduling"
    );
    assert_eq!(
        fork_set(&serial),
        fork_set(&par),
        "fork edges must not depend on scheduling"
    );
    // The deterministic merge goes further than set equality: repeated
    // parallel runs produce the same event sequence modulo timestamps,
    // sequence numbers, and worker attribution.
    let strip = |events: &[EventRecord]| -> Vec<(String, Option<Vec<u32>>)> {
        events
            .iter()
            .map(|r| (r.event.kind().to_string(), r.event.path().cloned()))
            .collect()
    };
    let (_, again) = run_journaled(4);
    assert_eq!(
        strip(&par),
        strip(&again),
        "the merged event order must be deterministic"
    );
}

#[test]
fn jsonl_trace_round_trips_with_one_finish_per_path() {
    let path =
        std::env::temp_dir().join(format!("gillian-journal-test-{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path").to_string();
    let _ = std::fs::remove_file(&path);

    let journal = Journal::jsonl_sink(path_str.clone());
    let cfg = ExploreConfig {
        journal: journal.clone(),
        ..Default::default()
    };
    let prog = build_prog(&wide_ops());
    let r = explore(&prog, "main", state(), cfg);
    assert_eq!(r.paths.len(), 1024);
    assert_eq!(
        r.report.trace_path.as_deref(),
        Some(path_str.as_str()),
        "the report must point at the written trace"
    );

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate_jsonl(&text).expect("trace must be schema-valid");
    assert_eq!(summary.runs, 1);
    assert_eq!(
        summary.paths_finished as usize,
        r.paths.len(),
        "exactly one path_finished per reported path"
    );
    assert_eq!(summary.dropped, 0);
    assert!(
        summary.sat_queries > 0,
        "solver queries must be journaled through the state's solver"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_journal_records_nothing_but_report_still_fills() {
    let cfg = ExploreConfig {
        journal: Journal::disabled(),
        ..Default::default()
    };
    let prog = build_prog(&wide_ops());
    let r = explore(&prog, "main", state(), cfg);
    assert_eq!(r.paths.len(), 1024);
    // Metrics and tree stats never depend on the journal...
    assert_eq!(r.report.tree.leaves, 1024);
    assert_eq!(r.report.tree.max_depth, 10);
    assert!(r.report.metrics.counter("solver.sat_queries") > 0);
    // ...while journal-derived sections stay empty.
    assert_eq!(r.report.events, 0);
    assert!(r.report.slow_queries.is_empty());
    assert!(r.report.trace_path.is_none());
}
