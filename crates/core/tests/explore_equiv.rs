//! Engine-equivalence property: on random branching GIL programs, the DFS
//! worklist, the BFS worklist, and the parallel explorer (1 through 4
//! workers) produce identical order-normalized path sets — same path
//! conditions, same outcome per path, same error count, same total command
//! count. This is the observable face of paper §3.2's relaxed trace
//! composition: exploration order cannot change *what* is explored.

use gillian_core::explore::{
    explore, explore_parallel, ExploreConfig, ExploreOutcome, ExploreResult, SearchStrategy,
};
use gillian_core::memory::{SymBranch, SymbolicMemory};
use gillian_core::symbolic::SymbolicState;
use gillian_gil::{Cmd, Expr, Proc, Prog};
use gillian_solver::{PathCondition, Solver};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Clone, Debug, Default)]
struct NoMem;
impl SymbolicMemory for NoMem {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(NoMem, arg.clone())]
    }
}

/// One building block of a random program. Variable indices are taken
/// modulo the symbols allocated so far (allocating one when none exist),
/// so every generated program is well-formed.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate a fresh symbolic input.
    Sym,
    /// Two-way branch on `s_v < c`, bumping `acc` on the taken side.
    Branch(u8, i64),
    /// `acc := acc + k` — straight-line filler.
    Bump(i64),
    /// `assume s_v < c`: branch whose false side vanishes.
    Assume(u8, i64),
    /// `assert s_v ≠ c`: branch whose false side fails.
    FailIf(u8, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Sym),
        3 => (0u8..4, -3i64..4).prop_map(|(v, c)| Op::Branch(v, c)),
        2 => (-5i64..5).prop_map(Op::Bump),
        2 => (0u8..4, 0i64..4).prop_map(|(v, c)| Op::Assume(v, c)),
        2 => (0u8..4, -3i64..4).prop_map(|(v, c)| Op::FailIf(v, c)),
    ]
}

/// Compiles an op list into a one-procedure GIL program.
fn build_prog(ops: &[Op]) -> Prog {
    let mut body = vec![Cmd::assign("acc", Expr::int(0))];
    let mut syms: Vec<String> = Vec::new();
    let alloc_sym = |body: &mut Vec<Cmd>, syms: &mut Vec<String>| {
        let name = format!("s{}", syms.len());
        body.push(Cmd::isym(&name, syms.len() as u32));
        syms.push(name);
    };
    for op in ops {
        // Ops that reference a symbol make sure one exists.
        if !matches!(op, Op::Sym | Op::Bump(_)) && syms.is_empty() {
            alloc_sym(&mut body, &mut syms);
        }
        match op {
            Op::Sym => alloc_sym(&mut body, &mut syms),
            Op::Bump(k) => {
                body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::int(*k))));
            }
            Op::Branch(v, c) => {
                let s = &syms[*v as usize % syms.len()];
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(Expr::pvar(s).lt(Expr::int(*c)), skip));
                body.push(Cmd::assign("acc", Expr::pvar("acc").add(Expr::int(1))));
            }
            Op::Assume(v, c) => {
                let s = &syms[*v as usize % syms.len()];
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(Expr::pvar(s).lt(Expr::int(*c)), skip));
                body.push(Cmd::Vanish);
            }
            Op::FailIf(v, c) => {
                let s = &syms[*v as usize % syms.len()];
                let skip = body.len() + 2;
                body.push(Cmd::IfGoto(Expr::pvar(s).ne(Expr::int(*c)), skip));
                body.push(Cmd::Fail(Expr::str("hit")));
            }
        }
    }
    body.push(Cmd::Return(Expr::pvar("acc")));
    Prog::from_procs([Proc::new("main", [], body)])
}

fn state() -> SymbolicState<NoMem> {
    SymbolicState::new(Arc::new(Solver::optimized()))
}

/// Order-normalized summary of a result: sorted `(pc, outcome-tag)` pairs.
fn summary(r: &ExploreResult<SymbolicState<NoMem>>) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = r
        .paths
        .iter()
        .map(|p| {
            let tag = match &p.outcome {
                ExploreOutcome::Normal(v) => format!("N({v})"),
                ExploreOutcome::Error(v) => format!("E({v})"),
                ExploreOutcome::Vanished => "vanished".to_string(),
                ExploreOutcome::Truncated => "truncated".to_string(),
            };
            (p.state.pc.to_string(), tag)
        })
        .collect();
    pairs.sort();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_engines_agree_on_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);
        let dfs = explore(&prog, "main", state(), ExploreConfig::default());
        prop_assert!(!dfs.truncated, "budgets must not bind on these programs");
        let dfs_summary = summary(&dfs);

        let bfs = explore(
            &prog,
            "main",
            state(),
            ExploreConfig { strategy: SearchStrategy::Bfs, ..Default::default() },
        );
        prop_assert_eq!(&summary(&bfs), &dfs_summary, "BFS diverged from DFS");
        prop_assert_eq!(bfs.total_cmds, dfs.total_cmds);

        for workers in 1..=4usize {
            let par = explore_parallel(
                &prog,
                "main",
                state(),
                ExploreConfig { workers, ..Default::default() },
            );
            prop_assert_eq!(
                &summary(&par),
                &dfs_summary,
                "parallel ({}) diverged from DFS",
                workers
            );
            prop_assert_eq!(par.total_cmds, dfs.total_cmds);
            prop_assert_eq!(par.errors().count(), dfs.errors().count());
            prop_assert!(!par.truncated);
        }
    }
}
