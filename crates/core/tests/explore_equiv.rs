//! Engine-equivalence property: on random branching GIL programs, the DFS
//! worklist, the BFS worklist, and the parallel explorer (1 through 4
//! workers) produce identical order-normalized path sets — same path
//! conditions, same outcome per path, same error count, same total command
//! count. This is the observable face of paper §3.2's relaxed trace
//! composition: exploration order cannot change *what* is explored.
//!
//! The parallel legs run with the resilience fields armed (a far-future
//! deadline plus a live cancellation token) so equivalence is checked on
//! the code paths that poll them, not just on the all-`None` fast path.

mod common;

use common::{build_prog, op_strategy, state, summary};
use gillian_core::explore::{explore, explore_parallel, ExploreConfig, SearchStrategy};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_engines_agree_on_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);
        let dfs = explore(&prog, "main", state(), ExploreConfig::default());
        prop_assert!(!dfs.truncated, "budgets must not bind on these programs");
        prop_assert!(dfs.diagnostics.is_clean(), "unexpected incidents: {:?}", dfs.diagnostics);
        let dfs_summary = summary(&dfs);

        let bfs = explore(
            &prog,
            "main",
            state(),
            ExploreConfig { strategy: SearchStrategy::Bfs, ..Default::default() },
        );
        prop_assert_eq!(&summary(&bfs), &dfs_summary, "BFS diverged from DFS");
        prop_assert_eq!(bfs.total_cmds, dfs.total_cmds);

        for workers in 1..=4usize {
            let par = explore_parallel(
                &prog,
                "main",
                state(),
                ExploreConfig { workers, ..Default::default() }
                    .with_deadline(Duration::from_secs(3600)),
            );
            prop_assert_eq!(
                &summary(&par),
                &dfs_summary,
                "parallel ({}) diverged from DFS",
                workers
            );
            prop_assert_eq!(par.total_cmds, dfs.total_cmds);
            prop_assert_eq!(par.errors().count(), dfs.errors().count());
            prop_assert!(!par.truncated);
            prop_assert!(par.diagnostics.is_clean(), "unexpected incidents: {:?}", par.diagnostics);
        }
    }
}
