//! Engine-equivalence property: on random branching GIL programs, the DFS
//! worklist, the BFS worklist, and the parallel explorer (1 through 4
//! workers) produce identical order-normalized path sets — same path
//! conditions, same outcome per path, same error count, same total command
//! count. This is the observable face of paper §3.2's relaxed trace
//! composition: exploration order cannot change *what* is explored.
//!
//! The parallel legs run with the resilience fields armed (a far-future
//! deadline plus a live cancellation token) so equivalence is checked on
//! the code paths that poll them, not just on the all-`None` fast path.

mod common;

use common::{build_prog, op_strategy, state, state_with, summary};
use gillian_core::explore::{explore, explore_parallel, ExploreConfig, SearchStrategy};
use gillian_solver::{Solver, SolverConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_engines_agree_on_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);
        let dfs = explore(&prog, "main", state(), ExploreConfig::default());
        prop_assert!(!dfs.truncated, "budgets must not bind on these programs");
        prop_assert!(dfs.diagnostics.is_clean(), "unexpected incidents: {:?}", dfs.diagnostics);
        let dfs_summary = summary(&dfs);

        let bfs = explore(
            &prog,
            "main",
            state(),
            ExploreConfig { strategy: SearchStrategy::Bfs, ..Default::default() },
        );
        prop_assert_eq!(&summary(&bfs), &dfs_summary, "BFS diverged from DFS");
        prop_assert_eq!(bfs.total_cmds, dfs.total_cmds);

        for workers in 1..=4usize {
            let par = explore_parallel(
                &prog,
                "main",
                state(),
                ExploreConfig { workers, ..Default::default() }
                    .with_deadline(Duration::from_secs(3600)),
            );
            prop_assert_eq!(
                &summary(&par),
                &dfs_summary,
                "parallel ({}) diverged from DFS",
                workers
            );
            prop_assert_eq!(par.total_cmds, dfs.total_cmds);
            prop_assert_eq!(par.errors().count(), dfs.errors().count());
            prop_assert!(!par.truncated);
            prop_assert!(par.diagnostics.is_clean(), "unexpected incidents: {:?}", par.diagnostics);
        }
    }

    /// Incremental solving (per-prefix contexts plus the implication
    /// index) against a monolithic re-solving solver, across every
    /// engine: DFS, BFS, and the parallel explorer at 1–4 workers. The
    /// optimization must be invisible — same path conditions, same
    /// outcomes, same command counts. Unlike the leg above, no deadline
    /// is armed here, so the implication index is live on every leg
    /// (an armed deadline marks solves "hurried" and bypasses it).
    #[test]
    fn incremental_matches_monolithic_across_engines(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);
        let monolithic = SolverConfig {
            incremental: false,
            implication_caching: false,
            ..SolverConfig::optimized()
        };
        let reference = explore(
            &prog,
            "main",
            state_with(Arc::new(Solver::new(monolithic))),
            ExploreConfig::default(),
        );
        prop_assert!(!reference.truncated);
        prop_assert!(reference.diagnostics.is_clean());
        let reference_summary = summary(&reference);

        let incremental = || Arc::new(Solver::optimized());
        let dfs = explore(&prog, "main", state_with(incremental()), ExploreConfig::default());
        prop_assert_eq!(&summary(&dfs), &reference_summary, "incremental DFS diverged");
        prop_assert_eq!(dfs.total_cmds, reference.total_cmds);

        let bfs = explore(
            &prog,
            "main",
            state_with(incremental()),
            ExploreConfig { strategy: SearchStrategy::Bfs, ..Default::default() },
        );
        prop_assert_eq!(&summary(&bfs), &reference_summary, "incremental BFS diverged");
        prop_assert_eq!(bfs.total_cmds, reference.total_cmds);

        for workers in 1..=4usize {
            let par = explore_parallel(
                &prog,
                "main",
                state_with(incremental()),
                ExploreConfig { workers, ..Default::default() },
            );
            prop_assert_eq!(
                &summary(&par),
                &reference_summary,
                "incremental parallel ({}) diverged from monolithic",
                workers
            );
            prop_assert_eq!(par.total_cmds, reference.total_cmds);
            prop_assert!(par.diagnostics.is_clean(), "unexpected incidents: {:?}", par.diagnostics);
        }
    }
}
