//! The engine-level differential battery: seeded random memory-less GIL
//! programs, each explored symbolically and replayed concretely path by
//! path through the CSC oracle. Any disagreement is an engine bug.
//!
//! Reproducibility knobs (all environment variables):
//!
//! - `GILLIAN_DIFFTEST_SEED`  — base seed (default 0); case `i` runs with
//!   seed `base + i`, so a failing case prints the exact seed to rerun.
//! - `GILLIAN_DIFFTEST_CASES` — programs per sub-battery (default 100).
//! - `GILLIAN_WORKERS`        — symbolic exploration workers (default 1);
//!   CI runs the battery under both 1 and 4.

use gillian_core::difftest::run_differential;
use gillian_core::explore::{ExploreConfig, SearchStrategy};
use gillian_core::generate::{build_prog, gen_ops, MemDialect, Rng};
use gillian_core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian_gil::{Expr, Value};
use gillian_solver::{PathCondition, Solver};
use gillian_telemetry::Journal;
use std::sync::Arc;

/// Echo memories: both sides are stateless and return the action's
/// argument, so the only thing under test is the engine itself.
#[derive(Clone, Debug, Default)]
struct EchoSym;
impl SymbolicMemory for EchoSym {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(EchoSym, arg.clone())]
    }
}

#[derive(Clone, Debug, Default)]
struct EchoConc;
impl ConcreteMemory for EchoConc {
    fn execute_action(&mut self, _: &str, arg: Value) -> Result<Value, Value> {
        Ok(arg)
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn battery_config(strategy: SearchStrategy, bytecode: bool, summaries: bool) -> ExploreConfig {
    ExploreConfig {
        strategy,
        workers: env_u64("GILLIAN_WORKERS", 1) as usize,
        bytecode: Some(bytecode),
        summaries: Some(summaries),
        journal: Journal::disabled(),
        ..Default::default()
    }
}

fn run_battery(strategy: SearchStrategy, bytecode: bool, summaries: bool, salt: u64) {
    let base = env_u64("GILLIAN_DIFFTEST_SEED", 0);
    let cases = env_u64("GILLIAN_DIFFTEST_CASES", 100);
    let solver = Arc::new(Solver::optimized());
    let (mut paths, mut replayed, mut skipped) = (0usize, 0usize, 0usize);
    for i in 0..cases {
        let seed = base.wrapping_add(salt).wrapping_add(i);
        let ops = gen_ops(&mut Rng::new(seed), 16, MemDialect::None);
        let prog = build_prog(&ops, MemDialect::None);
        let report = run_differential::<EchoSym, EchoConc>(
            &prog,
            "main",
            solver.clone(),
            battery_config(strategy, bytecode, summaries),
        );
        assert!(
            report.agreed(),
            "seed {seed} ({strategy:?}): {} divergence(s), first: {}\nops: {ops:?}",
            report.divergences.len(),
            report.divergences[0],
        );
        paths += report.sym_paths;
        replayed += report.replayed;
        skipped += report.skipped.len();
    }
    // The oracle must actually be checking something. Some skips are
    // expected: the SAT checker's linear reasoning is incomplete over
    // bit operations and symbolic divisors, so wrapping-infeasible
    // "false paths" get explored optimistically and then correctly fail
    // model extraction (reported as `no-model`, see DESIGN.md §13). They
    // must stay a bounded minority.
    assert!(replayed > 0, "battery replayed nothing");
    assert!(
        skipped * 3 <= paths,
        "too many skipped paths ({skipped}/{paths}) — the differential \
         guarantee is full of holes"
    );
    eprintln!(
        "difftest battery ({strategy:?}): {paths} paths, {replayed} replayed, {skipped} skipped"
    );
}

#[test]
fn engine_battery_dfs() {
    run_battery(SearchStrategy::Dfs, false, false, 0x5EED_0000);
}

#[test]
fn engine_battery_bfs() {
    run_battery(SearchStrategy::Bfs, false, false, 0x5EED_1000);
}

/// The same oracle with the register-bytecode backend forced on for both
/// the symbolic exploration *and* the concrete replays (the replay config
/// inherits the toggle). Uses the same seeds as the tree-walk legs above,
/// so a bytecode-only failure pinpoints a compiler bug by seed.
#[test]
fn engine_battery_dfs_bytecode() {
    run_battery(SearchStrategy::Dfs, true, false, 0x5EED_0000);
}

#[test]
fn engine_battery_bfs_bytecode() {
    run_battery(SearchStrategy::Bfs, true, false, 0x5EED_1000);
}

/// The same oracle with procedure summaries armed: the symbolic side may
/// splice cached post-states at `helper` call sites, and every spliced
/// path must still replay concretely — same outcome, return value, and
/// final store under the model. Uses the same seeds as the cold legs, so
/// a summaries-only failure pinpoints a splice bug by seed.
#[test]
fn engine_battery_dfs_summaries() {
    run_battery(SearchStrategy::Dfs, false, true, 0x5EED_0000);
}

#[test]
fn engine_battery_bfs_summaries() {
    run_battery(SearchStrategy::Bfs, false, true, 0x5EED_1000);
}
