//! `Unknown` sat verdicts must never prune a branch.
//!
//! A solver that cannot decide feasibility has to keep *both* successors
//! of a branch — dropping either one would be unsound (a kept branch is at
//! worst a false positive; a dropped branch is a missed bug). We check this
//! by running the same programs under the normal solver and under a
//! *crippled* solver whose sat deadline is already expired, so every
//! non-trivially-false query answers [`SatResult::Unknown`]:
//!
//! - the crippled run's path set is a superset of the normal run's
//!   (order-normalized, multiset inclusion);
//! - the crippled run reports its Unknown verdicts in the diagnostics and
//!   is marked [`ExploreResult::bounded`].
//!
//! [`SatResult::Unknown`]: gillian_solver::SatResult::Unknown

mod common;

use common::{build_prog, op_strategy, state, state_with, summary, NoMem};
use gillian_core::explore::{explore, ExploreConfig};
use gillian_core::symbolic::SymbolicState;
use gillian_gil::{Cmd, Expr, Proc, Prog};
use gillian_solver::{Solver, SolverConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// A solver whose sat deadline has already passed: every query that is not
/// trivially false comes back `Unknown`.
fn crippled_state() -> SymbolicState<NoMem> {
    let mut config = SolverConfig::optimized();
    config.sat_budget.deadline = Some(Instant::now());
    state_with(Arc::new(Solver::new(config)))
}

/// `needle` is a sub-multiset of `haystack`; both are sorted.
fn is_submultiset(needle: &[(String, String)], haystack: &[(String, String)]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|entry| it.any(|h| h == entry))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unknown_keeps_every_branch_on_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let prog = build_prog(&ops);

        let full = explore(&prog, "main", state(), ExploreConfig::default());
        prop_assert!(!full.truncated);

        let unknown = explore(&prog, "main", crippled_state(), ExploreConfig::default());
        prop_assert!(!unknown.truncated, "Unknown must not truncate exploration");

        // Every path the deciding solver found survives verbatim under the
        // undecided solver; the undecided run may only *add* paths.
        let full_summary = summary(&full);
        let unknown_summary = summary(&unknown);
        prop_assert!(
            is_submultiset(&full_summary, &unknown_summary),
            "crippled solver dropped a path: full={full_summary:?} unknown={unknown_summary:?}",
        );
        prop_assert!(unknown.paths.len() >= full.paths.len());

        // Any sat query at all is undecided, so if the program forced one,
        // the run must say so and flag itself as bounded.
        if unknown.diagnostics.unknown_verdicts > 0 {
            prop_assert!(unknown.bounded(), "Unknown verdicts must mark the result bounded");
        } else {
            prop_assert_eq!(&unknown_summary, &full_summary);
        }
    }
}

/// Deterministic witness: a guard that contradicts the path condition is
/// pruned by the deciding solver but kept (as a third path) when the
/// verdict is `Unknown`.
#[test]
fn contradictory_branch_is_kept_under_unknown() {
    let x_neg = Expr::pvar("x").lt(Expr::int(0));
    let prog = Prog::from_procs([Proc::new(
        "main",
        [],
        vec![
            Cmd::isym("x", 0),
            Cmd::IfGoto(x_neg.clone(), 4),
            // Fall-through carries ¬(x < 0); re-testing x < 0 is infeasible.
            Cmd::IfGoto(x_neg, 5),
            Cmd::Return(Expr::int(0)),
            Cmd::Return(Expr::int(1)),
            Cmd::Return(Expr::int(2)),
        ],
    )]);

    let full = explore(&prog, "main", state(), ExploreConfig::default());
    assert_eq!(
        full.paths.len(),
        2,
        "deciding solver prunes the contradiction"
    );
    assert!(full.diagnostics.is_clean());
    assert!(!full.bounded());

    let unknown = explore(&prog, "main", crippled_state(), ExploreConfig::default());
    assert_eq!(
        unknown.paths.len(),
        3,
        "Unknown keeps both successors of the contradictory branch"
    );
    assert!(unknown.diagnostics.unknown_verdicts > 0);
    assert!(unknown.bounded());
    assert!(!unknown.truncated);
    assert!(is_submultiset(&summary(&full), &summary(&unknown)));
}

/// An interrupted *incremental* solve — one that could have reused a
/// healthy frozen prefix — must still answer `Unknown`, must not freeze a
/// (partial or fast-path) solve context on the new chain node, and must
/// not poison the exact cache: prefix reuse never outruns the clock.
#[test]
fn interrupted_incremental_solve_freezes_nothing() {
    use gillian_gil::LVar;
    use gillian_solver::{CancelToken, Interrupt, PathCondition, SatResult};

    // Implication caching off, so the final re-solve below provably goes
    // through the incremental path (an implication hit would answer from
    // a witness model without freezing anything, which is also fine but
    // not what this test pins).
    let solver = Solver::new(SolverConfig {
        implication_caching: false,
        ..SolverConfig::optimized()
    });
    let x = Expr::lvar(LVar(0));
    // Warm a frozen prefix while the solver is healthy.
    let (verdict, pc) = solver.sat_assume(&PathCondition::new(), &Expr::int(0).le(x.clone()));
    assert_eq!(verdict, SatResult::Sat);
    assert!(pc.has_solve_ctx(), "a healthy Sat freezes its context");

    // Expired run-level deadline: the extension query is out of time even
    // though its frozen prefix could answer it without any solving.
    solver.set_interrupt(Interrupt::new(Some(Instant::now()), CancelToken::new()));
    let (verdict, pc2) = solver.sat_assume(&pc, &x.clone().lt(Expr::int(10)));
    assert_eq!(
        verdict,
        SatResult::Unknown,
        "prefix reuse must not outrun an expired deadline"
    );
    assert!(
        !pc2.has_solve_ctx(),
        "an interrupted solve must never freeze a context"
    );

    // The Unknown was not cached either: clearing the interrupt decides,
    // and the decided solve freezes normally.
    solver.clear_interrupt();
    assert_eq!(solver.check_sat(&pc2), SatResult::Sat);
    assert!(pc2.has_solve_ctx());
}

/// Same scenario one layer up: a branch whose guard contradicts a warm
/// (frozen-context) path condition keeps *both* successors once the
/// deadline fires — the incremental layers must not let the engine prune
/// what the monolithic solver could not decide.
#[test]
fn interrupted_branch_on_warm_prefix_keeps_both_successors() {
    use gillian_core::state::GilState;
    use gillian_gil::LVar;
    use gillian_solver::{CancelToken, Interrupt, PathCondition, SatResult};

    let solver = Arc::new(Solver::optimized());
    let x = Expr::lvar(LVar(0));
    let (verdict, pc) = solver.sat_assume(&PathCondition::new(), &Expr::int(0).le(x.clone()));
    assert_eq!(verdict, SatResult::Sat);
    assert!(pc.has_solve_ctx());

    let mut st = state_with(solver.clone());
    st.pc = pc;
    // Healthy solver: `x < 0` contradicts the prefix, one successor.
    let healthy = st.branch_on(&x.clone().lt(Expr::int(0))).expect("eval");
    assert_eq!(
        healthy.len(),
        1,
        "a deciding solver prunes the contradiction"
    );

    // Expired deadline, and a guard not queried before (a decided verdict
    // already in the exact cache stays valid regardless of deadlines —
    // only *solving* is out of time): both verdicts are Unknown, both
    // successors stay.
    solver.set_interrupt(Interrupt::new(Some(Instant::now()), CancelToken::new()));
    let undecided = st.branch_on(&x.lt(Expr::int(-1))).expect("eval");
    assert_eq!(
        undecided.len(),
        2,
        "Unknown must keep both successors despite the warm prefix"
    );
    for (succ, _) in &undecided {
        assert!(
            !succ.pc.has_solve_ctx(),
            "undecided successors must not carry frozen contexts"
        );
    }
    solver.clear_interrupt();
}
