//! Property tests for restriction (paper Def. 3.1): the three laws —
//! idempotence, right commutativity, weakening — on the engine's
//! restriction instances, plus the compatibility of the induced pre-order
//! (Def. 3.4) on path-condition-carrying states.

use gillian_core::allocator::{ConcAllocator, SymAllocator};
use gillian_core::memory::{SymBranch, SymbolicMemory};
use gillian_core::restriction::{check_restriction_laws, Restrict};
use gillian_core::symbolic::SymbolicState;
use gillian_gil::{Expr, LVar};
use gillian_solver::{PathCondition, Solver};
use proptest::prelude::*;
use std::sync::Arc;

/// A trivial symbolic memory, to instantiate `SymbolicState`.
#[derive(Clone, Debug, Default, PartialEq)]
struct NoMem;
impl SymbolicMemory for NoMem {
    fn execute_action(
        &self,
        _: &str,
        arg: &Expr,
        _: &PathCondition,
        _: &Solver,
    ) -> Vec<SymBranch<Self>> {
        vec![SymBranch::ok(NoMem, arg.clone())]
    }
}

/// Builds an allocator that has performed the given allocation script.
fn alloc_after(usyms: u8, isyms: u8) -> SymAllocator {
    let mut a = SymAllocator::new();
    for i in 0..usyms {
        let _ = a.alloc_usym(i as u32);
    }
    for i in 0..isyms {
        let _ = a.alloc_isym(i as u32);
    }
    a
}

/// Builds a state whose path condition contains the selected constraints.
fn state_with(picks: &[bool]) -> SymbolicState<NoMem> {
    let universe: Vec<Expr> = vec![
        Expr::lvar(LVar(0)).lt(Expr::int(10)),
        Expr::int(0).le(Expr::lvar(LVar(0))),
        Expr::lvar(LVar(1)).eq(Expr::str("k")),
        Expr::lvar(LVar(2)).ne(Expr::lvar(LVar(0))),
        Expr::lvar(LVar(1))
            .type_of()
            .eq(Expr::type_tag(gillian_gil::TypeTag::Str)),
    ];
    let mut st = SymbolicState::<NoMem>::new(Arc::new(Solver::optimized()));
    for (i, take) in picks.iter().enumerate() {
        if *take {
            st.assume_unchecked(universe[i % universe.len()].clone());
        }
    }
    st
}

/// States compare by the components restriction touches.
fn key(st: &SymbolicState<NoMem>) -> (Vec<Expr>, SymAllocator) {
    (st.pc.sorted_conjuncts(), st.alloc().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn allocator_restriction_laws(
        (u1, i1) in (0u8..6, 0u8..6),
        (u2, i2) in (0u8..6, 0u8..6),
        (u3, i3) in (0u8..6, 0u8..6),
    ) {
        let a = alloc_after(u1, i1);
        let b = alloc_after(u2, i2);
        let c = alloc_after(u3, i3);
        check_restriction_laws(&a, &b, &c).unwrap();
        // Monotonicity w.r.t. allocation (Def. 3.3): allocating refines.
        let mut a2 = a.clone();
        let _ = a2.alloc_usym(0);
        prop_assert!(a2.refines(&a));
        let mut a3 = a.clone();
        let _ = a3.alloc_isym(0);
        prop_assert!(a3.refines(&a));
    }

    #[test]
    fn concrete_allocator_restriction_laws(
        n1 in 0u8..6, n2 in 0u8..6, n3 in 0u8..6,
    ) {
        let mk = |n: u8| {
            let mut a = ConcAllocator::new();
            for i in 0..n {
                let _ = a.alloc_usym(i as u32);
            }
            a
        };
        check_restriction_laws(&mk(n1), &mk(n2), &mk(n3)).unwrap();
    }

    #[test]
    fn state_restriction_laws(
        p1 in proptest::collection::vec(any::<bool>(), 5),
        p2 in proptest::collection::vec(any::<bool>(), 5),
        p3 in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let s1 = state_with(&p1);
        let s2 = state_with(&p2);
        let s3 = state_with(&p3);
        // Idempotence.
        prop_assert_eq!(key(&s1.restrict(&s1)), key(&s1));
        // Right commutativity.
        prop_assert_eq!(
            key(&s1.restrict(&s2).restrict(&s3)),
            key(&s1.restrict(&s3).restrict(&s2))
        );
        // Weakening.
        if key(&s1.restrict(&s2).restrict(&s3)) == key(&s1) {
            prop_assert_eq!(key(&s1.restrict(&s2)), key(&s1));
            prop_assert_eq!(key(&s1.restrict(&s3)), key(&s1));
        }
    }

    /// ⇃-≤ compatibility on path conditions: restriction only adds
    /// constraints, so every model of the restricted pc satisfies the
    /// original (restriction increases precision, Def. 3.4).
    #[test]
    fn restriction_increases_precision(
        p1 in proptest::collection::vec(any::<bool>(), 5),
        p2 in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let s1 = state_with(&p1);
        let s2 = state_with(&p2);
        let restricted = s1.restrict(&s2);
        prop_assert!(
            restricted.pc.subsumes(&s1.pc),
            "{} should subsume {}",
            restricted.pc,
            s1.pc
        );
        // And any model of the restricted pc satisfies the original.
        let solver = Solver::optimized();
        if let Some(model) = solver.model(&restricted.pc) {
            prop_assert!(model.satisfies(&s1.pc.conjuncts()));
        }
    }
}
