//! Regression test for interner-stat attribution
//! ([`ExploreDiagnostics::interner`]).
//!
//! The interner's counters are process-global. The engines used to
//! attribute a run's activity by diffing *global* snapshots around the
//! run, which folds in every other thread minting terms concurrently —
//! and, for the parallel engine, double-counts when per-worker global
//! diffs are summed. The fix attributes via **thread-local** deltas
//! (each engine thread measures only itself); this test pins that down
//! by hammering the interner from an unrelated thread for the entire
//! duration of a run and asserting the noise does not leak into the
//! run's diagnostics.

mod common;

use common::{build_prog, state, Op};
use gillian_core::explore::{explore, explore_parallel, ExploreConfig};
use gillian_gil::{Expr, InternStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

/// Mints unique terms on the calling thread until `stop` — with a floor
/// of `min` mints so some overlap with the measured run is guaranteed
/// even under extreme scheduling. Values start far outside anything the
/// explored program interns.
fn mint_noise(stop: &AtomicBool, min: u64) -> u64 {
    let base = 1i64 << 40;
    let mut minted = 0u64;
    while minted < min || !stop.load(Ordering::Relaxed) {
        // A batch between stop checks; each int is unique, so each is a
        // fresh mint.
        for _ in 0..10_000 {
            let _ = Expr::int(base + minted as i64);
            minted += 1;
        }
        if minted >= 5_000_000 {
            break; // hard cap: never spin forever if the run wedges
        }
    }
    minted
}

fn branching_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..8u8 {
        ops.push(Op::Sym);
        ops.push(Op::Branch(i, 1));
        ops.push(Op::Bump(i as i64));
    }
    ops
}

fn run_with_background_noise(workers: usize) -> (InternStats, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(2));
    let noise = {
        let stop = stop.clone();
        let start = start.clone();
        std::thread::spawn(move || {
            start.wait();
            mint_noise(&stop, 100_000)
        })
    };
    start.wait();
    let prog = build_prog(&branching_ops());
    let cfg = ExploreConfig {
        workers,
        ..Default::default()
    };
    let r = if workers > 1 {
        explore_parallel(&prog, "main", state(), cfg)
    } else {
        explore(&prog, "main", state(), cfg)
    };
    stop.store(true, Ordering::Relaxed);
    let minted = noise.join().expect("noise thread");
    assert_eq!(r.paths.len(), 256, "workers={workers}");
    (r.diagnostics.interner, minted)
}

#[test]
fn serial_interner_stats_ignore_other_threads() {
    let (attributed, noise_mints) = run_with_background_noise(1);
    assert!(noise_mints >= 100_000, "noise thread minted {noise_mints}");
    assert!(
        attributed.mints < 50_000,
        "run attributed {} mints — background noise leaked in (noise minted {noise_mints})",
        attributed.mints
    );
    assert!(
        attributed.mints > 0,
        "the run's own interning must still be visible"
    );
}

#[test]
fn parallel_interner_stats_ignore_other_threads_and_do_not_double_count() {
    let (serial, _) = run_with_background_noise(1);
    let (par, noise_mints) = run_with_background_noise(4);
    assert!(
        par.mints < 50_000,
        "parallel run attributed {} mints — noise leaked in (noise minted {noise_mints})",
        par.mints
    );
    // Worker deltas are summed, never multiplied: the parallel run's own
    // traffic is the same order of magnitude as the serial run's (it
    // interns the same terms, modulo hash-cons hit/mint races between
    // workers), not `workers`× the global delta.
    let serial_total = serial.mints + serial.hits;
    let par_total = par.mints + par.hits;
    assert!(
        par_total <= serial_total * 2,
        "parallel attribution ({par_total}) blew past serial ({serial_total}) — double counting?"
    );
}
