//! Exploration-profiler properties (DESIGN.md §16):
//!
//! 1. **Schedule independence** — the exploration tree reconstructed
//!    from the merged journal depends only on the program: 1 worker and
//!    4 workers produce the same node set, fork arms, outcomes, leaf
//!    counts, command attribution, and folded-stack keys. Only the
//!    timing numbers may differ.
//! 2. **Folded-stacks coverage** — on a fixed-seed generated program,
//!    every finished path's branch trace appears as a folded stack, and
//!    the folded sink writes a parseable `stack value` line per key.
//!
//! Journals are installed explicitly on [`ExploreConfig`] — never via
//! `GILLIAN_TRACE` (the env is read once per process and would leak
//! across parallel test binaries).

mod common;

use common::{state, Op};
use gillian_core::explore::{explore, explore_parallel, ExploreConfig};
use gillian_core::generate::{gen_ops, MemDialect, Rng};
use gillian_telemetry::{EventRecord, ExploreTree, Journal};

/// An eight-way branching program: 2^8 paths with forks at every level.
fn wide_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..8u8 {
        ops.push(Op::Sym);
        ops.push(Op::Branch(i, 1));
    }
    ops
}

fn run_journaled(prog: &gillian_gil::Prog, workers: usize) -> (usize, Vec<EventRecord>) {
    let journal = Journal::enabled();
    let cfg = ExploreConfig {
        workers,
        journal: journal.clone(),
        ..Default::default()
    };
    let r = if workers > 1 {
        explore_parallel(prog, "main", state(), cfg)
    } else {
        explore(prog, "main", state(), cfg)
    };
    (r.paths.len(), journal.last_run().to_vec())
}

/// The timing-independent shape of one profile-tree node: its path,
/// fork arms, outcome tag, finished-leaf count, and attributed commands.
type NodeShape = (Vec<u32>, u32, Option<&'static str>, u64, u64);

fn shape(tree: &ExploreTree) -> Vec<NodeShape> {
    tree.nodes()
        .map(|(path, node)| {
            (
                path.to_vec(),
                node.arms,
                node.outcome,
                node.leaves,
                node.excl.step_cmds,
            )
        })
        .collect()
}

#[test]
fn profile_tree_is_schedule_independent() {
    let prog = common::build_prog(&wide_ops());
    let (paths1, serial) = run_journaled(&prog, 1);
    let (paths4, par) = run_journaled(&prog, 4);
    assert_eq!(paths1, 256);
    assert_eq!(paths4, 256);
    let t1 = ExploreTree::from_records(&serial);
    let t4 = ExploreTree::from_records(&par);
    assert_eq!(
        shape(&t1),
        shape(&t4),
        "tree structure and command attribution must not depend on scheduling"
    );
    assert_eq!(
        t1.folded_keys(),
        t4.folded_keys(),
        "folded stacks must not depend on scheduling"
    );
    assert_eq!(t1.unattributed, 0, "all events must land on tree nodes");
    assert_eq!(t4.unattributed, 0, "all events must land on tree nodes");
    // Exclusive time only exists where commands ran; inclusive rollups
    // are monotone up the tree.
    let root = t1.node(&[]).expect("root node");
    assert!(root.incl.step_cmds >= root.excl.step_cmds);
    assert_eq!(root.leaves, 256, "every finished path rolls up to the root");
}

#[test]
fn folded_stacks_cover_generated_program_and_export_parses() {
    // Fixed-seed generated program (pure dialect: no memory model needed).
    const SEED: u64 = 0x90F1_13E5;
    let ops = gen_ops(&mut Rng::new(SEED), 14, MemDialect::None);
    let prog = gillian_core::generate::build_prog(&ops, MemDialect::None);

    let folded_path = std::env::temp_dir().join(format!(
        "gillian-profiler-test-{}.folded",
        std::process::id()
    ));
    let folded_str = folded_path.to_str().expect("utf-8 temp path").to_string();
    let _ = std::fs::remove_file(&folded_path);

    let journal = Journal::enabled().with_folded_sink(folded_str.clone());
    let cfg = ExploreConfig {
        journal: journal.clone(),
        ..Default::default()
    };
    let r = explore(&prog, "main", state(), cfg);
    assert!(!r.paths.is_empty());
    let tree = ExploreTree::from_records(&journal.last_run());

    // Every finished path's branch trace is a node with an outcome.
    for p in &r.paths {
        let node = tree
            .node(&p.trace)
            .unwrap_or_else(|| panic!("path {:?} missing from the tree", p.trace));
        assert!(
            node.outcome.is_some(),
            "finished path must carry an outcome"
        );
    }
    // The run is single-proc, so every folded key ends in `main` and the
    // key set is exactly the per-node stack set (deterministic re-run).
    let keys = tree.folded_keys();
    assert!(!keys.is_empty());
    for k in &keys {
        assert!(k.starts_with("(root)"), "folded key {k:?} must be rooted");
        assert!(
            k.ends_with(";main"),
            "folded key {k:?} must end in the proc"
        );
    }
    let journal2 = Journal::enabled();
    let cfg2 = ExploreConfig {
        journal: journal2.clone(),
        ..Default::default()
    };
    let _ = explore(&prog, "main", state(), cfg2);
    let tree2 = ExploreTree::from_records(&journal2.last_run());
    assert_eq!(
        keys,
        tree2.folded_keys(),
        "folded keys must be deterministic"
    );

    // The folded sink wrote one `stack value` line per key, newline-
    // terminated — the format inferno/speedscope ingest.
    let text = std::fs::read_to_string(&folded_path).expect("folded file written");
    assert!(text.ends_with('\n'));
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), keys.len());
    for line in &lines {
        let (stack, value) = line.rsplit_once(' ').expect("`stack value` format");
        assert!(stack.starts_with("(root)"));
        value.parse::<u64>().expect("folded value must be integral");
    }
    let _ = std::fs::remove_file(&folded_path);
}
