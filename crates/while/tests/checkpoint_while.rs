//! Checkpoint/resume over the While instantiation: unlike the engine-level
//! battery (which uses a stateless memory), these runs carry real symbolic
//! heaps — `(location, property) ⇀ expression` cells — through the
//! checkpoint's save/load round trip, so the whole state stack is
//! exercised: store, call frames, allocator, path condition, and memory.

use gillian_core::checkpoint::StateCtx;
use gillian_core::explore::{explore_resume, explore_with, ExploreConfig, SearchStrategy};
use gillian_core::faults::FaultPlan;
use gillian_core::symbolic::SymbolicState;
use gillian_core::CheckpointConfig;
use gillian_solver::Solver;
use gillian_while::{compile_program, parse_program, WhileSymMemory};
use std::collections::BTreeSet;
use std::sync::Arc;

type St = SymbolicState<WhileSymMemory>;

/// A heap-heavy branching program: several objects, aliasing lookups, and
/// a symbolic branch tree wide enough that a mid-run kill leaves real
/// memories in the frontier.
const SOURCE: &str = r#"
    proc main() {
        x := symb();
        assume (0 <= x and x < 8);
        o := { lo: x, hi: x + 10, tag: 0 };
        p := { lo: x * 2, hi: x + 20, tag: 1 };
        i := 0;
        acc := 0;
        while (i < 3) {
            lo := o.lo;
            hi := p.hi;
            if (x < i + 2) { acc := acc + lo; } else { acc := acc + hi; }
            o.tag := acc;
            i := i + 1;
        }
        if (acc < 15) { r := o.tag; } else { r := p.tag; }
        return r + acc;
    }
"#;

fn cfg(strategy: SearchStrategy) -> ExploreConfig {
    ExploreConfig {
        strategy,
        ..Default::default()
    }
}

fn path_set(
    paths: impl IntoIterator<Item = (Vec<u32>, String, u64)>,
) -> BTreeSet<(Vec<u32>, String, u64)> {
    paths.into_iter().collect()
}

fn ckpt_path(tag: &str) -> std::path::PathBuf {
    // Under CI the battery writes into GILLIAN_FAULT_ARTIFACTS so a
    // failing run uploads the exact checkpoint bytes that misbehaved.
    let dir = std::env::var("GILLIAN_FAULT_ARTIFACTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    dir.join(format!(
        "gillian-while-ckpt-{}-{tag}.bin",
        std::process::id()
    ))
}

#[test]
fn while_heap_survives_kill_and_resume() {
    let prog = compile_program(&parse_program(SOURCE).expect("parse"));
    let solver = Arc::new(Solver::optimized());
    let ctx = StateCtx::new(solver.clone());
    for strategy in [SearchStrategy::Dfs, SearchStrategy::Bfs] {
        let baseline = explore_with(&prog, "main", St::new(solver.clone()), cfg(strategy));
        assert!(
            !baseline.bounded(),
            "{strategy:?}: baseline must be exhaustive"
        );
        let want = path_set(
            baseline
                .paths
                .iter()
                .map(|p| (p.trace.clone(), p.outcome.kind().to_string(), p.cmds)),
        );
        assert!(want.len() > 4, "{strategy:?}: program too small to test");
        // Kill at a sweep of points deep enough to have live heaps in the
        // frontier; resume must reconstruct the exact path set.
        let mut kills = 0;
        for k in [5u64, 20, 45, 80, 130] {
            let path = ckpt_path(&format!("{strategy:?}-{k}"));
            let mut killed_cfg = cfg(strategy);
            killed_cfg.faults = Some(Arc::new(FaultPlan::seeded(k).kill_at(k)));
            killed_cfg.checkpoint = Some(CheckpointConfig::at(&path));
            let cut = explore_with(&prog, "main", St::new(solver.clone()), killed_cfg);
            if !cut.killed {
                let got = path_set(
                    cut.paths
                        .iter()
                        .map(|p| (p.trace.clone(), p.outcome.kind().to_string(), p.cmds)),
                );
                assert_eq!(got, want, "{strategy:?} kill@{k}: unkilled run perturbed");
                let _ = std::fs::remove_file(&path);
                continue;
            }
            kills += 1;
            let resumed =
                explore_resume(&prog, &path, &ctx, St::new(solver.clone()), cfg(strategy))
                    .unwrap_or_else(|e| panic!("{strategy:?} kill@{k}: resume failed: {e}"));
            let got = path_set(
                resumed
                    .prior
                    .iter()
                    .map(|p| (p.trace.clone(), p.outcome.clone(), p.cmds))
                    .chain(
                        resumed
                            .result
                            .paths
                            .iter()
                            .map(|p| (p.trace.clone(), p.outcome.kind().to_string(), p.cmds)),
                    ),
            );
            assert_eq!(
                got, want,
                "{strategy:?} kill@{k}: resumed path set differs from baseline"
            );
            assert_eq!(
                resumed.result.total_cmds, baseline.total_cmds,
                "{strategy:?} kill@{k}: command accounting diverged"
            );
            let _ = std::fs::remove_file(&path);
        }
        assert!(kills > 0, "{strategy:?}: no kill ever fired");
    }
}

/// The memory round trip in isolation: save a populated heap through an
/// encoder, reload it, and check cell-for-cell equality (including the
/// intern-id remap — the decoder re-interns every term).
#[test]
fn while_memory_round_trips_cells() {
    use gillian_core::memory::SymbolicMemory;
    use gillian_gil::serial::{ByteReader, Decoder, Encoder};
    use gillian_gil::{Expr, LVar};

    let mut mem = WhileSymMemory::default();
    mem.insert(Expr::int(1), "lo", Expr::lvar(LVar(0)).add(Expr::int(3)));
    mem.insert(Expr::int(1), "hi", Expr::lvar(LVar(1)));
    mem.insert(Expr::lvar(LVar(2)), "tag", Expr::str("t"));

    let mut enc = Encoder::new();
    let mut body = Vec::new();
    mem.save(&mut enc, &mut body).expect("save");
    let mut payload = Vec::new();
    enc.write_table(&mut payload).expect("table");
    payload.extend_from_slice(&body);

    let mut r = ByteReader::new(&payload);
    let dec = Decoder::read_table(&mut r).expect("read table");
    let back = WhileSymMemory::load(&dec, &mut r).expect("load");
    assert!(r.is_empty(), "trailing bytes after memory");
    assert_eq!(back, mem);
}
