//! Bytecode-vs-tree-walk equivalence over *memory-bearing* programs: the
//! seeded `generate.rs` While dialect (`lookup`/`mutate`/`dispose` over
//! symbolic locations) explored on both evaluator backends. The engine's
//! own battery (`crates/core/tests/bytecode_equiv.rs`) covers the pure
//! fragment; this one makes sure compiled action arguments — the lists
//! the bytecode evaluator folds in value space — reach the While memory
//! model bit-for-bit, across DFS/BFS and serial/parallel exploration.

use gillian_core::explore::{explore_with, ExploreConfig, ExploreResult, SearchStrategy};
use gillian_core::generate::{build_prog, gen_ops, MemDialect, Rng};
use gillian_core::symbolic::SymbolicState;
use gillian_solver::Solver;
use gillian_while::WhileSymMemory;
use std::collections::BTreeSet;
use std::sync::Arc;

type St = SymbolicState<WhileSymMemory>;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn path_set(result: &ExploreResult<St>) -> BTreeSet<(Vec<u32>, String, u64)> {
    result
        .paths
        .iter()
        .map(|p| (p.trace.clone(), p.outcome.kind().to_string(), p.cmds))
        .collect()
}

fn config(strategy: SearchStrategy, workers: usize, bytecode: bool) -> ExploreConfig {
    ExploreConfig {
        strategy,
        workers,
        bytecode: Some(bytecode),
        ..Default::default()
    }
}

fn run_battery(strategy: SearchStrategy, workers: usize, salt: u64) {
    let base = env_u64("GILLIAN_BYTECODE_SEED", 0);
    let cases = env_u64("GILLIAN_BYTECODE_CASES", 25);
    let solver = Arc::new(Solver::optimized());
    let mut paths = 0usize;
    for i in 0..cases {
        let seed = base.wrapping_add(salt).wrapping_add(i);
        let ops = gen_ops(&mut Rng::new(seed), 14, MemDialect::While);
        let prog = build_prog(&ops, MemDialect::While);
        let tree = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(strategy, workers, false),
        );
        let byte = explore_with(
            &prog,
            "main",
            St::new(solver.clone()),
            config(strategy, workers, true),
        );
        assert_eq!(
            path_set(&tree),
            path_set(&byte),
            "seed {seed} ({strategy:?}, {workers} workers): bytecode \
             diverged from tree walk on While memory\nops: {ops:?}"
        );
        assert_eq!(tree.total_cmds, byte.total_cmds, "seed {seed}");
        paths += tree.paths.len();
    }
    assert!(paths > 0, "battery explored nothing");
    eprintln!("while bytecode battery ({strategy:?}, {workers} workers): {paths} paths agreed");
}

#[test]
fn while_bytecode_matches_treewalk_serial() {
    run_battery(SearchStrategy::Dfs, 1, 0x3317_0000);
    run_battery(SearchStrategy::Bfs, 1, 0x3317_1000);
}

#[test]
fn while_bytecode_matches_treewalk_parallel() {
    for workers in 2..=4 {
        run_battery(SearchStrategy::Dfs, workers, 0x3317_2000 + workers as u64);
        run_battery(SearchStrategy::Bfs, workers, 0x3317_3000 + workers as u64);
    }
}
