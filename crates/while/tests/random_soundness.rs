//! Randomized end-to-end soundness: generate arbitrary While programs
//! (symbolic inputs, arithmetic, objects, branching, bounded loops,
//! assertions), explore them symbolically, and replay every modelled path
//! concretely under the model-derived allocator script. The final
//! outcomes must coincide — paper Theorem 3.6 as a property test over the
//! whole pipeline (compiler, memory models, engine, solver).

use gillian_core::explore::ExploreConfig;
use gillian_core::soundness::check_program;
use gillian_gil::Expr;
use gillian_solver::Solver;
use gillian_while::ast::{Function, Module, Stmt};
use gillian_while::compile::compile_program;
use gillian_while::{WhileConcMemory, WhileSymMemory};
use proptest::prelude::*;
use std::sync::Arc;

const VARS: [&str; 3] = ["a", "b", "c"];

fn var() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(VARS.to_vec())
}

/// Arithmetic over the integer variables (kept total: +, -, * only).
fn arb_arith() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(-10i64..10).prop_map(Expr::int), var().prop_map(Expr::pvar),];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.add(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.sub(y)),
            (inner.clone(), inner).prop_map(|(x, y)| x.mul(y)),
        ]
    })
}

fn arb_cond() -> impl Strategy<Value = Expr> {
    (arb_arith(), arb_arith(), 0..4u8).prop_map(|(x, y, op)| match op {
        0 => x.lt(y),
        1 => x.le(y),
        2 => x.eq(y),
        _ => x.ne(y),
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let simple = prop_oneof![
        (var(), arb_arith()).prop_map(|(x, e)| Stmt::Assign(x.to_string(), e)),
        // Object writes and reads through the single object `o`.
        (proptest::sample::select(vec!["p", "q"]), arb_arith()).prop_map(|(prop, e)| {
            Stmt::Mutate {
                object: Expr::pvar("o"),
                prop: prop.to_string(),
                value: e,
            }
        }),
        (var(), proptest::sample::select(vec!["p", "q"])).prop_map(|(x, prop)| Stmt::Lookup {
            lhs: x.to_string(),
            object: Expr::pvar("o"),
            prop: prop.to_string(),
        }),
        arb_cond().prop_map(Stmt::Assert),
        arb_cond().prop_map(Stmt::Assume),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let nested = arb_stmt(depth - 1);
    prop_oneof![
        4 => simple,
        2 => (arb_cond(), proptest::collection::vec(nested.clone(), 1..3),
              proptest::collection::vec(nested.clone(), 0..2))
            .prop_map(|(cond, then, otherwise)| Stmt::If { cond, then, otherwise }),
        1 => (proptest::collection::vec(nested, 1..3), 1i64..4).prop_map(|(body, trips)| {
            // A concretely-bounded loop: k := 0; while (k < trips) { body; k := k + 1 }
            let mut full = body;
            full.push(Stmt::Assign(
                "k".to_string(),
                Expr::pvar("k").add(Expr::int(1)),
            ));
            Stmt::While {
                cond: Expr::pvar("k").lt(Expr::int(trips)),
                body: full,
            }
        }),
    ]
    .boxed()
}

/// A random program: two symbolic inputs, an object, a statement soup, and
/// a return of all observable state.
fn arb_program() -> impl Strategy<Value = Module> {
    proptest::collection::vec(arb_stmt(2), 1..6).prop_map(|stmts| {
        let mut body = vec![
            Stmt::Symb("a".to_string()),
            Stmt::Symb("b".to_string()),
            // Bounding the inputs types them as integers and keeps the
            // model finder effective.
            Stmt::Assume(
                Expr::int(-20)
                    .le(Expr::pvar("a"))
                    .and(Expr::pvar("a").le(Expr::int(20))),
            ),
            Stmt::Assume(
                Expr::int(-20)
                    .le(Expr::pvar("b"))
                    .and(Expr::pvar("b").le(Expr::int(20))),
            ),
            Stmt::Assign("c".to_string(), Expr::int(0)),
            Stmt::Assign("k".to_string(), Expr::int(0)),
            Stmt::New {
                lhs: "o".to_string(),
                props: vec![("p".to_string(), Expr::pvar("a"))],
            },
        ];
        body.extend(stmts);
        body.push(Stmt::Return(Expr::list([
            Expr::pvar("a"),
            Expr::pvar("b"),
            Expr::pvar("c"),
        ])));
        Module {
            functions: vec![Function {
                name: "main".to_string(),
                params: vec![],
                body,
            }],
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_while_programs_are_restricted_sound(module in arb_program()) {
        let prog = compile_program(&module);
        let cfg = ExploreConfig {
            max_cmds_per_path: 20_000,
            max_total_cmds: 200_000,
            max_paths: 256,
            ..Default::default()
        };
        let result = check_program::<WhileSymMemory, WhileConcMemory>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            cfg,
        );
        match result {
            Ok(_report) => {}
            Err(discrepancies) => {
                prop_assert!(
                    false,
                    "soundness violated:\n{:#?}\nprogram:\n{:#?}",
                    discrepancies,
                    module
                );
            }
        }
    }
}
