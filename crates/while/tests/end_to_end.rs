//! End-to-end symbolic testing of While programs: verification, bug
//! finding with verified counter-models, concrete replay, and the
//! empirical GIL Restricted Soundness check (paper Theorem 3.6).

use gillian_core::explore::ExploreConfig;
use gillian_core::soundness::check_program;
use gillian_core::testing::ReplayStatus;
use gillian_solver::Solver;
use gillian_while::{
    compile_program, parse_program, symbolic_test, symbolic_test_with, WhileConcMemory,
    WhileSymMemory,
};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn verified_object_program() {
    let outcome = symbolic_test(
        r#"
        proc main() {
            x := symb();
            assume (0 <= x and x < 100);
            o := { lo: x, hi: x + 10 };
            a := o.lo;
            b := o.hi;
            assert (a < b);
            return b - a;
        }
    "#,
    )
    .unwrap();
    assert!(outcome.verified(), "bugs: {:?}", outcome.bugs);
}

#[test]
fn bug_is_found_modelled_and_replayed() {
    let outcome = symbolic_test(
        r#"
        proc main() {
            x := symb();
            assume (0 <= x and x <= 100);
            o := { balance: x };
            b := o.balance;
            // Off-by-one: the guard admits b = 100.
            if (b <= 100) { o.balance := b + 1; } else { o.balance := b; }
            v := o.balance;
            assert (v <= 100);
            return v;
        }
    "#,
    )
    .unwrap();
    assert_eq!(outcome.bugs.len(), 1);
    let bug = &outcome.bugs[0];
    assert!(bug.model.is_some(), "counter-model required: {}", bug.pc);
    assert!(
        matches!(bug.replay, Some(ReplayStatus::ConfirmedError(_))),
        "replay: {:?}",
        bug.replay
    );
    assert!(bug.confirmed());
    // The model pins the input at the boundary.
    assert_eq!(bug.script.len(), 1);
    assert_eq!(bug.script[0], gillian_gil::Value::Int(100));
}

#[test]
fn loops_unroll_and_verify() {
    let outcome = symbolic_test(
        r#"
        proc sum_to(n) {
            i := 0;
            total := 0;
            while (i < n) {
                i := i + 1;
                total := total + i;
            }
            return total;
        }
        proc main() {
            n := symb();
            assume (0 <= n and n <= 6);
            t := sum_to(n);
            assert (t = n * (n + 1) / 2);
            return t;
        }
    "#,
    )
    .unwrap();
    assert!(outcome.verified(), "bugs: {:?}", outcome.bugs);
    // 7 feasible unrollings explored.
    assert!(outcome.result.paths.len() >= 7);
}

#[test]
fn deadline_truncates_instead_of_verifying() {
    const SRC: &str = r#"
        proc main() {
            n := symb();
            assume (0 <= n and n <= 6);
            return n;
        }
    "#;
    // An already-expired deadline parks all work: nothing verified, and
    // the overrun is accounted for rather than silently swallowed.
    let cfg = ExploreConfig::default().with_deadline(Duration::ZERO);
    let out = symbolic_test_with(SRC, "main", cfg).unwrap();
    assert!(
        !out.verified(),
        "an out-of-time run must not claim verified"
    );
    assert!(out.bounded());
    assert!(out.result.diagnostics.deadline_hits >= 1);

    // A generous deadline changes nothing about the verdict.
    let cfg = ExploreConfig::default().with_deadline(Duration::from_secs(3600));
    let out = symbolic_test_with(SRC, "main", cfg).unwrap();
    assert!(out.verified(), "bugs: {:?}", out.bugs);
    assert!(out.result.diagnostics.is_clean());
}

#[test]
fn interprocedural_objects_and_dispose() {
    let outcome = symbolic_test(
        r#"
        proc make_counter(start) {
            c := { value: start };
            return c;
        }
        proc bump(c) {
            v := c.value;
            c.value := v + 1;
            return v;
        }
        proc main() {
            s := symb();
            assume (s > 0);
            c := make_counter(s);
            old := bump(c);
            now := c.value;
            assert (now = old + 1);
            dispose c;
            return now;
        }
    "#,
    )
    .unwrap();
    assert!(outcome.verified(), "bugs: {:?}", outcome.bugs);
}

#[test]
fn lookup_after_dispose_is_a_bug() {
    let outcome = symbolic_test(
        r#"
        proc main() {
            o := { a: 1 };
            dispose o;
            x := o.a;
            return x;
        }
    "#,
    )
    .unwrap();
    assert_eq!(outcome.bugs.len(), 1);
    assert!(outcome.bugs[0].confirmed());
    assert!(outcome.bugs[0].error.contains("lookup"));
}

#[test]
fn aliasing_branches_are_separated_by_the_pc() {
    // Two objects; a symbolic index picks one: the symbolic lookup must
    // branch, and each branch must see the right value.
    let outcome = symbolic_test(
        r#"
        proc pick(a, b, which) {
            if (which = 0) { r := a; } else { r := b; }
            return r;
        }
        proc main() {
            w := symb();
            assume (w = 0 or w = 1);
            a := { v: 10 };
            b := { v: 20 };
            o := pick(a, b, w);
            x := o.v;
            if (w = 0) { assert (x = 10); } else { assert (x = 20); }
            return x;
        }
    "#,
    )
    .unwrap();
    assert!(outcome.verified(), "bugs: {:?}", outcome.bugs);
}

#[test]
fn restricted_soundness_holds_end_to_end() {
    // Every finished symbolic path, replayed concretely under its model,
    // must coincide — Theorem 3.6, computed.
    let sources = [
        r#"
        proc main() {
            x := symb();
            o := { a: x };
            v := o.a;
            if (v < 0) { r := 0 - v; } else { r := v; }
            return r;
        }
        "#,
        r#"
        proc main() {
            n := symb();
            assume (0 <= n and n <= 4);
            i := 0;
            while (i < n) { i := i + 1; }
            return i;
        }
        "#,
        r#"
        proc main() {
            x := symb();
            o := { p: 1 };
            if (x = 0) { dispose o; }
            v := o.p;
            return v;
        }
        "#,
    ];
    for src in sources {
        let module = parse_program(src).unwrap();
        let prog = compile_program(&module);
        let report = check_program::<WhileSymMemory, WhileConcMemory>(
            &prog,
            "main",
            Arc::new(Solver::optimized()),
            ExploreConfig::default(),
        )
        .unwrap_or_else(|d| panic!("soundness violated on {src}: {d:?}"));
        assert!(report.replayed > 0, "no path was replayed for {src}");
    }
}

#[test]
fn baseline_solver_agrees_on_verdicts() {
    // The baseline (no simplification/caching) must find the same bugs —
    // it is slower, not less sound.
    let src = r#"
        proc main() {
            x := symb();
            assume (0 <= x and x < 10);
            o := { a: x };
            v := o.a;
            assert (v != 7);
            return v;
        }
    "#;
    let module = parse_program(src).unwrap();
    let prog = compile_program(&module);
    for solver in [Solver::optimized(), Solver::baseline()] {
        let out = gillian_core::testing::run_test_with_replay::<WhileSymMemory, WhileConcMemory>(
            &prog,
            "main",
            Arc::new(solver),
            ExploreConfig::default(),
        );
        assert_eq!(out.bugs.len(), 1);
        assert!(out.bugs[0].confirmed());
    }
}

#[test]
fn symbolic_division_by_zero_is_found_and_guarded() {
    // Division by a symbolic divisor: the zero branch must surface as a
    // confirmed bug rather than hiding in a residual expression.
    let out = symbolic_test(
        r#"
        proc main() {
            d := symb();
            assume (0 <= d and d <= 1);
            return 10 / d;
        }
    "#,
    )
    .unwrap();
    assert_eq!(out.bugs.len(), 1, "{:?}", out.bugs);
    assert!(out.bugs[0].error.contains("division by zero"));
    assert_eq!(out.bugs[0].script, vec![gillian_gil::Value::Int(0)]);
    assert!(out.bugs[0].confirmed());

    // Float division never traps.
    let ieee = symbolic_test(
        r#"
        proc main() {
            d := symb();
            assume (d = 0.0 or d = 2.0);
            x := 10.0 / d;
            return x;
        }
    "#,
    )
    .unwrap();
    assert!(ieee.verified(), "{:?}", ieee.bugs);

    // Division inside a loop condition is guarded on every iteration.
    let loopy = symbolic_test(
        r#"
        proc main() {
            d := symb();
            assume (0 <= d and d <= 3);
            i := 0;
            while (i < 6 / d) {
                i := i + 1;
            }
            return i;
        }
    "#,
    )
    .unwrap();
    assert_eq!(loopy.bugs.len(), 1, "{:?}", loopy.bugs);
    assert!(loopy.bugs[0].confirmed());
}
