#![warn(missing_docs)]

//! # Gillian-While: the paper's running example instantiation
//!
//! A simple While language with *static objects* (paper §2.2/§2.4),
//! instantiating Gillian end-to-end:
//!
//! - [`ast`] + [`parser`] — the While surface language (assignment,
//!   `if`/`else`, `while`, static calls, `assume`/`assert`, object
//!   creation/disposal, property lookup/mutation, and `symb()` for
//!   symbolic inputs);
//! - [`compile`] — the While→GIL compiler of Fig. 2;
//! - [`mem`] — the concrete and symbolic memory models of Fig. 3, over the
//!   action set `A_While = {lookup, mutate, dispose}`;
//! - [`interp_fn`] — the memory interpretation function `I_W` of §3.3,
//!   hooking the instantiation into the engine's differential soundness
//!   checkers.
//!
//! ## Example
//!
//! ```
//! use gillian_while::symbolic_test;
//!
//! let outcome = symbolic_test(r#"
//!     proc main() {
//!         x := symb();
//!         assume (x > 0);
//!         o := { value: x };
//!         v := o.value;
//!         assert (v > 0);
//!         return v;
//!     }
//! "#).unwrap();
//! assert!(outcome.verified());
//! ```

pub mod ast;
pub mod compile;
pub mod interp_fn;
pub mod mem;
pub mod parser;

use gillian_core::explore::ExploreConfig;
use gillian_core::testing::{run_test_with_replay, SymTestOutcome};
use gillian_solver::Solver;
use std::sync::Arc;

pub use compile::compile_program;
pub use interp_fn::WhileInterpretation;
pub use mem::{WhileConcMemory, WhileSymMemory};
pub use parser::parse_program;

/// Parses, compiles and symbolically tests a While program's `main`
/// procedure with the optimized solver, replaying any bugs concretely.
///
/// # Errors
///
/// Returns a parse error description for malformed source.
pub fn symbolic_test(source: &str) -> Result<SymTestOutcome<WhileSymMemory>, String> {
    symbolic_test_entry(source, "main")
}

/// As [`symbolic_test`], from an arbitrary entry procedure.
///
/// # Errors
///
/// Returns a parse error description for malformed source.
pub fn symbolic_test_entry(
    source: &str,
    entry: &str,
) -> Result<SymTestOutcome<WhileSymMemory>, String> {
    symbolic_test_with(source, entry, ExploreConfig::default())
}

/// As [`symbolic_test_entry`], with explicit exploration limits — in
/// particular [`ExploreConfig::workers`], which selects the parallel
/// explorer when greater than one, and the resilience knobs
/// [`ExploreConfig::deadline`] (wall-clock budget: over-budget paths come
/// back truncated, with the overrun counted in the result's diagnostics)
/// and [`ExploreConfig::cancel`] (cooperative cancellation from another
/// thread).
///
/// # Errors
///
/// Returns a parse error description for malformed source.
pub fn symbolic_test_with(
    source: &str,
    entry: &str,
    cfg: ExploreConfig,
) -> Result<SymTestOutcome<WhileSymMemory>, String> {
    let module = parse_program(source).map_err(|e| e.to_string())?;
    let prog = compile_program(&module);
    Ok(run_test_with_replay::<WhileSymMemory, WhileConcMemory>(
        &prog,
        entry,
        Arc::new(Solver::optimized()),
        cfg,
    ))
}
