//! The While memory interpretation function `I_W` (paper §3.3).
//!
//! ```text
//! I_W(ε, ∅) ≜ ∅
//! I_W(ε, ê.p ↦ ê′) ≜ ⟦ê⟧ε.p ↦ ⟦ê′⟧ε
//! I_W(ε, µ̂₁ ⊎ µ̂₂) ≜ I_W(ε, µ̂₁) ⊎ I_W(ε, µ̂₂)
//! ```
//!
//! The disjoint union `⊎` in the last clause means interpretation *fails*
//! when two symbolic cells collapse onto the same concrete cell — exactly
//! the ill-formedness the paper's side conditions rule out. Lemma 3.11
//! (I_W is a memory interpretation function, i.e. satisfies MA-RS and
//! MA-RC) is checked empirically by this crate's test suite through
//! [`gillian_core::soundness::check_action`].

use crate::mem::{WhileConcMemory, WhileSymMemory};
use gillian_core::soundness::MemoryInterpretation;
use gillian_solver::Model;

/// The interpretation function `I_W` as a [`MemoryInterpretation`].
#[derive(Clone, Copy, Debug, Default)]
pub struct WhileInterpretation;

impl MemoryInterpretation for WhileInterpretation {
    type Concrete = WhileConcMemory;
    type Symbolic = WhileSymMemory;

    fn interpret(&self, model: &Model, sym: &WhileSymMemory) -> Result<WhileConcMemory, String> {
        let mut out = WhileConcMemory::default();
        for ((loc_e, prop), val_e) in sym.cells() {
            let loc = model
                .eval(loc_e)
                .map_err(|e| format!("I_W: location {loc_e} uninterpretable: {e}"))?;
            let val = model
                .eval(val_e)
                .map_err(|e| format!("I_W: value {val_e} uninterpretable: {e}"))?;
            if out.insert(loc.clone(), prop.as_ref(), val).is_some() {
                return Err(format!(
                    "I_W: cells collapse onto {loc}.{prop} (⊎ violated)"
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_core::soundness::check_action;
    use gillian_gil::{Expr, LVar, Sym, Value};
    use gillian_solver::{PathCondition, Solver};
    use std::collections::BTreeMap;

    fn sym_loc(i: u64) -> Expr {
        Expr::Val(Value::Sym(Sym(Sym::FIRST_FRESH + i)))
    }

    #[test]
    fn interprets_cells_pointwise() {
        let mut m = WhileSymMemory::default();
        m.insert(sym_loc(0), "a", Expr::lvar(LVar(0)));
        let model = Model::from_assignment(BTreeMap::from([(LVar(0), Value::Int(5))]));
        let conc = WhileInterpretation.interpret(&model, &m).unwrap();
        assert_eq!(
            conc.get(&Value::Sym(Sym(Sym::FIRST_FRESH)), "a"),
            Some(&Value::Int(5))
        );
    }

    #[test]
    fn collapsing_cells_are_rejected() {
        let mut m = WhileSymMemory::default();
        m.insert(Expr::lvar(LVar(0)), "a", Expr::int(1));
        m.insert(Expr::lvar(LVar(1)), "a", Expr::int(2));
        // ε maps both addresses to the same location: ⊎ is violated.
        let model = Model::from_assignment(BTreeMap::from([
            (LVar(0), Value::Sym(Sym(99))),
            (LVar(1), Value::Sym(Sym(99))),
        ]));
        assert!(WhileInterpretation.interpret(&model, &m).is_err());
    }

    /// Lemma 3.11, empirically: lookup/mutate/dispose satisfy MA-RS/MA-RC
    /// on representative memories and arguments.
    #[test]
    fn lemma_3_11_on_representative_actions() {
        let solver = Solver::optimized();
        let mut m = WhileSymMemory::default();
        m.insert(sym_loc(0), "a", Expr::int(10));
        m.insert(sym_loc(1), "a", Expr::lvar(LVar(1)));
        let pc = PathCondition::new();
        let x = Expr::lvar(LVar(0));

        for (action, arg) in [
            ("lookup", Expr::list([x.clone(), Expr::str("a")])),
            ("lookup", Expr::list([sym_loc(0), Expr::str("a")])),
            (
                "mutate",
                Expr::list([x.clone(), Expr::str("a"), Expr::int(3)]),
            ),
            (
                "mutate",
                Expr::list([sym_loc(1), Expr::str("b"), Expr::int(4)]),
            ),
            ("dispose", x.clone()),
            ("dispose", sym_loc(0)),
        ] {
            let checked = check_action(&WhileInterpretation, &solver, &m, action, &arg, &pc)
                .unwrap_or_else(|problems| {
                    panic!("MA-RS violated for {action}({arg}): {problems:?}")
                });
            assert!(checked > 0, "{action}({arg}): no branch was modelled");
        }
    }
}
