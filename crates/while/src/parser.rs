//! Parser for the While surface syntax.
//!
//! ```text
//! proc main() {
//!     x := symb();
//!     assume (x > 0);
//!     o := { value: x, tag: "point" };
//!     o.value := o.value + 1;     // via lookup/mutate statements
//!     v := o.value;
//!     if (v > 1) { r := ok(v); } else { r := 0; }
//!     while (v < 10) { v := v + 1; }
//!     assert (v = 10);
//!     dispose o;
//!     return v;
//! }
//! ```
//!
//! Expressions use conventional precedence
//! (`or < and < not < comparisons < + - < * / % < unary`), list literals
//! `[e, …]`, and the builtins `len`, `hd`, `tl`, `nth`, `rev`, `typeof`.

use crate::ast::{Function, Module, Stmt};
use gillian_gil::{BinOp, Expr, UnOp};
use std::fmt;

/// A While parse error with line/column information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "while parse error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}
impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

const PUNCTS: &[&str] = &[
    ":=", "!=", "<=", ">=", "==", "{", "}", "(", ")", "[", "]", ";", ",", ":", ".", "+", "-", "*",
    "/", "%", "<", ">", "=",
];

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn line_col(&self, at: usize) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for c in self.src[..at.min(self.src.len())].chars() {
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if self.src[self.pos..].starts_with("//") {
                match self.src[self.pos..].find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else if self.src[self.pos..].starts_with("/*") {
                match self.src[self.pos..].find("*/") {
                    Some(i) => self.pos += i + 2,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<(Tok, usize), ParseError> {
        self.skip_trivia();
        let at = self.pos;
        let rest = &self.src[self.pos..];
        let Some(c) = rest.chars().next() else {
            return Ok((Tok::Eof, at));
        };
        if c == '"' {
            let mut out = String::new();
            let mut chars = rest[1..].char_indices();
            loop {
                match chars.next() {
                    None => return Err(self.err_at(at, "unterminated string")),
                    Some((i, '"')) => {
                        self.pos += i + 2;
                        return Ok((Tok::Str(out), at));
                    }
                    Some((_, '\\')) => match chars.next() {
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, e)) => out.push(e),
                        None => return Err(self.err_at(at, "unterminated escape")),
                    },
                    Some((_, c)) => out.push(c),
                }
            }
        }
        if c.is_ascii_digit() {
            let mut len = 0;
            let mut is_float = false;
            for (i, d) in rest.char_indices() {
                if d.is_ascii_digit() {
                    len = i + 1;
                } else if d == '.'
                    && !is_float
                    && rest[i + 1..].starts_with(|x: char| x.is_ascii_digit())
                {
                    is_float = true;
                    len = i + 1;
                } else {
                    break;
                }
            }
            let text = &rest[..len];
            self.pos += len;
            return if is_float {
                text.parse()
                    .map(|x| (Tok::Float(x), at))
                    .map_err(|_| self.err_at(at, "malformed float literal"))
            } else {
                text.parse()
                    .map(|n| (Tok::Int(n), at))
                    .map_err(|_| self.err_at(at, "integer literal out of range"))
            };
        }
        if c.is_alphabetic() || c == '_' {
            let len = rest
                .char_indices()
                .take_while(|(_, d)| d.is_alphanumeric() || *d == '_')
                .map(|(i, d)| i + d.len_utf8())
                .last()
                .unwrap_or(0);
            self.pos += len;
            return Ok((Tok::Ident(rest[..len].to_string()), at));
        }
        for p in PUNCTS {
            if rest.starts_with(p) {
                self.pos += p.len();
                return Ok((Tok::Punct(p), at));
            }
        }
        Err(self.err_at(at, format!("unexpected character {c:?}")))
    }

    fn err_at(&self, at: usize, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.line_col(at);
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    tok_at: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let (tok, tok_at) = lexer.next()?;
        Ok(Parser { lexer, tok, tok_at })
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let (next, at) = self.lexer.next()?;
        self.tok_at = at;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(self.lexer.err_at(self.tok_at, msg))
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> Result<bool, ParseError> {
        if self.is_punct(p) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p)? {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.tok))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<bool, ParseError> {
        if matches!(&self.tok, Tok::Ident(s) if s == kw) {
            self.bump()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or")? {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and")? {
            e = e.and(self.not_expr()?);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not")? {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match &self.tok {
            Tok::Punct(q @ ("=" | "==" | "!=" | "<" | "<=" | ">" | ">=")) => {
                Some(if *q == "==" { "=" } else { *q })
            }
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        self.bump()?;
        let rhs = self.add_expr()?;
        Ok(match op {
            "=" => lhs.eq(rhs),
            "!=" => lhs.ne(rhs),
            "<" => lhs.lt(rhs),
            "<=" => lhs.le(rhs),
            ">" => lhs.gt(rhs),
            ">=" => lhs.ge(rhs),
            _ => unreachable!(),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat_punct("+")? {
                e = e.add(self.mul_expr()?);
            } else if self.eat_punct("-")? {
                e = e.sub(self.mul_expr()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            if self.eat_punct("*")? {
                e = e.mul(self.unary_expr()?);
            } else if self.eat_punct("/")? {
                e = e.div(self.unary_expr()?);
            } else if self.eat_punct("%")? {
                e = e.rem(self.unary_expr()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-")? {
            Ok(self.unary_expr()?.un(UnOp::Neg))
        } else {
            self.primary()
        }
    }

    fn call_one(&mut self, op: UnOp) -> Result<Expr, ParseError> {
        self.expect_punct("(")?;
        let e = self.expr()?;
        self.expect_punct(")")?;
        Ok(e.un(op))
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump()? {
            Tok::Int(n) => Ok(Expr::int(n)),
            Tok::Float(x) => Ok(Expr::num(x)),
            Tok::Str(s) => Ok(Expr::str(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("[") => {
                let mut items = Vec::new();
                if !self.eat_punct("]")? {
                    loop {
                        items.push(self.expr()?);
                        if self.eat_punct("]")? {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::list(items))
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => Ok(Expr::tt()),
                "false" => Ok(Expr::ff()),
                "len" => self.call_one(UnOp::LstLen),
                "hd" => self.call_one(UnOp::LstHead),
                "tl" => self.call_one(UnOp::LstTail),
                "rev" => self.call_one(UnOp::LstRev),
                "typeof" => self.call_one(UnOp::TypeOf),
                "nth" => {
                    self.expect_punct("(")?;
                    let l = self.expr()?;
                    self.expect_punct(",")?;
                    let i = self.expr()?;
                    self.expect_punct(")")?;
                    Ok(l.bin(BinOp::LstNth, i))
                }
                _ => Ok(Expr::pvar(id)),
            },
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}")? {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("if")? {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let otherwise = if self.eat_kw("else")? {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then,
                otherwise,
            });
        }
        if self.eat_kw("while")? {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("return")? {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(e));
        }
        if self.eat_kw("assume")? {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assume(e));
        }
        if self.eat_kw("assert")? {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assert(e));
        }
        if self.eat_kw("dispose")? {
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Dispose(e));
        }
        // Starts with an identifier: assignment forms or mutation.
        let name = self.ident()?;
        if self.eat_punct(".")? {
            // e.p := e'  (object denoted by a variable)
            let prop = self.ident()?;
            self.expect_punct(":=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Mutate {
                object: Expr::pvar(name),
                prop,
                value,
            });
        }
        self.expect_punct(":=")?;
        // Object literal.
        if self.eat_punct("{")? {
            let mut props = Vec::new();
            if !self.eat_punct("}")? {
                loop {
                    let p = self.ident()?;
                    self.expect_punct(":")?;
                    props.push((p, self.expr()?));
                    if self.eat_punct("}")? {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            self.expect_punct(";")?;
            return Ok(Stmt::New { lhs: name, props });
        }
        // Call, symb, lookup, or plain expression.
        if let Tok::Ident(id) = self.tok.clone() {
            // Peek for `id(` → call/symb, or `id.p` (lookup) handled below
            // through expression restriction: lookups must be `x := v.p`.
            let save_tok = self.tok.clone();
            let save_at = self.tok_at;
            self.bump()?;
            if self.is_punct("(") {
                self.bump()?;
                if id == "symb" {
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::Symb(name));
                }
                let mut args = Vec::new();
                if !self.eat_punct(")")? {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_punct(")")? {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                self.expect_punct(";")?;
                return Ok(Stmt::Call {
                    lhs: name,
                    func: id,
                    args,
                });
            }
            if self.is_punct(".") {
                self.bump()?;
                let prop = self.ident()?;
                self.expect_punct(";")?;
                return Ok(Stmt::Lookup {
                    lhs: name,
                    object: Expr::pvar(id),
                    prop,
                });
            }
            // Not a call or lookup: rewind-ish by re-parsing as expression
            // starting from the identifier we consumed.
            let rest_expr = self.expr_continued_from_ident(save_tok, save_at)?;
            self.expect_punct(";")?;
            return Ok(Stmt::Assign(name, rest_expr));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign(name, e))
    }

    /// Continues an expression whose first token (an identifier) was
    /// already consumed. Rebuilds precedence from the comparison level.
    fn expr_continued_from_ident(
        &mut self,
        ident_tok: Tok,
        _at: usize,
    ) -> Result<Expr, ParseError> {
        let Tok::Ident(id) = ident_tok else {
            return self.err("internal: expected identifier token");
        };
        let mut e = match id.as_str() {
            "true" => Expr::tt(),
            "false" => Expr::ff(),
            _ => Expr::pvar(id),
        };
        // mul level
        loop {
            if self.eat_punct("*")? {
                e = e.mul(self.unary_expr()?);
            } else if self.eat_punct("/")? {
                e = e.div(self.unary_expr()?);
            } else if self.eat_punct("%")? {
                e = e.rem(self.unary_expr()?);
            } else {
                break;
            }
        }
        // add level
        loop {
            if self.eat_punct("+")? {
                e = e.add(self.mul_expr()?);
            } else if self.eat_punct("-")? {
                e = e.sub(self.mul_expr()?);
            } else {
                break;
            }
        }
        // cmp level
        let op = match &self.tok {
            Tok::Punct(q @ ("=" | "==" | "!=" | "<" | "<=" | ">" | ">=")) => {
                Some(if *q == "==" { "=" } else { *q })
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump()?;
            let rhs = self.add_expr()?;
            e = match op {
                "=" => e.eq(rhs),
                "!=" => e.ne(rhs),
                "<" => e.lt(rhs),
                "<=" => e.le(rhs),
                ">" => e.gt(rhs),
                ">=" => e.ge(rhs),
                _ => unreachable!(),
            };
        }
        // and/or level
        while self.eat_kw("and")? {
            e = e.and(self.not_expr()?);
        }
        while self.eat_kw("or")? {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        if !self.eat_kw("proc")? {
            return self.err("expected `proc`");
        }
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")")? {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")")? {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }
}

/// Parses a While program (a sequence of `proc` definitions).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_program(source: &str) -> Result<Module, ParseError> {
    let mut p = Parser::new(source)?;
    let mut module = Module::default();
    while p.tok != Tok::Eof {
        module.functions.push(p.function()?);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_core_statements() {
        let m = parse_program(
            r#"
            proc main() {
                x := symb();
                assume (x > 0);
                o := { a: x, b: "s" };
                v := o.a;
                o.b := v + 1;
                if (v > 1) { y := 1; } else { y := 2; }
                while (y < 5) { y := y + 1; }
                r := helper(y, [1, 2]);
                assert (r >= 0);
                dispose o;
                return r;
            }
            proc helper(a, l) {
                return a + len(l);
            }
        "#,
        )
        .unwrap();
        assert_eq!(m.functions.len(), 2);
        let main = m.function("main").unwrap();
        assert_eq!(main.body.len(), 11);
        assert!(matches!(main.body[0], Stmt::Symb(_)));
        assert!(matches!(main.body[2], Stmt::New { .. }));
        assert!(matches!(main.body[3], Stmt::Lookup { .. }));
        assert!(matches!(main.body[4], Stmt::Mutate { .. }));
    }

    #[test]
    fn extreme_float_literals_lex_without_panicking() {
        // The float arm of the number lexer used to `unwrap()` the parse;
        // it must return a token (or a ParseError), never abort.
        let huge = format!("proc f() {{ x := {}.5; return x; }}", "9".repeat(400));
        assert!(parse_program(&huge).is_ok());
        assert!(parse_program("proc f() { x := 0.0000000001; return x; }").is_ok());
    }

    #[test]
    fn precedence_is_conventional() {
        let m = parse_program("proc f() { x := 1 + 2 * 3; return x; }").unwrap();
        let Stmt::Assign(_, e) = &m.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(e, &Expr::int(1).add(Expr::int(2).mul(Expr::int(3))));
    }

    #[test]
    fn assignment_from_variable_expression() {
        let m = parse_program("proc f(a, b) { x := a + b * 2; y := b; return x + y; }").unwrap();
        let Stmt::Assign(_, e) = &m.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(e, &Expr::pvar("a").add(Expr::pvar("b").mul(Expr::int(2))));
        let Stmt::Assign(_, y) = &m.functions[0].body[1] else {
            panic!()
        };
        assert_eq!(y, &Expr::pvar("b"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_program("proc f( {").is_err());
        assert!(parse_program("proc f() { x := ; }").is_err());
        assert!(parse_program("f() {}").is_err());
    }
}
