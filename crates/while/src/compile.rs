//! The While→GIL compiler (paper Fig. 2).
//!
//! `T : C_While → N → C_A list × N` — each statement compiles to a sequence
//! of GIL commands starting at the current program counter. The rules match
//! the figure:
//!
//! - `assume e`  →  `ifgoto e (pc+2); vanish`
//! - `assert e`  →  `ifgoto e (pc+2); fail …`
//! - `x := {pᵢ: eᵢ}`  →  `x := uSym_pc; (- := mutate([x, pᵢ, eᵢ]))ᵢ`
//! - `x := e.p`  →  `x := lookup([e, p])`
//! - `e.p := e′`  →  `- := mutate([e, p, e′])`
//! - `dispose e`  →  `- := dispose(e)`
//!
//! plus the obvious control-flow compilation for `if` and `while` (the
//! paper elides these as straightforward). Allocation sites `j` on
//! `uSym_j`/`iSym_j` are the program counters of the generating commands.

use crate::ast::{Function, Module, Stmt};
use gillian_gil::{Cmd, Expr, Proc, Prog};

/// Compiles a While module to a GIL program.
pub fn compile_program(module: &Module) -> Prog {
    Prog::from_procs(module.functions.iter().map(compile_function))
}

/// Compiles one While function to a GIL procedure.
pub fn compile_function(f: &Function) -> Proc {
    let mut cmds = Vec::new();
    compile_stmts(&f.body, &mut cmds);
    // A function body that can fall off the end returns 0 (While functions
    // are expected to `return`; this keeps the GIL program total).
    cmds.push(Cmd::Return(Expr::int(0)));
    Proc::new(f.name.as_str(), f.params.iter().map(String::as_str), cmds)
}

fn compile_stmts(stmts: &[Stmt], cmds: &mut Vec<Cmd>) {
    for s in stmts {
        compile_stmt(s, cmds);
    }
}

/// Emits explicit guards for the one way a While expression can trap on
/// symbolic data that a residual GIL expression would hide: integer
/// division/modulo by zero. For each `a / b` (or `a % b`) with a
/// non-literal divisor, the guard fails exactly when both operands are
/// integers and the divisor is zero — floating-point division is IEEE and
/// never traps, so other typings pass through.
fn emit_division_guards(e: &Expr, cmds: &mut Vec<Cmd>) {
    use gillian_gil::{BinOp, TypeTag};
    let mut divisions: Vec<(Expr, Expr)> = Vec::new();
    e.visit(&mut |sub| {
        if let Expr::Bin(BinOp::Div | BinOp::Mod, a, b) = sub {
            if !matches!(b.as_int(), Some(n) if n != 0) {
                divisions.push((a.as_ref().clone(), b.as_ref().clone()));
            }
        }
    });
    // Post-order: inner divisions are visited later by the pre-order walk,
    // but their guards must run first (the outer guard evaluates them).
    for (a, b) in divisions.into_iter().rev() {
        let trapping = a
            .has_type(TypeTag::Int)
            .and(b.clone().has_type(TypeTag::Int).and(b.eq(Expr::int(0))));
        let pc = cmds.len();
        cmds.push(Cmd::IfGoto(trapping, pc + 2));
        cmds.push(Cmd::Goto(pc + 3));
        cmds.push(Cmd::Fail(Expr::list([
            Expr::str("division by zero"),
            Expr::str(e.to_string()),
        ])));
    }
}

/// Emits division guards for every expression a statement evaluates.
fn guard_stmt_exprs(s: &Stmt, cmds: &mut Vec<Cmd>) {
    match s {
        Stmt::Assign(_, e)
        | Stmt::Return(e)
        | Stmt::Assume(e)
        | Stmt::Assert(e)
        | Stmt::Dispose(e) => emit_division_guards(e, cmds),
        Stmt::If { cond, .. } => emit_division_guards(cond, cmds),
        // While conditions re-evaluate each iteration: their guards are
        // emitted at the loop head by `compile_stmt`, not here.
        Stmt::While { .. } => {}
        Stmt::Call { args, .. } => {
            for a in args {
                emit_division_guards(a, cmds);
            }
        }
        Stmt::New { props, .. } => {
            for (_, e) in props {
                emit_division_guards(e, cmds);
            }
        }
        Stmt::Lookup { object, .. } => emit_division_guards(object, cmds),
        Stmt::Mutate { object, value, .. } => {
            emit_division_guards(object, cmds);
            emit_division_guards(value, cmds);
        }
        Stmt::Symb(_) => {}
    }
}

fn compile_stmt(s: &Stmt, cmds: &mut Vec<Cmd>) {
    guard_stmt_exprs(s, cmds);
    match s {
        Stmt::Assign(x, e) => cmds.push(Cmd::assign(x, e.clone())),
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            // pc:        ifgoto cond THEN
            //            …else…
            //            goto END
            // THEN:      …then…
            // END:
            let guard_at = cmds.len();
            cmds.push(Cmd::Skip); // patched to IfGoto
            compile_stmts(otherwise, cmds);
            let goto_end_at = cmds.len();
            cmds.push(Cmd::Skip); // patched to Goto
            let then_at = cmds.len();
            compile_stmts(then, cmds);
            let end = cmds.len();
            cmds[guard_at] = Cmd::IfGoto(cond.clone(), then_at);
            cmds[goto_end_at] = Cmd::Goto(end);
        }
        Stmt::While { cond, body } => {
            // LOOP: [divisor guards] ifgoto cond BODY; goto END;
            // BODY: …; goto LOOP; END:
            let loop_at = cmds.len();
            emit_division_guards(cond, cmds);
            let guard_at = cmds.len();
            cmds.push(Cmd::Skip); // patched to IfGoto
            let goto_end_at = cmds.len();
            cmds.push(Cmd::Skip); // patched to Goto
            let body_at = cmds.len();
            compile_stmts(body, cmds);
            cmds.push(Cmd::Goto(loop_at));
            let end = cmds.len();
            cmds[guard_at] = Cmd::IfGoto(cond.clone(), body_at);
            cmds[goto_end_at] = Cmd::Goto(end);
        }
        Stmt::Call { lhs, func, args } => {
            cmds.push(Cmd::call_static(lhs, func, args.clone()));
        }
        Stmt::Return(e) => cmds.push(Cmd::Return(e.clone())),
        Stmt::Assume(e) => {
            let pc = cmds.len();
            cmds.push(Cmd::IfGoto(e.clone(), pc + 2));
            cmds.push(Cmd::Vanish);
        }
        Stmt::Assert(e) => {
            let pc = cmds.len();
            cmds.push(Cmd::IfGoto(e.clone(), pc + 2));
            cmds.push(Cmd::Fail(Expr::list([
                Expr::str("assertion failure"),
                Expr::str(e.to_string()),
            ])));
        }
        Stmt::New { lhs, props } => {
            let site = cmds.len() as u32;
            cmds.push(Cmd::usym(lhs, site));
            for (p, e) in props {
                cmds.push(Cmd::action(
                    "_",
                    "mutate",
                    Expr::list([Expr::pvar(lhs), Expr::str(p), e.clone()]),
                ));
            }
        }
        Stmt::Dispose(e) => {
            cmds.push(Cmd::action("_", "dispose", e.clone()));
        }
        Stmt::Lookup { lhs, object, prop } => {
            cmds.push(Cmd::action(
                lhs,
                "lookup",
                Expr::list([object.clone(), Expr::str(prop)]),
            ));
        }
        Stmt::Mutate {
            object,
            prop,
            value,
        } => {
            cmds.push(Cmd::action(
                "_",
                "mutate",
                Expr::list([object.clone(), Expr::str(prop), value.clone()]),
            ));
        }
        Stmt::Symb(x) => {
            let site = cmds.len() as u32;
            cmds.push(Cmd::isym(x, site));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> Proc {
        let m = parse_program(src).unwrap();
        compile_function(&m.functions[0])
    }

    #[test]
    fn assume_compiles_per_fig2() {
        let p = compile("proc f(x) { assume (x > 0); return x; }");
        // pc: ifgoto (0 < x) pc+2 ; pc+1: vanish ; pc+2: return x
        assert!(matches!(&p.body[0], Cmd::IfGoto(_, 2)));
        assert!(matches!(&p.body[1], Cmd::Vanish));
        assert!(matches!(&p.body[2], Cmd::Return(_)));
    }

    #[test]
    fn assert_compiles_per_fig2() {
        let p = compile("proc f(x) { assert (x > 0); return x; }");
        assert!(matches!(&p.body[0], Cmd::IfGoto(_, 2)));
        assert!(matches!(&p.body[1], Cmd::Fail(_)));
    }

    #[test]
    fn new_object_compiles_to_usym_plus_mutates() {
        let p = compile("proc f() { o := { a: 1, b: 2 }; return o; }");
        assert!(matches!(&p.body[0], Cmd::USym { site: 0, .. }));
        let Cmd::Action { name, arg, .. } = &p.body[1] else {
            panic!("expected mutate, got {:?}", p.body[1]);
        };
        assert_eq!(name.as_ref(), "mutate");
        assert_eq!(
            arg,
            &Expr::list([Expr::pvar("o"), Expr::str("a"), Expr::int(1)])
        );
        assert!(matches!(&p.body[2], Cmd::Action { .. }));
    }

    #[test]
    fn lookup_and_mutate_compile_to_actions() {
        let p = compile("proc f(o) { x := o.a; o.a := x + 1; return x; }");
        let Cmd::Action { name, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(name.as_ref(), "lookup");
        let Cmd::Action { name, .. } = &p.body[1] else {
            panic!()
        };
        assert_eq!(name.as_ref(), "mutate");
    }

    #[test]
    fn while_loop_shape() {
        let p = compile("proc f(n) { i := 0; while (i < n) { i := i + 1; } return i; }");
        // 0: i := 0
        // 1: ifgoto (i < n) 3
        // 2: goto 5
        // 3: i := i + 1
        // 4: goto 1
        // 5: return i
        assert!(matches!(&p.body[1], Cmd::IfGoto(_, 3)));
        assert!(matches!(&p.body[2], Cmd::Goto(5)));
        assert!(matches!(&p.body[4], Cmd::Goto(1)));
        assert!(matches!(&p.body[5], Cmd::Return(_)));
    }

    #[test]
    fn if_else_shape() {
        let p = compile("proc f(b) { if (b) { x := 1; } else { x := 2; } return x; }");
        // 0: ifgoto b 3 ; 1: x := 2 ; 2: goto 4 ; 3: x := 1 ; 4: return x
        assert!(matches!(&p.body[0], Cmd::IfGoto(_, 3)));
        assert!(matches!(&p.body[2], Cmd::Goto(4)));
    }

    #[test]
    fn every_function_ends_with_return() {
        let p = compile("proc f() { x := 1; }");
        assert!(matches!(p.body.last(), Some(Cmd::Return(_))));
    }
}
