//! The While concrete and symbolic memory models (paper §2.4, Fig. 3).
//!
//! Concrete memories map `(location, property)` cells to values
//! (`µ : U × S ⇀ V`); symbolic memories map `(logical expression,
//! property)` cells to logical expressions (`µ̂ : Ê × S ⇀ Ê`). Property
//! names stay concrete strings — While objects are *static* (dynamic
//! property names arrive with the MiniJS instantiation).
//!
//! The action set is `A_While = {lookup, mutate, dispose}`; symbolic
//! `lookup`/`mutate` branch over the locations the address may alias
//! (rules `S-Lookup` and `S-Mutate-{Present,Absent}` of Fig. 3), learning
//! the corresponding equalities/disequalities into the path condition.

use gillian_core::checkpoint::StateIoError;
use gillian_core::memory::{ConcreteMemory, SymBranch, SymbolicMemory};
use gillian_gil::serial::{self, ByteReader, Decoder, Encoder};
use gillian_gil::{Expr, Value};
use gillian_solver::{PathCondition, Solver};
use std::collections::BTreeMap;
use std::sync::Arc;

fn err_value(msg: impl Into<String>) -> Value {
    Value::str(msg.into())
}

/// A concrete While memory: `(location, property) ⇀ value`
/// (copy-on-write behind an [`Arc`], like the JS and C memories).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WhileConcMemory {
    cells: Arc<BTreeMap<(Value, Arc<str>), Value>>,
}

impl WhileConcMemory {
    /// Number of cells (for tests).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Direct cell insertion (for tests and interpretation functions).
    pub fn insert(&mut self, loc: Value, prop: impl AsRef<str>, value: Value) -> Option<Value> {
        Arc::make_mut(&mut self.cells).insert((loc, Arc::from(prop.as_ref())), value)
    }

    /// Direct cell read (for tests).
    pub fn get(&self, loc: &Value, prop: &str) -> Option<&Value> {
        self.cells.get(&(loc.clone(), Arc::from(prop)))
    }
}

/// Destructures an action argument list.
fn value_args(arg: &Value, n: usize, action: &str) -> Result<Vec<Value>, Value> {
    match arg.as_list() {
        Some(items) if items.len() == n => Ok(items.to_vec()),
        _ => Err(err_value(format!(
            "{action}: expected {n}-element argument list, got {arg}"
        ))),
    }
}

impl ConcreteMemory for WhileConcMemory {
    fn execute_action(&mut self, name: &str, arg: Value) -> Result<Value, Value> {
        match name {
            // [C-Lookup]  µ = _ ⊎ l.p ↦ v  ⟹  µ.lookup([l,p]) ⇝ (µ, v)
            "lookup" => {
                let args = value_args(&arg, 2, "lookup")?;
                let prop = args[1]
                    .as_str()
                    .ok_or_else(|| err_value("lookup: property must be a string"))?;
                self.cells
                    .get(&(args[0].clone(), Arc::from(prop)))
                    .cloned()
                    .ok_or_else(|| err_value(format!("lookup: no property {prop} at {}", args[0])))
            }
            // [C-Mutate-Present] / [C-Mutate-Absent]
            "mutate" => {
                let args = value_args(&arg, 3, "mutate")?;
                let prop = args[1]
                    .as_str()
                    .ok_or_else(|| err_value("mutate: property must be a string"))?;
                Arc::make_mut(&mut self.cells)
                    .insert((args[0].clone(), Arc::from(prop)), args[2].clone());
                Ok(args[2].clone())
            }
            // [C-Dispose]: drop every cell of the object.
            "dispose" => {
                let loc = arg;
                Arc::make_mut(&mut self.cells).retain(|(l, _), _| l != &loc);
                Ok(Value::Bool(true))
            }
            other => Err(err_value(format!("unknown While action {other}"))),
        }
    }
}

/// A symbolic While memory: `(location expression, property) ⇀ expression`
/// (copy-on-write behind an [`Arc`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WhileSymMemory {
    cells: Arc<BTreeMap<(Expr, Arc<str>), Expr>>,
}

impl WhileSymMemory {
    /// Number of cells (for tests).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Direct cell insertion (for tests).
    pub fn insert(&mut self, loc: Expr, prop: impl AsRef<str>, value: Expr) -> Option<Expr> {
        Arc::make_mut(&mut self.cells).insert((loc, Arc::from(prop.as_ref())), value)
    }

    /// Iterates over cells in canonical order (used by the interpretation
    /// function `I_W`).
    pub fn cells(&self) -> impl Iterator<Item = (&(Expr, Arc<str>), &Expr)> {
        self.cells.iter()
    }

    /// The locations that define property `p`.
    fn locs_with(&self, prop: &str) -> Vec<Expr> {
        self.cells
            .keys()
            .filter(|(_, p)| p.as_ref() == prop)
            .map(|(l, _)| l.clone())
            .collect()
    }

    /// All distinct locations in the memory.
    fn locs(&self) -> Vec<Expr> {
        let mut out: Vec<Expr> = self.cells.keys().map(|(l, _)| l.clone()).collect();
        out.sort();
        out.dedup();
        out
    }
}

fn expr_args(arg: &Expr, n: usize, action: &str) -> Result<Vec<Expr>, Expr> {
    let parts: Option<Vec<Expr>> = match arg {
        Expr::List(es) if es.len() == n => Some(es.to_vec()),
        Expr::Val(Value::List(vs)) if vs.len() == n => {
            Some(vs.iter().cloned().map(Expr::Val).collect())
        }
        _ => None,
    };
    parts.ok_or_else(|| {
        Expr::str(format!(
            "{action}: expected {n}-element argument list, got {arg}"
        ))
    })
}

fn static_prop(e: &Expr, action: &str) -> Result<Arc<str>, Expr> {
    match e {
        Expr::Val(Value::Str(s)) => Ok(s.clone()),
        other => Err(Expr::str(format!(
            "{action}: property must be a literal string, got {other}"
        ))),
    }
}

impl SymbolicMemory for WhileSymMemory {
    fn language() -> &'static str {
        "while"
    }

    fn save(&self, enc: &mut Encoder, out: &mut Vec<u8>) -> Result<(), StateIoError> {
        serial::put_len(out, self.cells.len(), "while memory cells")?;
        // BTreeMap iteration is canonical order, so equal memories encode
        // to equal bytes.
        for ((loc, prop), value) in self.cells.iter() {
            enc.write_expr(out, loc)?;
            serial::put_str(out, prop)?;
            enc.write_expr(out, value)?;
        }
        Ok(())
    }

    fn load(dec: &Decoder, r: &mut ByteReader<'_>) -> Result<Self, StateIoError> {
        let n = r.count()?;
        let mut cells = BTreeMap::new();
        for _ in 0..n {
            let loc = dec.read_expr(r)?;
            let prop: Arc<str> = Arc::from(r.str()?);
            let value = dec.read_expr(r)?;
            cells.insert((loc, prop), value);
        }
        Ok(WhileSymMemory {
            cells: Arc::new(cells),
        })
    }

    fn execute_action(
        &self,
        name: &str,
        arg: &Expr,
        pc: &PathCondition,
        solver: &Solver,
    ) -> Vec<SymBranch<Self>> {
        match name {
            // [S-Lookup]: branch on every location potentially equal to the
            // address; learn the equality. The residual branch (equal to
            // none) is the "property not found" error.
            "lookup" => {
                let (el, prop) = match expr_args(arg, 2, "lookup")
                    .and_then(|a| Ok((a[0].clone(), static_prop(&a[1], "lookup")?)))
                {
                    Ok(x) => x,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                let mut branches = Vec::new();
                let mut none_of = Expr::tt();
                for loc in self.locs_with(&prop) {
                    let eq = solver.simplify(pc, &el.clone().eq(loc.clone()));
                    if eq.as_bool() != Some(false) && solver.sat_with(pc, &eq).possibly_sat() {
                        let value = self.cells[&(loc.clone(), prop.clone())].clone();
                        branches.push(SymBranch::ok_if(self.clone(), value, eq));
                    }
                    none_of = none_of.and(el.clone().ne(loc));
                }
                let none_of = solver.simplify(pc, &none_of);
                if none_of.as_bool() != Some(false) && solver.sat_with(pc, &none_of).possibly_sat()
                {
                    branches.push(SymBranch::err_if(
                        self.clone(),
                        Expr::str(format!("lookup: no property {prop} at {el}")),
                        none_of,
                    ));
                }
                branches
            }
            // [S-Mutate-Present] / [S-Mutate-Absent]
            "mutate" => {
                let (el, prop, ev) = match expr_args(arg, 3, "mutate")
                    .and_then(|a| Ok((a[0].clone(), static_prop(&a[1], "mutate")?, a[2].clone())))
                {
                    Ok(x) => x,
                    Err(e) => return vec![SymBranch::err_if(self.clone(), e, Expr::tt())],
                };
                let mut branches = Vec::new();
                let mut none_of = Expr::tt();
                for loc in self.locs_with(&prop) {
                    let eq = solver.simplify(pc, &el.clone().eq(loc.clone()));
                    if eq.as_bool() != Some(false) && solver.sat_with(pc, &eq).possibly_sat() {
                        let mut mem = self.clone();
                        Arc::make_mut(&mut mem.cells)
                            .insert((loc.clone(), prop.clone()), ev.clone());
                        branches.push(SymBranch::ok_if(mem, ev.clone(), eq));
                    }
                    none_of = none_of.and(el.clone().ne(loc));
                }
                // Absent: the address defines no `p` yet; extend.
                let none_of = solver.simplify(pc, &none_of);
                if none_of.as_bool() != Some(false) && solver.sat_with(pc, &none_of).possibly_sat()
                {
                    let mut mem = self.clone();
                    Arc::make_mut(&mut mem.cells).insert((el, prop), ev.clone());
                    branches.push(SymBranch::ok_if(mem, ev, none_of));
                }
                branches
            }
            // [S-Dispose]: branch on aliasing with each known location.
            "dispose" => {
                let el = arg.clone();
                let mut branches = Vec::new();
                let mut none_of = Expr::tt();
                for loc in self.locs() {
                    let eq = solver.simplify(pc, &el.clone().eq(loc.clone()));
                    if eq.as_bool() != Some(false) && solver.sat_with(pc, &eq).possibly_sat() {
                        let mut mem = self.clone();
                        Arc::make_mut(&mut mem.cells).retain(|(l, _), _| l != &loc);
                        branches.push(SymBranch::ok_if(mem, Expr::tt(), eq));
                    }
                    none_of = none_of.and(el.clone().ne(loc));
                }
                let none_of = solver.simplify(pc, &none_of);
                if none_of.as_bool() != Some(false) && solver.sat_with(pc, &none_of).possibly_sat()
                {
                    branches.push(SymBranch::ok_if(self.clone(), Expr::tt(), none_of));
                }
                branches
            }
            other => vec![SymBranch::err_if(
                self.clone(),
                Expr::str(format!("unknown While action {other}")),
                Expr::tt(),
            )],
        }
    }

    fn lvars(&self) -> std::collections::BTreeSet<gillian_gil::LVar> {
        let mut out = std::collections::BTreeSet::new();
        for ((loc, _), val) in self.cells.iter() {
            out.extend(loc.lvars());
            out.extend(val.lvars());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gillian_gil::{LVar, Sym};

    fn sym(i: u64) -> Value {
        Value::Sym(Sym(Sym::FIRST_FRESH + i))
    }

    #[test]
    fn concrete_lookup_mutate_dispose() {
        let mut m = WhileConcMemory::default();
        let l = sym(0);
        let arg = Value::List(vec![l.clone(), Value::str("a"), Value::Int(1)]);
        m.execute_action("mutate", arg).unwrap();
        let got = m
            .execute_action("lookup", Value::List(vec![l.clone(), Value::str("a")]))
            .unwrap();
        assert_eq!(got, Value::Int(1));
        // Lookup of an absent property errors (C-Lookup needs presence).
        assert!(m
            .execute_action("lookup", Value::List(vec![l.clone(), Value::str("b")]))
            .is_err());
        m.execute_action("dispose", l.clone()).unwrap();
        assert!(m
            .execute_action("lookup", Value::List(vec![l, Value::str("a")]))
            .is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn symbolic_lookup_on_literal_location_is_deterministic() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let mut m = WhileSymMemory::default();
        let l = Expr::Val(sym(0));
        m.insert(l.clone(), "a", Expr::int(1));
        let branches = m.execute_action("lookup", &Expr::list([l, Expr::str("a")]), &pc, &solver);
        assert_eq!(branches.len(), 1, "literal locations do not alias-branch");
        assert_eq!(branches[0].outcome, Ok(Expr::int(1)));
        assert_eq!(branches[0].constraint, Expr::tt());
    }

    #[test]
    fn symbolic_lookup_branches_on_aliasing() {
        // Two objects with property "a"; address is a logical variable:
        // lookup must branch three ways (alias l0, alias l1, neither).
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let mut m = WhileSymMemory::default();
        let l0 = Expr::Val(sym(0));
        let l1 = Expr::Val(sym(1));
        m.insert(l0.clone(), "a", Expr::int(10));
        m.insert(l1.clone(), "a", Expr::int(11));
        let x = Expr::lvar(LVar(0));
        let branches = m.execute_action(
            "lookup",
            &Expr::list([x.clone(), Expr::str("a")]),
            &pc,
            &solver,
        );
        assert_eq!(branches.len(), 3, "S-Lookup branches + error branch");
        let oks: Vec<_> = branches.iter().filter(|b| b.outcome.is_ok()).collect();
        assert_eq!(oks.len(), 2);
        assert!(branches.iter().any(|b| b.outcome.is_err()));
    }

    #[test]
    fn symbolic_mutate_absent_extends_memory() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let m = WhileSymMemory::default();
        let l = Expr::Val(sym(0));
        let branches = m.execute_action(
            "mutate",
            &Expr::list([l.clone(), Expr::str("p"), Expr::int(7)]),
            &pc,
            &solver,
        );
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].memory.len(), 1);
    }

    #[test]
    fn symbolic_mutate_branches_present_and_absent() {
        let solver = Solver::optimized();
        let pc = PathCondition::new();
        let mut m = WhileSymMemory::default();
        let l0 = Expr::Val(sym(0));
        m.insert(l0.clone(), "p", Expr::int(1));
        let x = Expr::lvar(LVar(0));
        let branches = m.execute_action(
            "mutate",
            &Expr::list([x, Expr::str("p"), Expr::int(2)]),
            &pc,
            &solver,
        );
        // Present (x = l0, overwrite) and absent (x ≠ l0, extend).
        assert_eq!(branches.len(), 2);
        assert!(branches.iter().all(|b| b.outcome.is_ok()));
        assert!(branches.iter().any(|b| b.memory.len() == 1));
        assert!(branches.iter().any(|b| b.memory.len() == 2));
    }

    #[test]
    fn pc_prunes_alias_branches() {
        let solver = Solver::optimized();
        let mut pc = PathCondition::new();
        let mut m = WhileSymMemory::default();
        let l0 = Expr::Val(sym(0));
        let l1 = Expr::Val(sym(1));
        m.insert(l0.clone(), "a", Expr::int(10));
        m.insert(l1.clone(), "a", Expr::int(11));
        let x = Expr::lvar(LVar(0));
        pc.push(x.clone().eq(l0.clone()));
        let branches = m.execute_action("lookup", &Expr::list([x, Expr::str("a")]), &pc, &solver);
        assert_eq!(branches.len(), 1, "pc pins the alias: {branches:?}");
        assert_eq!(branches[0].outcome, Ok(Expr::int(10)));
    }
}
