//! The While abstract syntax (paper §2.2).
//!
//! ```text
//! s ∈ C_While ≜ x := e | if (e){s₁} else {s₂} | while (e){s} | s₁; s₂
//!             | x := f(ē) | return e | assume e | assert e
//!             | x := {pᵢ: eᵢ} | dispose e | x := e.p | e.p := e′
//! ```
//!
//! Expressions coincide with GIL expressions (the paper assumes the
//! expression semantics and variable stores of While and GIL coincide), so
//! statements embed [`gillian_gil::Expr`] directly. The one extension is
//! `x := symb()`, the symbolic-testing input construct that compiles to
//! `iSym` (the paper introduces symbolic inputs at the GIL level).

use gillian_gil::Expr;

/// A While statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `x := e`
    Assign(String, Expr),
    /// `if (e) { then } else { otherwise }`
    If {
        /// The guard.
        cond: Expr,
        /// The then-branch.
        then: Vec<Stmt>,
        /// The else-branch (empty when omitted).
        otherwise: Vec<Stmt>,
    },
    /// `while (e) { body }`
    While {
        /// The loop guard.
        cond: Expr,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `x := f(ē)` — static function call.
    Call {
        /// Variable receiving the return value.
        lhs: String,
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `return e`
    Return(Expr),
    /// `assume e` — cut paths where `e` does not hold.
    Assume(Expr),
    /// `assert e` — fail paths where `e` does not hold.
    Assert(Expr),
    /// `x := { p₁: e₁, …, pₙ: eₙ }` — object creation.
    New {
        /// Variable receiving the fresh location.
        lhs: String,
        /// Property names and initial values, in source order.
        props: Vec<(String, Expr)>,
    },
    /// `dispose e` — delete the object at location `e`.
    Dispose(Expr),
    /// `x := e.p` — property lookup.
    Lookup {
        /// Variable receiving the property value.
        lhs: String,
        /// Expression denoting the object location.
        object: Expr,
        /// The (static) property name.
        prop: String,
    },
    /// `e.p := e′` — property mutation.
    Mutate {
        /// Expression denoting the object location.
        object: Expr,
        /// The (static) property name.
        prop: String,
        /// The new value.
        value: Expr,
    },
    /// `x := symb()` — a fresh symbolic input (compiles to `iSym`).
    Symb(String),
}

/// A While function definition `proc f(x̄) { s̄ }`.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A While program: a list of function definitions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

impl Module {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}
