//! GIL unary and binary operators, and their concrete semantics.
//!
//! The concrete semantics defined here (`eval_unop`, `eval_binop`) is the
//! *single source of truth* for operator behaviour: the concrete interpreter
//! evaluates through it directly, and the symbolic simplifier constant-folds
//! through it, so the two can never disagree (a key ingredient of the
//! differential soundness tests in `gillian-core`).
//!
//! Operator evaluation is strict about types: applying an operator to values
//! outside its domain is an [`EvalError`], which the interpreter surfaces as
//! the GIL error outcome `E(v)`. This strictness is what lets the MiniC
//! instantiation detect undefined behaviour instead of silently coercing.

use crate::value::{Sym, TypeTag, Value};
use std::fmt;
use std::sync::Arc;

/// An error produced while evaluating an operator or expression.
///
/// Carries a human-readable description; the interpreter converts it into a
/// GIL error value (a string), which then flows through the `E(v)` outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError(pub String);

impl EvalError {
    /// Creates an evaluation error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        EvalError(msg.into())
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}
impl std::error::Error for EvalError {}

fn err<T>(msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError(msg.into()))
}

/// Unary operators `⊖`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Arithmetic negation (`Int` or `Num`).
    Neg,
    /// The type of a value (total).
    TypeOf,
    /// `Int → Num` conversion (exact for |n| ≤ 2⁵³).
    IntToNum,
    /// `Num → Int` conversion, truncating toward zero. Errors when the
    /// operand is NaN, infinite, or out of `i64` range.
    NumToInt,
    /// Canonical string rendering of any value.
    ToStr,
    /// String length (`Str → Int`).
    StrLen,
    /// List length (`List → Int`).
    LstLen,
    /// First element of a non-empty list.
    LstHead,
    /// All but the first element of a non-empty list.
    LstTail,
    /// List reversal.
    LstRev,
    /// Bitwise complement (`Int`).
    BitNot,
    /// Truncate an integer to `n` bits and sign-extend back to 64
    /// (two's-complement wrap-around used by the MiniC compiler).
    WrapSigned(u8),
    /// Truncate an integer to `n` bits and zero-extend back to 64.
    WrapUnsigned(u8),
    /// Largest integer-valued `Num` less than or equal to the operand.
    Floor,
}

impl UnOp {
    /// The printed symbol or name of this operator.
    pub fn name(self) -> String {
        match self {
            UnOp::Not => "not".into(),
            UnOp::Neg => "-".into(),
            UnOp::TypeOf => "typeOf".into(),
            UnOp::IntToNum => "int_to_num".into(),
            UnOp::NumToInt => "num_to_int".into(),
            UnOp::ToStr => "to_str".into(),
            UnOp::StrLen => "s-len".into(),
            UnOp::LstLen => "l-len".into(),
            UnOp::LstHead => "l-head".into(),
            UnOp::LstTail => "l-tail".into(),
            UnOp::LstRev => "l-rev".into(),
            UnOp::BitNot => "~".into(),
            UnOp::WrapSigned(w) => format!("wrap_s{w}"),
            UnOp::WrapUnsigned(w) => format!("wrap_u{w}"),
            UnOp::Floor => "floor".into(),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Binary operators `⊕`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BinOp {
    /// Addition on `Int × Int` or `Num × Num`.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division; on integers, truncating toward zero. Division by zero is an
    /// error on `Int` and follows IEEE-754 on `Num`.
    Div,
    /// Remainder; sign follows the dividend (like Rust/C). Errors on zero
    /// divisor for `Int`.
    Mod,
    /// Structural equality on any pair of values (total, returns `Bool`).
    /// Values of different types are never equal.
    Eq,
    /// Strict less-than on `Int × Int`, `Num × Num` (IEEE), or `Str × Str`
    /// (lexicographic).
    Lt,
    /// Less-or-equal; same domains as [`BinOp::Lt`].
    Leq,
    /// Non-short-circuit boolean conjunction.
    And,
    /// Non-short-circuit boolean disjunction.
    Or,
    /// Bitwise and (`Int`).
    BitAnd,
    /// Bitwise or (`Int`).
    BitOr,
    /// Bitwise xor (`Int`).
    BitXor,
    /// Left shift; shift amount taken modulo 64.
    Shl,
    /// Arithmetic (sign-propagating) right shift; amount modulo 64.
    ShrA,
    /// Logical (zero-filling) right shift; amount modulo 64.
    ShrL,
    /// `l-nth(list, i)`: the `i`-th element (0-based) of a list. Errors when
    /// out of bounds.
    LstNth,
    /// `s-nth(str, i)`: the `i`-th character of a string, as a 1-char string.
    StrNth,
    /// `l-cons(v, list)`: prepend an element to a list.
    LstCons,
    /// `l-sub(list, i)`: the suffix of a list starting at index `i`
    /// (`i` may equal the length, yielding `[]`).
    LstSub,
}

impl BinOp {
    /// The printed symbol or name of this operator.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Lt => "<",
            BinOp::Leq => "<=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::ShrA => ">>",
            BinOp::ShrL => ">>>",
            BinOp::LstNth => "l-nth",
            BinOp::StrNth => "s-nth",
            BinOp::LstCons => "l-cons",
            BinOp::LstSub => "l-sub",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders a value the way `to_str` does (also used by `Display` for `Str`
/// payloads *without* quotes, which is what guest languages want).
pub fn value_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Num(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Sym(s) => s.to_string(),
        Value::Type(t) => t.name().to_string(),
        Value::Proc(p) => p.to_string(),
        Value::List(vs) => {
            let inner: Vec<String> = vs.iter().map(value_to_string).collect();
            format!("[{}]", inner.join(", "))
        }
    }
}

fn wrap_int(n: i64, bits: u8, signed: bool) -> Result<i64, EvalError> {
    if bits == 0 || bits > 64 {
        return err(format!("invalid wrap width {bits}"));
    }
    if bits == 64 {
        return Ok(n);
    }
    let mask = (1u128 << bits) - 1;
    let low = (n as u128) & mask;
    if signed {
        let sign_bit = 1u128 << (bits - 1);
        if low & sign_bit != 0 {
            Ok((low as i64) | ((!0i64) << bits))
        } else {
            Ok(low as i64)
        }
    } else {
        Ok(low as i64)
    }
}

/// Evaluates a unary operator on a concrete value.
///
/// # Errors
///
/// Returns [`EvalError`] when the operand is outside the operator's domain
/// (e.g. `not 3`, head of an empty list, `num_to_int NaN`).
pub fn eval_unop(op: UnOp, v: &Value) -> Result<Value, EvalError> {
    match (op, v) {
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(n.wrapping_neg())),
        (UnOp::Neg, Value::Num(x)) => Ok(Value::num(-x.get())),
        (UnOp::TypeOf, v) => Ok(Value::Type(v.type_of())),
        (UnOp::IntToNum, Value::Int(n)) => Ok(Value::num(*n as f64)),
        (UnOp::NumToInt, Value::Num(x)) => {
            let x = x.get();
            if x.is_nan()
                || x.is_infinite()
                || !(-9.223_372_036_854_776e18..9.223_372_036_854_776e18).contains(&x)
            {
                err(format!("num_to_int out of range: {x}"))
            } else {
                Ok(Value::Int(x.trunc() as i64))
            }
        }
        (UnOp::ToStr, v) => Ok(Value::str(value_to_string(v))),
        (UnOp::StrLen, Value::Str(s)) => Ok(Value::Int(s.chars().count() as i64)),
        (UnOp::LstLen, Value::List(vs)) => Ok(Value::Int(vs.len() as i64)),
        (UnOp::LstHead, Value::List(vs)) => match vs.first() {
            Some(v) => Ok(v.clone()),
            None => err("head of empty list"),
        },
        (UnOp::LstTail, Value::List(vs)) => {
            if vs.is_empty() {
                err("tail of empty list")
            } else {
                Ok(Value::List(vs[1..].to_vec()))
            }
        }
        (UnOp::LstRev, Value::List(vs)) => Ok(Value::List(vs.iter().rev().cloned().collect())),
        (UnOp::BitNot, Value::Int(n)) => Ok(Value::Int(!n)),
        (UnOp::WrapSigned(w), Value::Int(n)) => wrap_int(*n, w, true).map(Value::Int),
        (UnOp::WrapUnsigned(w), Value::Int(n)) => wrap_int(*n, w, false).map(Value::Int),
        (UnOp::Floor, Value::Num(x)) => Ok(Value::num(x.get().floor())),
        (op, v) => err(format!("unary {op} not applicable to {v}")),
    }
}

fn int_bin(op: BinOp, a: i64, b: i64) -> Result<Value, EvalError> {
    match op {
        BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
        BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
        BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
        BinOp::Div => {
            if b == 0 {
                err("integer division by zero")
            } else {
                Ok(Value::Int(a.wrapping_div(b)))
            }
        }
        BinOp::Mod => {
            if b == 0 {
                err("integer modulo by zero")
            } else {
                Ok(Value::Int(a.wrapping_rem(b)))
            }
        }
        BinOp::Lt => Ok(Value::Bool(a < b)),
        BinOp::Leq => Ok(Value::Bool(a <= b)),
        BinOp::BitAnd => Ok(Value::Int(a & b)),
        BinOp::BitOr => Ok(Value::Int(a | b)),
        BinOp::BitXor => Ok(Value::Int(a ^ b)),
        BinOp::Shl => Ok(Value::Int(a.wrapping_shl(b as u32))),
        BinOp::ShrA => Ok(Value::Int(a.wrapping_shr(b as u32))),
        BinOp::ShrL => Ok(Value::Int(((a as u64).wrapping_shr(b as u32)) as i64)),
        _ => err(format!("binary {op} not applicable to integers")),
    }
}

fn num_bin(op: BinOp, a: f64, b: f64) -> Result<Value, EvalError> {
    match op {
        BinOp::Add => Ok(Value::num(a + b)),
        BinOp::Sub => Ok(Value::num(a - b)),
        BinOp::Mul => Ok(Value::num(a * b)),
        BinOp::Div => Ok(Value::num(a / b)),
        BinOp::Mod => Ok(Value::num(a % b)),
        BinOp::Lt => Ok(Value::Bool(a < b)),
        BinOp::Leq => Ok(Value::Bool(a <= b)),
        _ => err(format!("binary {op} not applicable to numbers")),
    }
}

/// Evaluates a binary operator on concrete values.
///
/// # Errors
///
/// Returns [`EvalError`] when the operands are outside the operator's domain
/// (mixed `Int`/`Num` arithmetic, out-of-bounds `l-nth`, division by zero on
/// integers, …).
pub fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    match (op, a, b) {
        (BinOp::Eq, a, b) => Ok(Value::Bool(a == b)),
        (BinOp::And, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x && *y)),
        (BinOp::Or, Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(*x || *y)),
        (op, Value::Int(x), Value::Int(y)) => int_bin(op, *x, *y),
        (op, Value::Num(x), Value::Num(y)) => num_bin(op, x.get(), y.get()),
        (BinOp::Lt, Value::Str(x), Value::Str(y)) => Ok(Value::Bool(x < y)),
        (BinOp::Leq, Value::Str(x), Value::Str(y)) => Ok(Value::Bool(x <= y)),
        (BinOp::LstNth, Value::List(vs), Value::Int(i)) => {
            if *i < 0 || *i as usize >= vs.len() {
                err(format!("l-nth index {i} out of bounds (len {})", vs.len()))
            } else {
                Ok(vs[*i as usize].clone())
            }
        }
        (BinOp::LstSub, Value::List(vs), Value::Int(i)) => {
            if *i < 0 || *i as usize > vs.len() {
                err(format!("l-sub index {i} out of bounds (len {})", vs.len()))
            } else {
                Ok(Value::List(vs[*i as usize..].to_vec()))
            }
        }
        (BinOp::StrNth, Value::Str(s), Value::Int(i)) => {
            match s.chars().nth(
                (*i).try_into()
                    .map_err(|_| EvalError::new("negative s-nth index"))?,
            ) {
                Some(c) => Ok(Value::Str(Arc::from(c.to_string().as_str()))),
                None => err(format!("s-nth index {i} out of bounds")),
            }
        }
        (BinOp::LstCons, v, Value::List(vs)) => {
            let mut out = Vec::with_capacity(vs.len() + 1);
            out.push(v.clone());
            out.extend(vs.iter().cloned());
            Ok(Value::List(out))
        }
        (op, a, b) => err(format!("binary {op} not applicable to ({a}, {b})")),
    }
}

/// Concatenates string values (`s-cat`). Errors on non-string operands.
pub fn eval_strcat(parts: &[Value]) -> Result<Value, EvalError> {
    let mut out = String::new();
    for p in parts {
        match p {
            Value::Str(s) => out.push_str(s),
            other => return err(format!("s-cat applied to non-string {other}")),
        }
    }
    Ok(Value::from(out))
}

/// Concatenates list values (`l-cat`). Errors on non-list operands.
pub fn eval_lstcat(parts: &[Value]) -> Result<Value, EvalError> {
    let mut out = Vec::new();
    for p in parts {
        match p {
            Value::List(vs) => out.extend(vs.iter().cloned()),
            other => return err(format!("l-cat applied to non-list {other}")),
        }
    }
    Ok(Value::List(out))
}

/// Re-exported for instantiations that need to mint reserved symbols.
pub const fn reserved_sym(id: u64) -> Sym {
    assert!(id < Sym::FIRST_FRESH);
    Sym(id)
}

/// Returns `true` when `op` always yields a `Bool` on its domain.
pub fn is_boolean_binop(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Lt | BinOp::Leq | BinOp::And | BinOp::Or
    )
}

/// The result type tag of a unary operator where it is type-determined,
/// independent of the operand (used by the solver's type inference).
pub fn unop_result_type(op: UnOp) -> Option<TypeTag> {
    match op {
        UnOp::Not => Some(TypeTag::Bool),
        UnOp::TypeOf => Some(TypeTag::Type),
        UnOp::IntToNum => Some(TypeTag::Num),
        UnOp::NumToInt => Some(TypeTag::Int),
        UnOp::ToStr => Some(TypeTag::Str),
        UnOp::StrLen | UnOp::LstLen => Some(TypeTag::Int),
        UnOp::LstTail | UnOp::LstRev => Some(TypeTag::List),
        UnOp::BitNot | UnOp::WrapSigned(_) | UnOp::WrapUnsigned(_) => Some(TypeTag::Int),
        UnOp::Floor => Some(TypeTag::Num),
        UnOp::Neg | UnOp::LstHead => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(n: i64) -> Value {
        Value::Int(n)
    }

    #[test]
    fn arithmetic_on_ints() {
        assert_eq!(eval_binop(BinOp::Add, &int(2), &int(3)).unwrap(), int(5));
        assert_eq!(eval_binop(BinOp::Div, &int(7), &int(-2)).unwrap(), int(-3));
        assert_eq!(eval_binop(BinOp::Mod, &int(-7), &int(2)).unwrap(), int(-1));
        assert!(eval_binop(BinOp::Div, &int(1), &int(0)).is_err());
    }

    #[test]
    fn arithmetic_on_nums_follows_ieee() {
        let d = eval_binop(BinOp::Div, &Value::num(1.0), &Value::num(0.0)).unwrap();
        assert_eq!(d, Value::num(f64::INFINITY));
    }

    #[test]
    fn mixed_int_num_arithmetic_is_an_error() {
        assert!(eval_binop(BinOp::Add, &int(1), &Value::num(1.0)).is_err());
    }

    #[test]
    fn equality_is_total_and_typed() {
        assert_eq!(
            eval_binop(BinOp::Eq, &int(1), &Value::str("1")).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_binop(BinOp::Eq, &Value::nil(), &Value::List(vec![])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn list_operators() {
        let l = Value::List(vec![int(1), int(2), int(3)]);
        assert_eq!(eval_unop(UnOp::LstLen, &l).unwrap(), int(3));
        assert_eq!(eval_unop(UnOp::LstHead, &l).unwrap(), int(1));
        assert_eq!(
            eval_unop(UnOp::LstTail, &l).unwrap(),
            Value::List(vec![int(2), int(3)])
        );
        assert_eq!(eval_binop(BinOp::LstNth, &l, &int(2)).unwrap(), int(3));
        assert!(eval_binop(BinOp::LstNth, &l, &int(3)).is_err());
        assert_eq!(
            eval_binop(BinOp::LstCons, &int(0), &l).unwrap(),
            Value::List(vec![int(0), int(1), int(2), int(3)])
        );
        assert_eq!(
            eval_binop(BinOp::LstSub, &l, &int(1)).unwrap(),
            Value::List(vec![int(2), int(3)])
        );
        assert_eq!(
            eval_binop(BinOp::LstSub, &l, &int(3)).unwrap(),
            Value::nil()
        );
    }

    #[test]
    fn string_operators() {
        assert_eq!(
            eval_strcat(&[Value::str("foo"), Value::str("bar")]).unwrap(),
            Value::str("foobar")
        );
        assert_eq!(
            eval_unop(UnOp::StrLen, &Value::str("héllo")).unwrap(),
            int(5)
        );
        assert_eq!(
            eval_binop(BinOp::StrNth, &Value::str("abc"), &int(1)).unwrap(),
            Value::str("b")
        );
    }

    #[test]
    fn wrap_operators_match_twos_complement() {
        assert_eq!(eval_unop(UnOp::WrapSigned(8), &int(200)).unwrap(), int(-56));
        assert_eq!(
            eval_unop(UnOp::WrapUnsigned(8), &int(-1)).unwrap(),
            int(255)
        );
        assert_eq!(
            eval_unop(UnOp::WrapSigned(32), &int(1 << 31)).unwrap(),
            int(i32::MIN as i64)
        );
        assert_eq!(
            eval_unop(UnOp::WrapSigned(64), &int(i64::MIN)).unwrap(),
            int(i64::MIN)
        );
        assert_eq!(
            eval_unop(UnOp::WrapUnsigned(16), &int(65536 + 5)).unwrap(),
            int(5)
        );
    }

    #[test]
    fn num_to_int_rejects_non_finite() {
        assert!(eval_unop(UnOp::NumToInt, &Value::num(f64::NAN)).is_err());
        assert!(eval_unop(UnOp::NumToInt, &Value::num(f64::INFINITY)).is_err());
        assert_eq!(
            eval_unop(UnOp::NumToInt, &Value::num(-2.9)).unwrap(),
            int(-2)
        );
    }

    #[test]
    fn typeof_and_tostr() {
        assert_eq!(
            eval_unop(UnOp::TypeOf, &Value::str("x")).unwrap(),
            Value::Type(TypeTag::Str)
        );
        assert_eq!(eval_unop(UnOp::ToStr, &int(42)).unwrap(), Value::str("42"));
    }

    #[test]
    fn shifts() {
        assert_eq!(eval_binop(BinOp::Shl, &int(1), &int(4)).unwrap(), int(16));
        assert_eq!(eval_binop(BinOp::ShrA, &int(-8), &int(1)).unwrap(), int(-4));
        assert_eq!(
            eval_binop(BinOp::ShrL, &int(-8), &int(1)).unwrap(),
            int((-8i64 as u64 >> 1) as i64)
        );
    }
}
