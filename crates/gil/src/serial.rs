//! Zero-dependency binary wire format for GIL values, expressions, and
//! interned terms — the substrate of the exploration checkpoint format.
//!
//! ## Why intern ids never hit the disk
//!
//! [`Term`] ids are mint-order dependent: the id a term receives depends on
//! which terms the global interner has already seen in this process, so the
//! same expression gets different ids in different runs. A checkpoint that
//! recorded raw ids as identity would be unreadable by the resuming process.
//! Instead an [`Encoder`] assigns dense *slots*: every distinct term
//! reachable from the encoded payload is appended to a table in post-order
//! (children strictly before parents), and payload references are `u32`
//! slot indices. The [`Decoder`] reads the table front to back, re-interning
//! each entry with [`Term::new`] — which rebuilds pointer equality, cached
//! hashes, and (lazily) `PcKey`s in the *current* process — and rejects any
//! reference to a slot at or past the read frontier, so a corrupted table
//! surfaces as a clean [`WireError::BadSlot`] rather than bogus sharing.
//!
//! ## Shape of the format
//!
//! Everything is little-endian and length-prefixed. Expressions are
//! *shallow*: recursion passes through interned [`Term`]s (unary/binary
//! operands), which are encoded as slot references, while the n-ary list
//! positions ([`Expr::List`] & friends) nest inline under a hard
//! [`MAX_DEPTH`] so adversarial input errors out instead of overflowing the
//! stack. Floats travel as IEEE-754 bit patterns through [`F64::new`], which
//! re-normalizes NaNs on the way back in.

use crate::expr::{Expr, LVar};
use crate::intern::{ExprList, Term};
use crate::ops::{BinOp, UnOp};
use crate::value::{TypeTag, Value, F64};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Maximum nesting depth accepted when encoding or decoding the inline
/// (non-interned) positions of an expression or value. Term operands do not
/// count toward this: they are flat slot references.
pub const MAX_DEPTH: usize = 256;

/// A malformed or truncated wire payload.
///
/// Every decoding failure is reported through this type; decoding never
/// panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure did.
    Truncated,
    /// An enum tag byte outside the known range for `what`.
    BadTag {
        /// Which enum the tag was for.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A term reference to a slot at or past the decoded table frontier.
    BadSlot {
        /// The offending slot index.
        slot: u32,
        /// Number of table entries decoded so far.
        len: u32,
    },
    /// Inline nesting exceeded [`MAX_DEPTH`].
    DepthLimit,
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A structure too large for its `u32` length prefix.
    TooLong(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            WireError::BadSlot { slot, len } => {
                write!(f, "term slot {slot} out of range (table has {len})")
            }
            WireError::DepthLimit => write!(f, "inline nesting deeper than {MAX_DEPTH}"),
            WireError::BadUtf8 => write!(f, "string payload is not UTF-8"),
            WireError::TooLong(what) => write!(f, "{what} exceeds u32 length prefix"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Primitive little-endian writers/readers
// ---------------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` length prefix followed by UTF-8 bytes.
///
/// # Errors
///
/// [`WireError::TooLong`] when the string exceeds `u32::MAX` bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    let len = u32::try_from(s.len()).map_err(|_| WireError::TooLong("string"))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Appends a `usize` as a checked `u32` length prefix.
///
/// # Errors
///
/// [`WireError::TooLong`] when the count exceeds `u32::MAX`.
pub fn put_len(out: &mut Vec<u8>, n: usize, what: &'static str) -> Result<(), WireError> {
    put_u32(out, u32::try_from(n).map_err(|_| WireError::TooLong(what))?);
    Ok(())
}

/// A cursor over an untrusted byte slice. All reads are bounds-checked and
/// answer [`WireError::Truncated`] past the end.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than 8 bytes remain.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::BadUtf8`].
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    /// Reads an untrusted element count that must be plausible for the
    /// remaining input (each element needs at least one byte), so a
    /// corrupted length prefix cannot drive a huge allocation.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the count exceeds the bytes left.
    pub fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Stable enum tags
// ---------------------------------------------------------------------------

fn type_tag_byte(t: TypeTag) -> u8 {
    match t {
        TypeTag::Int => 0,
        TypeTag::Num => 1,
        TypeTag::Str => 2,
        TypeTag::Bool => 3,
        TypeTag::Sym => 4,
        TypeTag::Type => 5,
        TypeTag::Proc => 6,
        TypeTag::List => 7,
    }
}

fn type_tag_from(tag: u8) -> Result<TypeTag, WireError> {
    TypeTag::ALL
        .get(tag as usize)
        .copied()
        .ok_or(WireError::BadTag {
            what: "TypeTag",
            tag,
        })
}

fn put_unop(out: &mut Vec<u8>, op: UnOp) {
    let (tag, width) = match op {
        UnOp::Not => (0, None),
        UnOp::Neg => (1, None),
        UnOp::TypeOf => (2, None),
        UnOp::IntToNum => (3, None),
        UnOp::NumToInt => (4, None),
        UnOp::ToStr => (5, None),
        UnOp::StrLen => (6, None),
        UnOp::LstLen => (7, None),
        UnOp::LstHead => (8, None),
        UnOp::LstTail => (9, None),
        UnOp::LstRev => (10, None),
        UnOp::BitNot => (11, None),
        UnOp::WrapSigned(w) => (12, Some(w)),
        UnOp::WrapUnsigned(w) => (13, Some(w)),
        UnOp::Floor => (14, None),
    };
    put_u8(out, tag);
    if let Some(w) = width {
        put_u8(out, w);
    }
}

fn read_unop(r: &mut ByteReader) -> Result<UnOp, WireError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => UnOp::Not,
        1 => UnOp::Neg,
        2 => UnOp::TypeOf,
        3 => UnOp::IntToNum,
        4 => UnOp::NumToInt,
        5 => UnOp::ToStr,
        6 => UnOp::StrLen,
        7 => UnOp::LstLen,
        8 => UnOp::LstHead,
        9 => UnOp::LstTail,
        10 => UnOp::LstRev,
        11 => UnOp::BitNot,
        12 => UnOp::WrapSigned(r.u8()?),
        13 => UnOp::WrapUnsigned(r.u8()?),
        14 => UnOp::Floor,
        _ => return Err(WireError::BadTag { what: "UnOp", tag }),
    })
}

fn binop_byte(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Lt => 6,
        BinOp::Leq => 7,
        BinOp::And => 8,
        BinOp::Or => 9,
        BinOp::BitAnd => 10,
        BinOp::BitOr => 11,
        BinOp::BitXor => 12,
        BinOp::Shl => 13,
        BinOp::ShrA => 14,
        BinOp::ShrL => 15,
        BinOp::LstNth => 16,
        BinOp::StrNth => 17,
        BinOp::LstCons => 18,
        BinOp::LstSub => 19,
    }
}

fn binop_from(tag: u8) -> Result<BinOp, WireError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Lt,
        7 => BinOp::Leq,
        8 => BinOp::And,
        9 => BinOp::Or,
        10 => BinOp::BitAnd,
        11 => BinOp::BitOr,
        12 => BinOp::BitXor,
        13 => BinOp::Shl,
        14 => BinOp::ShrA,
        15 => BinOp::ShrL,
        16 => BinOp::LstNth,
        17 => BinOp::StrNth,
        18 => BinOp::LstCons,
        19 => BinOp::LstSub,
        _ => return Err(WireError::BadTag { what: "BinOp", tag }),
    })
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// Serializes a value. Lists recurse inline up to [`MAX_DEPTH`].
///
/// # Errors
///
/// [`WireError::DepthLimit`] or [`WireError::TooLong`].
pub fn write_value(out: &mut Vec<u8>, v: &Value) -> Result<(), WireError> {
    write_value_at(out, v, 0)
}

fn write_value_at(out: &mut Vec<u8>, v: &Value, depth: usize) -> Result<(), WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::DepthLimit);
    }
    match v {
        Value::Int(n) => {
            put_u8(out, 0);
            put_i64(out, *n);
        }
        Value::Num(x) => {
            put_u8(out, 1);
            put_u64(out, x.get().to_bits());
        }
        Value::Str(s) => {
            put_u8(out, 2);
            put_str(out, s)?;
        }
        Value::Bool(b) => {
            put_u8(out, 3);
            put_u8(out, *b as u8);
        }
        Value::Sym(s) => {
            put_u8(out, 4);
            put_u64(out, s.0);
        }
        Value::Type(t) => {
            put_u8(out, 5);
            put_u8(out, type_tag_byte(*t));
        }
        Value::Proc(p) => {
            put_u8(out, 6);
            put_str(out, p)?;
        }
        Value::List(vs) => {
            put_u8(out, 7);
            put_len(out, vs.len(), "value list")?;
            for v in vs {
                write_value_at(out, v, depth + 1)?;
            }
        }
    }
    Ok(())
}

/// Deserializes a value written by [`write_value`].
///
/// # Errors
///
/// Any [`WireError`]; never panics on malformed input.
pub fn read_value(r: &mut ByteReader) -> Result<Value, WireError> {
    read_value_at(r, 0)
}

fn read_value_at(r: &mut ByteReader, depth: usize) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::DepthLimit);
    }
    let tag = r.u8()?;
    Ok(match tag {
        0 => Value::Int(r.i64()?),
        1 => Value::Num(F64::new(f64::from_bits(r.u64()?))),
        2 => Value::str(r.str()?),
        3 => Value::Bool(r.u8()? != 0),
        4 => Value::Sym(crate::value::Sym(r.u64()?)),
        5 => Value::Type(type_tag_from(r.u8()?)?),
        6 => Value::proc(r.str()?),
        7 => {
            let n = r.count()?;
            let mut vs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                vs.push(read_value_at(r, depth + 1)?);
            }
            Value::List(vs)
        }
        _ => return Err(WireError::BadTag { what: "Value", tag }),
    })
}

// ---------------------------------------------------------------------------
// Encoder: term pool + payload writer
// ---------------------------------------------------------------------------

/// Accumulates the term table while payload sections are encoded.
///
/// Usage: encode every payload section through one `Encoder` (collecting the
/// bytes in your own buffers), then call [`Encoder::write_table`] and place
/// the table bytes *before* the payload in the file. The table is in
/// post-order, so every table entry references strictly earlier slots and
/// the decoder can rebuild it in one forward pass.
#[derive(Default)]
pub struct Encoder {
    table: Vec<Term>,
    slots: HashMap<u64, u32>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Number of distinct terms registered so far.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// The slot of `t`, registering it (and, first, its transitive
    /// children) if unseen. Iterative post-order: no stack overflow on
    /// deep chains.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLong`] when the table outgrows `u32`.
    pub fn slot_of(&mut self, t: &Term) -> Result<u32, WireError> {
        if let Some(&s) = self.slots.get(&t.id()) {
            return Ok(s);
        }
        enum Visit {
            Enter(Term),
            Exit(Term),
        }
        let mut stack = vec![Visit::Enter(t.clone())];
        while let Some(v) = stack.pop() {
            match v {
                Visit::Enter(t) => {
                    if self.slots.contains_key(&t.id()) {
                        continue;
                    }
                    let mut kids = Vec::new();
                    child_terms(t.expr(), &mut kids);
                    stack.push(Visit::Exit(t));
                    for k in kids {
                        if !self.slots.contains_key(&k.id()) {
                            stack.push(Visit::Enter(k));
                        }
                    }
                }
                Visit::Exit(t) => {
                    if self.slots.contains_key(&t.id()) {
                        continue;
                    }
                    let slot = u32::try_from(self.table.len())
                        .map_err(|_| WireError::TooLong("term table"))?;
                    self.slots.insert(t.id(), slot);
                    self.table.push(t);
                }
            }
        }
        Ok(self.slots[&t.id()])
    }

    /// Writes a term as a `u32` slot reference, registering it if needed.
    ///
    /// # Errors
    ///
    /// [`WireError::TooLong`] when the table outgrows `u32`.
    pub fn write_term(&mut self, out: &mut Vec<u8>, t: &Term) -> Result<(), WireError> {
        let slot = self.slot_of(t)?;
        put_u32(out, slot);
        Ok(())
    }

    /// Writes an expression inline: term operands become slot references,
    /// list positions nest up to [`MAX_DEPTH`].
    ///
    /// # Errors
    ///
    /// [`WireError::DepthLimit`] or [`WireError::TooLong`].
    pub fn write_expr(&mut self, out: &mut Vec<u8>, e: &Expr) -> Result<(), WireError> {
        self.encode_expr(out, e, 0)
    }

    fn encode_expr(&mut self, out: &mut Vec<u8>, e: &Expr, depth: usize) -> Result<(), WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::DepthLimit);
        }
        match e {
            Expr::Val(v) => {
                put_u8(out, 0);
                write_value_at(out, v, depth + 1)?;
            }
            Expr::PVar(x) => {
                put_u8(out, 1);
                put_str(out, x)?;
            }
            Expr::LVar(x) => {
                put_u8(out, 2);
                put_u64(out, x.0);
            }
            Expr::Un(op, t) => {
                put_u8(out, 3);
                put_unop(out, *op);
                self.write_term(out, t)?;
            }
            Expr::Bin(op, a, b) => {
                put_u8(out, 4);
                put_u8(out, binop_byte(*op));
                self.write_term(out, a)?;
                self.write_term(out, b)?;
            }
            Expr::List(es) => {
                put_u8(out, 5);
                self.encode_list(out, es, depth + 1)?;
            }
            Expr::StrCat(es) => {
                put_u8(out, 6);
                self.encode_list(out, es, depth + 1)?;
            }
            Expr::LstCat(es) => {
                put_u8(out, 7);
                self.encode_list(out, es, depth + 1)?;
            }
        }
        Ok(())
    }

    fn encode_list(
        &mut self,
        out: &mut Vec<u8>,
        es: &ExprList,
        depth: usize,
    ) -> Result<(), WireError> {
        put_len(out, es.len(), "expr list")?;
        for e in es {
            self.encode_expr(out, e, depth)?;
        }
        Ok(())
    }

    /// Serializes the accumulated table. Call once, after all payload
    /// sections, and place the bytes *before* the payload in the file.
    ///
    /// # Errors
    ///
    /// [`WireError`] on oversized entries (cannot happen for tables built
    /// by this encoder).
    pub fn write_table(&mut self, out: &mut Vec<u8>) -> Result<(), WireError> {
        put_len(out, self.table.len(), "term table")?;
        let mut i = 0;
        while i < self.table.len() {
            let t = self.table[i].clone();
            // Post-order registration guarantees children landed at
            // strictly smaller slots, so this entry never grows the table.
            let before = self.table.len();
            self.encode_expr(out, t.expr(), 0)?;
            debug_assert_eq!(before, self.table.len(), "table entry minted new slots");
            i += 1;
        }
        Ok(())
    }
}

/// Collects the terms directly referenced by `e`'s inline structure: the
/// operands of `Un`/`Bin` positions, including those inside nested list
/// literals, without crossing into the referenced terms themselves.
fn child_terms(e: &Expr, out: &mut Vec<Term>) {
    let mut stack: Vec<&Expr> = vec![e];
    while let Some(e) = stack.pop() {
        match e {
            Expr::Un(_, t) => out.push(t.clone()),
            Expr::Bin(_, a, b) => {
                out.push(a.clone());
                out.push(b.clone());
            }
            Expr::List(es) | Expr::StrCat(es) | Expr::LstCat(es) => {
                for el in es {
                    stack.push(el);
                }
            }
            Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// The re-interned term table of one payload; resolves slot references.
#[derive(Debug)]
pub struct Decoder {
    table: Vec<Term>,
}

impl Decoder {
    /// Reads and re-interns a table written by [`Encoder::write_table`].
    /// Forward references (slot ≥ entries decoded so far) are rejected.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; never panics on malformed input.
    pub fn read_table(r: &mut ByteReader) -> Result<Decoder, WireError> {
        let n = r.count()?;
        let mut dec = Decoder { table: Vec::new() };
        for _ in 0..n {
            let e = dec.read_expr(r)?;
            dec.table.push(Term::new(e));
        }
        Ok(dec)
    }

    /// Number of table entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Resolves a `u32` slot reference to its re-interned term.
    ///
    /// # Errors
    ///
    /// [`WireError::BadSlot`] for out-of-range slots.
    pub fn read_term(&self, r: &mut ByteReader) -> Result<Term, WireError> {
        let slot = r.u32()?;
        self.table
            .get(slot as usize)
            .cloned()
            .ok_or(WireError::BadSlot {
                slot,
                len: self.table.len() as u32,
            })
    }

    /// Reads an inline expression written by [`Encoder::write_expr`].
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; never panics on malformed input.
    pub fn read_expr(&self, r: &mut ByteReader) -> Result<Expr, WireError> {
        self.decode_expr(r, 0)
    }

    fn decode_expr(&self, r: &mut ByteReader, depth: usize) -> Result<Expr, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::DepthLimit);
        }
        let tag = r.u8()?;
        Ok(match tag {
            0 => Expr::Val(read_value_at(r, depth + 1)?),
            1 => Expr::PVar(Arc::from(r.str()?)),
            2 => Expr::LVar(LVar(r.u64()?)),
            3 => {
                let op = read_unop(r)?;
                Expr::Un(op, self.read_term(r)?)
            }
            4 => {
                let op = binop_from(r.u8()?)?;
                let a = self.read_term(r)?;
                let b = self.read_term(r)?;
                Expr::Bin(op, a, b)
            }
            5 => Expr::List(self.decode_list(r, depth + 1)?),
            6 => Expr::StrCat(self.decode_list(r, depth + 1)?),
            7 => Expr::LstCat(self.decode_list(r, depth + 1)?),
            _ => return Err(WireError::BadTag { what: "Expr", tag }),
        })
    }

    fn decode_list(&self, r: &mut ByteReader, depth: usize) -> Result<ExprList, WireError> {
        let n = r.count()?;
        let mut es = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            es.push(self.decode_expr(r, depth)?);
        }
        Ok(ExprList::from(es))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Sym;

    fn round_trip(exprs: &[Expr]) -> Vec<Expr> {
        let mut enc = Encoder::new();
        let mut payload = Vec::new();
        for e in exprs {
            enc.write_expr(&mut payload, e).unwrap();
        }
        let mut file = Vec::new();
        enc.write_table(&mut file).unwrap();
        file.extend_from_slice(&payload);

        let mut r = ByteReader::new(&file);
        let dec = Decoder::read_table(&mut r).unwrap();
        let out: Vec<Expr> = exprs
            .iter()
            .map(|_| dec.read_expr(&mut r).unwrap())
            .collect();
        assert!(r.is_empty(), "trailing bytes after decode");
        out
    }

    #[test]
    fn values_round_trip() {
        let vals = vec![
            Value::Int(i64::MIN),
            Value::num(-0.0),
            Value::num(f64::NAN),
            Value::num(f64::INFINITY),
            Value::str("héllo\u{1F980}"),
            Value::Bool(true),
            Value::Sym(Sym(42)),
            Value::Type(TypeTag::List),
            Value::proc("main"),
            Value::List(vec![Value::Int(1), Value::List(vec![Value::str("x")])]),
        ];
        for v in &vals {
            let mut buf = Vec::new();
            write_value(&mut buf, v).unwrap();
            let mut r = ByteReader::new(&buf);
            assert_eq!(&read_value(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn exprs_round_trip_and_reintern_shares() {
        let shared = Expr::pvar("x").add(Expr::int(1));
        let e1 = shared.clone().lt(Expr::int(10));
        let e2 = shared.clone().eq(Expr::int(3));
        let e3 = Expr::list([shared.clone(), Expr::lvar(LVar(7))]);
        let back = round_trip(&[e1.clone(), e2.clone(), e3.clone()]);
        assert_eq!(back, vec![e1, e2, e3]);
        // The shared subterm must be re-interned to a single node:
        // pointer-equal across both decoded parents.
        let t1 = match &back[0] {
            Expr::Bin(_, a, _) => a.clone(),
            other => panic!("unexpected shape {other:?}"),
        };
        let t2 = match &back[1] {
            Expr::Bin(_, a, _) => a.clone(),
            other => panic!("unexpected shape {other:?}"),
        };
        assert!(t1.same(&t2), "decoded shared subterm not pointer-equal");
    }

    #[test]
    fn table_dedups_shared_subterms() {
        let shared = Expr::pvar("x").add(Expr::int(1));
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        enc.write_expr(&mut buf, &shared.clone().lt(Expr::int(10)))
            .unwrap();
        let len_one = enc.table_len();
        enc.write_expr(&mut buf, &shared.eq(Expr::int(3))).unwrap();
        // Reusing the shared subterm adds no new table entries for it.
        assert!(enc.table_len() <= len_one + 2);
    }

    #[test]
    fn deep_un_chain_does_not_overflow() {
        // Depth far past MAX_DEPTH and the parser's 128-level limit: term
        // operands are slot references, so the codec never recurses on
        // them. (Kept below the depth where the *term chain's own*
        // recursive drop would exhaust the 2 MiB test-thread stack — that
        // hazard predates serialization.)
        let mut e = Expr::pvar("x");
        for _ in 0..2_000 {
            e = e.not();
        }
        let back = round_trip(std::slice::from_ref(&e));
        assert_eq!(back[0], e);
    }

    #[test]
    fn deep_inline_list_hits_depth_limit() {
        let mut e = Expr::int(0);
        for _ in 0..(MAX_DEPTH + 2) {
            e = Expr::list([e]);
        }
        let mut enc = Encoder::new();
        let mut buf = Vec::new();
        assert_eq!(enc.write_expr(&mut buf, &e), Err(WireError::DepthLimit));
    }

    #[test]
    fn forward_slot_reference_is_rejected() {
        // Handcraft a table whose single entry references slot 0 — itself,
        // i.e. not yet decoded at read time.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1); // table length
        put_u8(&mut buf, 3); // Expr::Un
        put_u8(&mut buf, 0); // UnOp::Not
        put_u32(&mut buf, 0); // slot 0: forward reference
        let mut r = ByteReader::new(&buf);
        match Decoder::read_table(&mut r) {
            Err(WireError::BadSlot { slot: 0, len: 0 }) => {}
            other => panic!("expected BadSlot, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_clean_errors() {
        let e = Expr::pvar("abc").add(Expr::int(5));
        let mut enc = Encoder::new();
        let mut payload = Vec::new();
        enc.write_expr(&mut payload, &e).unwrap();
        let mut file = Vec::new();
        enc.write_table(&mut file).unwrap();
        file.extend_from_slice(&payload);

        for cut in 0..file.len() {
            let mut r = ByteReader::new(&file[..cut]);
            let res = Decoder::read_table(&mut r).and_then(|d| d.read_expr(&mut r));
            assert!(res.is_err(), "decoding a {cut}-byte prefix succeeded");
        }

        let mut r = ByteReader::new(&[0u8, 0, 0, 0, 0xff][..]);
        let res = Decoder::read_table(&mut r).and_then(|d| d.read_expr(&mut r));
        assert!(matches!(res, Err(WireError::BadTag { .. })));
    }

    #[test]
    fn huge_length_prefix_is_truncation_not_alloc() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // absurd table length
        let mut r = ByteReader::new(&buf);
        assert_eq!(
            Decoder::read_table(&mut r).map(|_| ()),
            Err(WireError::Truncated)
        );
    }
}
