//! Concrete evaluation of GIL expressions: `⟦e⟧ρ` (paper §2.3).
//!
//! Evaluation is against a *concrete store* mapping program variables to
//! [`Value`]s. Logical variables are rejected: they only exist in symbolic
//! execution, where evaluation is substitution followed by simplification
//! (see `gillian-solver`).

use crate::expr::Expr;
use crate::ops::{eval_binop, eval_lstcat, eval_strcat, eval_unop, EvalError};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A concrete variable store `ρ : X ⇀ V`.
///
/// A thin wrapper over an ordered map so iteration (and therefore error
/// messages and debugging output) is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Store(BTreeMap<Arc<str>, Value>);

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Looks up a variable.
    pub fn get(&self, x: &str) -> Option<&Value> {
        self.0.get(x)
    }

    /// Binds a variable, returning any previous value.
    pub fn set(&mut self, x: impl AsRef<str>, v: Value) -> Option<Value> {
        self.0.insert(Arc::from(x.as_ref()), v)
    }

    /// Iterates over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Value)> {
        self.0.iter()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Serialises the store as a GIL list of `[name, value]` pairs — the
    /// representation used by the `getStore`/`setStore` actions (paper
    /// footnote 2).
    pub fn to_value(&self) -> Value {
        Value::List(
            self.0
                .iter()
                .map(|(k, v)| Value::List(vec![Value::str(k.as_ref()), v.clone()]))
                .collect(),
        )
    }

    /// Rebuilds a store from the `[[name, value], …]` serialisation.
    ///
    /// # Errors
    ///
    /// Fails when the value is not a list of `[string, value]` pairs.
    pub fn from_value(v: &Value) -> Result<Self, EvalError> {
        let items = v
            .as_list()
            .ok_or_else(|| EvalError::new("store serialisation must be a list"))?;
        let mut store = Store::new();
        for item in items {
            match item.as_list() {
                Some([Value::Str(name), value]) => {
                    store.set(name.as_ref(), value.clone());
                }
                _ => return Err(EvalError::new("store entry must be [name, value]")),
            }
        }
        Ok(store)
    }
}

impl FromIterator<(Arc<str>, Value)> for Store {
    fn from_iter<I: IntoIterator<Item = (Arc<str>, Value)>>(iter: I) -> Self {
        Store(iter.into_iter().collect())
    }
}

/// Evaluates an expression in a concrete store.
///
/// # Errors
///
/// Returns [`EvalError`] for unbound program variables, logical variables,
/// and operator domain violations.
pub fn eval(store: &Store, e: &Expr) -> Result<Value, EvalError> {
    match e {
        Expr::Val(v) => Ok(v.clone()),
        Expr::PVar(x) => store
            .get(x)
            .cloned()
            .ok_or_else(|| EvalError::new(format!("unbound variable {x}"))),
        Expr::LVar(x) => Err(EvalError::new(format!(
            "logical variable {x} in concrete evaluation"
        ))),
        Expr::Un(op, e) => eval_unop(*op, &eval(store, e)?),
        Expr::Bin(op, a, b) => eval_binop(*op, &eval(store, a)?, &eval(store, b)?),
        Expr::List(es) => es.iter().map(|e| eval(store, e)).collect(),
        Expr::StrCat(es) => {
            let vs: Vec<Value> = es
                .iter()
                .map(|e| eval(store, e))
                .collect::<Result<_, _>>()?;
            eval_strcat(&vs)
        }
        Expr::LstCat(es) => {
            let vs: Vec<Value> = es
                .iter()
                .map(|e| eval(store, e))
                .collect::<Result<_, _>>()?;
            eval_lstcat(&vs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LVar;

    fn store() -> Store {
        let mut s = Store::new();
        s.set("x", Value::Int(10));
        s.set("name", Value::str("gil"));
        s
    }

    #[test]
    fn evaluates_against_store() {
        let e = Expr::pvar("x").add(Expr::int(5));
        assert_eq!(eval(&store(), &e).unwrap(), Value::Int(15));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        assert!(eval(&store(), &Expr::pvar("y")).is_err());
    }

    #[test]
    fn logical_variable_is_an_error() {
        assert!(eval(&store(), &Expr::lvar(LVar(0))).is_err());
    }

    #[test]
    fn list_and_strcat_evaluate_elementwise() {
        let e = Expr::list([Expr::pvar("x"), Expr::int(2)]);
        assert_eq!(
            eval(&store(), &e).unwrap(),
            Value::List(vec![Value::Int(10), Value::Int(2)])
        );
        let s = Expr::StrCat(vec![Expr::pvar("name"), Expr::str("!")].into());
        assert_eq!(eval(&store(), &s).unwrap(), Value::str("gil!"));
    }

    #[test]
    fn store_round_trips_through_value() {
        let s = store();
        let v = s.to_value();
        assert_eq!(Store::from_value(&v).unwrap(), s);
    }
}
