#![warn(missing_docs)]

//! # GIL: the Gillian Intermediate Language
//!
//! GIL is a simple goto language with top-level procedures, parametric on a
//! set of *actions* through which programs interact with their memories
//! (paper §2.1). This crate defines the language itself:
//!
//! - [`Value`] — GIL values: integers, numbers, strings, booleans,
//!   uninterpreted symbols, types, procedure identifiers, and lists;
//! - [`Expr`] — expressions over values, program variables and logical
//!   variables, with unary, binary and n-ary operators;
//! - [`Cmd`], [`Proc`], [`Prog`] — commands, procedures and programs;
//! - concrete evaluation of operators ([`ops`]) and expressions
//!   ([`eval`]), shared between the concrete interpreter and the
//!   solver's constant folder;
//! - a pretty-printer ([`std::fmt::Display`] on all syntax) and a text
//!   parser ([`parser`]) for the `.gil` format.
//!
//! Actions themselves are *not* defined here: they are strings resolved by
//! the state model a program runs under (see the `gillian-core` crate).
//!
//! ## Example
//!
//! ```
//! use gillian_gil::{Cmd, Expr, Proc, Prog};
//!
//! // proc main() { x := 21 + 21; return x }
//! let main = Proc::new(
//!     "main",
//!     [],
//!     vec![
//!         Cmd::assign("x", Expr::int(21).add(Expr::int(21))),
//!         Cmd::Return(Expr::pvar("x")),
//!     ],
//! );
//! let prog = Prog::from_procs([main]);
//! assert!(prog.proc("main").is_some());
//! ```

pub mod compile;
pub mod eval;
pub mod expr;
pub mod hashing;
pub mod intern;
pub mod ops;
pub mod parser;
pub mod prog;
pub mod serial;
pub mod value;

pub use compile::{
    compile, CompiledProc, CompiledProg, EvalScratch, ExprCode, ExprKind, Instr, ProcHint,
};
pub use expr::{Expr, LVar};
pub use hashing::{FxBuildHasher, PrehashedBuildHasher};
pub use intern::{ExprList, InternStats, Term};
pub use ops::{BinOp, EvalError, UnOp};
pub use prog::{Cmd, Ident, Label, Proc, Prog};
pub use serial::{ByteReader, Decoder, Encoder, WireError};
pub use value::{Sym, TypeTag, Value, F64};
