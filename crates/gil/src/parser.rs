//! Parser for the `.gil` textual format.
//!
//! The grammar is exactly what the crate's pretty-printer emits, so
//! `parse_prog(prog.to_string())` round-trips every program (see the
//! property tests in `tests/roundtrip.rs`). Binary applications are always
//! parenthesised, which keeps the grammar precedence-free.
//!
//! ```
//! use gillian_gil::parser::parse_prog;
//! let p = parse_prog(r#"
//! proc main(x) {
//!   0: y := (x + 1)
//!   1: return y
//! }
//! "#).unwrap();
//! assert_eq!(p.proc("main").unwrap().params.len(), 1);
//! ```

use crate::expr::{Expr, LVar};
use crate::ops::{BinOp, UnOp};
use crate::prog::{Cmd, Proc, Prog};
use crate::value::{Sym, TypeTag, Value};
use std::fmt;

/// A parse error with a byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error occurred.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.msg)
    }
}
impl std::error::Error for ParseError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

type PResult<T> = Result<T, ParseError>;

/// Expression nesting beyond this depth is rejected instead of risking a
/// stack overflow in the recursive-descent parser (which would abort the
/// whole process — unrecoverable, unlike a [`ParseError`]). 128 levels fit
/// comfortably in a 2 MiB thread stack even for unoptimized builds, where
/// each level of the descent costs several KiB of frame.
const MAX_EXPR_DEPTH: usize = 128;

impl<'a> P<'a> {
    fn new(src: &'a str) -> Self {
        P {
            src,
            pos: 0,
            depth: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            offset: self.pos,
            msg: msg.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if self.rest().starts_with("//") {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> PResult<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            self.err(format!("expected `{tok}`"))
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn ident(&mut self) -> PResult<String> {
        self.skip_ws();
        let r = self.rest();
        let mut len = 0;
        for c in r.chars() {
            if c.is_alphanumeric() || c == '_' {
                len += c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 || r.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return self.err("expected identifier");
        }
        self.pos += len;
        Ok(r[..len].to_string())
    }

    fn number(&mut self) -> PResult<Value> {
        self.skip_ws();
        let r = self.rest();
        let mut len = 0;
        let mut is_float = false;
        for (i, c) in r.char_indices() {
            if c.is_ascii_digit() {
                len = i + 1;
            } else if c == '.' && !is_float && r[i + 1..].starts_with(|d: char| d.is_ascii_digit())
            {
                is_float = true;
                len = i + 1;
            } else if (c == 'e' || c == 'E' || c == '-' || c == '+') && is_float && len == i {
                len = i + 1;
            } else {
                break;
            }
        }
        if len == 0 {
            return self.err("expected number");
        }
        let text = &r[..len];
        self.pos += len;
        if is_float {
            text.parse::<f64>().map(Value::num).map_err(|e| ParseError {
                offset: self.pos,
                msg: e.to_string(),
            })
        } else {
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                // `-9223372036854775808` prints with the sign as a separate
                // token, so the magnitude 2⁶³ must be representable here; a
                // subsequent negation wraps it back to `i64::MIN`.
                Err(_) if text.parse::<u128>() == Ok(1u128 << 63) => Ok(Value::Int(i64::MIN)),
                Err(e) => Err(ParseError {
                    offset: self.pos,
                    msg: e.to_string(),
                }),
            }
        }
    }

    fn string_lit(&mut self) -> PResult<String> {
        self.expect("\"")?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        loop {
            match chars.next() {
                None => return self.err("unterminated string"),
                Some((i, '"')) => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                Some((_, '\\')) => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '0')) => out.push('\0'),
                    Some((_, c)) => out.push(c),
                    None => return self.err("unterminated escape"),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn usize_lit(&mut self) -> PResult<usize> {
        match self.number()? {
            Value::Int(n) if n >= 0 => Ok(n as usize),
            v => self.err(format!("expected non-negative integer, got {v}")),
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Named (function-style) operators, checked by literal prefix because
    /// several contain `-`.
    const NAMED_UN: &'static [(&'static str, UnOp)] = &[
        ("not", UnOp::Not),
        ("typeOf", UnOp::TypeOf),
        ("int_to_num", UnOp::IntToNum),
        ("num_to_int", UnOp::NumToInt),
        ("to_str", UnOp::ToStr),
        ("s-len", UnOp::StrLen),
        ("l-len", UnOp::LstLen),
        ("l-head", UnOp::LstHead),
        ("l-tail", UnOp::LstTail),
        ("l-rev", UnOp::LstRev),
        ("floor", UnOp::Floor),
    ];

    const NAMED_BIN: &'static [(&'static str, BinOp)] = &[
        ("l-nth", BinOp::LstNth),
        ("s-nth", BinOp::StrNth),
        ("l-cons", BinOp::LstCons),
        ("l-sub", BinOp::LstSub),
    ];

    fn infix_op(&mut self) -> PResult<BinOp> {
        // Longest tokens first.
        const OPS: &[(&str, BinOp)] = &[
            (">>>", BinOp::ShrL),
            ("<<", BinOp::Shl),
            (">>", BinOp::ShrA),
            ("<=", BinOp::Leq),
            ("and", BinOp::And),
            ("or", BinOp::Or),
            ("+", BinOp::Add),
            ("-", BinOp::Sub),
            ("*", BinOp::Mul),
            ("/", BinOp::Div),
            ("%", BinOp::Mod),
            ("=", BinOp::Eq),
            ("<", BinOp::Lt),
            ("&", BinOp::BitAnd),
            ("|", BinOp::BitOr),
            ("^", BinOp::BitXor),
        ];
        for (tok, op) in OPS {
            if self.eat(tok) {
                return Ok(*op);
            }
        }
        self.err("expected binary operator")
    }

    fn nary(&mut self, close: &str) -> PResult<Vec<Expr>> {
        let mut out = Vec::new();
        if self.eat(close) {
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            if self.eat(close) {
                return Ok(out);
            }
            self.expect(",")?;
        }
    }

    fn expr(&mut self) -> PResult<Expr> {
        if self.depth >= MAX_EXPR_DEPTH {
            return self.err(format!(
                "expression nesting deeper than {MAX_EXPR_DEPTH} levels"
            ));
        }
        self.depth += 1;
        let result = self.expr_inner();
        self.depth -= 1;
        result
    }

    fn expr_inner(&mut self) -> PResult<Expr> {
        self.skip_ws();
        // Parenthesised: unary neg/bitnot, or binary application.
        if self.eat("(") {
            if self.eat("-") {
                // Either the unary form `(-e)`, or a parenthesised binary
                // application whose left operand is a negative literal,
                // `(-5 << x)`. (Non-literal negations always print with
                // their own parentheses, so the literal case is the only
                // one that can be followed by an operator here.)
                let e = self.expr()?;
                if self.eat(")") {
                    return Ok(e.un(UnOp::Neg));
                }
                let lhs = match e {
                    Expr::Val(Value::Int(n)) => Expr::int(n.wrapping_neg()),
                    Expr::Val(Value::Num(x)) => Expr::num(-x.get()),
                    other => {
                        return self.err(format!(
                            "expected `)` after negation of non-literal {other}"
                        ))
                    }
                };
                let op = self.infix_op()?;
                let rhs = self.expr()?;
                self.expect(")")?;
                return Ok(lhs.bin(op, rhs));
            }
            if self.eat("~") {
                let e = self.expr()?;
                self.expect(")")?;
                return Ok(e.un(UnOp::BitNot));
            }
            let lhs = self.expr()?;
            let op = self.infix_op()?;
            let rhs = self.expr()?;
            self.expect(")")?;
            return Ok(lhs.bin(op, rhs));
        }
        if self.eat("{{") {
            let items = self.nary("}}")?;
            return Ok(Expr::List(items.into()));
        }
        // A literal list value `[v₁, …, vₙ]` (the Display form of
        // `Value::List`, as opposed to the `{{ … }}` list *expression*).
        if self.eat("[") {
            let items = self.nary("]")?;
            let mut values = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Expr::Val(v) => values.push(v),
                    other => {
                        return self
                            .err(format!("literal list may only contain values, got {other}"))
                    }
                }
            }
            return Ok(Expr::Val(Value::List(values)));
        }
        // Named operator applications.
        for (name, op) in Self::NAMED_UN {
            if self.rest().starts_with(name) && self.src[self.pos + name.len()..].starts_with('(') {
                self.pos += name.len();
                self.expect("(")?;
                let e = self.expr()?;
                self.expect(")")?;
                return Ok(e.un(*op));
            }
        }
        for (name, op) in Self::NAMED_BIN {
            if self.rest().starts_with(name) && self.src[self.pos + name.len()..].starts_with('(') {
                self.pos += name.len();
                self.expect("(")?;
                let a = self.expr()?;
                self.expect(",")?;
                let b = self.expr()?;
                self.expect(")")?;
                return Ok(a.bin(*op, b));
            }
        }
        if self.rest().starts_with("s-cat(") {
            self.pos += "s-cat(".len();
            return Ok(Expr::StrCat(self.nary(")")?.into()));
        }
        if self.rest().starts_with("l-cat(") {
            self.pos += "l-cat(".len();
            return Ok(Expr::LstCat(self.nary(")")?.into()));
        }
        if self.rest().starts_with("wrap_") {
            self.pos += "wrap_".len();
            let signed = match self.rest().chars().next() {
                Some('s') => true,
                Some('u') => false,
                _ => return self.err("expected `s` or `u` after `wrap_`"),
            };
            self.pos += 1;
            let w = self.usize_lit()?;
            if !(1..=64).contains(&w) {
                return self.err(format!("wrap width must be between 1 and 64, got {w}"));
            }
            self.expect("(")?;
            let e = self.expr()?;
            self.expect(")")?;
            let op = if signed {
                UnOp::WrapSigned(w as u8)
            } else {
                UnOp::WrapUnsigned(w as u8)
            };
            return Ok(e.un(op));
        }
        match self.peek() {
            Some('"') => Ok(Expr::Val(Value::from(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() => Ok(Expr::Val(self.number()?)),
            Some('-') => {
                self.expect("-")?;
                if self.eat("Infinity") {
                    return Ok(Expr::num(f64::NEG_INFINITY));
                }
                match self.number()? {
                    Value::Int(n) => Ok(Expr::int(n.wrapping_neg())),
                    Value::Num(x) => Ok(Expr::num(-x.get())),
                    _ => unreachable!("number() returns Int or Num"),
                }
            }
            Some('$') => {
                self.expect("$")?;
                self.expect("ς")?;
                let id = self.usize_lit()? as u64;
                Ok(Expr::Val(Value::Sym(Sym(id))))
            }
            Some('#') => {
                self.expect("#")?;
                self.expect("x")?;
                let id = self.usize_lit()? as u64;
                Ok(Expr::LVar(LVar(id)))
            }
            Some('@') => {
                self.expect("@")?;
                let name = self.ident()?;
                Ok(Expr::proc(name))
            }
            _ => {
                let id = self.ident()?;
                match id.as_str() {
                    "true" => Ok(Expr::tt()),
                    "false" => Ok(Expr::ff()),
                    "NaN" => Ok(Expr::num(f64::NAN)),
                    "Infinity" => Ok(Expr::num(f64::INFINITY)),
                    _ => {
                        if let Some(t) = TypeTag::ALL.iter().find(|t| t.name() == id) {
                            Ok(Expr::type_tag(*t))
                        } else {
                            Ok(Expr::pvar(id))
                        }
                    }
                }
            }
        }
    }

    // ---- commands ---------------------------------------------------------

    fn cmd(&mut self) -> PResult<Cmd> {
        // Optional numeric label `N:`.
        self.skip_ws();
        let save = self.pos;
        if self.peek().is_some_and(|c| c.is_ascii_digit()) {
            let _ = self.usize_lit()?;
            if !self.eat(":") {
                self.pos = save;
            }
        }
        self.skip_ws();
        if self.eat("ifgoto") {
            let e = self.expr()?;
            let l = self.usize_lit()?;
            return Ok(Cmd::IfGoto(e, l));
        }
        if self.eat("goto") {
            return Ok(Cmd::Goto(self.usize_lit()?));
        }
        if self.eat("return") {
            return Ok(Cmd::Return(self.expr()?));
        }
        if self.eat("fail") {
            return Ok(Cmd::Fail(self.expr()?));
        }
        if self.eat("vanish") {
            return Ok(Cmd::Vanish);
        }
        if self.eat("skip") {
            return Ok(Cmd::Skip);
        }
        let lhs = self.ident()?;
        self.expect(":=")?;
        self.skip_ws();
        if self.rest().starts_with("uSym_") {
            self.pos += "uSym_".len();
            return Ok(Cmd::usym(lhs, self.usize_lit()? as u32));
        }
        if self.rest().starts_with("iSym_") {
            self.pos += "iSym_".len();
            return Ok(Cmd::isym(lhs, self.usize_lit()? as u32));
        }
        // Action: `x := name!(e)`; call: `x := e(ē)`; else plain assignment.
        let save = self.pos;
        if let Ok(name) = self.ident() {
            if self.rest().starts_with("!(") {
                self.pos += 2;
                let arg = self.expr()?;
                self.expect(")")?;
                return Ok(Cmd::action(lhs, name, arg));
            }
        }
        self.pos = save;
        let e = self.expr()?;
        if self.rest().starts_with('(') {
            self.pos += 1;
            let args = self.nary(")")?;
            return Ok(Cmd::Call {
                lhs: std::sync::Arc::from(lhs.as_str()),
                proc: e,
                args,
            });
        }
        Ok(Cmd::assign(lhs, e))
    }

    fn proc(&mut self) -> PResult<Proc> {
        self.expect("proc")?;
        let name = self.ident()?;
        self.expect("(")?;
        let mut params = Vec::new();
        if !self.eat(")") {
            loop {
                params.push(self.ident()?);
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        self.expect("{")?;
        let mut body = Vec::new();
        while !self.eat("}") {
            if self.at_end() {
                return self.err("unterminated procedure body");
            }
            body.push(self.cmd()?);
        }
        Ok(Proc::new(name, params.iter().map(String::as_str), body))
    }
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let mut p = P::new(src);
    let e = p.expr()?;
    if !p.at_end() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

/// Parses a whole program (a sequence of `proc` definitions).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or duplicate procedures.
pub fn parse_prog(src: &str) -> PResult<Prog> {
    let mut p = P::new(src);
    let mut prog = Prog::new();
    while !p.at_end() {
        let pr = p.proc()?;
        if prog.proc(&pr.name).is_some() {
            return p.err(format!("duplicate procedure {}", pr.name));
        }
        prog.add(pr);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals() {
        assert_eq!(parse_expr("42").unwrap(), Expr::int(42));
        assert_eq!(parse_expr("-3").unwrap(), Expr::int(-3));
        assert_eq!(parse_expr("2.5").unwrap(), Expr::num(2.5));
        assert_eq!(parse_expr("\"hi\\n\"").unwrap(), Expr::str("hi\n"));
        assert_eq!(parse_expr("true").unwrap(), Expr::tt());
        assert_eq!(parse_expr("Int").unwrap(), Expr::type_tag(TypeTag::Int));
        assert_eq!(parse_expr("@f").unwrap(), Expr::proc("f"));
        assert_eq!(parse_expr("#x7").unwrap(), Expr::lvar(LVar(7)));
        assert_eq!(parse_expr("$ς3").unwrap(), Expr::Val(Value::Sym(Sym(3))));
    }

    #[test]
    fn parses_operators() {
        assert_eq!(
            parse_expr("((x + 1) < 10)").unwrap(),
            Expr::pvar("x").add(Expr::int(1)).lt(Expr::int(10))
        );
        assert_eq!(
            parse_expr("l-nth(xs, 0)").unwrap(),
            Expr::pvar("xs").lst_nth(Expr::int(0))
        );
        assert_eq!(parse_expr("not(b)").unwrap(), Expr::pvar("b").not());
        assert_eq!(
            parse_expr("wrap_s8(n)").unwrap(),
            Expr::pvar("n").un(UnOp::WrapSigned(8))
        );
        assert_eq!(
            parse_expr("{{ 1, x }}").unwrap(),
            Expr::list([Expr::int(1), Expr::pvar("x")])
        );
    }

    #[test]
    fn truncated_wrap_is_an_error_not_a_slice_panic() {
        // `wrap_` at end of input used to advance past the buffer.
        let e = parse_expr("wrap_").unwrap_err();
        assert!(e.msg.contains("`s` or `u`"), "{e}");
    }

    #[test]
    fn wrap_requires_a_signedness_marker() {
        // Any marker other than `s`/`u` used to be silently read as
        // unsigned (consuming whatever character was there).
        let e = parse_expr("wrap_x8(n)").unwrap_err();
        assert!(e.msg.contains("`s` or `u`"), "{e}");
    }

    #[test]
    fn wrap_width_is_bounded() {
        // Widths used to be truncated `as u8` (999 → 231) instead of
        // rejected.
        let e = parse_expr("wrap_s999(n)").unwrap_err();
        assert!(e.msg.contains("between 1 and 64"), "{e}");
        assert!(parse_expr("wrap_u0(n)").is_err());
        assert!(parse_expr("wrap_u64(n)").is_ok());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let src = "(".repeat(100_000);
        let e = parse_expr(&src).unwrap_err();
        assert!(e.msg.contains("nesting"), "{e}");
        // Depth well under the limit still parses.
        let mut ok = "x".to_string();
        for _ in 0..100 {
            ok = format!("not({ok})");
        }
        assert!(parse_expr(&ok).is_ok());
    }

    #[test]
    fn parses_program_and_round_trips() {
        let src = r#"
            proc main(a, b) {
              0: x := (a + b)
              1: ifgoto (x < 10) 4
              2: y := lookup!({{ x, "p" }})
              3: fail y
              4: u := uSym_0
              5: i := iSym_1
              6: r := @helper(x, u)
              7: return r
            }
            proc helper(x, u) {
              0: return {{ x, u }}
            }
        "#;
        let p = parse_prog(src).unwrap();
        assert_eq!(p.len(), 2);
        let printed = p.to_string();
        let p2 = parse_prog(&printed).unwrap();
        assert_eq!(p, p2, "round-trip failed:\n{printed}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("(1 +").is_err());
        assert!(parse_prog("proc f( {").is_err());
        assert!(parse_expr("1 2").is_err());
    }
}
