//! Hash-consed expression terms.
//!
//! Every recursive position of [`Expr`](crate::Expr) holds a [`Term`]: an
//! `Arc`-backed node minted through a global, sharded, thread-safe
//! interner. Structurally equal subterms are **pointer-equal**, so
//!
//! - `clone()` is a refcount bump (branch snapshots share structure),
//! - `Eq` is a pointer comparison (the interner guarantees two live terms
//!   with equal bodies are the same allocation),
//! - `Hash` writes a cached 64-bit structural hash (computed once at
//!   mint time), and
//! - caches can key on the stable [`Term::id`] instead of re-hashing
//!   whole trees.
//!
//! Ordering stays **structural** (with a pointer-equality shortcut):
//! intern ids depend on the order terms happen to be minted, which varies
//! across exploration schedules, and the engine's determinism guarantees
//! (DFS/BFS/parallel equivalence) rely on `Ord` being schedule-independent.
//! Ids are safe as *cache keys* — within a process a live id names exactly
//! one structure — but never as an ordering.
//!
//! The interner holds [`Weak`] references: dropping the last `Term` for a
//! node frees it; dead entries are swept opportunistically.

use crate::expr::Expr;
use crate::hashing::{FxHasher, PrehashedBuildHasher};
use gillian_telemetry::{names, registry, Counter, Histogram};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Number of interner shards (locks). A power of two.
const SHARDS: usize = 64;

/// Sweep a shard of dead weak entries after this many inserts into it.
const SWEEP_EVERY: u64 = 1024;

/// One in this many intern lookups is wall-clock timed into the
/// `intern.lookup_nanos` histogram. A power of two. Sampling keeps the
/// cost of the always-on histogram to a thread-local counter bump on
/// the other 1023 lookups (see [`Term::new`] for why the counter, and
/// not the hash, drives the sample).
const LOOKUP_SAMPLE: u64 = 1024;

/// Slots in the per-thread direct-mapped cache fronting the interner.
/// A power of two.
const TL_CACHE_SIZE: usize = 1 << 13;

/// The interned node: a stable id, a cached structural hash, and the
/// one-level expression body (whose recursive positions are again
/// [`Term`]s).
struct TermData {
    id: u64,
    hash: u64,
    expr: Expr,
}

impl Drop for TermData {
    fn drop(&mut self) {
        stats().live.sub(1);
    }
}

/// A hash-consed, reference-counted expression node.
///
/// Minted only through the global interner ([`Term::new`] /
/// `From<Expr>`), which guarantees that structurally equal terms are
/// pointer-equal for as long as both are alive. `Term` dereferences to
/// [`Expr`], so read sites pattern-match through it transparently.
#[derive(Clone)]
pub struct Term(Arc<TermData>);

impl Term {
    /// Interns an expression, returning the canonical shared node.
    ///
    /// If an equal term is live, this is a refcount bump on the existing
    /// allocation (an interner *hit*); otherwise a new node is minted.
    pub fn new(expr: Expr) -> Term {
        // Fast path: the calling thread recently interned this exact
        // body. No locks, no `Weak` upgrades — one hash, one slot probe,
        // one shallow compare. The slot always holds a globally interned
        // term, so pointer-equality across threads is preserved.
        let hash = structural_hash(&expr);
        // One lookup in `LOOKUP_SAMPLE` is wall-clock timed into the
        // telemetry histogram, chosen by a per-call thread-local
        // counter; the unsampled path then tail-calls the lookup with no
        // live timer state. The counter is deliberate: keying the sample
        // off the structural hash would be cheaper still, but intern
        // traffic is heavy-tailed — a deterministic per-value predicate
        // that happens to select an ultra-hot expression times *every*
        // occurrence of it, and measured runs oversampled by ~30×.
        let sampled = TL_SAMPLE.with(|c| {
            let n = c.get().wrapping_add(1);
            c.set(n);
            n & (LOOKUP_SAMPLE - 1) == 0
        });
        if !sampled {
            return Self::with_hash(expr, hash);
        }
        Self::new_timed(expr, hash)
    }

    /// The sampled slow path: the lookup bracketed by a wall clock.
    #[cold]
    #[inline(never)]
    fn new_timed(expr: Expr, hash: u64) -> Term {
        let start = std::time::Instant::now();
        let t = Self::with_hash(expr, hash);
        stats()
            .lookup_nanos
            .record(start.elapsed().as_nanos() as u64);
        t
    }

    fn with_hash(expr: Expr, hash: u64) -> Term {
        let slot = (hash as usize) & (TL_CACHE_SIZE - 1);
        let cached = TL_TERMS.with(|c| {
            let cache = c.borrow();
            match cache.get(slot).and_then(Option::as_ref) {
                Some(t) if t.0.hash == hash && t.0.expr == expr => Some(t.clone()),
                _ => None,
            }
        });
        if let Some(t) = cached {
            stats().hits.incr();
            TL_HITS.with(|c| c.set(c.get() + 1));
            return t;
        }
        let t = interner().intern(expr, hash);
        TL_TERMS.with(|c| {
            let mut cache = c.borrow_mut();
            if cache.is_empty() {
                cache.resize(TL_CACHE_SIZE, None);
            }
            cache[slot] = Some(t.clone());
        });
        t
    }

    /// The one-level expression body of this node.
    pub fn expr(&self) -> &Expr {
        &self.0.expr
    }

    /// The stable intern id: within a process, a live id names exactly
    /// one structure, so caches may key on it. Ids are minted in
    /// exploration order — never use them for *ordering*.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The cached structural hash.
    pub fn cached_hash(&self) -> u64 {
        self.0.hash
    }

    /// Pointer identity — equivalent to `==` but states the intent.
    pub fn same(&self, other: &Term) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for Term {
    type Target = Expr;
    fn deref(&self) -> &Expr {
        &self.0.expr
    }
}

impl AsRef<Expr> for Term {
    fn as_ref(&self) -> &Expr {
        &self.0.expr
    }
}

impl From<Expr> for Term {
    fn from(e: Expr) -> Term {
        Term::new(e)
    }
}

impl From<&Term> for Term {
    fn from(t: &Term) -> Term {
        t.clone()
    }
}

impl PartialEq for Term {
    /// Pointer equality — sound because all terms are interned: two live
    /// terms with structurally equal bodies share one allocation.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}
impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Term {
    /// Structural order with a pointer-equality shortcut. Deliberately
    /// NOT id order: ids depend on mint order, which varies across
    /// exploration schedules, and deterministic results require a
    /// schedule-independent order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.expr.cmp(&other.0.expr)
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expr.fmt(f)
    }
}
impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expr.fmt(f)
    }
}

/// A shared, immutable expression sequence (the n-ary positions of
/// [`Expr::List`], [`Expr::StrCat`], [`Expr::LstCat`]). Cloning is a
/// refcount bump.
#[derive(Clone)]
pub struct ExprList(Arc<[Expr]>);

impl ExprList {
    /// The empty sequence.
    pub fn empty() -> ExprList {
        ExprList(Arc::from(Vec::new()))
    }

    /// Copies the elements into a fresh vector.
    pub fn to_vec(&self) -> Vec<Expr> {
        self.0.to_vec()
    }
}

impl Deref for ExprList {
    type Target = [Expr];
    fn deref(&self) -> &[Expr] {
        &self.0
    }
}

impl AsRef<[Expr]> for ExprList {
    fn as_ref(&self) -> &[Expr] {
        &self.0
    }
}

impl From<Vec<Expr>> for ExprList {
    fn from(v: Vec<Expr>) -> ExprList {
        ExprList(Arc::from(v))
    }
}
impl From<&[Expr]> for ExprList {
    fn from(v: &[Expr]) -> ExprList {
        ExprList(Arc::from(v.to_vec()))
    }
}
impl<const N: usize> From<[Expr; N]> for ExprList {
    fn from(v: [Expr; N]) -> ExprList {
        ExprList(Arc::from(v.to_vec()))
    }
}
impl FromIterator<Expr> for ExprList {
    fn from_iter<I: IntoIterator<Item = Expr>>(iter: I) -> ExprList {
        ExprList(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a ExprList {
    type Item = &'a Expr;
    type IntoIter = std::slice::Iter<'a, Expr>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for ExprList {
    type Item = Expr;
    type IntoIter = std::vec::IntoIter<Expr>;
    fn into_iter(self) -> Self::IntoIter {
        // Elements can't be moved out of a shared `Arc<[_]>`; cloning is
        // cheap (each element's children are refcounted terms). Clippy's
        // `iter().cloned()` suggestion would borrow from the consumed
        // `self`, so the owned round-trip stays.
        #[allow(clippy::unnecessary_to_owned)]
        self.0.to_vec().into_iter()
    }
}

impl PartialEq for ExprList {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for ExprList {}
impl PartialOrd for ExprList {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ExprList {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(&other.0)
        }
    }
}
impl Hash for ExprList {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}
impl fmt::Debug for ExprList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

// ---------------------------------------------------------------------
// The global interner
// ---------------------------------------------------------------------

struct Shard {
    /// Hash → candidate nodes. Buckets hold weak refs so the interner
    /// never keeps terms alive.
    buckets: HashMap<u64, Vec<Weak<TermData>>, PrehashedBuildHasher>,
    /// Inserts since the last dead-entry sweep of this shard.
    inserts: u64,
}

struct Interner {
    shards: Vec<Mutex<Shard>>,
    next_id: AtomicU64,
}

/// Interner counters, read via [`InternStats::snapshot`]. These live in
/// the telemetry registry (under the `intern.*` names) so reports and
/// exporters see them without a dependency on this crate's internals.
struct Counters {
    mints: &'static Counter,
    hits: &'static Counter,
    live: &'static Counter,
    lookup_nanos: &'static Histogram,
}

fn stats() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        mints: registry().counter(names::INTERN_MINTS),
        hits: registry().counter(names::INTERN_HITS),
        live: registry().counter(names::INTERN_LIVE),
        lookup_nanos: registry().histogram(names::INTERN_LOOKUP_NANOS),
    })
}

thread_local! {
    /// Per-thread mint/hit counters, for exact no-allocation assertions
    /// that must not observe other threads' interning — and for exact
    /// per-run attribution: the explorers sum per-worker deltas of these
    /// instead of diffing the process-global counters, which concurrent
    /// runs would pollute.
    static TL_MINTS: Cell<u64> = const { Cell::new(0) };
    static TL_HITS: Cell<u64> = const { Cell::new(0) };
    /// Lookup counter driving the 1-in-[`LOOKUP_SAMPLE`] latency probe.
    static TL_SAMPLE: Cell<u64> = const { Cell::new(0) };
    /// Direct-mapped per-thread term cache (allocated on first miss):
    /// the last term interned for each hash slot. Strong handles, so at
    /// most [`TL_CACHE_SIZE`] terms per thread are pinned alive — a
    /// bounded trade of memory for lock-free re-interning of the hot
    /// working set.
    static TL_TERMS: RefCell<Vec<Option<Term>>> = const { RefCell::new(Vec::new()) };
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: (0..SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    buckets: HashMap::default(),
                    inserts: 0,
                })
            })
            .collect(),
        next_id: AtomicU64::new(0),
    })
}

/// Deterministic structural hash of a one-level expression body. Child
/// terms hash through their cached hashes, so this is O(arity), not
/// O(tree size).
fn structural_hash(e: &Expr) -> u64 {
    let mut h = FxHasher::default();
    e.hash(&mut h);
    h.finish()
}

impl Interner {
    fn intern(&self, expr: Expr, hash: u64) -> Term {
        let shard = &self.shards[(hash as usize) & (SHARDS - 1)];
        let mut guard = match shard.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(bucket) = guard.buckets.get_mut(&hash) {
            // Scan for a live equal node, compacting dead entries as we
            // go; stop at the first match (full-hash buckets are almost
            // always singletons, so the scan is one upgrade).
            let mut i = 0;
            while i < bucket.len() {
                match bucket[i].upgrade() {
                    Some(data) => {
                        if data.expr == expr {
                            stats().hits.incr();
                            TL_HITS.with(|c| c.set(c.get() + 1));
                            return Term(data);
                        }
                        i += 1;
                    }
                    None => {
                        bucket.swap_remove(i);
                    }
                }
            }
            if bucket.is_empty() {
                guard.buckets.remove(&hash);
            }
        }
        // Miss: mint a new node.
        let data = Arc::new(TermData {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            hash,
            expr,
        });
        let c = stats();
        c.mints.incr();
        c.live.add(1);
        TL_MINTS.with(|tl| tl.set(tl.get() + 1));
        guard
            .buckets
            .entry(hash)
            .or_default()
            .push(Arc::downgrade(&data));
        guard.inserts += 1;
        if guard.inserts >= SWEEP_EVERY {
            guard.inserts = 0;
            guard.buckets.retain(|_, bucket| {
                bucket.retain(|w| w.strong_count() > 0);
                !bucket.is_empty()
            });
        }
        Term(data)
    }
}

/// A snapshot of the interner's counters.
///
/// Counters are process-global and monotone (except `live`); measure a
/// region of work by taking a snapshot before and after and calling
/// [`InternStats::since`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Nodes minted (interner misses): allocations actually performed.
    pub mints: u64,
    /// Interner hits: equal terms that were shared instead of allocated.
    pub hits: u64,
    /// Nodes currently alive (refcount > 0).
    pub live: u64,
}

impl InternStats {
    /// Reads the current global counters (all threads).
    pub fn snapshot() -> InternStats {
        let c = stats();
        InternStats {
            mints: c.mints.get(),
            hits: c.hits.get(),
            live: c.live.get(),
        }
    }

    /// Reads counters for the **calling thread only** (`live` stays
    /// global — liveness is a process-wide level). Deltas of thread
    /// snapshots give exact no-deep-copy assertions that cannot be
    /// polluted by concurrent threads.
    pub fn thread_snapshot() -> InternStats {
        InternStats {
            mints: TL_MINTS.with(Cell::get),
            hits: TL_HITS.with(Cell::get),
            live: stats().live.get(),
        }
    }

    /// The counter deltas since an earlier snapshot (`live` is carried
    /// over as-is: it is a level, not a flow).
    pub fn since(&self, earlier: &InternStats) -> InternStats {
        InternStats {
            mints: self.mints.saturating_sub(earlier.mints),
            hits: self.hits.saturating_sub(earlier.hits),
            live: self.live,
        }
    }

    /// Fraction of intern requests served by sharing (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.mints + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Estimated heap bytes saved by sharing: every hit avoided one node
    /// allocation.
    pub fn bytes_saved(&self) -> u64 {
        self.hits * std::mem::size_of::<TermData>() as u64
    }

    /// Merges two deltas (summing flows, taking the later level).
    pub fn merge(&self, other: &InternStats) -> InternStats {
        InternStats {
            mints: self.mints + other.mints,
            hits: self.hits + other.hits,
            live: self.live.max(other.live),
        }
    }
}

impl fmt::Display for InternStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interned {} nodes, {} hits ({:.1}% hit rate, ~{} KiB saved), {} live",
            self.mints,
            self.hits,
            self.hit_rate() * 100.0,
            self.bytes_saved() / 1024,
            self.live
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn equal_terms_are_pointer_equal() {
        let a: Term = Expr::pvar("x").add(Expr::int(1)).into();
        let b: Term = Expr::pvar("x").add(Expr::int(1)).into();
        assert!(a.same(&b));
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_terms_differ() {
        let a: Term = Expr::int(1).into();
        let b: Term = Expr::int(2).into();
        assert!(!a.same(&b));
        assert_ne!(a, b);
        assert!(a < b, "ordering is structural");
    }

    #[test]
    fn clone_is_sharing_not_allocation() {
        let a: Term = Expr::pvar("p").mul(Expr::int(3)).into();
        let before = InternStats::thread_snapshot();
        let b = a.clone();
        let delta = InternStats::thread_snapshot().since(&before);
        assert_eq!(delta.mints, 0, "clone must not mint");
        assert_eq!(delta.hits, 0, "clone must not even consult the interner");
        assert!(a.same(&b));
    }

    #[test]
    fn interning_again_is_a_hit() {
        // A term shape unique to this test so parallel tests can't race
        // on its liveness.
        let shape = || Expr::pvar("intern_hit_probe").add(Expr::int(123_456));
        let keep: Term = shape().into();
        let before = InternStats::thread_snapshot();
        let again: Term = shape().into();
        let delta = InternStats::thread_snapshot().since(&before);
        assert!(keep.same(&again));
        // The top node plus both children are hits; nothing minted.
        assert_eq!(delta.mints, 0);
        assert!(delta.hits >= 1);
    }

    #[test]
    fn stats_account_for_minting() {
        let before = InternStats::thread_snapshot();
        let _t: Term = Expr::pvar("mint_probe_unique_xyzzy")
            .add(Expr::int(31_337_001))
            .into();
        let delta = InternStats::thread_snapshot().since(&before);
        assert!(delta.mints >= 1, "a never-seen shape must mint");
    }

    #[test]
    fn ord_is_consistent_with_structural_order() {
        let mut terms: Vec<Term> = vec![
            Expr::int(3).into(),
            Expr::int(1).into(),
            Expr::pvar("a").into(),
            Expr::int(2).into(),
        ];
        terms.sort();
        let rendered: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
        assert_eq!(rendered, vec!["1", "2", "3", "a"]);
    }
}
