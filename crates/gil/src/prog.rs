//! GIL commands, procedures, and programs (paper §2.1).
//!
//! ```text
//! c ∈ C_A ≜ x := e | ifgoto e i | x := e(ē) | return e | fail e
//!         | vanish | x := α(e) | x := uSym_j | x := iSym_j
//! ```
//!
//! Two pragmatic extensions over the paper's grammar, both present in the
//! released OCaml implementation: an unconditional [`Cmd::Goto`]
//! (the paper encodes it as `ifgoto true i`) and multi-parameter procedures
//! (the paper passes argument lists through a single parameter).

use crate::expr::Expr;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifiers (variables, procedure names, action names).
pub type Ident = Arc<str>;

/// A command index within a procedure body.
pub type Label = usize;

/// A GIL command.
#[derive(Clone, Debug, PartialEq)]
pub enum Cmd {
    /// `x := e` — variable assignment.
    Assign(Ident, Expr),
    /// `ifgoto e i` — jump to `i` when `e` holds; fall through otherwise.
    /// Symbolically this may branch into both continuations.
    IfGoto(Expr, Label),
    /// `goto i` — unconditional jump (sugar for `ifgoto true i`).
    Goto(Label),
    /// `x := e(ē)` — dynamic procedure call: `proc` evaluates to a procedure
    /// identifier; the arguments are bound to the callee's parameters.
    Call {
        /// Variable receiving the return value.
        lhs: Ident,
        /// Expression evaluating to the procedure identifier.
        proc: Expr,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `return e` — terminate the current procedure with a value.
    Return(Expr),
    /// `fail e` — terminate the entire execution with error value `e`.
    Fail(Expr),
    /// `vanish` — silently terminate the current path with no result.
    Vanish,
    /// `x := α(e)` — execute action `α` with argument `e`.
    Action {
        /// Variable receiving the action's value output.
        lhs: Ident,
        /// Action name, resolved by the state model.
        name: Ident,
        /// Argument expression.
        arg: Expr,
    },
    /// `x := uSym_j` — allocate a fresh *uninterpreted* symbol at site `j`.
    USym {
        /// Variable receiving the fresh symbol.
        lhs: Ident,
        /// Allocation site (program point identifier).
        site: u32,
    },
    /// `x := iSym_j` — allocate a fresh *interpreted* symbol at site `j`:
    /// a fresh logical variable symbolically, an arbitrary value concretely.
    ISym {
        /// Variable receiving the fresh value.
        lhs: Ident,
        /// Allocation site (program point identifier).
        site: u32,
    },
    /// `skip` — no-op (compilation convenience).
    Skip,
}

impl Cmd {
    /// Builds an assignment command.
    pub fn assign(x: impl AsRef<str>, e: Expr) -> Cmd {
        Cmd::Assign(Arc::from(x.as_ref()), e)
    }

    /// Builds an action command `x := α(e)`.
    pub fn action(lhs: impl AsRef<str>, name: impl AsRef<str>, arg: Expr) -> Cmd {
        Cmd::Action {
            lhs: Arc::from(lhs.as_ref()),
            name: Arc::from(name.as_ref()),
            arg,
        }
    }

    /// Builds a call command `x := e(ē)`.
    pub fn call(lhs: impl AsRef<str>, proc: Expr, args: Vec<Expr>) -> Cmd {
        Cmd::Call {
            lhs: Arc::from(lhs.as_ref()),
            proc,
            args,
        }
    }

    /// Builds a static call command `x := f(ē)`.
    pub fn call_static(lhs: impl AsRef<str>, proc: impl AsRef<str>, args: Vec<Expr>) -> Cmd {
        Cmd::call(lhs, Expr::proc(proc.as_ref()), args)
    }

    /// Builds a `uSym` command.
    pub fn usym(lhs: impl AsRef<str>, site: u32) -> Cmd {
        Cmd::USym {
            lhs: Arc::from(lhs.as_ref()),
            site,
        }
    }

    /// Builds an `iSym` command.
    pub fn isym(lhs: impl AsRef<str>, site: u32) -> Cmd {
        Cmd::ISym {
            lhs: Arc::from(lhs.as_ref()),
            site,
        }
    }
}

impl fmt::Display for Cmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmd::Assign(x, e) => write!(f, "{x} := {e}"),
            Cmd::IfGoto(e, i) => write!(f, "ifgoto {e} {i}"),
            Cmd::Goto(i) => write!(f, "goto {i}"),
            Cmd::Call { lhs, proc, args } => {
                write!(f, "{lhs} := {proc}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Cmd::Return(e) => write!(f, "return {e}"),
            Cmd::Fail(e) => write!(f, "fail {e}"),
            Cmd::Vanish => write!(f, "vanish"),
            Cmd::Action { lhs, name, arg } => write!(f, "{lhs} := {name}!({arg})"),
            Cmd::USym { lhs, site } => write!(f, "{lhs} := uSym_{site}"),
            Cmd::ISym { lhs, site } => write!(f, "{lhs} := iSym_{site}"),
            Cmd::Skip => write!(f, "skip"),
        }
    }
}

/// A GIL procedure `f(x̄){ c̄ }`.
#[derive(Clone, Debug, PartialEq)]
pub struct Proc {
    /// Procedure identifier.
    pub name: Ident,
    /// Formal parameters.
    pub params: Vec<Ident>,
    /// Command sequence; labels are indices into this vector.
    pub body: Vec<Cmd>,
}

impl Proc {
    /// Creates a procedure from its name, parameters and body.
    pub fn new<'a>(
        name: impl AsRef<str>,
        params: impl IntoIterator<Item = &'a str>,
        body: Vec<Cmd>,
    ) -> Proc {
        Proc {
            name: Arc::from(name.as_ref()),
            params: params.into_iter().map(Arc::from).collect(),
            body,
        }
    }
}

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for (i, c) in self.body.iter().enumerate() {
            writeln!(f, "  {i}: {c}")?;
        }
        write!(f, "}}")
    }
}

/// A GIL program: a map from procedure identifiers to procedures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Prog {
    procs: BTreeMap<Ident, Proc>,
    /// Memo of the compiled bytecode (see [`crate::compile`]). Derived
    /// data: clones start cold, equality ignores it, mutators reset it.
    pub(crate) bytecode: crate::compile::BytecodeCache,
}

impl Prog {
    /// Creates an empty program.
    pub fn new() -> Prog {
        Prog::default()
    }

    /// Creates a program from an iterator of procedures.
    ///
    /// # Panics
    ///
    /// Panics if two procedures share a name (programs are built by
    /// compilers, so a duplicate is a compiler bug).
    pub fn from_procs(procs: impl IntoIterator<Item = Proc>) -> Prog {
        let mut p = Prog::new();
        for pr in procs {
            p.add(pr);
        }
        p
    }

    /// Adds a procedure.
    ///
    /// # Panics
    ///
    /// Panics on duplicate procedure names.
    pub fn add(&mut self, proc: Proc) {
        // Mutation stales any compiled form; later executions recompile.
        self.bytecode = Default::default();
        let name = proc.name.clone();
        assert!(
            self.procs.insert(name.clone(), proc).is_none(),
            "duplicate procedure {name}"
        );
    }

    /// Looks up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Proc> {
        self.procs.get(name)
    }

    /// Iterates over procedures in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Proc> {
        self.procs.values()
    }

    /// Number of procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when the program has no procedures.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Merges another program into this one.
    ///
    /// # Panics
    ///
    /// Panics on duplicate procedure names.
    pub fn extend(&mut self, other: Prog) {
        for p in other.procs.into_values() {
            self.add(p);
        }
    }

    /// Total number of commands across all procedures.
    pub fn cmd_count(&self) -> usize {
        self.procs.values().map(|p| p.body.len()).sum()
    }
}

impl fmt::Display for Prog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_proc() -> Proc {
        Proc::new(
            "main",
            [],
            vec![
                Cmd::assign("x", Expr::int(1)),
                Cmd::IfGoto(Expr::pvar("x").eq(Expr::int(1)), 3),
                Cmd::Fail(Expr::str("unreachable")),
                Cmd::Return(Expr::pvar("x")),
            ],
        )
    }

    #[test]
    fn program_stores_and_finds_procs() {
        let p = Prog::from_procs([sample_proc()]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.proc("main").unwrap().body.len(), 4);
        assert!(p.proc("nope").is_none());
        assert_eq!(p.cmd_count(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate procedure")]
    fn duplicate_procs_panic() {
        Prog::from_procs([sample_proc(), sample_proc()]);
    }

    #[test]
    fn display_includes_labels() {
        let s = sample_proc().to_string();
        assert!(s.contains("0: x := 1"));
        assert!(s.contains("3: return x"));
    }
}
