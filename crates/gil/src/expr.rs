//! GIL expressions.
//!
//! Following the released Gillian implementation, a single expression type
//! serves both as the *program* expressions `e ∈ E` of paper §2.1 (which may
//! mention program variables) and as the *logical* expressions `ê ∈ Ê` of
//! §2.3 (which may mention logical variables). Concrete evaluation rejects
//! logical variables; symbolic stores map program variables to logical
//! expressions, so after store substitution a program expression becomes a
//! logical one.

use crate::ops::{BinOp, UnOp};
use crate::value::{TypeTag, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A logical variable `x̂ ∈ X̂` (paper §2.3), identified by a unique id.
///
/// Logical variables are minted by the symbolic allocator when executing the
/// `iSym` command, and stand for arbitrary values constrained only by the
/// path condition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LVar(pub u64);

impl fmt::Debug for LVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#x{}", self.0)
    }
}
impl fmt::Display for LVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#x{}", self.0)
    }
}

/// A GIL expression.
///
/// Built with the constructor helpers (`Expr::int`, [`Expr::pvar`], …) and
/// the combinator methods ([`Expr::add`], [`Expr::eq`], …), which keep
/// compiled code readable:
///
/// ```
/// use gillian_gil::Expr;
/// let e = Expr::pvar("x").add(Expr::int(1)).lt(Expr::int(10));
/// assert_eq!(e.to_string(), "((x + 1) < 10)");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Expr {
    /// A literal value.
    Val(Value),
    /// A program variable `x ∈ X`.
    PVar(Arc<str>),
    /// A logical variable `x̂ ∈ X̂`.
    LVar(LVar),
    /// Unary operator application `⊖e`.
    Un(UnOp, Box<Expr>),
    /// Binary operator application `e₁ ⊕ e₂`.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// List construction `[e₁, …, eₙ]`.
    List(Vec<Expr>),
    /// String concatenation `s-cat(e₁, …, eₙ)`.
    StrCat(Vec<Expr>),
    /// List concatenation `l-cat(e₁, …, eₙ)`.
    LstCat(Vec<Expr>),
}

// The DSL builder methods deliberately mirror operator names (`add`,
// `not`, …) without implementing the std `ops` traits: the operators build
// *syntax*, not values, and `a + b` would read as computation.
#[allow(clippy::should_implement_trait)]
impl Expr {
    // ---- constructors -------------------------------------------------

    /// Integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Val(Value::Int(n))
    }
    /// Number (double) literal.
    pub fn num(x: f64) -> Expr {
        Expr::Val(Value::num(x))
    }
    /// String literal.
    pub fn str(s: impl AsRef<str>) -> Expr {
        Expr::Val(Value::str(s))
    }
    /// Boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Val(Value::Bool(b))
    }
    /// The literal `true`.
    pub fn tt() -> Expr {
        Expr::bool(true)
    }
    /// The literal `false`.
    pub fn ff() -> Expr {
        Expr::bool(false)
    }
    /// Program variable.
    pub fn pvar(x: impl AsRef<str>) -> Expr {
        Expr::PVar(Arc::from(x.as_ref()))
    }
    /// Logical variable.
    pub fn lvar(x: LVar) -> Expr {
        Expr::LVar(x)
    }
    /// Procedure-identifier literal.
    pub fn proc(name: impl AsRef<str>) -> Expr {
        Expr::Val(Value::proc(name))
    }
    /// Type literal.
    pub fn type_tag(t: TypeTag) -> Expr {
        Expr::Val(Value::Type(t))
    }
    /// The empty list literal.
    pub fn nil() -> Expr {
        Expr::Val(Value::nil())
    }
    /// List construction from sub-expressions.
    pub fn list(es: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::List(es.into_iter().collect())
    }

    // ---- combinators ---------------------------------------------------

    /// `self ⊕ other` for an arbitrary binary operator.
    pub fn bin(self, op: BinOp, other: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(other))
    }
    /// `⊖self` for an arbitrary unary operator.
    pub fn un(self, op: UnOp) -> Expr {
        Expr::Un(op, Box::new(self))
    }
    /// Addition.
    pub fn add(self, other: Expr) -> Expr {
        self.bin(BinOp::Add, other)
    }
    /// Subtraction.
    pub fn sub(self, other: Expr) -> Expr {
        self.bin(BinOp::Sub, other)
    }
    /// Multiplication.
    pub fn mul(self, other: Expr) -> Expr {
        self.bin(BinOp::Mul, other)
    }
    /// Division.
    pub fn div(self, other: Expr) -> Expr {
        self.bin(BinOp::Div, other)
    }
    /// Remainder.
    pub fn rem(self, other: Expr) -> Expr {
        self.bin(BinOp::Mod, other)
    }
    /// Structural equality.
    pub fn eq(self, other: Expr) -> Expr {
        self.bin(BinOp::Eq, other)
    }
    /// Negated structural equality.
    pub fn ne(self, other: Expr) -> Expr {
        self.eq(other).not()
    }
    /// Strict less-than.
    pub fn lt(self, other: Expr) -> Expr {
        self.bin(BinOp::Lt, other)
    }
    /// Less-or-equal.
    pub fn le(self, other: Expr) -> Expr {
        self.bin(BinOp::Leq, other)
    }
    /// Strict greater-than (desugars to swapped `<`).
    pub fn gt(self, other: Expr) -> Expr {
        other.bin(BinOp::Lt, self)
    }
    /// Greater-or-equal (desugars to swapped `<=`).
    pub fn ge(self, other: Expr) -> Expr {
        other.bin(BinOp::Leq, self)
    }
    /// Boolean conjunction.
    pub fn and(self, other: Expr) -> Expr {
        self.bin(BinOp::And, other)
    }
    /// Boolean disjunction.
    pub fn or(self, other: Expr) -> Expr {
        self.bin(BinOp::Or, other)
    }
    /// Boolean negation.
    pub fn not(self) -> Expr {
        self.un(UnOp::Not)
    }
    /// The type of the expression's value.
    pub fn type_of(self) -> Expr {
        self.un(UnOp::TypeOf)
    }
    /// `typeOf(self) = t`.
    pub fn has_type(self, t: TypeTag) -> Expr {
        self.type_of().eq(Expr::type_tag(t))
    }
    /// List length.
    pub fn lst_len(self) -> Expr {
        self.un(UnOp::LstLen)
    }
    /// `i`-th element of a list.
    pub fn lst_nth(self, i: Expr) -> Expr {
        self.bin(BinOp::LstNth, i)
    }
    /// First element of a list.
    pub fn lst_head(self) -> Expr {
        self.un(UnOp::LstHead)
    }
    /// All but the first element of a list.
    pub fn lst_tail(self) -> Expr {
        self.un(UnOp::LstTail)
    }
    /// Prepend onto a list.
    pub fn cons(self, list: Expr) -> Expr {
        self.bin(BinOp::LstCons, list)
    }

    // ---- queries -------------------------------------------------------

    /// Returns the literal value if this expression is one.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Expr::Val(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the literal boolean if this expression is one.
    pub fn as_bool(&self) -> Option<bool> {
        self.as_value().and_then(Value::as_bool)
    }

    /// Returns the literal integer if this expression is one.
    pub fn as_int(&self) -> Option<i64> {
        self.as_value().and_then(Value::as_int)
    }

    /// True when the expression contains no variables (program or logical).
    pub fn is_closed(&self) -> bool {
        let mut closed = true;
        self.visit(&mut |e| {
            if matches!(e, Expr::PVar(_) | Expr::LVar(_)) {
                closed = false;
            }
        });
        closed
    }

    /// Calls `f` on this expression and every sub-expression (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => {}
            Expr::Un(_, e) => e.visit(f),
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::List(es) | Expr::StrCat(es) | Expr::LstCat(es) => {
                for e in es {
                    e.visit(f);
                }
            }
        }
    }

    /// Collects the logical variables occurring in the expression.
    pub fn lvars(&self) -> BTreeSet<LVar> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::LVar(x) = e {
                out.insert(*x);
            }
        });
        out
    }

    /// Collects the program variables occurring in the expression.
    pub fn pvars(&self) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::PVar(x) = e {
                out.insert(x.clone());
            }
        });
        out
    }

    /// Rebuilds the expression, replacing each variable through `f`;
    /// variables for which `f` returns `None` are kept as-is.
    pub fn subst(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        if let Some(e) = f(self) {
            return e;
        }
        match self {
            Expr::Val(_) | Expr::PVar(_) | Expr::LVar(_) => self.clone(),
            Expr::Un(op, e) => Expr::Un(*op, Box::new(e.subst(f))),
            Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(a.subst(f)), Box::new(b.subst(f))),
            Expr::List(es) => Expr::List(es.iter().map(|e| e.subst(f)).collect()),
            Expr::StrCat(es) => Expr::StrCat(es.iter().map(|e| e.subst(f)).collect()),
            Expr::LstCat(es) => Expr::LstCat(es.iter().map(|e| e.subst(f)).collect()),
        }
    }

    /// Substitutes logical variables through the given mapping.
    pub fn subst_lvars(&self, map: &impl Fn(LVar) -> Option<Expr>) -> Expr {
        self.subst(&|e| match e {
            Expr::LVar(x) => map(*x),
            _ => None,
        })
    }

    /// A small structural size measure (number of nodes), used by the
    /// simplifier to avoid size-increasing rewrites.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

impl From<Value> for Expr {
    fn from(v: Value) -> Expr {
        Expr::Val(v)
    }
}
impl From<i64> for Expr {
    fn from(n: i64) -> Expr {
        Expr::int(n)
    }
}
impl From<bool> for Expr {
    fn from(b: bool) -> Expr {
        Expr::bool(b)
    }
}
impl From<&str> for Expr {
    fn from(s: &str) -> Expr {
        Expr::str(s)
    }
}
impl From<LVar> for Expr {
    fn from(x: LVar) -> Expr {
        Expr::LVar(x)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Val(v) => write!(f, "{v}"),
            Expr::PVar(x) => write!(f, "{x}"),
            Expr::LVar(x) => write!(f, "{x}"),
            Expr::Un(op, e) => match op {
                UnOp::Neg | UnOp::BitNot => write!(f, "({op}{e})"),
                _ => write!(f, "{op}({e})"),
            },
            Expr::Bin(op, a, b) => match op {
                BinOp::LstNth | BinOp::StrNth | BinOp::LstCons | BinOp::LstSub => {
                    write!(f, "{op}({a}, {b})")
                }
                _ => write!(f, "({a} {op} {b})"),
            },
            Expr::List(es) => {
                write!(f, "{{{{ ")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, " }}}}")
            }
            Expr::StrCat(es) => {
                write!(f, "s-cat(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::LstCat(es) => {
                write!(f, "l-cat(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::pvar("x").add(Expr::int(1));
        assert_eq!(
            e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::PVar(Arc::from("x"))),
                Box::new(Expr::int(1))
            )
        );
    }

    #[test]
    fn lvars_and_pvars_are_collected() {
        let e = Expr::pvar("a")
            .add(Expr::lvar(LVar(3)))
            .eq(Expr::lvar(LVar(1)).mul(Expr::pvar("b")));
        assert_eq!(e.lvars(), BTreeSet::from([LVar(1), LVar(3)]));
        let pv: Vec<String> = e.pvars().iter().map(|s| s.to_string()).collect();
        assert_eq!(pv, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn subst_replaces_lvars() {
        let e = Expr::lvar(LVar(0)).add(Expr::lvar(LVar(1)));
        let r = e.subst_lvars(&|x| (x == LVar(0)).then(|| Expr::int(5)));
        assert_eq!(r, Expr::int(5).add(Expr::lvar(LVar(1))));
    }

    #[test]
    fn is_closed_detects_variables() {
        assert!(Expr::int(1).add(Expr::int(2)).is_closed());
        assert!(!Expr::pvar("x").is_closed());
        assert!(!Expr::list([Expr::lvar(LVar(0))]).is_closed());
    }

    #[test]
    fn display_round_trips_shapes() {
        let e = Expr::pvar("x").add(Expr::int(1)).lt(Expr::int(10));
        assert_eq!(e.to_string(), "((x + 1) < 10)");
        assert_eq!(Expr::list([Expr::int(1)]).to_string(), "{{ 1 }}");
    }
}
